"""Round-engine behaviour that is now uniform across all algorithms.

Before the engine refactor only FedML/FedAvg/RobustFedML had telemetry
spans, participation sampling, and non-participant resync; FedProx,
Reptile, Meta-SGD and ADML aggregated over all nodes with no
observability.  These tests pin the uniformity down for every facade.
"""

import numpy as np
import pytest

from repro.core import (
    ADMLConfig,
    FedAvg,
    FedAvgConfig,
    FederatedADML,
    FederatedMetaSGD,
    FederatedReptile,
    FedML,
    FedMLConfig,
    MetaSGDConfig,
    ReptileConfig,
    RobustFedML,
    RobustFedMLConfig,
)
from repro.core.fedprox import FedProx, FedProxConfig
from repro.data import SyntheticConfig, generate_synthetic
from repro.nn import LogisticRegression
from repro.nn.parameters import to_vector
from repro.obs import MemorySink, Telemetry

COMMON = dict(t0=2, total_iterations=4, seed=0)


def all_runners(model):
    """One cheaply-configured runner per algorithm facade."""
    return {
        "fedml": FedML(
            model, FedMLConfig(alpha=0.05, beta=0.05, k=2, **COMMON)
        ),
        "fedavg": FedAvg(model, FedAvgConfig(learning_rate=0.05, **COMMON)),
        "fedprox": FedProx(
            model, FedProxConfig(learning_rate=0.05, mu_prox=0.1, **COMMON)
        ),
        "reptile": FederatedReptile(
            model,
            ReptileConfig(inner_lr=0.05, outer_lr=0.5, inner_steps=1, k=2, **COMMON),
        ),
        "meta-sgd": FederatedMetaSGD(
            model, MetaSGDConfig(alpha_init=0.05, beta=0.05, k=2, **COMMON)
        ),
        "adml": FederatedADML(
            model, ADMLConfig(alpha=0.05, beta=0.05, k=2, epsilon=0.05, **COMMON)
        ),
        "robust-fedml": RobustFedML(
            model,
            RobustFedMLConfig(
                alpha=0.05, beta=0.05, k=2, lam=1.0, nu=0.5, ta=1, n0=1,
                r_max=1, **COMMON
            ),
        ),
    }


@pytest.fixture(scope="module")
def workload():
    fed = generate_synthetic(
        SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=4, mean_samples=12, seed=1)
    )
    return fed, list(range(4))


ALGORITHMS = [
    "fedml", "fedavg", "fedprox", "reptile", "meta-sgd", "adml", "robust-fedml",
]


class TestUniformTelemetry:
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_every_algorithm_emits_spans_and_counters(self, workload, name):
        fed, sources = workload
        sink = MemorySink()
        telemetry = Telemetry(sink=sink)
        model = LogisticRegression(60, 10)
        runner = all_runners(model)[name]
        runner.telemetry = telemetry
        runner.platform.telemetry = telemetry
        runner.fit(fed, sources)

        # 4 iterations / t0=2 -> 2 aggregations
        assert telemetry.registry.get("fl_rounds_total", algorithm=name).value == 2
        assert (
            telemetry.registry.get("fl_local_steps_total", algorithm=name).value
            == 4 * len(sources)
        )
        span_names = {r["name"] for r in sink.of_type("span")}
        assert {"fit", "round", "local_steps", "aggregate"} <= span_names
        round_spans = [r for r in sink.of_type("span") if r["name"] == "round"]
        assert len(round_spans) == 2
        assert all(r["path"] == "fit/round" for r in round_spans)


class LastNodeOnly:
    """Degenerate participation policy: only the last node uploads."""

    def select(self, nodes, round_index):
        return [nodes[-1]]


class TestUniformParticipation:
    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_non_participants_resync_to_broadcast(self, workload, name):
        fed, sources = workload
        model = LogisticRegression(60, 10)
        runner = all_runners(model)[name]
        runner.participation = LastNodeOnly()
        result = runner.fit(fed, sources)
        # After the final aggregation every node — participant or not —
        # holds the broadcast global model.
        if name == "meta-sgd":
            from repro.engine import merge_meta_sgd_trees

            final = to_vector(merge_meta_sgd_trees(result.params, result.log_alpha))
        else:
            final = to_vector(result.params)
        for node in result.nodes:
            np.testing.assert_array_equal(to_vector(node.params), final)

    def test_sampling_changes_trajectory(self, workload):
        fed, sources = workload
        model = LogisticRegression(60, 10)
        full = all_runners(model)["fedprox"].fit(fed, sources)
        sampled_runner = all_runners(model)["fedprox"]
        sampled_runner.participation = LastNodeOnly()
        sampled = sampled_runner.fit(fed, sources)
        assert not np.array_equal(
            to_vector(full.params), to_vector(sampled.params)
        )


class TestRoundCadence:
    def test_eval_every_skips_rounds(self, workload):
        fed, sources = workload
        model = LogisticRegression(60, 10)
        runner = FedML(
            model,
            FedMLConfig(
                alpha=0.05, beta=0.05, k=2, t0=2, total_iterations=8,
                eval_every=2, seed=0,
            ),
        )
        result = runner.fit(fed, sources)
        # initial record + aggregations 2 and 4 (of 4)
        assert result.history.steps() == [0, 4, 8]

    def test_final_round_always_evaluated_with_non_divisible_cadence(
        self, workload
    ):
        """Regression: with ``rounds % eval_every != 0`` the engine used to
        return without ever evaluating the final aggregated model, so the
        history's last record described a stale snapshot."""
        fed, sources = workload
        model = LogisticRegression(60, 10)
        runner = FedML(
            model,
            FedMLConfig(
                alpha=0.05, beta=0.05, k=2, t0=2, total_iterations=8,
                eval_every=3, seed=0,
            ),
        )
        result = runner.fit(fed, sources)
        # initial record, aggregation 3 (cadence), and the final
        # aggregation 4 which the cadence alone would have skipped.
        assert result.history.steps() == [0, 6, 8]
        final = result.history.records[-1]
        assert final["step"] == 8
        assert "global_meta_loss" in final
        assert "uplink_bytes" in final

    def test_divisible_cadence_does_not_double_log_final_round(
        self, workload
    ):
        fed, sources = workload
        model = LogisticRegression(60, 10)
        runner = FedML(
            model,
            FedMLConfig(
                alpha=0.05, beta=0.05, k=2, t0=2, total_iterations=8,
                eval_every=4, seed=0,
            ),
        )
        result = runner.fit(fed, sources)
        assert result.history.steps() == [0, 8]

    def test_partial_final_block_runs_local_steps_without_aggregation(
        self, workload
    ):
        fed, sources = workload
        model = LogisticRegression(60, 10)
        runner = FedML(
            model,
            FedMLConfig(
                alpha=0.05, beta=0.05, k=2, t0=4, total_iterations=3, seed=0
            ),
        )
        result = runner.fit(fed, sources)
        assert all(node.local_steps == 3 for node in result.nodes)
        assert result.platform.comm_log.uplink_bytes == 0
        # the global model is still the initial broadcast (never aggregated)
        assert len(result.history.records) == 1
