"""Cross-process trace propagation and the unified event log.

The contract: with telemetry enabled, a parallel run produces ONE coherent
trace — worker-side ``local_train`` spans come home with the node results,
are re-parented under the round span in the parent's ring buffer, and the
event stream tells the run's whole story in order.  And observing a run
never changes it: traced results stay bit-identical to the untraced golden
traces.
"""

import numpy as np
import pytest

from repro.autodiff import fastpath
from repro.engine import ExecutorError, ParallelExecutor, RoundEngine, SerialExecutor
from repro.nn.parameters import to_vector
from repro.obs import MemorySink, Telemetry
from repro.obs.events import RunRecord

from .capture_golden import build_runners, build_workload
from .test_executors import ExplodingStrategy, NoisyConfig, NoisyStrategy

GOLDEN_NAME = "fedml"


@pytest.fixture(scope="module")
def workload():
    return build_workload()


def _traced_fit(workload, executor, name=GOLDEN_NAME):
    fed, sources, model = workload
    telemetry = Telemetry(sink=MemorySink())
    runner = build_runners(model, telemetry=telemetry)[name]
    runner.executor = executor
    result = runner.fit(fed, sources)
    telemetry.close()
    return result, telemetry


class TestSingleCoherentTrace:
    def test_parallel_worker_spans_reparented_under_round(self, workload):
        fed, sources, _ = workload
        with ParallelExecutor(max_workers=3) as executor:
            result, telemetry = _traced_fit(workload, executor)
        spans = [r.to_dict() for r in telemetry.tracer.records()]
        local = [s for s in spans if s["name"] == "local_train"]

        # every sampled node gets a worker-side span in every block
        cfg_blocks = 12 // 3  # total_iterations=12, t0=3
        assert len(local) == len(sources) * cfg_blocks
        seen = {(s["attributes"]["node"], s["attributes"]["block"])
                for s in local}
        assert seen == {
            (n, b) for n in sources for b in range(cfg_blocks)
        }
        # re-parented into the parent's trace, not a detached root
        for span in local:
            assert span["path"] == "fit/round/local_steps/local_train"
            assert span["depth"] == 3
            assert span["attributes"]["worker"] is True

        # one timeline: worker spans nest inside the parent fit span
        fit = next(s for s in spans if s["name"] == "fit")
        for span in local:
            assert fit["start"] <= span["start"] <= span["end"] <= fit["end"]

        # the sink streamed the same re-parented records
        sunk = [
            r for r in telemetry.sink.records
            if r.get("type") == "span" and r["name"] == "local_train"
        ]
        assert len(sunk) == len(local)

    def test_serial_and_parallel_traces_have_same_shape(self, workload):
        _, serial_tel = _traced_fit(workload, SerialExecutor())
        with ParallelExecutor(max_workers=3) as executor:
            _, parallel_tel = _traced_fit(workload, executor)

        def shape(telemetry):
            return sorted(
                (r.name, r.path, r.attributes.get("node"),
                 r.attributes.get("block"))
                for r in telemetry.tracer.records()
            )

        # identical span tree modulo the worker marker attribute
        assert shape(serial_tel) == shape(parallel_tel)


class TestTracingIsInvisible:
    """Enabling tracing must not perturb the computation."""

    def test_traced_parallel_run_matches_golden(self, workload):
        import json
        import pathlib

        golden = json.loads(
            (pathlib.Path(__file__).parent / "golden_traces.json").read_text()
        )[GOLDEN_NAME]
        with ParallelExecutor(max_workers=3) as executor:
            result, _ = _traced_fit(workload, executor)
        np.testing.assert_allclose(
            to_vector(result.params),
            np.array(golden["final_params"]),
            rtol=1e-9,
            atol=0,
        )
        assert result.platform.comm_log.uplink_bytes == golden["uplink_bytes"]
        assert [n.local_steps for n in result.nodes] == golden["local_steps"]

    def test_traced_equals_untraced_bitwise(self, workload):
        fed, sources, model = workload
        untraced = build_runners(model)[GOLDEN_NAME].fit(fed, sources)
        with ParallelExecutor(max_workers=2) as executor:
            traced, _ = _traced_fit(workload, executor)
        np.testing.assert_array_equal(
            to_vector(untraced.params), to_vector(traced.params)
        )


class TestCountersMergeBitForBit:
    """Telemetry under ParallelExecutor equals serial-mode values.

    Workload-determined counters (backwards, raw VJP calls, fl_*) must be
    identical; the plan-cache hit/miss *split* may differ (each worker has
    its own cache) but the total lookups must match.
    """

    WORKLOAD_COUNTERS = (
        "autodiff_fastpath_backwards_total",
        "autodiff_fastpath_raw_vjp_calls_total",
        "autodiff_fastpath_fused_dispatches_total",
    )

    def _counters(self, telemetry):
        out = {}
        for record in telemetry.registry.snapshot():
            if record["type"] == "counter":
                key = (record["name"], tuple(sorted(record["labels"].items())))
                out[key] = record["value"]
        return out

    def test_fastpath_and_engine_counters_match(self, workload):
        fastpath.reset_stats()
        serial_result, serial_tel = _traced_fit(workload, SerialExecutor())
        fastpath.to_registry(serial_tel.registry)
        serial_stats = fastpath.stats().as_dict()

        fastpath.reset_stats()
        with ParallelExecutor(max_workers=3) as executor:
            parallel_result, parallel_tel = _traced_fit(workload, executor)
        fastpath.to_registry(parallel_tel.registry)
        parallel_stats = fastpath.stats().as_dict()

        serial_counters = self._counters(serial_tel)
        parallel_counters = self._counters(parallel_tel)

        for name in self.WORKLOAD_COUNTERS:
            key = (name, ())
            assert serial_counters.get(key) == parallel_counters.get(key), name
        for key in serial_counters:
            if key[0].startswith("fl_"):
                assert serial_counters[key] == parallel_counters[key], key

        # plan cache totals are workload-determined even though the
        # hit/miss split is per-process
        assert (
            serial_stats["plan_hits"] + serial_stats["plan_misses"]
            == parallel_stats["plan_hits"] + parallel_stats["plan_misses"]
        )

        # logged series (loss curves) are bit-for-bit identical
        def series(telemetry):
            return sorted(
                (
                    r["name"],
                    tuple(sorted(r["labels"].items())),
                    tuple(r["steps"]),
                    tuple(r["values"]),
                )
                for r in telemetry.registry.snapshot()
                if r["type"] == "series"
            )

        assert series(serial_tel) == series(parallel_tel)
        np.testing.assert_array_equal(
            to_vector(serial_result.params), to_vector(parallel_result.params)
        )


class TestEventStream:
    def test_run_produces_ordered_lifecycle_events(self, workload):
        with ParallelExecutor(max_workers=2) as executor:
            _, telemetry = _traced_fit(workload, executor)
        run = RunRecord.from_records(telemetry.sink.records)

        seqs = [e["seq"] for e in run.events]
        assert seqs == sorted(seqs)
        kinds = [e["kind"] for e in run.events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert kinds.count("round_start") == 4
        assert kinds.count("round_end") == 4
        assert kinds.count("node_result") == 5 * 4

        start = run.events_of("run_start")[0]
        assert start["algorithm"] == GOLDEN_NAME
        assert start["executor"] == "ParallelExecutor"
        assert start["nodes"] == 5
        end = run.events_of("run_end")[0]
        assert end["uplink_bytes"] > 0

        for event in run.events_of("node_result"):
            assert event["duration_s"] > 0.0
            assert event["steps"] == 3

    def test_cache_hit_events_cover_fastpath_activity(self, workload):
        fastpath.reset_stats()
        with ParallelExecutor(max_workers=2) as executor:
            _, telemetry = _traced_fit(workload, executor)
        run = RunRecord.from_records(telemetry.sink.records)
        cache_events = run.events_of("cache_hit")
        assert len(cache_events) == 4  # one per block
        total_backwards = sum(e["backwards"] for e in cache_events)
        # block-local backwards were merged into the parent stats (which
        # also count the parent's own evaluate-time backwards on top)
        assert 0 < total_backwards <= fastpath.stats().backwards


class TestWorkerErrorObservability:
    def _run(self, workload, executor, telemetry):
        fed, sources, model = workload
        strategy = ExplodingStrategy(model, NoisyConfig())
        return RoundEngine(
            strategy, executor=executor, telemetry=telemetry
        ).fit(fed, sources)

    @pytest.mark.parametrize("parallel", [False, True])
    def test_error_keeps_worker_traceback_and_emits_event(
        self, workload, parallel
    ):
        telemetry = Telemetry(sink=MemorySink())
        if parallel:
            with ParallelExecutor(max_workers=2) as executor:
                with pytest.raises(ExecutorError) as excinfo:
                    self._run(workload, executor, telemetry)
        else:
            with pytest.raises(ExecutorError) as excinfo:
                self._run(workload, SerialExecutor(), telemetry)
        err = excinfo.value

        # context survives the process boundary
        assert err.node_id == 3
        assert err.block_index == 0
        assert isinstance(err.__cause__, ValueError)
        assert err.worker_traceback is not None
        assert "ValueError: injected worker failure" in err.worker_traceback
        assert "local_step" in err.worker_traceback

        run = RunRecord.from_records(telemetry.sink.records)
        errors = run.events_of("node_error")
        assert errors and errors[0]["node"] == 3
        assert "injected worker failure" in errors[0]["error"]
        assert "local_step" in (errors[0]["traceback"] or "")

    def test_parallel_traceback_without_telemetry(self, workload):
        # the traceback rides the exception itself — no telemetry needed
        with ParallelExecutor(max_workers=2) as executor:
            with pytest.raises(ExecutorError) as excinfo:
                self._run(workload, executor, None)
        assert "injected worker failure" in (
            excinfo.value.worker_traceback or ""
        )


class TestTapeProfileMerging:
    def test_parallel_profile_matches_serial_op_counts(self, workload):
        from repro.autodiff.profile import profile_ops

        fed, sources, model = workload

        def run(executor):
            strategy = NoisyStrategy(model, NoisyConfig())
            engine = RoundEngine(
                strategy,
                executor=executor,
                telemetry=Telemetry(sink=MemorySink()),
            )
            with profile_ops() as prof:
                engine.fit(fed, sources)
            return prof

        serial = run(SerialExecutor())
        with ParallelExecutor(max_workers=2) as executor:
            parallel = run(executor)
        # NoisyStrategy does no autodiff inside local_step, but evaluate()
        # and aggregation run ops in the parent; counts must agree exactly
        assert serial.total_ops == parallel.total_ops
        assert serial.tape_length == parallel.tape_length

    def test_fedml_parallel_profile_counts_worker_ops(self, workload):
        from repro.autodiff.profile import profile_ops

        fed, sources, model = workload

        def run(executor):
            telemetry = Telemetry(sink=MemorySink())
            runner = build_runners(model, telemetry=telemetry)[GOLDEN_NAME]
            runner.executor = executor
            with profile_ops() as prof:
                runner.fit(fed, sources)
            return prof

        serial = run(SerialExecutor())
        with ParallelExecutor(max_workers=2) as executor:
            parallel = run(executor)
        # the double-backward tape built inside pool workers is shipped
        # home: op counts match the in-process run exactly
        assert serial.total_ops == parallel.total_ops
        assert serial.tape_length == parallel.tape_length
        assert serial.graph_walks == parallel.graph_walks
        for name, stats in serial.op_stats.items():
            assert parallel.op_stats[name].calls == stats.calls, name
