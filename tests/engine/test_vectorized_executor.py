"""Vectorized executor equivalence, fallback, and telemetry.

The contract under test (see ``docs/ENGINE.md``): for strategies that
opt in via ``supports_vectorized``, :class:`VectorizedExecutor` runs one
stacked tape per signature group and must match :class:`SerialExecutor`
within floating-point reassociation tolerance; two vectorized runs of
the same config are bit-identical; strategies that do not opt in fall
back to the internal serial executor and stay bit-for-bit equal to a
plain serial run.
"""

import numpy as np
import pytest

from repro.core import (
    FedAvg,
    FedAvgConfig,
    FedML,
    FedMLConfig,
    FedProx,
    FedProxConfig,
)
from repro.data import SyntheticConfig, generate_synthetic
from repro.engine import RoundEngine, SerialExecutor, VectorizedExecutor
from repro.nn import LogisticRegression
from repro.nn.parameters import to_vector

from .test_executors import NoisyConfig, NoisyStrategy

#: end-to-end serial-vs-vectorized tolerance — stacked tapes may
#: reassociate fp accumulations (see docs/AUTODIFF.md)
EQUIV_RTOL = 1e-6
EQUIV_ATOL = 1e-9


@pytest.fixture(scope="module")
def workload():
    fed = generate_synthetic(
        SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=6, mean_samples=20, seed=1)
    )
    return fed, list(range(6)), LogisticRegression(60, 10)


RUNNERS = [
    (
        FedML,
        FedMLConfig(alpha=0.05, beta=0.05, t0=3, total_iterations=6, k=3, seed=0),
    ),
    (
        FedAvg,
        FedAvgConfig(learning_rate=0.05, t0=3, total_iterations=6, seed=0),
    ),
    (
        FedProx,
        FedProxConfig(
            learning_rate=0.05, mu_prox=0.1, t0=3, total_iterations=6, seed=0
        ),
    ),
]


def _fit(workload, runner_cls, config, executor, telemetry=None):
    fed, sources, model = workload
    return runner_cls(
        model, config, telemetry=telemetry, executor=executor
    ).fit(fed, sources)


class TestVectorizedMatchesSerial:
    @pytest.mark.parametrize("runner_cls,config", RUNNERS)
    def test_equivalent_within_tolerance(self, workload, runner_cls, config):
        serial = _fit(workload, runner_cls, config, SerialExecutor())
        vectorized = _fit(workload, runner_cls, config, VectorizedExecutor())
        np.testing.assert_allclose(
            to_vector(serial.params),
            to_vector(vectorized.params),
            rtol=EQUIV_RTOL,
            atol=EQUIV_ATOL,
        )
        assert [n.local_steps for n in serial.nodes] == [
            n.local_steps for n in vectorized.nodes
        ]
        assert [n.gradient_evaluations for n in serial.nodes] == [
            n.gradient_evaluations for n in vectorized.nodes
        ]

    @pytest.mark.parametrize("runner_cls,config", RUNNERS)
    def test_double_run_bit_identical(self, workload, runner_cls, config):
        first = _fit(workload, runner_cls, config, VectorizedExecutor())
        second = _fit(workload, runner_cls, config, VectorizedExecutor())
        assert (
            to_vector(first.params).tobytes()
            == to_vector(second.params).tobytes()
        )
        assert first.history.records == second.history.records


class TestSerialFallback:
    def test_non_vectorized_strategy_matches_serial_bitwise(self, workload):
        """A strategy without the capability flag runs through the internal
        serial fallback and must be bit-for-bit equal to SerialExecutor."""
        fed, sources, model = workload
        assert NoisyStrategy.supports_vectorized is False

        def run(executor):
            strategy = NoisyStrategy(model, NoisyConfig())
            return RoundEngine(strategy, executor=executor).fit(fed, sources)

        serial = run(SerialExecutor())
        vectorized = run(VectorizedExecutor())
        np.testing.assert_array_equal(
            to_vector(serial.params), to_vector(vectorized.params)
        )
        assert serial.history.records == vectorized.history.records

    def test_ragged_nodes_fall_back_per_node(self, workload):
        """Nodes with distinct data shapes form distinct signature groups —
        partition covers every node exactly once."""
        fed, sources, model = workload
        config = FedAvgConfig(learning_rate=0.05, t0=2, total_iterations=2, seed=0)
        strategy = FedAvg(model, config).strategy
        nodes = strategy.build_nodes(fed, sources)
        groups, fallback = VectorizedExecutor._partition(strategy, nodes)
        covered = [n.node_id for g in groups.values() for n in g]
        covered += [n.node_id for n in fallback]
        assert sorted(covered) == sorted(n.node_id for n in nodes)


class TestTelemetry:
    def _run_with_telemetry(self, workload, fingerprints=False):
        from repro.obs import MemorySink, Telemetry

        sink = MemorySink()
        tel = Telemetry(sink=sink, node_fingerprints=fingerprints)
        config = FedAvgConfig(learning_rate=0.05, t0=2, total_iterations=4, seed=0)
        _fit(workload, FedAvg, config, VectorizedExecutor(), telemetry=tel)
        return sink, tel

    def test_vectorized_block_events_and_counters(self, workload):
        sink, tel = self._run_with_telemetry(workload)
        blocks = [r for r in sink.records if r.get("kind") == "vectorized_block"]
        assert len(blocks) == 2  # total_iterations / t0
        for record in blocks:
            assert record["vectorized_nodes"] == 6
            assert record["fallback_nodes"] == 0
            assert record["groups"] >= 1
        assert tel.registry.get("fl_vectorized_nodes_total").value == 12
        assert tel.registry.get("fl_vectorized_fallback_total").value == 0

    def test_node_results_carry_vectorized_flag_and_fingerprint(self, workload):
        sink, _ = self._run_with_telemetry(workload, fingerprints=True)
        results = [r for r in sink.records if r.get("kind") == "node_result"]
        assert results, "expected node_result events"
        assert all(r.get("vectorized") is True for r in results)
        assert all("params_fp" in r for r in results)

    def test_fallback_nodes_counted(self, workload):
        from repro.obs import MemorySink, Telemetry

        fed, sources, model = workload
        sink = MemorySink()
        tel = Telemetry(sink=sink)
        strategy = NoisyStrategy(model, NoisyConfig())
        RoundEngine(
            strategy, executor=VectorizedExecutor(), telemetry=tel
        ).fit(fed, sources)
        blocks = [r for r in sink.records if r.get("kind") == "vectorized_block"]
        assert blocks
        assert all(r["vectorized_nodes"] == 0 for r in blocks)
        assert all(r["fallback_nodes"] == 6 for r in blocks)
        assert tel.registry.get("fl_vectorized_nodes_total").value == 0
        assert tel.registry.get("fl_vectorized_fallback_total").value > 0
