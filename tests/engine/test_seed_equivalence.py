"""Fixed-seed regression: the engine facades reproduce the seed traces.

``golden_traces.json`` was captured (by ``capture_golden.py``) from the
pre-refactor implementations — each algorithm's hand-rolled round loop —
at a small fixed configuration.  These tests assert the engine-backed
facades retrace them: history records, final parameters, communication
bytes, and per-node step accounting.

Tolerances: parameters and history values compare with ``rtol=1e-9``.
In practice the engine is bit-exact for every algorithm (block-wise
execution commutes with the seed's iteration-major order because nodes
are independent between aggregations), but unifying Reptile's evaluator
onto the shared ω-normalized reduce changes its logged loss at the
~1e-16 relative level, so exact equality is not the contract.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.nn.parameters import to_vector

from .capture_golden import build_runners, build_workload

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_traces.json").read_text()
)


@pytest.fixture(scope="module")
def workload():
    return build_workload()


def _runner(model, name):
    return build_runners(model)[name]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_facade_matches_golden_trace(workload, name):
    fed, sources, model = workload
    result = _runner(model, name).fit(fed, sources)
    golden = GOLDEN[name]

    np.testing.assert_allclose(
        to_vector(result.params),
        np.array(golden["final_params"]),
        rtol=1e-9,
        atol=0,
    )

    records = result.history.records
    assert len(records) == len(golden["records"])
    for record, expected in zip(records, golden["records"]):
        assert set(record) == set(expected)
        for key in expected:
            np.testing.assert_allclose(
                record[key], expected[key], rtol=1e-9, atol=0, err_msg=key
            )

    assert result.platform.comm_log.uplink_bytes == golden["uplink_bytes"]
    assert [n.local_steps for n in result.nodes] == golden["local_steps"]
    assert [n.gradient_evaluations for n in result.nodes] == (
        golden["gradient_evaluations"]
    )


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_facade_deterministic_across_runs(workload, name):
    fed, sources, model = workload
    first = _runner(model, name).fit(fed, sources)
    second = _runner(model, name).fit(fed, sources)
    np.testing.assert_array_equal(
        to_vector(first.params), to_vector(second.params)
    )
