"""Capture golden loss traces and final parameters for seed-equivalence tests.

Run this against a known-good revision of the algorithm implementations to
(re)generate ``golden_traces.json``::

    PYTHONPATH=src python tests/engine/capture_golden.py

The regression tests in ``test_seed_equivalence.py`` then assert the
refactored facades reproduce these traces.  The configuration below is
deliberately small (6 nodes, 12 iterations) so the capture and the tests
both run in seconds.
"""

import json
import pathlib

import numpy as np

from repro.core import (
    ADMLConfig,
    FedAvg,
    FedAvgConfig,
    FederatedADML,
    FederatedMetaSGD,
    FederatedReptile,
    FedML,
    FedMLConfig,
    MetaSGDConfig,
    ReptileConfig,
    RobustFedML,
    RobustFedMLConfig,
)
from repro.core.fedprox import FedProx, FedProxConfig
from repro.data import SyntheticConfig, generate_synthetic
from repro.nn import LogisticRegression
from repro.nn.parameters import to_vector

HERE = pathlib.Path(__file__).resolve().parent
OUT = HERE / "golden_traces.json"


def build_workload():
    fed = generate_synthetic(
        SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=6, mean_samples=20, seed=1)
    )
    sources = list(range(5))
    model = LogisticRegression(60, 10)
    return fed, sources, model


def build_runners(model, **runner_kwargs):
    """The seven facades at the golden configuration.

    ``runner_kwargs`` are forwarded to every facade constructor — the chaos
    suite uses this to attach ``engine_options`` (fault plans, resilience,
    checkpoints) to the exact workload the golden traces were captured on.
    """
    common = dict(t0=3, total_iterations=12, seed=0)
    return {
        "fedml": FedML(
            model, FedMLConfig(alpha=0.05, beta=0.05, k=3, **common),
            **runner_kwargs,
        ),
        "fedavg": FedAvg(
            model, FedAvgConfig(learning_rate=0.05, **common),
            **runner_kwargs,
        ),
        "fedprox": FedProx(
            model, FedProxConfig(learning_rate=0.05, mu_prox=0.1, **common),
            **runner_kwargs,
        ),
        "reptile": FederatedReptile(
            model,
            ReptileConfig(
                inner_lr=0.05, outer_lr=0.5, inner_steps=2, k=3, **common
            ),
            **runner_kwargs,
        ),
        "meta-sgd": FederatedMetaSGD(
            model, MetaSGDConfig(alpha_init=0.05, beta=0.05, k=3, **common),
            **runner_kwargs,
        ),
        "adml": FederatedADML(
            model,
            ADMLConfig(alpha=0.05, beta=0.05, k=3, epsilon=0.05, **common),
            **runner_kwargs,
        ),
        "robust-fedml": RobustFedML(
            model,
            RobustFedMLConfig(
                alpha=0.05, beta=0.05, k=3, lam=1.0, nu=0.5, ta=2, n0=2,
                r_max=1, **common
            ),
            **runner_kwargs,
        ),
    }


def capture():
    fed, sources, model = build_workload()
    golden = {}
    for name, runner in build_runners(model).items():
        result = runner.fit(fed, sources)
        records = result.history.records
        golden[name] = {
            "records": records,
            "final_params": to_vector(result.params).tolist(),
            "uplink_bytes": result.platform.comm_log.uplink_bytes,
            "local_steps": [n.local_steps for n in result.nodes],
            "gradient_evaluations": [
                n.gradient_evaluations for n in result.nodes
            ],
        }
        print(f"{name}: {len(records)} history records captured")
    OUT.write_text(json.dumps(golden, indent=1))
    print(f"wrote {OUT}")


if __name__ == "__main__":
    capture()
