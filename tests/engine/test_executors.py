"""Serial/parallel executor equivalence and determinism.

The contract under test (see ``docs/ENGINE.md``): for picklable
strategies, :class:`ParallelExecutor` is *bit-for-bit* identical to
:class:`SerialExecutor` on the same seeds — pickling float64 arrays is
lossless and both executors bind the same per-node generator
``default_rng([base_seed, block_index, node_id])``.
"""

import numpy as np
import pytest

from repro.core import FedAvg, FedAvgConfig, FedML, FedMLConfig
from repro.data import SyntheticConfig, generate_synthetic
from repro.engine import (
    ExecutorError,
    LocalStrategy,
    ParallelExecutor,
    RoundEngine,
    SerialExecutor,
)
from repro.nn import LogisticRegression
from repro.nn.parameters import add_scaled, to_vector, zeros_like_params


@pytest.fixture(scope="module")
def workload():
    fed = generate_synthetic(
        SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=6, mean_samples=20, seed=1)
    )
    return fed, list(range(6)), LogisticRegression(60, 10)


class NoisyConfig:
    """Minimal engine config (picklable, module-level for the fork path)."""

    t0 = 2
    total_iterations = 4
    eval_every = 1
    seed = 7
    k = 3


class NoisyStrategy(LocalStrategy):
    """Draws from the bound per-node generator every step.

    Exercises the deterministic seeding contract: the same noise stream
    must be observed per (block, node) regardless of executor.
    """

    name = "noisy"

    def local_step(self, node):
        assert self._node_rng is not None
        noise = zeros_like_params(node.params)
        for tensor in noise.values():
            tensor.data[...] = self._node_rng.standard_normal(tensor.shape)
        node.params = add_scaled(node.params, noise, 0.01)
        node.record_local_step(gradient_evals=0)
        return 0.0

    def evaluate(self, params, nodes):
        return {"param_norm": float(np.linalg.norm(to_vector(params)))}


class TestParallelMatchesSerial:
    def _fit(self, workload, runner_cls, config, executor):
        fed, sources, model = workload
        return runner_cls(model, config, executor=executor).fit(fed, sources)

    @pytest.mark.parametrize(
        "runner_cls,config",
        [
            (
                FedML,
                FedMLConfig(
                    alpha=0.05, beta=0.05, t0=3, total_iterations=6, k=3, seed=0
                ),
            ),
            (
                FedAvg,
                FedAvgConfig(
                    learning_rate=0.05, t0=3, total_iterations=6, seed=0
                ),
            ),
        ],
    )
    def test_bit_for_bit(self, workload, runner_cls, config):
        serial = self._fit(workload, runner_cls, config, SerialExecutor())
        with ParallelExecutor(max_workers=2) as executor:
            parallel = self._fit(workload, runner_cls, config, executor)
        np.testing.assert_array_equal(
            to_vector(serial.params), to_vector(parallel.params)
        )
        assert serial.history.records == parallel.history.records
        assert [n.local_steps for n in serial.nodes] == [
            n.local_steps for n in parallel.nodes
        ]
        assert [n.gradient_evaluations for n in serial.nodes] == [
            n.gradient_evaluations for n in parallel.nodes
        ]

    def test_stochastic_strategy_same_stream(self, workload):
        """A strategy drawing per-node randomness sees the same stream."""
        fed, sources, model = workload

        def run(executor):
            strategy = NoisyStrategy(model, NoisyConfig())
            return RoundEngine(strategy, executor=executor).fit(fed, sources)

        serial = run(SerialExecutor())
        with ParallelExecutor(max_workers=3) as executor:
            parallel = run(executor)
        np.testing.assert_array_equal(
            to_vector(serial.params), to_vector(parallel.params)
        )
        assert serial.history.records == parallel.history.records


class ExplodingStrategy(NoisyStrategy):
    """Fails every step on selected nodes (picklable, module-level)."""

    name = "exploding"
    fail_nodes = frozenset({3})

    def local_step(self, node):
        if node.node_id in self.fail_nodes:
            raise ValueError("injected worker failure")
        return super().local_step(node)


class ExplodingTwoStrategy(ExplodingStrategy):
    fail_nodes = frozenset({1, 4})


class TestExecutorErrors:
    """A worker raising mid-block surfaces with context, no pool hang."""

    def _fit(self, workload, executor, strategy_cls=ExplodingStrategy):
        fed, sources, model = workload
        strategy = strategy_cls(model, NoisyConfig())
        return RoundEngine(strategy, executor=executor).fit(fed, sources)

    def test_serial_error_carries_node_and_block(self, workload):
        with pytest.raises(ExecutorError) as excinfo:
            self._fit(workload, SerialExecutor())
        err = excinfo.value
        assert err.node_id == 3
        assert err.block_index == 0
        assert "node 3" in str(err)
        assert "block 0" in str(err)
        assert isinstance(err.__cause__, ValueError)

    def test_parallel_error_carries_context_and_pool_survives(self, workload):
        fed, sources, model = workload
        with ParallelExecutor(max_workers=3) as executor:
            with pytest.raises(ExecutorError) as excinfo:
                self._fit(workload, executor)
            err = excinfo.value
            assert err.node_id == 3
            assert err.block_index == 0
            assert isinstance(err.__cause__, ValueError)
            # all futures were drained: the pool is immediately reusable
            healthy = RoundEngine(
                NoisyStrategy(model, NoisyConfig()), executor=executor
            ).fit(fed, sources)
            assert np.isfinite(to_vector(healthy.params)).all()

    def test_parallel_reports_first_failure_in_node_order(self, workload):
        with ParallelExecutor(max_workers=3) as executor:
            with pytest.raises(ExecutorError) as excinfo:
                self._fit(workload, executor, ExplodingTwoStrategy)
        assert excinfo.value.node_id == 1


class TestParallelExecutorLifecycle:
    def test_close_is_idempotent(self):
        executor = ParallelExecutor(max_workers=2)
        executor.close()  # never started: nothing to shut down
        executor.close()

    def test_pool_restarts_after_close(self, workload):
        fed, sources, model = workload
        config = FedMLConfig(
            alpha=0.05, beta=0.05, t0=2, total_iterations=2, k=3, seed=0
        )
        executor = ParallelExecutor(max_workers=2)
        first = FedML(model, config, executor=executor).fit(fed, sources)
        executor.close()
        second = FedML(model, config, executor=executor).fit(fed, sources)
        executor.close()
        np.testing.assert_array_equal(
            to_vector(first.params), to_vector(second.params)
        )

    def test_run_block_after_close_recreates_pool(self, workload):
        """Direct regression: run_block on a closed executor transparently
        re-creates the pool instead of failing inside ProcessPoolExecutor."""
        from repro.nn.parameters import detach

        fed, sources, model = workload
        strategy = NoisyStrategy(model, NoisyConfig())
        nodes = strategy.build_nodes(fed, sources)
        init = model.init(np.random.default_rng(0))
        for node in nodes:
            node.params = detach(init)
        executor = ParallelExecutor(max_workers=2)
        executor.run_block(strategy, nodes, 1, block_index=0, base_seed=0)
        executor.close()
        assert executor._pool is None
        executor.run_block(strategy, nodes, 1, block_index=1, base_seed=0)
        executor.close()
        assert all(node.local_steps == 2 for node in nodes)
        assert all(
            np.isfinite(to_vector(node.params)).all() for node in nodes
        )
