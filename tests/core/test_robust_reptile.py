"""Tests for Robust FedML (Algorithm 2) and federated Reptile."""

import numpy as np
import pytest

from repro.core import (
    FederatedReptile,
    ReptileConfig,
    RobustFedML,
    RobustFedMLConfig,
)
from repro.data import MnistLikeConfig, generate_mnist_like
from repro.nn import LogisticRegression
from repro.nn.parameters import to_vector


@pytest.fixture(scope="module")
def workload():
    fed = generate_mnist_like(
        MnistLikeConfig(num_nodes=8, mean_samples=20, seed=4)
    )
    sources, targets = fed.split_sources_targets(0.75, np.random.default_rng(0))
    return fed, sources, targets


MODEL = LogisticRegression(64, 10)


class TestRobustConfig:
    def test_defaults(self):
        cfg = RobustFedMLConfig()
        assert cfg.nu == 1.0
        assert cfg.ta == 10
        assert cfg.n0 == 7
        assert cfg.r_max == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lam": -0.1},
            {"nu": 0.0},
            {"ta": 0},
            {"n0": 0},
            {"r_max": -1},
            {"alpha": 0.0},
        ],
    )
    def test_invalid_raises(self, kwargs):
        with pytest.raises(ValueError):
            RobustFedMLConfig(**kwargs)

    def test_as_fedml_preserves_shared_knobs(self):
        cfg = RobustFedMLConfig(alpha=0.03, beta=0.07, t0=4, k=6)
        plain = cfg.as_fedml()
        assert plain.alpha == 0.03
        assert plain.beta == 0.07
        assert plain.t0 == 4
        assert plain.k == 6


class TestRobustFedML:
    def _run(self, workload, **overrides):
        fed, sources, _ = workload
        kwargs = dict(
            alpha=0.05, beta=0.05, t0=2, total_iterations=12, k=5,
            lam=0.5, nu=0.5, ta=3, n0=2, r_max=2, seed=0,
        )
        kwargs.update(overrides)
        cfg = RobustFedMLConfig(**kwargs)
        return RobustFedML(MODEL, cfg).fit(fed, sources)

    def test_training_runs_and_loss_decreases(self, workload):
        result = self._run(workload, total_iterations=20)
        losses = result.global_meta_losses
        assert losses[-1] < losses[0]

    def test_adversarial_generation_schedule(self, workload):
        # generation every n0*t0 = 4 iterations, capped at r_max = 2 rounds,
        # each adding |D_test| samples.
        result = self._run(workload)
        for node in result.nodes:
            expected = 2 * len(node.split.test)
            assert node.adversarial is not None
            assert len(node.adversarial) == expected

    def test_r_max_zero_generates_nothing(self, workload):
        result = self._run(workload, r_max=0)
        assert all(
            n.adversarial is None or len(n.adversarial) == 0 for n in result.nodes
        )

    def test_adversarial_counts_accessor(self, workload):
        result = self._run(workload)
        counts = result.adversarial_counts()
        assert len(counts) == len(result.nodes)
        assert all(c > 0 for c in counts)

    def test_adversarial_samples_keep_labels(self, workload):
        result = self._run(workload)
        node = result.nodes[0]
        test_labels = set(node.split.test.y.tolist())
        adv_labels = set(node.adversarial.y.tolist())
        assert adv_labels.issubset(test_labels)

    def test_adversarial_samples_deviate_from_clean(self, workload):
        result = self._run(workload)
        node = result.nodes[0]
        # perturbed inputs should not be identical to any clean test input
        diffs = np.abs(
            node.adversarial.x[:, None, :] - node.split.test.x[None]
        ).sum(axis=2)
        assert diffs.min() > 1e-8

    def test_deterministic(self, workload):
        r1 = self._run(workload)
        r2 = self._run(workload)
        np.testing.assert_array_equal(to_vector(r1.params), to_vector(r2.params))

    def test_smaller_lambda_perturbs_more(self, workload):
        # nu * 2 * lam must stay below 1 for the paper's plain ascent rule to
        # be stable, so compare lambdas within the stable range.
        strong = self._run(workload, lam=0.01, nu=0.1)
        weak = self._run(workload, lam=4.0, nu=0.1)

        def mean_shift(result):
            shifts = []
            for node in result.nodes:
                clean = node.split.test.x
                adv = node.adversarial.x[: len(clean)]
                shifts.append(np.linalg.norm(adv - clean[: len(adv)], axis=1).mean())
            return np.mean(shifts)

        assert mean_shift(strong) > mean_shift(weak)


class TestFederatedReptile:
    def test_runs_and_improves(self, workload):
        fed, sources, _ = workload
        cfg = ReptileConfig(
            inner_lr=0.05, outer_lr=0.5, inner_steps=3, t0=2,
            total_iterations=20, k=5, seed=0,
        )
        result = FederatedReptile(MODEL, cfg).fit(fed, sources)
        losses = result.history.series("global_meta_loss")
        assert losses[-1] < losses[0]

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ReptileConfig(inner_lr=0.0)
        with pytest.raises(ValueError):
            ReptileConfig(inner_steps=0)

    def test_counts_inner_steps_as_gradient_evals(self, workload):
        fed, sources, _ = workload
        cfg = ReptileConfig(inner_steps=3, t0=2, total_iterations=4, k=5)
        result = FederatedReptile(MODEL, cfg).fit(fed, sources)
        assert all(n.gradient_evaluations == 12 for n in result.nodes)
