"""Integration tests for FedML (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import FedML, FedMLConfig
from repro.data import SyntheticConfig, generate_synthetic
from repro.nn import LogisticRegression
from repro.nn.parameters import to_vector


@pytest.fixture(scope="module")
def workload():
    fed = generate_synthetic(
        SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=10, mean_samples=20, seed=1)
    )
    sources, targets = fed.split_sources_targets(0.8, np.random.default_rng(0))
    return fed, sources, targets


MODEL = LogisticRegression(60, 10)


class TestFedMLConfig:
    def test_defaults_match_paper(self):
        cfg = FedMLConfig()
        assert cfg.alpha == 0.01
        assert cfg.beta == 0.01
        assert cfg.inner_steps == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"beta": -1.0},
            {"t0": 0},
            {"total_iterations": 0},
            {"k": 0},
        ],
    )
    def test_invalid_config_raises(self, kwargs):
        with pytest.raises(ValueError):
            FedMLConfig(**kwargs)


class TestFedMLTraining:
    def test_meta_loss_decreases(self, workload):
        fed, sources, _ = workload
        cfg = FedMLConfig(alpha=0.05, beta=0.05, t0=5, total_iterations=50, k=5, seed=0)
        result = FedML(MODEL, cfg).fit(fed, sources)
        losses = result.global_meta_losses
        assert losses[-1] < losses[0]

    def test_deterministic_under_seed(self, workload):
        fed, sources, _ = workload
        cfg = FedMLConfig(alpha=0.05, beta=0.05, t0=5, total_iterations=15, k=5, seed=3)
        r1 = FedML(MODEL, cfg).fit(fed, sources)
        r2 = FedML(MODEL, cfg).fit(fed, sources)
        np.testing.assert_array_equal(to_vector(r1.params), to_vector(r2.params))

    def test_aggregation_count(self, workload):
        fed, sources, _ = workload
        cfg = FedMLConfig(alpha=0.05, beta=0.05, t0=4, total_iterations=20, k=5)
        result = FedML(MODEL, cfg).fit(fed, sources)
        assert result.platform.rounds_completed == 5

    def test_communication_charged_per_round(self, workload):
        fed, sources, _ = workload
        cfg = FedMLConfig(alpha=0.05, beta=0.05, t0=5, total_iterations=10, k=5)
        result = FedML(MODEL, cfg).fit(fed, sources)
        # 8 source nodes, 2 aggregations: 16 uploads of the parameter blob.
        from repro.utils.serialization import payload_bytes

        blob = payload_bytes(result.params)
        assert result.platform.comm_log.uplink_bytes == 16 * blob

    def test_larger_t0_reduces_communication(self, workload):
        fed, sources, _ = workload
        base = dict(alpha=0.05, beta=0.05, total_iterations=20, k=5)
        small = FedML(MODEL, FedMLConfig(t0=2, **base)).fit(fed, sources)
        large = FedML(MODEL, FedMLConfig(t0=10, **base)).fit(fed, sources)
        assert large.uplink_bytes < small.uplink_bytes

    def test_nodes_synchronized_after_aggregation(self, workload):
        fed, sources, _ = workload
        cfg = FedMLConfig(alpha=0.05, beta=0.05, t0=5, total_iterations=5, k=5)
        result = FedML(MODEL, cfg).fit(fed, sources)
        reference = to_vector(result.nodes[0].params)
        for node in result.nodes[1:]:
            np.testing.assert_array_equal(to_vector(node.params), reference)

    def test_local_step_counters(self, workload):
        fed, sources, _ = workload
        cfg = FedMLConfig(alpha=0.05, beta=0.05, t0=5, total_iterations=10, k=5)
        result = FedML(MODEL, cfg).fit(fed, sources)
        for node in result.nodes:
            assert node.local_steps == 10
            assert node.gradient_evaluations == 20

    def test_init_params_respected(self, workload):
        fed, sources, _ = workload
        init = MODEL.init(np.random.default_rng(42))
        cfg = FedMLConfig(alpha=0.05, beta=0.05, t0=5, total_iterations=5, k=5)
        r1 = FedML(MODEL, cfg).fit(fed, sources, init_params=init)
        r2 = FedML(MODEL, cfg).fit(fed, sources, init_params=init)
        np.testing.assert_array_equal(to_vector(r1.params), to_vector(r2.params))

    def test_first_order_variant_trains(self, workload):
        fed, sources, _ = workload
        cfg = FedMLConfig(
            alpha=0.05, beta=0.05, t0=5, total_iterations=30, k=5, first_order=True
        )
        result = FedML(MODEL, cfg).fit(fed, sources)
        assert result.global_meta_losses[-1] < result.global_meta_losses[0]

    def test_eval_every_controls_history_density(self, workload):
        fed, sources, _ = workload
        cfg = FedMLConfig(
            alpha=0.05, beta=0.05, t0=5, total_iterations=30, k=5, eval_every=3
        )
        result = FedML(MODEL, cfg).fit(fed, sources)
        # initial record + every 3rd of 6 aggregations = 1 + 2
        assert len(result.global_meta_losses) == 3

    def test_partial_participation_still_synchronizes(self, workload):
        from repro.federated import UniformSampler

        fed, sources, _ = workload
        cfg = FedMLConfig(alpha=0.05, beta=0.05, t0=5, total_iterations=10, k=5)
        runner = FedML(
            MODEL,
            cfg,
            participation=UniformSampler(0.5, np.random.default_rng(0)),
        )
        result = runner.fit(fed, sources)
        reference = to_vector(result.nodes[0].params)
        for node in result.nodes[1:]:
            np.testing.assert_array_equal(to_vector(node.params), reference)
