"""Tests for asynchronous staleness-aware FedML."""

import numpy as np
import pytest

from repro.core import AsyncFedML, AsyncFedMLConfig
from repro.data import SyntheticConfig, generate_synthetic
from repro.federated import DeviceProfile, LinkModel, sample_fleet
from repro.nn import LogisticRegression
from repro.nn.parameters import to_vector

MODEL = LogisticRegression(60, 10)
LINK = LinkModel()


@pytest.fixture(scope="module")
def workload():
    fed = generate_synthetic(
        SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=8, mean_samples=20, seed=1)
    )
    return fed, list(range(8))


def uniform_fleet(n, speed=0.05):
    return [DeviceProfile(i, speed, LINK) for i in range(n)]


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mixing": 0.0},
            {"mixing": 1.5},
            {"staleness_power": -1.0},
            {"alpha": 0.0},
            {"total_uploads": 0},
        ],
    )
    def test_invalid_raises(self, kwargs):
        with pytest.raises(ValueError):
            AsyncFedMLConfig(**kwargs)


class TestAsyncFedML:
    def _run(self, workload, fleet=None, **overrides):
        fed, sources = workload
        kwargs = dict(
            alpha=0.05, beta=0.05, t0=3, total_uploads=40, k=5,
            eval_every=10, seed=0,
        )
        kwargs.update(overrides)
        if fleet is None:
            fleet = uniform_fleet(len(sources))
        runner = AsyncFedML(MODEL, AsyncFedMLConfig(**kwargs))
        return runner.fit(fed, sources, fleet)

    def test_loss_decreases(self, workload):
        result = self._run(workload)
        losses = result.global_meta_losses
        assert losses[-1] < losses[0]

    def test_upload_count(self, workload):
        result = self._run(workload, total_uploads=25)
        assert len(result.upload_times) == 25

    def test_simulated_time_is_monotone(self, workload):
        result = self._run(workload)
        times = result.upload_times
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_uniform_fleet_has_low_staleness(self, workload):
        """Identical devices interleave round-robin: staleness is bounded
        by the fleet size."""
        fed, sources = workload
        result = self._run(workload, fleet=uniform_fleet(len(sources)))
        assert max(result.staleness) <= len(sources)

    def test_heterogeneous_fleet_creates_staleness(self, workload):
        fed, sources = workload
        # Moderate skew so slow devices still upload within the budget;
        # their contributions then arrive many global versions late.
        fast_slow = [
            DeviceProfile(i, 0.01 if i % 2 == 0 else 0.2, LINK)
            for i in range(len(sources))
        ]
        result = self._run(workload, fleet=fast_slow, total_uploads=120)
        assert max(result.staleness) > len(sources)

    def test_fast_devices_contribute_more(self, workload):
        fed, sources = workload
        fast_slow = [
            DeviceProfile(i, 0.01 if i == 0 else 1.0, LINK)
            for i in range(len(sources))
        ]
        result = self._run(workload, fleet=fast_slow, total_uploads=60)
        steps = {n.node_id: n.local_steps for n in result.nodes}
        slowest = [v for k, v in steps.items() if k != sources[0]]
        assert steps[sources[0]] > max(slowest)

    def test_fleet_size_mismatch_raises(self, workload):
        fed, sources = workload
        runner = AsyncFedML(MODEL, AsyncFedMLConfig())
        with pytest.raises(ValueError):
            runner.fit(fed, sources, uniform_fleet(3))

    def test_deterministic(self, workload):
        r1 = self._run(workload)
        r2 = self._run(workload)
        np.testing.assert_array_equal(to_vector(r1.params), to_vector(r2.params))

    def test_staleness_discount_tempers_stale_updates(self, workload):
        """With discounting off, very stale updates get full mixing weight;
        the discounted run must end at least as well on a skewed fleet."""
        fed, sources = workload
        fast_slow = [
            DeviceProfile(i, 0.01 if i % 2 == 0 else 2.0, LINK)
            for i in range(len(sources))
        ]
        discounted = self._run(
            workload, fleet=fast_slow, staleness_power=1.0, total_uploads=60
        )
        undamped = self._run(
            workload, fleet=fast_slow, staleness_power=0.0, total_uploads=60
        )
        assert (
            discounted.global_meta_losses[-1]
            <= undamped.global_meta_losses[-1] * 1.25
        )
