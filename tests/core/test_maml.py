"""Tests for the MAML primitives (inner step, meta loss, meta gradient)."""

import numpy as np
import pytest

from repro.core import MAML, inner_adapt, meta_gradient, meta_loss
from repro.data import Dataset
from repro.data.dataset import NodeSplit
from repro.nn import LogisticRegression, cross_entropy
from repro.nn.parameters import from_vector, to_vector

RNG = np.random.default_rng(5)


def make_task(n=24, d=6, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    w = rng.normal(size=(d, classes))
    y = np.argmax(x @ w, axis=1)
    data = Dataset(x=x, y=y)
    train, test = data.split(6)
    return NodeSplit(train=train, test=test)


MODEL = LogisticRegression(6, 3)


class TestInnerAdapt:
    def test_reduces_training_loss(self):
        split = make_task()
        params = MODEL.init(np.random.default_rng(0))
        before = cross_entropy(
            MODEL.apply(params, split.train.x), split.train.y
        ).item()
        phi = inner_adapt(MODEL, params, split.train, alpha=0.5)
        after = cross_entropy(MODEL.apply(phi, split.train.x), split.train.y).item()
        assert after < before

    def test_zero_steps_raises(self):
        split = make_task()
        params = MODEL.init(np.random.default_rng(0))
        with pytest.raises(ValueError):
            inner_adapt(MODEL, params, split.train, alpha=0.1, steps=0)

    def test_multiple_steps_reduce_more(self):
        split = make_task()
        params = MODEL.init(np.random.default_rng(0))
        one = inner_adapt(MODEL, params, split.train, alpha=0.1, steps=1)
        five = inner_adapt(MODEL, params, split.train, alpha=0.1, steps=5)
        loss_one = cross_entropy(MODEL.apply(one, split.train.x), split.train.y).item()
        loss_five = cross_entropy(MODEL.apply(five, split.train.x), split.train.y).item()
        assert loss_five < loss_one

    def test_works_on_detached_params(self):
        """Regression test: plain (non-grad) leaves must still be adapted."""
        split = make_task()
        params = MODEL.init(np.random.default_rng(0))  # requires_grad=False
        phi = inner_adapt(MODEL, params, split.train, alpha=0.5)
        assert any(
            not np.allclose(phi[name].data, params[name].data) for name in params
        )

    def test_matches_manual_gradient_step(self):
        split = make_task()
        params = MODEL.init(np.random.default_rng(0))
        alpha = 0.3
        phi = inner_adapt(MODEL, params, split.train, alpha=alpha)
        # Manual: gradient of CE for softmax regression.
        from repro.nn import one_hot
        from scipy.special import softmax

        logits = split.train.x @ params["W"].data + params["b"].data
        probs = softmax(logits, axis=1)
        residual = (probs - one_hot(split.train.y, 3)) / len(split.train)
        grad_w = split.train.x.T @ residual
        grad_b = residual.sum(axis=0)
        np.testing.assert_allclose(phi["W"].data, params["W"].data - alpha * grad_w)
        np.testing.assert_allclose(phi["b"].data, params["b"].data - alpha * grad_b)


class TestMetaGradient:
    def test_matches_finite_difference_of_meta_loss(self):
        """The decisive correctness test: exact meta-gradient == d(meta_loss)/dθ."""
        split = make_task()
        params = MODEL.init(np.random.default_rng(1))
        alpha = 0.2
        gradient, _ = meta_gradient(MODEL, params, split, alpha)

        vec = to_vector(params)
        g_vec = to_vector(gradient)
        eps = 1e-6
        rng = np.random.default_rng(0)
        for _ in range(5):
            direction = rng.normal(size=vec.size)
            direction /= np.linalg.norm(direction)
            plus = meta_loss(
                MODEL, from_vector(vec + eps * direction, params), split, alpha
            )
            minus = meta_loss(
                MODEL, from_vector(vec - eps * direction, params), split, alpha
            )
            numeric = (plus - minus) / (2 * eps)
            analytic = float(g_vec @ direction)
            assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_first_order_differs_from_exact(self):
        split = make_task()
        params = MODEL.init(np.random.default_rng(1))
        exact, _ = meta_gradient(MODEL, params, split, alpha=0.5)
        fomaml, _ = meta_gradient(MODEL, params, split, alpha=0.5, first_order=True)
        assert not np.allclose(to_vector(exact), to_vector(fomaml))

    def test_first_order_equals_exact_at_alpha_zero_limit(self):
        split = make_task()
        params = MODEL.init(np.random.default_rng(1))
        exact, _ = meta_gradient(MODEL, params, split, alpha=1e-8)
        fomaml, _ = meta_gradient(MODEL, params, split, alpha=1e-8, first_order=True)
        np.testing.assert_allclose(
            to_vector(exact), to_vector(fomaml), rtol=1e-4, atol=1e-8
        )

    def test_returns_meta_loss_value(self):
        split = make_task()
        params = MODEL.init(np.random.default_rng(1))
        _, value = meta_gradient(MODEL, params, split, alpha=0.2)
        assert value == pytest.approx(meta_loss(MODEL, params, split, 0.2))

    def test_extra_test_sets_add_loss_terms(self):
        split = make_task()
        params = MODEL.init(np.random.default_rng(1))
        _, base = meta_gradient(MODEL, params, split, alpha=0.2)
        _, augmented = meta_gradient(
            MODEL, params, split, alpha=0.2, extra_test_sets=[split.test]
        )
        assert augmented == pytest.approx(2 * base)

    def test_empty_extra_test_set_is_ignored(self):
        split = make_task()
        params = MODEL.init(np.random.default_rng(1))
        empty = Dataset(x=np.zeros((0, 6)), y=np.zeros(0, dtype=int))
        _, value = meta_gradient(
            MODEL, params, split, alpha=0.2, extra_test_sets=[empty]
        )
        assert value == pytest.approx(meta_loss(MODEL, params, split, 0.2))


class TestMAMLTrainer:
    def test_training_reduces_average_meta_loss(self):
        tasks = [make_task(seed=s) for s in range(8)]
        trainer = MAML(MODEL, alpha=0.3, beta=0.3)
        result = trainer.fit(
            tasks, iterations=40, rng=np.random.default_rng(0), task_batch_size=4
        )
        start = np.mean(result.history[:5])
        end = np.mean(result.history[-5:])
        assert end < start

    def test_meta_trained_model_adapts_better_than_init(self):
        tasks = [make_task(seed=s) for s in range(8)]
        held_out = make_task(seed=99)
        trainer = MAML(MODEL, alpha=0.3, beta=0.3)
        rng = np.random.default_rng(0)
        init = MODEL.init(rng)
        result = trainer.fit(
            tasks, iterations=60, rng=rng, task_batch_size=4, init_params=init
        )
        before = meta_loss(MODEL, init, held_out, alpha=0.3)
        after = meta_loss(MODEL, result.params, held_out, alpha=0.3)
        assert after < before
