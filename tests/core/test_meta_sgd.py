"""Tests for federated Meta-SGD (learnable inner rates)."""

import numpy as np
import pytest

from repro.core import FederatedMetaSGD, FedML, FedMLConfig, MetaSGDConfig
from repro.data import SyntheticConfig, generate_synthetic
from repro.nn import LogisticRegression
from repro.nn.parameters import to_vector

MODEL = LogisticRegression(60, 10)


@pytest.fixture(scope="module")
def workload():
    fed = generate_synthetic(
        SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=10, mean_samples=20, seed=1)
    )
    return fed, list(range(8))


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"alpha_init": 0.0}, {"beta": -1.0}, {"t0": 0}, {"k": 0}]
    )
    def test_invalid_raises(self, kwargs):
        with pytest.raises(ValueError):
            MetaSGDConfig(**kwargs)


class TestFederatedMetaSGD:
    def _run(self, workload, **overrides):
        fed, sources = workload
        kwargs = dict(
            alpha_init=0.05, beta=0.05, t0=5, total_iterations=40, k=5,
            eval_every=2, seed=0,
        )
        kwargs.update(overrides)
        return FederatedMetaSGD(MODEL, MetaSGDConfig(**kwargs)).fit(fed, sources)

    def test_meta_loss_decreases(self, workload):
        result = self._run(workload)
        losses = result.global_meta_losses
        assert losses[-1] < losses[0]

    def test_rates_start_at_alpha_init_and_move(self, workload):
        result = self._run(workload)
        rates = result.learned_rates()
        for tensor in rates.values():
            assert tensor.data.min() > 0  # always positive (log space)
            # rates have been adapted away from the exact initial value
        moved = any(
            not np.allclose(t.data, 0.05, atol=1e-6) for t in rates.values()
        )
        assert moved

    def test_rates_shapes_match_params(self, workload):
        result = self._run(workload, total_iterations=5)
        for name, tensor in result.params.items():
            assert result.log_alpha[name].shape == tensor.shape

    def test_deterministic(self, workload):
        r1 = self._run(workload, total_iterations=10)
        r2 = self._run(workload, total_iterations=10)
        np.testing.assert_array_equal(to_vector(r1.params), to_vector(r2.params))
        np.testing.assert_array_equal(
            to_vector(r1.log_alpha), to_vector(r2.log_alpha)
        )

    def test_adapt_uses_learned_rates(self, workload):
        fed, sources = workload
        result = self._run(workload, total_iterations=10)
        runner = FederatedMetaSGD(MODEL, MetaSGDConfig())
        split = fed.node_split(sources[0], 5)
        phi = runner.adapt(result.params, result.log_alpha, split)
        assert not np.array_equal(to_vector(phi), to_vector(result.params))

    def test_competitive_with_fixed_rate_fedml(self, workload):
        """At an equal budget, learned rates should not be worse than the
        fixed rate they were initialized at (they can only improve the
        objective they descend)."""
        fed, sources = workload
        meta_sgd = self._run(workload, total_iterations=60)
        fedml = FedML(
            MODEL,
            FedMLConfig(
                alpha=0.05, beta=0.05, t0=5, total_iterations=60, k=5,
                eval_every=10**9, seed=0,
            ),
        ).fit(fed, sources)
        fedml_loss = FedML(
            MODEL,
            FedMLConfig(alpha=0.05, beta=0.05, t0=5, total_iterations=1, k=5),
        ).global_meta_loss(fedml.params, fedml.nodes)
        assert meta_sgd.global_meta_losses[-1] < fedml_loss * 1.2
