"""Tests for FedAvg and the target-adaptation protocol."""

import numpy as np
import pytest

from repro.core import (
    FedAvg,
    FedAvgConfig,
    FedML,
    FedMLConfig,
    adapt,
    evaluate_adaptation,
)
from repro.data import SyntheticConfig, generate_synthetic
from repro.metrics import target_splits
from repro.nn import LogisticRegression, cross_entropy
from repro.nn.parameters import to_vector


@pytest.fixture(scope="module")
def workload():
    # 5 classes / 25 nodes keeps the task distribution well covered by the
    # 20 source nodes, so transfer effects are visible with short training.
    fed = generate_synthetic(
        SyntheticConfig(
            alpha=0.5, beta=0.5, num_nodes=25, mean_samples=25,
            input_dim=20, num_classes=5, seed=2,
        )
    )
    sources, targets = fed.split_sources_targets(0.8, np.random.default_rng(0))
    return fed, sources, targets


MODEL = LogisticRegression(20, 5)


class TestFedAvg:
    def test_global_loss_decreases(self, workload):
        fed, sources, _ = workload
        cfg = FedAvgConfig(learning_rate=0.05, t0=5, total_iterations=50, seed=0)
        result = FedAvg(MODEL, cfg).fit(fed, sources)
        assert result.global_losses[-1] < result.global_losses[0]

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FedAvgConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            FedAvgConfig(t0=0)

    def test_deterministic(self, workload):
        fed, sources, _ = workload
        cfg = FedAvgConfig(learning_rate=0.05, t0=5, total_iterations=10, seed=1)
        r1 = FedAvg(MODEL, cfg).fit(fed, sources)
        r2 = FedAvg(MODEL, cfg).fit(fed, sources)
        np.testing.assert_array_equal(to_vector(r1.params), to_vector(r2.params))

    def test_single_gradient_eval_per_step(self, workload):
        fed, sources, _ = workload
        cfg = FedAvgConfig(learning_rate=0.05, t0=5, total_iterations=10)
        result = FedAvg(MODEL, cfg).fit(fed, sources)
        assert all(n.gradient_evaluations == 10 for n in result.nodes)


class TestAdapt:
    def test_adapt_changes_parameters(self, workload):
        fed, _, targets = workload
        params = MODEL.init(np.random.default_rng(0))
        split = target_splits(fed, targets, k=5)[0]
        adapted = adapt(MODEL, params, split.train, alpha=0.1)
        assert not np.array_equal(to_vector(adapted), to_vector(params))

    def test_adapt_reduces_local_training_loss(self, workload):
        fed, _, targets = workload
        params = MODEL.init(np.random.default_rng(0))
        split = target_splits(fed, targets, k=5)[0]
        before = cross_entropy(
            MODEL.apply(params, split.train.x), split.train.y
        ).item()
        adapted = adapt(MODEL, params, split.train, alpha=0.1, steps=5)
        after = cross_entropy(
            MODEL.apply(adapted, split.train.x), split.train.y
        ).item()
        assert after < before

    def test_adapt_returns_detached_leaves(self, workload):
        fed, _, targets = workload
        params = MODEL.init(np.random.default_rng(0))
        split = target_splits(fed, targets, k=5)[0]
        adapted = adapt(MODEL, params, split.train, alpha=0.1)
        for t in adapted.values():
            assert t.is_leaf()
            assert not t.requires_grad


class TestEvaluateAdaptation:
    def test_curve_lengths(self, workload):
        fed, _, targets = workload
        params = MODEL.init(np.random.default_rng(0))
        splits = target_splits(fed, targets, k=5)
        curve = evaluate_adaptation(MODEL, params, splits, alpha=0.05, max_steps=4)
        assert len(curve.losses) == 5
        assert len(curve.accuracies) == 5

    def test_empty_targets_raise(self):
        params = MODEL.init(np.random.default_rng(0))
        with pytest.raises(ValueError):
            evaluate_adaptation(MODEL, params, [], alpha=0.05)

    def test_adaptation_improves_loss_from_trained_init(self, workload):
        fed, sources, targets = workload
        cfg = FedMLConfig(alpha=0.05, beta=0.05, t0=5, total_iterations=150, k=5)
        result = FedML(MODEL, cfg).fit(fed, sources)
        splits = target_splits(fed, targets, k=5)
        curve = evaluate_adaptation(
            MODEL, result.params, splits, alpha=0.05, max_steps=8
        )
        assert curve.losses[-1] < curve.losses[0]
        assert curve.final_accuracy() > curve.accuracies[0]

    def test_curve_helpers(self, workload):
        fed, _, targets = workload
        params = MODEL.init(np.random.default_rng(0))
        splits = target_splits(fed, targets, k=5)
        curve = evaluate_adaptation(MODEL, params, splits, alpha=0.05, max_steps=3)
        assert curve.final_loss() == curve.losses[-1]
        assert curve.best_accuracy() == max(curve.accuracies)

    def test_fedml_init_beats_random_init_at_few_steps(self, workload):
        """The paper's core claim: the learned initialization adapts faster."""
        fed, sources, targets = workload
        cfg = FedMLConfig(alpha=0.05, beta=0.05, t0=5, total_iterations=150, k=5)
        result = FedML(MODEL, cfg).fit(fed, sources)
        splits = target_splits(fed, targets, k=5)
        trained = evaluate_adaptation(
            MODEL, result.params, splits, alpha=0.05, max_steps=3
        )
        random_init = evaluate_adaptation(
            MODEL,
            MODEL.init(np.random.default_rng(123)),
            splits,
            alpha=0.05,
            max_steps=3,
        )
        # Compare after 1-2 fast-adaptation steps (the real-time regime);
        # with enough steps any initialization catches up on this convex task.
        for step in (1, 2):
            assert trained.losses[step] < random_init.losses[step]
