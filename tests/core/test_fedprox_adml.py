"""Tests for the FedProx and federated-ADML baselines."""

import numpy as np
import pytest

from repro.core import (
    ADMLConfig,
    FederatedADML,
    FedProx,
    FedProxConfig,
)
from repro.data import MnistLikeConfig, SyntheticConfig, generate_mnist_like, generate_synthetic
from repro.nn import LogisticRegression
from repro.nn.parameters import to_vector


@pytest.fixture(scope="module")
def synthetic_workload():
    fed = generate_synthetic(
        SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=10, mean_samples=20, seed=1)
    )
    sources, targets = fed.split_sources_targets(0.8, np.random.default_rng(0))
    return fed, sources, targets


MODEL = LogisticRegression(60, 10)


class TestFedProxConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [{"learning_rate": 0.0}, {"mu_prox": -0.1}, {"t0": 0}],
    )
    def test_invalid_raises(self, kwargs):
        with pytest.raises(ValueError):
            FedProxConfig(**kwargs)


class TestFedProx:
    def test_global_loss_decreases(self, synthetic_workload):
        fed, sources, _ = synthetic_workload
        cfg = FedProxConfig(
            learning_rate=0.05, mu_prox=0.1, t0=5, total_iterations=50, seed=0
        )
        result = FedProx(MODEL, cfg).fit(fed, sources)
        assert result.global_losses[-1] < result.global_losses[0]

    def test_zero_mu_matches_fedavg_updates(self, synthetic_workload):
        """With μ=0 the proximal term vanishes — FedProx == FedAvg."""
        from repro.core import FedAvg, FedAvgConfig

        fed, sources, _ = synthetic_workload
        init = MODEL.init(np.random.default_rng(5))
        prox = FedProx(
            MODEL,
            FedProxConfig(learning_rate=0.05, mu_prox=0.0, t0=5, total_iterations=10),
        ).fit(fed, sources, init_params=init)
        avg = FedAvg(
            MODEL,
            FedAvgConfig(learning_rate=0.05, t0=5, total_iterations=10),
        ).fit(fed, sources, init_params=init)
        np.testing.assert_allclose(
            to_vector(prox.params), to_vector(avg.params), rtol=1e-10
        )

    def test_proximal_term_limits_client_drift(self, synthetic_workload):
        """Stronger μ keeps pre-aggregation node parameters closer together."""
        fed, sources, _ = synthetic_workload
        init = MODEL.init(np.random.default_rng(5))

        def drift(mu_prox):
            result = FedProx(
                MODEL,
                FedProxConfig(
                    learning_rate=0.05, mu_prox=mu_prox, t0=20,
                    total_iterations=19,  # stop right before an aggregation
                ),
            ).fit(fed, sources, init_params=init)
            vectors = [to_vector(n.params) for n in result.nodes]
            center = np.mean(vectors, axis=0)
            return float(np.mean([np.linalg.norm(v - center) for v in vectors]))

        assert drift(mu_prox=1.0) < drift(mu_prox=0.0)

    def test_deterministic(self, synthetic_workload):
        fed, sources, _ = synthetic_workload
        cfg = FedProxConfig(learning_rate=0.05, t0=5, total_iterations=10, seed=2)
        r1 = FedProx(MODEL, cfg).fit(fed, sources)
        r2 = FedProx(MODEL, cfg).fit(fed, sources)
        np.testing.assert_array_equal(to_vector(r1.params), to_vector(r2.params))


@pytest.fixture(scope="module")
def mnist_workload():
    fed = generate_mnist_like(MnistLikeConfig(num_nodes=8, mean_samples=20, seed=4))
    sources, targets = fed.split_sources_targets(0.75, np.random.default_rng(0))
    return fed, sources, targets


MNIST_MODEL = LogisticRegression(64, 10)


class TestADMLConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"epsilon": -0.1}, {"alpha": 0.0}, {"k": 0}]
    )
    def test_invalid_raises(self, kwargs):
        with pytest.raises(ValueError):
            ADMLConfig(**kwargs)


class TestFederatedADML:
    def test_trains_and_loss_decreases(self, mnist_workload):
        fed, sources, _ = mnist_workload
        cfg = ADMLConfig(
            alpha=0.05, beta=0.05, t0=2, total_iterations=20, k=5,
            epsilon=0.1, seed=0,
        )
        result = FederatedADML(MNIST_MODEL, cfg).fit(fed, sources)
        losses = result.global_meta_losses
        assert losses[-1] < losses[0]

    def test_zero_epsilon_close_to_plain_fedml_but_double_counted(self, mnist_workload):
        """ε=0: the 'adversarial' sets equal the clean ones, so the outer
        loss is simply doubled — the run must still be stable and converge."""
        fed, sources, _ = mnist_workload
        cfg = ADMLConfig(
            alpha=0.05, beta=0.05, t0=2, total_iterations=20, k=5,
            epsilon=0.0, seed=0,
        )
        result = FederatedADML(MNIST_MODEL, cfg).fit(fed, sources)
        assert result.global_meta_losses[-1] < result.global_meta_losses[0]

    def test_gradient_eval_accounting(self, mnist_workload):
        fed, sources, _ = mnist_workload
        cfg = ADMLConfig(
            alpha=0.05, beta=0.05, t0=2, total_iterations=4, k=5, epsilon=0.1
        )
        result = FederatedADML(MNIST_MODEL, cfg).fit(fed, sources)
        # 4 gradient evaluations per local step (2 attacks + inner + outer).
        assert all(n.gradient_evaluations == 16 for n in result.nodes)

    def test_improves_adversarial_robustness_over_no_training(self, mnist_workload):
        from repro.attacks import fgsm
        from repro.metrics import evaluate_robustness, target_splits

        fed, sources, targets = mnist_workload
        cfg = ADMLConfig(
            alpha=0.05, beta=0.05, t0=2, total_iterations=30, k=5,
            epsilon=0.1, seed=0,
        )
        result = FederatedADML(MNIST_MODEL, cfg).fit(fed, sources)
        splits = target_splits(fed, targets, k=5)
        report = evaluate_robustness(
            MNIST_MODEL, result.params, splits, alpha=0.05, adapt_steps=5,
            attack=lambda m, p, x, y: fgsm(m, p, x, y, xi=0.1, clip_range=(0, 1)),
        )
        untrained = evaluate_robustness(
            MNIST_MODEL, MNIST_MODEL.init(np.random.default_rng(3)), splits,
            alpha=0.05, adapt_steps=5,
            attack=lambda m, p, x, y: fgsm(m, p, x, y, xi=0.1, clip_range=(0, 1)),
        )
        assert report.adversarial_accuracy > untrained.adversarial_accuracy
