"""Tests for edge nodes, aggregation, and the platform."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.data import Dataset
from repro.federated import (
    DropoutInjector,
    EdgeNode,
    FullParticipation,
    Platform,
    UniformSampler,
    build_nodes,
    coordinate_median,
    trimmed_mean,
    weighted_mean,
)
from repro.nn.parameters import l2_distance

RNG = np.random.default_rng(0)


def make_datasets(sizes=(10, 20, 30)):
    return [
        Dataset(x=RNG.normal(size=(n, 4)), y=RNG.integers(0, 3, size=n))
        for n in sizes
    ]


def make_tree(value):
    return {"w": Tensor(np.full(3, float(value)))}


class TestBuildNodes:
    def test_weights_proportional_to_data(self):
        nodes = build_nodes(make_datasets((10, 30)), k=3)
        assert nodes[0].weight == pytest.approx(0.25)
        assert nodes[1].weight == pytest.approx(0.75)

    def test_weights_sum_to_one(self):
        nodes = build_nodes(make_datasets(), k=3)
        assert sum(n.weight for n in nodes) == pytest.approx(1.0)

    def test_k_shot_split(self):
        nodes = build_nodes(make_datasets((10,)), k=4)
        assert len(nodes[0].split.train) == 4
        assert len(nodes[0].split.test) == 6

    def test_custom_ids(self):
        nodes = build_nodes(make_datasets((10, 20)), k=3, node_ids=[7, 9])
        assert [n.node_id for n in nodes] == [7, 9]

    def test_id_mismatch_raises(self):
        with pytest.raises(ValueError):
            build_nodes(make_datasets((10,)), k=3, node_ids=[1, 2])

    def test_combined_test_set_without_adversarial(self):
        node = build_nodes(make_datasets((10,)), k=3)[0]
        assert len(node.combined_test_set()) == 7

    def test_combined_test_set_with_adversarial(self):
        node = build_nodes(make_datasets((10,)), k=3)[0]
        node.adversarial = Dataset(
            x=RNG.normal(size=(5, 4)), y=RNG.integers(0, 3, size=5)
        )
        assert len(node.combined_test_set()) == 12

    def test_record_local_step(self):
        node = build_nodes(make_datasets((10,)), k=3)[0]
        node.record_local_step()
        node.record_local_step(gradient_evals=3)
        assert node.local_steps == 2
        assert node.gradient_evaluations == 5


class TestAggregationRules:
    def test_weighted_mean_exact(self):
        out = weighted_mean([make_tree(0.0), make_tree(10.0)], [0.3, 0.7])
        np.testing.assert_allclose(out["w"].data, np.full(3, 7.0))

    def test_median_ignores_outlier(self):
        trees = [make_tree(1.0), make_tree(2.0), make_tree(1000.0)]
        out = coordinate_median(trees)
        np.testing.assert_allclose(out["w"].data, np.full(3, 2.0))

    def test_trimmed_mean_removes_tails(self):
        trees = [make_tree(v) for v in (1.0, 2.0, 3.0, 4.0, 1000.0)]
        out = trimmed_mean(trees, trim_fraction=0.2)
        np.testing.assert_allclose(out["w"].data, np.full(3, 3.0))

    def test_trimmed_mean_zero_trim_is_mean(self):
        trees = [make_tree(v) for v in (1.0, 3.0)]
        out = trimmed_mean(trees, trim_fraction=0.0)
        np.testing.assert_allclose(out["w"].data, np.full(3, 2.0))

    def test_trimmed_mean_invalid_fraction(self):
        with pytest.raises(ValueError):
            trimmed_mean([make_tree(1.0)], trim_fraction=0.5)

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            coordinate_median([])


class TestPlatform:
    def _nodes(self):
        return build_nodes(make_datasets((10, 30)), k=3)

    def test_initialize_broadcasts(self):
        platform = Platform()
        nodes = self._nodes()
        platform.initialize(make_tree(5.0), nodes)
        for node in nodes:
            np.testing.assert_allclose(node.params["w"].data, np.full(3, 5.0))

    def test_aggregate_matches_manual_average(self):
        platform = Platform()
        nodes = self._nodes()
        platform.initialize(make_tree(0.0), nodes)
        nodes[0].params = make_tree(4.0)
        nodes[1].params = make_tree(8.0)
        out = platform.aggregate(nodes)
        expected = 0.25 * 4.0 + 0.75 * 8.0
        np.testing.assert_allclose(out["w"].data, np.full(3, expected))

    def test_aggregate_renormalizes_partial_participation(self):
        platform = Platform()
        nodes = self._nodes()
        platform.initialize(make_tree(0.0), nodes)
        nodes[1].params = make_tree(8.0)
        out = platform.aggregate([nodes[1]])
        np.testing.assert_allclose(out["w"].data, np.full(3, 8.0))

    def test_aggregate_charges_communication(self):
        platform = Platform()
        nodes = self._nodes()
        platform.initialize(make_tree(0.0), nodes)
        platform.aggregate(nodes)
        # init broadcast: 2 downloads; aggregate: 2 uploads + 2 downloads
        assert platform.comm_log.uplink_bytes > 0
        assert platform.comm_log.downlink_bytes > platform.comm_log.uplink_bytes / 2
        assert platform.rounds_completed == 1

    def test_aggregate_without_params_raises(self):
        platform = Platform()
        nodes = self._nodes()
        platform.global_params = make_tree(0.0)
        nodes[0].params = None
        with pytest.raises(RuntimeError):
            platform.aggregate(nodes)

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            Platform().aggregate([])

    def test_aggregate_zero_weight_sum_raises(self):
        """Regression: a participating subset whose weights sum to zero
        used to renormalize to NaN and silently poison global_params."""
        platform = Platform()
        nodes = self._nodes()
        platform.initialize(make_tree(1.0), nodes)
        for node in nodes:
            node.weight = 0.0
        with pytest.raises(ValueError, match="positive finite total"):
            platform.aggregate(nodes)
        # The failed round must not have replaced the global model.
        np.testing.assert_allclose(
            platform.global_params["w"].data, np.full(3, 1.0)
        )

    def test_aggregate_non_finite_weight_sum_raises(self):
        platform = Platform()
        nodes = self._nodes()
        platform.initialize(make_tree(1.0), nodes)
        nodes[0].weight = float("nan")
        with pytest.raises(ValueError, match="positive finite total"):
            platform.aggregate(nodes)

    def test_transfer_to_target_roundtrips(self):
        platform = Platform()
        nodes = self._nodes()
        platform.initialize(make_tree(3.0), nodes)
        transferred = platform.transfer_to_target()
        assert l2_distance(transferred, platform.global_params) == 0.0

    def test_transfer_without_model_raises(self):
        with pytest.raises(RuntimeError):
            Platform().transfer_to_target()

    def test_custom_aggregator(self):
        platform = Platform(aggregator=lambda trees, weights: coordinate_median(trees))
        nodes = build_nodes(make_datasets((10, 10, 10)), k=3)
        platform.initialize(make_tree(0.0), nodes)
        nodes[0].params = make_tree(1.0)
        nodes[1].params = make_tree(2.0)
        nodes[2].params = make_tree(50.0)
        out = platform.aggregate(nodes)
        np.testing.assert_allclose(out["w"].data, np.full(3, 2.0))


class TestSampling:
    def _nodes(self):
        return build_nodes(make_datasets((10, 10, 10, 10)), k=3)

    def test_full_participation(self):
        nodes = self._nodes()
        assert FullParticipation().select(nodes, 1) == nodes

    def test_uniform_sampler_size(self):
        nodes = self._nodes()
        sampler = UniformSampler(0.5, np.random.default_rng(0))
        assert len(sampler.select(nodes, 1)) == 2

    def test_uniform_sampler_subset(self):
        nodes = self._nodes()
        sampler = UniformSampler(0.5, np.random.default_rng(0))
        chosen = sampler.select(nodes, 1)
        assert all(n in nodes for n in chosen)

    def test_uniform_invalid_fraction(self):
        with pytest.raises(ValueError):
            UniformSampler(0.0, np.random.default_rng(0))

    def test_dropout_keeps_at_least_one(self):
        nodes = self._nodes()
        injector = DropoutInjector(
            FullParticipation(), rate=0.99, rng=np.random.default_rng(0)
        )
        for round_index in range(10):
            assert len(injector.select(nodes, round_index)) >= 1

    def test_dropout_zero_rate_is_identity(self):
        nodes = self._nodes()
        injector = DropoutInjector(
            FullParticipation(), rate=0.0, rng=np.random.default_rng(0)
        )
        assert injector.select(nodes, 1) == nodes

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            DropoutInjector(FullParticipation(), rate=1.0, rng=np.random.default_rng(0))
