"""Tests for the link model and communication log."""

import pytest

from repro.federated import CommunicationLog, LinkModel


class TestLinkModel:
    def test_upload_time(self):
        link = LinkModel(uplink_bytes_per_s=1000, downlink_bytes_per_s=2000, latency_s=0.1)
        assert link.upload_time(500) == pytest.approx(0.1 + 0.5)

    def test_download_faster_than_upload(self):
        link = LinkModel()
        assert link.download_time(10_000) < link.upload_time(10_000)

    def test_zero_bytes_costs_latency_only(self):
        link = LinkModel(latency_s=0.2)
        assert link.upload_time(0) == pytest.approx(0.2)

    def test_invalid_bandwidth_raises(self):
        with pytest.raises(ValueError):
            LinkModel(uplink_bytes_per_s=0)

    def test_negative_latency_raises(self):
        with pytest.raises(ValueError):
            LinkModel(latency_s=-0.1)


class TestCommunicationLog:
    def test_accumulates_bytes_by_direction(self):
        log = CommunicationLog()
        log.charge_upload(1, 0, 100)
        log.charge_upload(1, 1, 200)
        log.charge_download(1, 0, 50)
        assert log.uplink_bytes == 300
        assert log.downlink_bytes == 50
        assert log.total_bytes == 350

    def test_round_time_takes_slowest_node(self):
        link = LinkModel(uplink_bytes_per_s=1000, downlink_bytes_per_s=1000, latency_s=0.0)
        log = CommunicationLog(link=link)
        log.charge_upload(1, 0, 1000)  # 1 s
        log.charge_upload(1, 1, 3000)  # 3 s
        log.charge_download(1, 0, 2000)  # 2 s
        assert log.round_time(1) == pytest.approx(5.0)  # 3 up + 2 down

    def test_total_time_sums_rounds(self):
        link = LinkModel(uplink_bytes_per_s=1000, downlink_bytes_per_s=1000, latency_s=0.0)
        log = CommunicationLog(link=link)
        log.charge_upload(1, 0, 1000)
        log.charge_upload(2, 0, 2000)
        assert log.total_time == pytest.approx(3.0)

    def test_charge_returns_seconds(self):
        log = CommunicationLog(link=LinkModel(uplink_bytes_per_s=100, latency_s=0.0))
        assert log.charge_upload(1, 0, 200) == pytest.approx(2.0)

    def test_empty_round_time_is_zero(self):
        assert CommunicationLog().round_time(5) == 0.0
