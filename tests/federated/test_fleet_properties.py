"""Hypothesis property suite for the fleet simulator (ISSUE 9 satellite).

Three claims the event-driven design stands on:

1. The event schedule is a *total* order — heap keys ``(time, rank,
   node_id)`` are unique per wave — so pop order (and therefore the final
   θ) is independent of the order events were pushed.
2. Lazy residency is invisible: materialize → evict → rematerialize
   yields bit-identical node state to never evicting.
3. Buffered aggregation at staleness 0 *is* synchronous FedAvg: when the
   buffer only ever holds fresh entries, the flush passes each update
   through untouched and the reduction is the same weighted mean, bit for
   bit, on the same sample sequence.
"""

import heapq

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fedavg import FedAvgConfig
from repro.engine.strategies import SgdStrategy
from repro.federated.fleet import (
    FleetConfig,
    FleetRegistry,
    FleetSimulator,
    SyntheticShardFactory,
)
from repro.nn import LogisticRegression
from repro.obs.sink import MemorySink
from repro.obs.telemetry import Telemetry


def fleet_run(seed, fleet=200, sampled=8, rounds=3, local_steps=2,
              buffer_size=None, staleness_alpha=0.5, capture_events=False):
    shards = SyntheticShardFactory(seed=seed)
    model = LogisticRegression(shards.input_dim, shards.num_classes)
    strategy = SgdStrategy(
        model,
        FedAvgConfig(
            learning_rate=0.05, t0=local_steps,
            total_iterations=rounds * local_steps, eval_every=1, seed=seed,
        ),
    )
    config = FleetConfig(
        fleet_size=fleet, sampled_per_round=sampled, rounds=rounds,
        local_steps=local_steps, seed=seed, buffer_size=buffer_size,
        staleness_alpha=staleness_alpha,
    )
    sink = MemorySink() if capture_events else None
    telemetry = Telemetry(sink=sink) if capture_events else None
    sim = FleetSimulator(strategy, config, shards=shards,
                         telemetry=telemetry)
    result = sim.run()
    events = (
        [r for r in sink.records if r.get("type") == "event"]
        if capture_events
        else None
    )
    return result, events


def trees_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(a[name].data, b[name].data) for name in a
    )


@given(
    st.lists(
        st.tuples(
            st.sampled_from([0.0, 1.0, 1.5, 2.0]),  # times with forced ties
            st.sampled_from([0, 1]),  # event-kind rank
        ),
        min_size=2,
        max_size=24,
    ),
    st.randoms(use_true_random=False),
)
@settings(max_examples=60, deadline=None)
def test_heap_pop_order_independent_of_insertion_order(specs, shuffler):
    """(time, rank, node_id) keys are unique ⇒ one canonical pop order."""
    # One event per node per wave, exactly as the simulator pushes them.
    keys = [
        (when, rank, node_id) for node_id, (when, rank) in enumerate(specs)
    ]
    shuffled = list(keys)
    shuffler.shuffle(shuffled)

    def drain(items):
        heap = []
        for item in items:
            heapq.heappush(heap, item)
        return [heapq.heappop(heap) for _ in range(len(heap))]

    assert drain(shuffled) == drain(keys) == sorted(keys)


@given(st.integers(0, 2**16), st.booleans())
@settings(max_examples=8, deadline=None)
def test_same_seed_same_schedule_and_theta(seed, buffered):
    """Double run: identical event stream and bit-identical final θ."""
    buffer_size = 3 if buffered else None
    first, first_events = fleet_run(
        seed, buffer_size=buffer_size, capture_events=True
    )
    second, second_events = fleet_run(
        seed, buffer_size=buffer_size, capture_events=True
    )
    assert first_events == second_events
    assert trees_equal(first.params, second.params)
    assert first.history.records == second.history.records


@given(st.integers(0, 2**16), st.integers(0, 499))
@settings(max_examples=25, deadline=None)
def test_evict_rematerialize_bit_identical_to_resident(seed, node_id):
    shards = SyntheticShardFactory(seed=seed)
    resident = FleetRegistry(500, shards)
    keeper = resident.materialize(node_id)

    churned = FleetRegistry(500, shards)
    churned.materialize(node_id)
    churned.evict(node_id)
    rebuilt = churned.materialize(node_id)

    assert np.array_equal(rebuilt.split.train.x, keeper.split.train.x)
    assert np.array_equal(rebuilt.split.train.y, keeper.split.train.y)
    assert np.array_equal(rebuilt.split.test.x, keeper.split.test.x)
    assert np.array_equal(rebuilt.split.test.y, keeper.split.test.y)
    assert rebuilt.weight == keeper.weight


@given(st.integers(0, 2**16), st.integers(2, 10))
@settings(max_examples=8, deadline=None)
def test_staleness_zero_buffered_reduces_to_synchronous(seed, sampled):
    """buffer == sampled ⇒ every entry fresh ⇒ bitwise FedAvg.

    With the buffer as large as the wave, every flush happens with
    ``base_version == current_version`` for all entries: the discount
    path is never taken (regardless of α) and the flush is the same
    ``weighted_average`` call the synchronous mode makes.
    """
    sync, _ = fleet_run(seed, sampled=sampled, buffer_size=None)
    fresh, _ = fleet_run(
        seed, sampled=sampled, buffer_size=sampled, staleness_alpha=0.5
    )
    extreme, _ = fleet_run(
        seed, sampled=sampled, buffer_size=sampled, staleness_alpha=3.0
    )
    assert trees_equal(sync.params, fresh.params)
    assert trees_equal(sync.params, extreme.params)
    assert sync.history.records == fresh.history.records


# ----------------------------------------------------------------------
# 4. Version-store refcount invariant (ISSUE 10 satellite)
# ----------------------------------------------------------------------
# The checkpoint writer once recomputed refcounts from the buffer alone,
# dropping the retains held by pending events — resume then orphaned
# those versions.  The property: *any* interleaving of retain / release /
# checkpoint+resume leaves the store with exactly one refcount per tree
# (len(_refs) == len(_trees)), every count positive, and a resume that
# reproduces the counts bit for bit.


def _version_tree(version):
    from repro.autodiff import Tensor

    return {"w": Tensor(np.full(4, float(version)))}


def _roundtrip(store):
    """Serialize the store the way _save does and rebuild as _restore does."""
    from repro.federated.fleet import _VersionStore

    refs = store.refcounts()
    trees = store.snapshot()
    rebuilt = _VersionStore()
    for version, count in sorted(refs.items()):
        assert count > 0 and version in trees
        for _ in range(count):
            rebuilt.retain(version, trees[version])
    rebuilt.check_invariant()
    assert rebuilt.refcounts() == refs
    for version, tree in rebuilt.snapshot().items():
        assert trees_equal(tree, trees[version])
    return rebuilt


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["retain", "release", "roundtrip"]),
            st.integers(min_value=0, max_value=7),
        ),
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_version_store_refcount_invariant(script):
    from repro.federated.fleet import _VersionStore

    store = _VersionStore()
    expected = {}  # version -> refcount, the oracle
    for op, pick in script:
        if op == "retain":
            version = pick
            store.retain(version, _version_tree(version))
            expected[version] = expected.get(version, 0) + 1
        elif op == "release":
            if not expected:
                continue
            version = sorted(expected)[pick % len(expected)]
            store.release(version)
            expected[version] -= 1
            if expected[version] == 0:
                del expected[version]
        else:
            store = _roundtrip(store)
        store.check_invariant()
        assert store.refcounts() == expected
        assert len(store.refcounts()) == len(store.snapshot())
