"""Tests for upload compression schemes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor
from repro.data import Dataset
from repro.federated import (
    CompressedPlatform,
    TopKSparsifier,
    UniformQuantizer,
    build_nodes,
)
from repro.nn.parameters import to_vector
from repro.utils.serialization import serialize_params

RNG = np.random.default_rng(0)


def make_params(seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return {
        "W": Tensor(scale * rng.normal(size=(8, 4))),
        "b": Tensor(scale * rng.normal(size=4)),
    }


class TestUniformQuantizer:
    def test_roundtrip_error_bounded_by_half_step(self):
        params = make_params()
        quantizer = UniformQuantizer(bits=8)
        back = quantizer.decompress(quantizer.compress(params))
        for name in params:
            span = params[name].data.max() - params[name].data.min()
            step = span / 255
            error = np.abs(back[name].data - params[name].data).max()
            assert error <= step / 2 + 1e-12

    def test_16_bits_more_accurate_than_8(self):
        params = make_params()
        err = {}
        for bits in (8, 16):
            q = UniformQuantizer(bits=bits)
            back = q.decompress(q.compress(params))
            err[bits] = np.abs(to_vector(back) - to_vector(params)).max()
        assert err[16] < err[8]

    def test_smaller_than_full_precision(self):
        # Large enough that per-tensor headers are negligible: the ratio
        # should approach 8/64 bits.
        params = {"W": Tensor(RNG.normal(size=(100, 100)))}
        full = len(serialize_params(params))
        compressed = len(UniformQuantizer(bits=8).compress(params))
        assert compressed < full / 4

    def test_constant_tensor_roundtrips_exactly(self):
        params = {"c": Tensor(np.full((3, 3), 7.5))}
        q = UniformQuantizer()
        back = q.decompress(q.compress(params))
        np.testing.assert_allclose(back["c"].data, 7.5)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            UniformQuantizer(bits=4)

    def test_wrong_magic_raises(self):
        with pytest.raises(ValueError):
            UniformQuantizer().decompress(b"XXXX" + b"\x00" * 16)

    def test_bit_mismatch_raises(self):
        params = make_params()
        blob = UniformQuantizer(bits=8).compress(params)
        with pytest.raises(ValueError):
            UniformQuantizer(bits=16).decompress(blob)

    @given(st.integers(0, 1000), st.floats(0.01, 100.0))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_error_property(self, seed, scale):
        params = make_params(seed, scale)
        q = UniformQuantizer(bits=8)
        back = q.decompress(q.compress(params))
        for name in params:
            span = params[name].data.max() - params[name].data.min()
            error = np.abs(back[name].data - params[name].data).max()
            assert error <= span / 255 / 2 + 1e-9 * max(1.0, span)


class TestTopKSparsifier:
    def test_keeps_largest_magnitudes(self):
        params = {"w": Tensor(np.array([0.1, -5.0, 0.2, 3.0]))}
        s = TopKSparsifier(fraction=0.5)
        back = s.decompress(s.compress(params))
        np.testing.assert_allclose(back["w"].data, [0.0, -5.0, 0.0, 3.0])

    def test_fraction_one_is_lossless(self):
        params = make_params()
        s = TopKSparsifier(fraction=1.0)
        back = s.decompress(s.compress(params))
        np.testing.assert_allclose(to_vector(back), to_vector(params))

    def test_smaller_fraction_smaller_blob(self):
        params = make_params()
        small = len(TopKSparsifier(0.1).compress(params))
        large = len(TopKSparsifier(0.9).compress(params))
        assert small < large

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            TopKSparsifier(0.0)
        with pytest.raises(ValueError):
            TopKSparsifier(1.5)

    def test_shape_preserved(self):
        params = make_params()
        s = TopKSparsifier(0.25)
        back = s.decompress(s.compress(params))
        assert back["W"].shape == (8, 4)

    def test_wrong_magic_raises(self):
        with pytest.raises(ValueError):
            TopKSparsifier(0.5).decompress(b"XXXX" + b"\x00" * 8)


class TestCompressedPlatform:
    def _nodes(self):
        datasets = [
            Dataset(x=RNG.normal(size=(10, 4)), y=RNG.integers(0, 3, size=10))
            for _ in range(3)
        ]
        return build_nodes(datasets, k=3)

    def test_uplink_bytes_smaller_than_plain(self):
        from repro.federated import Platform

        nodes_a, nodes_b = self._nodes(), self._nodes()
        params = {"W": Tensor(RNG.normal(size=(100, 100)))}

        plain = Platform()
        plain.initialize(params, nodes_a)
        plain.aggregate(nodes_a)

        compressed = CompressedPlatform(UniformQuantizer(bits=8))
        compressed.initialize(params, nodes_b)
        compressed.aggregate(nodes_b)

        assert compressed.comm_log.uplink_bytes < plain.comm_log.uplink_bytes / 4

    def test_aggregate_close_to_uncompressed(self):
        from repro.federated import Platform

        nodes_a, nodes_b = self._nodes(), self._nodes()
        params = make_params()
        for node_a, node_b, seed in zip(nodes_a, nodes_b, (1, 2, 3)):
            node_a.params = make_params(seed)
            node_b.params = make_params(seed)

        plain = Platform()
        plain.global_params = params
        exact = plain.aggregate(nodes_a)

        compressed = CompressedPlatform(UniformQuantizer(bits=16))
        compressed.global_params = params
        approx = compressed.aggregate(nodes_b)

        np.testing.assert_allclose(
            to_vector(approx), to_vector(exact), atol=1e-3
        )
