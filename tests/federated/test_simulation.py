"""Tests for the discrete-event fleet timing simulator."""

import numpy as np
import pytest

from repro.federated import (
    DeviceProfile,
    LinkModel,
    sample_fleet,
    simulate_round,
    simulate_synchronous_rounds,
)

LINK = LinkModel(uplink_bytes_per_s=1e6, downlink_bytes_per_s=1e6, latency_s=0.0)


def fixed_fleet(speeds):
    return [
        DeviceProfile(device_id=i, seconds_per_step=s, link=LINK)
        for i, s in enumerate(speeds)
    ]


class TestDeviceProfile:
    def test_round_time_formula(self):
        device = DeviceProfile(0, seconds_per_step=0.1, link=LINK)
        # 10 steps * 0.1s + 1e6 bytes / 1e6 B/s = 2.0 s
        assert device.round_time(10, 1_000_000) == pytest.approx(2.0)

    def test_negative_args_raise(self):
        device = DeviceProfile(0, 0.1, LINK)
        with pytest.raises(ValueError):
            device.round_time(-1, 0)


class TestSampleFleet:
    def test_size_and_determinism(self):
        a = sample_fleet(20, np.random.default_rng(0))
        b = sample_fleet(20, np.random.default_rng(0))
        assert len(a) == 20
        assert [d.seconds_per_step for d in a] == [d.seconds_per_step for d in b]

    def test_zero_heterogeneity_gives_identical_devices(self):
        fleet = sample_fleet(
            5, np.random.default_rng(0), median_seconds_per_step=0.2,
            heterogeneity=0.0,
        )
        speeds = {d.seconds_per_step for d in fleet}
        assert speeds == {0.2}

    def test_heterogeneity_spreads_speeds(self):
        tight = sample_fleet(200, np.random.default_rng(0), heterogeneity=0.1)
        wide = sample_fleet(200, np.random.default_rng(0), heterogeneity=1.0)
        spread = lambda fleet: np.std([d.seconds_per_step for d in fleet])
        assert spread(wide) > spread(tight)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sample_fleet(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            sample_fleet(5, np.random.default_rng(0), heterogeneity=-1)


class TestSynchronousRounds:
    def test_round_duration_is_slowest_plus_broadcast(self):
        fleet = fixed_fleet([0.1, 0.5])  # slowest: 0.5 s/step
        timeline = simulate_synchronous_rounds(
            fleet, num_rounds=1, local_steps_per_round=10,
            upload_bytes=1_000_000,
        )
        # slowest compute+upload: 10*0.5 + 1 = 6 s; broadcast: 1 s
        assert timeline.total_time == pytest.approx(7.0)

    def test_rounds_accumulate(self):
        fleet = fixed_fleet([0.1])
        timeline = simulate_synchronous_rounds(
            fleet, num_rounds=4, local_steps_per_round=10, upload_bytes=0
        )
        assert len(timeline.rounds) == 4
        assert timeline.total_time == pytest.approx(4 * 1.0)

    def test_deadline_drops_stragglers(self):
        fleet = fixed_fleet([0.1, 10.0])
        timeline = simulate_synchronous_rounds(
            fleet, num_rounds=2, local_steps_per_round=10, upload_bytes=0,
            deadline_s=5.0,
        )
        for outcome in timeline.rounds:
            assert outcome.participants == [0]
            assert outcome.stragglers_dropped == [1]

    def test_deadline_shortens_rounds(self):
        fleet = fixed_fleet([0.1, 10.0])
        slow = simulate_synchronous_rounds(
            fleet, num_rounds=2, local_steps_per_round=10, upload_bytes=0
        )
        fast = simulate_synchronous_rounds(
            fleet, num_rounds=2, local_steps_per_round=10, upload_bytes=0,
            deadline_s=5.0,
        )
        assert fast.total_time < slow.total_time

    def test_min_participants_kept_past_deadline(self):
        fleet = fixed_fleet([10.0, 20.0])
        timeline = simulate_synchronous_rounds(
            fleet, num_rounds=1, local_steps_per_round=1, upload_bytes=0,
            deadline_s=0.001, min_participants=1,
        )
        assert timeline.rounds[0].participants == [0]

    def test_participation_rate(self):
        fleet = fixed_fleet([0.1, 10.0])
        timeline = simulate_synchronous_rounds(
            fleet, num_rounds=2, local_steps_per_round=10, upload_bytes=0,
            deadline_s=5.0,
        )
        assert timeline.participation_rate(2) == pytest.approx(0.5)

    def test_invalid_args(self):
        fleet = fixed_fleet([0.1])
        with pytest.raises(ValueError):
            simulate_synchronous_rounds(fleet, 0, 1, 0)
        with pytest.raises(ValueError):
            simulate_synchronous_rounds([], 1, 1, 0)
        with pytest.raises(ValueError):
            simulate_synchronous_rounds(fleet, 1, 1, 0, min_participants=2)

    def test_empty_timeline_properties(self):
        from repro.federated import FleetTimeline

        timeline = FleetTimeline()
        assert timeline.total_time == 0.0
        assert timeline.mean_round_time == 0.0
        assert timeline.participation_rate(5) == 0.0


class TestStragglerDeadlinePath:
    """Direct coverage of the deadline/straggler branch (previously only
    exercised indirectly through the benchmarks)."""

    def test_deadline_drops_exactly_the_slowest_device(self):
        # 10 steps each: 1 s, 2 s, 50 s — deadline 5 s cuts only device 2.
        fleet = fixed_fleet([0.1, 0.2, 5.0])
        timeline = simulate_synchronous_rounds(
            fleet, num_rounds=3, local_steps_per_round=10, upload_bytes=0,
            deadline_s=5.0,
        )
        for outcome in timeline.rounds:
            assert outcome.participants == [0, 1]
            assert outcome.stragglers_dropped == [2]
        # Round closes on the slowest *surviving* device (2 s), not on the
        # dropped straggler (50 s).
        assert timeline.rounds[0].duration == pytest.approx(2.0)

    def test_min_participants_overrides_deadline_with_fastest_devices(self):
        fleet = fixed_fleet([0.3, 0.1, 0.2])
        timeline = simulate_synchronous_rounds(
            fleet, num_rounds=1, local_steps_per_round=10, upload_bytes=0,
            deadline_s=0.5, min_participants=2,
        )
        # Nobody makes the 0.5 s deadline; the two fastest are kept anyway.
        assert timeline.rounds[0].participants == [1, 2]
        assert timeline.rounds[0].stragglers_dropped == [0]

    def test_participants_and_dropped_partition_the_fleet(self):
        fleet = fixed_fleet([0.1, 0.5, 1.0, 2.0])
        timeline = simulate_synchronous_rounds(
            fleet, num_rounds=2, local_steps_per_round=10, upload_bytes=0,
            deadline_s=6.0,
        )
        all_ids = {d.device_id for d in fleet}
        for outcome in timeline.rounds:
            assert set(outcome.participants) | set(outcome.stragglers_dropped) == all_ids
            assert set(outcome.participants) & set(outcome.stragglers_dropped) == set()

    def test_timeline_is_monotone_and_contiguous(self):
        fleet = fixed_fleet([0.1, 0.4, 2.5])
        timeline = simulate_synchronous_rounds(
            fleet, num_rounds=5, local_steps_per_round=7, upload_bytes=10_000,
            deadline_s=2.0,
        )
        previous_end = 0.0
        for i, outcome in enumerate(timeline.rounds):
            assert outcome.round_index == i + 1
            assert outcome.started_at == pytest.approx(previous_end)
            assert outcome.finished_at > outcome.started_at
            previous_end = outcome.finished_at
        assert timeline.total_time == pytest.approx(previous_end)

    def test_deadline_dropping_everyone_keeps_min_participants(self):
        # Every device needs >= 1 s; the 0.1 s deadline excludes them all,
        # so the floor keeps exactly the two fastest.
        fleet = fixed_fleet([0.3, 0.1, 0.2, 0.4])
        outcome = simulate_round(
            fleet, round_index=1, started_at=0.0, local_steps=10,
            upload_bytes=0, deadline_s=0.1, min_participants=2,
        )
        assert outcome.participants == [1, 2]
        assert outcome.stragglers_dropped == [0, 3]
        # the round closes on the slowest *kept* device
        assert outcome.finished_at == pytest.approx(10 * 0.2)

    def test_floor_tie_breaks_by_device_id(self):
        fleet = fixed_fleet([0.5, 0.5, 0.5])
        outcome = simulate_round(
            fleet, round_index=1, started_at=0.0, local_steps=10,
            upload_bytes=0, deadline_s=0.1, min_participants=2,
        )
        assert outcome.participants == [0, 1]

    def test_floor_of_full_fleet_disables_the_deadline(self):
        fleet = fixed_fleet([0.1, 10.0])
        outcome = simulate_round(
            fleet, round_index=1, started_at=0.0, local_steps=10,
            upload_bytes=0, deadline_s=0.5, min_participants=len(fleet),
        )
        assert outcome.participants == [0, 1]
        assert outcome.stragglers_dropped == []

    def test_dropped_stragglers_are_still_charged_downlink(self):
        # Broadcast resyncs the whole fleet: downlink covers dropped
        # stragglers too, while uplink only counts delivered updates.
        fleet = fixed_fleet([0.1, 0.2, 10.0])
        upload_bytes = 1_000
        outcome = simulate_round(
            fleet, round_index=1, started_at=0.0, local_steps=10,
            upload_bytes=upload_bytes, deadline_s=5.0,
        )
        assert outcome.stragglers_dropped == [2]
        assert outcome.uplink_bytes == upload_bytes * 2
        assert outcome.downlink_bytes == upload_bytes * len(fleet)

    def test_downlink_telemetry_counts_the_whole_fleet(self):
        from repro.obs import MemorySink, Telemetry

        telemetry = Telemetry(sink=MemorySink())
        fleet = fixed_fleet([0.1, 10.0])
        upload_bytes = 1_000
        simulate_synchronous_rounds(
            fleet, num_rounds=2, local_steps_per_round=10,
            upload_bytes=upload_bytes, deadline_s=5.0, telemetry=telemetry,
        )
        registry = telemetry.registry
        assert registry.get("sim_bytes_up_total").value == 2 * upload_bytes
        assert (
            registry.get("sim_bytes_down_total").value
            == 2 * upload_bytes * len(fleet)
        )

    def test_telemetry_records_straggler_accounting(self):
        from repro.obs import MemorySink, Telemetry

        telemetry = Telemetry(sink=MemorySink())
        fleet = fixed_fleet([0.1, 10.0])
        simulate_synchronous_rounds(
            fleet, num_rounds=3, local_steps_per_round=10, upload_bytes=0,
            deadline_s=5.0, telemetry=telemetry,
        )
        registry = telemetry.registry
        assert registry.get("sim_rounds_total").value == 3
        assert registry.get("sim_stragglers_dropped_total").value == 3
        assert registry.get("sim_round_seconds").count == 3
        assert registry.get("sim_total_seconds").value > 0
