"""Memory-bound regression: residency is O(sampled), never O(fleet).

ISSUE 9 satellite: 100k registered / 64 sampled for 20 rounds, and the
materialized-node high-water mark (the ``fl_fleet_resident_nodes`` gauge
and its ``_peak`` twin) must never exceed ``sampled + buffer``.  If a
change makes the registry retain nodes — a dropped evict, a strategy
cache that survives eviction, an eval set that leaks — this is the test
that catches it, long before anyone profiles RSS at a million nodes.
"""

from repro.core.fedavg import FedAvgConfig
from repro.engine.strategies import SgdStrategy
from repro.federated.fleet import (
    FleetConfig,
    FleetSimulator,
    SyntheticShardFactory,
)
from repro.nn import LogisticRegression
from repro.obs.sink import MemorySink
from repro.obs.telemetry import Telemetry

FLEET = 100_000
SAMPLED = 64
ROUNDS = 20
BUFFER = 8


def test_100k_fleet_residency_bounded_by_sampled_plus_buffer():
    shards = SyntheticShardFactory(seed=0)
    model = LogisticRegression(shards.input_dim, shards.num_classes)
    strategy = SgdStrategy(
        model,
        FedAvgConfig(
            learning_rate=0.05, t0=1, total_iterations=ROUNDS,
            eval_every=5, seed=0,
        ),
    )
    config = FleetConfig(
        fleet_size=FLEET,
        sampled_per_round=SAMPLED,
        rounds=ROUNDS,
        local_steps=1,
        buffer_size=BUFFER,
        seed=0,
        eval_every=5,
        eval_sample=16,
    )
    telemetry = Telemetry(sink=MemorySink())
    sim = FleetSimulator(strategy, config, shards=shards,
                         telemetry=telemetry)
    result = sim.run()

    bound = SAMPLED + BUFFER
    # The result object, the registry, and the exported gauge must agree —
    # the gauge is what OBSERVABILITY.md's catalog promises operators.
    assert result.resident_peak <= bound
    assert sim.registry.resident_peak <= bound
    peak_gauge = telemetry.registry.gauge("fl_fleet_resident_nodes_peak")
    assert 0 < peak_gauge.value <= bound
    assert telemetry.registry.gauge("fl_fleet_registered").value == FLEET

    # After the run every transient node is gone: residency returns to 0.
    assert sim.registry.resident_count == 0
    assert telemetry.registry.gauge("fl_fleet_resident_nodes").value == 0

    # Sanity: the run actually exercised the fleet (sampled fresh ids).
    assert sim.registry.materializations >= SAMPLED
    assert result.rounds_completed == ROUNDS

    # Strategy-side per-node caches must not accumulate either (the
    # release_node hook): SgdStrategy memoizes training data per node_id.
    cache = strategy.__dict__.get("_data_cache", {})
    assert len(cache) == 0
