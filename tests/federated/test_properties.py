"""Hypothesis property tests for the federated substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor
from repro.federated import (
    GatewayAssignment,
    HierarchicalPlatform,
    Platform,
    coordinate_median,
    trimmed_mean,
    weighted_mean,
)
from repro.federated.privacy import SecureAggregator
from repro.nn.parameters import to_vector


def trees_from_seeds(seeds):
    out = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        out.append({"w": Tensor(rng.normal(size=6))})
    return out


@given(st.lists(st.integers(0, 10_000), min_size=2, max_size=8))
@settings(max_examples=30, deadline=None)
def test_weighted_mean_in_convex_hull(seeds):
    trees = trees_from_seeds(seeds)
    weights = [1.0 / len(trees)] * len(trees)
    out = to_vector(weighted_mean(trees, weights))
    stacked = np.stack([to_vector(t) for t in trees])
    assert np.all(out <= stacked.max(axis=0) + 1e-12)
    assert np.all(out >= stacked.min(axis=0) - 1e-12)


@given(st.lists(st.integers(0, 10_000), min_size=3, max_size=9))
@settings(max_examples=30, deadline=None)
def test_median_and_trimmed_mean_in_value_range(seeds):
    trees = trees_from_seeds(seeds)
    stacked = np.stack([to_vector(t) for t in trees])
    for rule in (
        lambda: coordinate_median(trees),
        lambda: trimmed_mean(trees, 0.2),
    ):
        out = to_vector(rule())
        assert np.all(out <= stacked.max(axis=0) + 1e-12)
        assert np.all(out >= stacked.min(axis=0) - 1e-12)


@given(
    st.lists(st.integers(0, 10_000), min_size=2, max_size=6, unique=True),
    st.integers(0, 100),
)
@settings(max_examples=25, deadline=None)
def test_secure_aggregation_masks_always_cancel(seeds, round_index):
    node_ids = list(range(len(seeds)))
    agg = SecureAggregator(node_ids, seed=1)
    trees = trees_from_seeds(seeds)
    masked = [
        agg.mask(i, round_index, tree) for i, tree in zip(node_ids, trees)
    ]
    result = to_vector(agg.aggregate(masked, [1.0 / len(trees)] * len(trees)))
    expected = np.mean([to_vector(t) for t in trees], axis=0)
    np.testing.assert_allclose(result, expected, atol=1e-8)


@given(
    st.integers(2, 10),
    st.integers(1, 5),
)
@settings(max_examples=25, deadline=None)
def test_hierarchical_equals_flat_for_any_topology(num_nodes, num_gateways):
    from repro.data import Dataset
    from repro.federated import build_nodes

    rng = np.random.default_rng(num_nodes * 100 + num_gateways)
    datasets = []
    for _ in range(num_nodes):
        count = int(rng.integers(8, 20))
        datasets.append(
            Dataset(
                x=rng.normal(size=(count, 3)),
                y=rng.integers(0, 2, size=count),
            )
        )
    nodes_flat = build_nodes(datasets, k=2)
    nodes_hier = build_nodes(datasets, k=2)
    for i, (a, b) in enumerate(zip(nodes_flat, nodes_hier)):
        tree = {"w": Tensor(rng.normal(size=4))}
        a.params = {"w": Tensor(tree["w"].data.copy())}
        b.params = {"w": Tensor(tree["w"].data.copy())}

    flat = Platform()
    flat.global_params = {"w": Tensor(np.zeros(4))}
    expected = flat.aggregate(nodes_flat)

    assignment = GatewayAssignment.round_robin(
        [n.node_id for n in nodes_hier], min(num_gateways, num_nodes)
    )
    hier = HierarchicalPlatform(assignment=assignment)
    hier.global_params = {"w": Tensor(np.zeros(4))}
    result = hier.aggregate(nodes_hier)
    np.testing.assert_allclose(
        to_vector(result), to_vector(expected), atol=1e-10
    )
