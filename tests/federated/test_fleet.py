"""Unit tests for the event-driven fleet simulator.

The subtle invariants (insertion-order independence, staleness-0
reduction, chaos determinism) live in ``test_fleet_properties.py`` and
``tests/faults/test_fleet_chaos.py``; this file pins the mechanics:
lazy registry residency, buffered-aggregation arithmetic, comm-cost
accounting, and the O(sampled) id-space sampling fix.
"""

import numpy as np
import pytest

from repro.analysis.determinism import install_ledger, uninstall_ledger
from repro.core.fedavg import FedAvgConfig
from repro.engine.strategies import SgdStrategy
from repro.faults.plan import FaultPlan, FlakyWorkerSchedule
from repro.federated.fleet import (
    BufferedAggregator,
    BufferEntry,
    FleetConfig,
    FleetFaults,
    FleetRegistry,
    FleetSimulator,
    SyntheticShardFactory,
)
from repro.federated.sampling import (
    SAMPLER_NODE_ID,
    IdSpaceSampler,
    sample_id_space,
)
from repro.nn import LogisticRegression
from repro.nn.parameters import weighted_average
from repro.utils.rng import instrument_node_rng
from repro.utils.serialization import payload_bytes


def make_strategy(seed=0, lr=0.05, local_steps=2, rounds=5):
    shards = SyntheticShardFactory(seed=seed)
    model = LogisticRegression(shards.input_dim, shards.num_classes)
    return SgdStrategy(
        model,
        FedAvgConfig(
            learning_rate=lr,
            t0=local_steps,
            total_iterations=rounds * local_steps,
            eval_every=1,
            seed=seed,
        ),
    )


def run_fleet(seed=0, fleet=1000, sampled=16, rounds=3, local_steps=2,
              **kwargs):
    strategy = make_strategy(seed=seed, local_steps=local_steps,
                             rounds=rounds)
    config = FleetConfig(
        fleet_size=fleet,
        sampled_per_round=sampled,
        rounds=rounds,
        local_steps=local_steps,
        seed=seed,
        **kwargs,
    )
    sim = FleetSimulator(
        strategy, config, shards=SyntheticShardFactory(seed=seed)
    )
    return sim.run(), sim


def trees_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(a[name].data, b[name].data) for name in a
    )


class TestSyntheticShardFactory:
    def test_shards_are_pure_functions_of_node_id(self):
        factory = SyntheticShardFactory(seed=3)
        first = factory.make(42)
        again = factory.make(42)
        assert np.array_equal(first.x, again.x)
        assert np.array_equal(first.y, again.y)

    def test_num_samples_matches_built_shard(self):
        factory = SyntheticShardFactory(seed=1)
        for node_id in (0, 17, 99_999):
            assert len(factory.make(node_id)) == factory.num_samples(node_id)

    def test_distinct_nodes_get_distinct_shards(self):
        factory = SyntheticShardFactory(seed=0)
        assert not np.array_equal(factory.make(0).x, factory.make(1).x)


class TestFleetRegistry:
    def test_materialize_evict_tracks_residency(self):
        registry = FleetRegistry(100, SyntheticShardFactory(seed=0))
        assert registry.resident_count == 0
        registry.materialize(3)
        registry.materialize(7)
        assert registry.resident_count == 2
        assert registry.resident_peak == 2
        registry.evict(3)
        assert registry.resident_count == 1
        assert registry.resident_peak == 2  # high-water mark sticks
        registry.evict(7)
        assert registry.resident_count == 0

    def test_weight_never_materializes(self):
        registry = FleetRegistry(1_000_000, SyntheticShardFactory(seed=0))
        weight = registry.weight(999_999)
        assert weight > 0
        assert registry.materializations == 0
        assert registry.resident_count == 0

    def test_rematerialization_is_bit_identical(self):
        registry = FleetRegistry(100, SyntheticShardFactory(seed=5))
        node = registry.materialize(11)
        train_x = node.split.train.x.copy()
        test_x = node.split.test.x.copy()
        registry.evict(11)
        again = registry.materialize(11)
        assert np.array_equal(again.split.train.x, train_x)
        assert np.array_equal(again.split.test.x, test_x)

    def test_out_of_range_node_rejected(self):
        registry = FleetRegistry(10, SyntheticShardFactory(seed=0))
        with pytest.raises(ValueError):
            registry.materialize(10)

    def test_evict_releases_strategy_cache(self):
        strategy = make_strategy()
        registry = FleetRegistry(100, SyntheticShardFactory(seed=0))
        node = registry.materialize(4)
        node.params = strategy.initial_params(np.random.default_rng(0), None)
        strategy.bind_node_rng(np.random.default_rng(1))
        strategy.local_step(node)  # populates the per-node data cache
        assert 4 in strategy.__dict__["_data_cache"]
        registry.evict(4, strategy)
        assert 4 not in strategy.__dict__["_data_cache"]


class TestBufferedAggregator:
    def _entry(self, node_id, value, weight=1.0, base_version=0):
        from repro.autodiff import Tensor

        return BufferEntry(
            node_id=node_id,
            weight=weight,
            base_version=base_version,
            params={"w": Tensor(np.full(3, float(value)))},
        )

    def test_validates_capacity_and_alpha(self):
        with pytest.raises(ValueError):
            BufferedAggregator(0)
        with pytest.raises(ValueError):
            BufferedAggregator(4, staleness_alpha=-1.0)

    def test_flush_empty_buffer_raises(self):
        agg = BufferedAggregator(4)
        from repro.autodiff import Tensor

        with pytest.raises(ValueError):
            agg.flush({"w": Tensor(np.zeros(3))}, 0, {})

    def test_add_reports_full_at_capacity(self):
        agg = BufferedAggregator(2)
        assert not agg.add(self._entry(0, 1.0))
        assert agg.add(self._entry(1, 2.0))

    def test_discount_schedule(self):
        agg = BufferedAggregator(4, staleness_alpha=0.5)
        assert agg.discount(0) == 1.0
        assert agg.discount(3) == pytest.approx(0.5)
        flat = BufferedAggregator(4, staleness_alpha=0.0)
        assert flat.discount(7) == 1.0

    def test_fresh_flush_is_plain_weighted_average(self):
        agg = BufferedAggregator(2)
        entries = [
            self._entry(0, 1.0, weight=3.0),
            self._entry(1, 5.0, weight=1.0),
        ]
        for entry in entries:
            agg.add(entry)
        from repro.autodiff import Tensor

        current = {"w": Tensor(np.zeros(3))}
        merged, stats = agg.flush(current, 0, {})
        expected = weighted_average(
            [entries[0].params, entries[1].params], [0.75, 0.25]
        )
        assert np.array_equal(merged["w"].data, expected["w"].data)
        assert [s["staleness"] for s in stats] == [0, 0]
        assert len(agg) == 0

    def test_stale_entry_is_anchored_and_discounted(self):
        from repro.autodiff import Tensor

        agg = BufferedAggregator(1, staleness_alpha=1.0)
        base = {"w": Tensor(np.full(3, 2.0))}
        current = {"w": Tensor(np.full(3, 10.0))}
        agg.add(self._entry(0, 6.0, base_version=0))
        merged, stats = agg.flush(current, 2, {0: base})
        # d(tau=2) = (1+2)^-1; correction = 10 + (1/3)(6 - 2) = 34/3
        expected = 10.0 + (1.0 / 3.0) * (6.0 - 2.0)
        assert np.allclose(merged["w"].data, expected)
        assert stats[0]["staleness"] == 2
        assert stats[0]["discount"] == pytest.approx(1.0 / 3.0)


class TestFleetFaults:
    def test_flaky_schedules_rejected_on_fleet_path(self):
        plan = FaultPlan([FlakyWorkerSchedule(rate=0.5)], seed=0)
        with pytest.raises(ValueError, match="flaky|Flaky"):
            FleetFaults(plan)

    def test_decisions_are_pure_functions_of_plan(self):
        plan = FaultPlan.from_spec("crash:rate=0.5;drop:rate=0.5", seed=9)
        first = FleetFaults(plan)
        second = FleetFaults(plan)
        for node in range(50):
            assert first.crashed(2, node) == second.crashed(2, node)
            assert first.dropped(2, node) == second.dropped(2, node)

    def test_crash_duration_covers_window(self):
        plan = FaultPlan.from_spec("crash:rate=1.0,duration=3", seed=0)
        faults = FleetFaults(plan)
        # rate=1 ⇒ every (round, node) starts a crash, so any round in a
        # window is down; the point here is that the window check runs.
        assert faults.crashed(0, 1)
        assert faults.crashed(2, 1)


class TestFleetSimulator:
    def test_sync_round_matches_handrolled_fedavg(self):
        """One synchronous round == materialize-all FedAvg, bit for bit."""
        seed, fleet, sampled, local_steps = 0, 500, 8, 3
        result, _ = run_fleet(
            seed=seed, fleet=fleet, sampled=sampled, rounds=1,
            local_steps=local_steps,
        )

        shards = SyntheticShardFactory(seed=seed)
        strategy = make_strategy(seed=seed, local_steps=local_steps, rounds=1)
        theta0 = strategy.initial_params(np.random.default_rng(seed), None)
        ids = IdSpaceSampler(sampled, seed).select_ids(fleet, 0)
        registry = FleetRegistry(fleet, shards)
        trees, weights = [], []
        for node_id in ids:  # ascending id order == canonical flush order
            node = registry.materialize(node_id, theta0)
            strategy.bind_node_rng(
                instrument_node_rng(
                    np.random.default_rng([seed, 0, node_id]), 0, node_id
                )
            )
            for _ in range(local_steps):
                strategy.local_step(node)
            trees.append(node.params)
            weights.append(registry.weight(node_id))
        normalized = (np.array(weights) / np.sum(weights)).tolist()
        expected = weighted_average(trees, normalized)
        assert trees_equal(result.params, expected)

    def test_double_run_bit_identical(self):
        first, _ = run_fleet(buffer_size=5)
        second, _ = run_fleet(buffer_size=5)
        assert trees_equal(first.params, second.params)
        assert first.history.records == second.history.records

    def test_update_and_flush_accounting(self):
        result, _ = run_fleet(fleet=300, sampled=10, rounds=4, buffer_size=4)
        # 40 deliveries, flushed 4 at a time ⇒ 10 flushes, 0 left over.
        assert result.updates_aggregated == 40
        assert result.server_version == 10

    def test_comm_bytes_charged_per_dispatch_and_delivery(self):
        result, sim = run_fleet(fleet=300, sampled=10, rounds=2)
        payload = payload_bytes(result.params)
        assert result.comm_log.downlink_bytes == 2 * 10 * payload
        assert result.comm_log.uplink_bytes == 2 * 10 * payload

    def test_round_timeout_drops_all_slow_nodes(self):
        result, _ = run_fleet(
            fleet=300, sampled=10, rounds=2, round_timeout_s=1e-9
        )
        # Nothing can finish inside the deadline: no deliveries, no
        # aggregations, θ stays at θ⁰.
        assert result.server_version == 0
        assert result.updates_aggregated == 0

    def test_registry_is_empty_after_run(self):
        result, sim = run_fleet()
        assert sim.registry.resident_count == 0
        assert result.resident_peak <= sim.config.sampled_per_round + len(
            sim.buffer.entries
        ) + sim.buffer.capacity

    def test_sim_clock_advances_monotonically(self):
        result, _ = run_fleet(rounds=4)
        assert result.sim_clock_s > 0


class TestIdSpaceSampling:
    """The O(fleet)-scan latent bug fix (ISSUE 9 satellite)."""

    def test_ids_distinct_sorted_in_range(self):
        rng = np.random.default_rng(0)
        ids = sample_id_space(10_000, 64, rng)
        assert len(ids) == 64
        assert len(set(ids)) == 64
        assert ids == sorted(ids)
        assert all(0 <= i < 10_000 for i in ids)

    def test_dense_request_falls_back_to_permutation(self):
        rng = np.random.default_rng(0)
        ids = sample_id_space(10, 9, rng)
        assert len(set(ids)) == 9

    def test_count_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_id_space(10, 0, rng)
        with pytest.raises(ValueError):
            sample_id_space(10, 11, rng)

    def test_sampler_is_resume_safe(self):
        sampler = IdSpaceSampler(16, seed=3)
        fresh = IdSpaceSampler(16, seed=3)
        sampler.select_ids(1000, 0)
        sampler.select_ids(1000, 1)
        # Round 2's selection is independent of how many rounds ran first.
        assert sampler.select_ids(1000, 2) == fresh.select_ids(1000, 2)

    def test_draw_counts_independent_of_fleet_size(self):
        """Regression: sampling must be O(sampled), not an O(fleet) scan.

        The RNG ledger counts generator calls on the sampler's
        ``(round, SAMPLER_NODE_ID)`` stream.  Chunked rejection sampling
        makes a constant number of vectorized draws for a fixed sample
        size — the same count at 10k registered nodes as at 1M.  The old
        node-list samplers would need the materialized fleet itself (and
        ``rng.choice`` over it) to grow with registration.
        """

        def draws(fleet_size):
            ledger = install_ledger()
            try:
                IdSpaceSampler(32, seed=0).select_ids(fleet_size, 0)
            finally:
                uninstall_ledger()
            return ledger.stream(0, SAMPLER_NODE_ID).draws

        small, huge = draws(10_000), draws(1_000_000)
        assert small == huge
        assert small <= 2  # one chunked draw, at most one top-up
