"""Tests for secure aggregation and the Gaussian DP mechanism."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.federated.privacy import GaussianMechanism, SecureAggregator
from repro.nn.parameters import to_vector

RNG = np.random.default_rng(0)


def make_params(seed=0):
    rng = np.random.default_rng(seed)
    return {"W": Tensor(rng.normal(size=(4, 3))), "b": Tensor(rng.normal(size=3))}


class TestSecureAggregator:
    def test_masks_cancel_in_full_sum(self):
        node_ids = [0, 1, 2, 3]
        agg = SecureAggregator(node_ids, seed=7)
        trees = {i: make_params(i) for i in node_ids}
        masked = [agg.mask(i, round_index=1, params=trees[i]) for i in node_ids]
        result = agg.aggregate(masked, [0.25] * 4)
        expected = np.mean([to_vector(trees[i]) for i in node_ids], axis=0)
        np.testing.assert_allclose(to_vector(result), expected, atol=1e-9)

    def test_individual_upload_is_obscured(self):
        agg = SecureAggregator([0, 1, 2], seed=7, mask_scale=100.0)
        params = make_params(0)
        masked = agg.mask(0, round_index=1, params=params)
        # The masked upload should be nowhere near the true parameters.
        assert np.linalg.norm(to_vector(masked) - to_vector(params)) > 10.0

    def test_partial_sum_stays_masked(self):
        node_ids = [0, 1, 2]
        agg = SecureAggregator(node_ids, seed=7, mask_scale=100.0)
        trees = {i: make_params(i) for i in node_ids}
        masked = [agg.mask(i, 1, trees[i]) for i in node_ids[:2]]  # subset!
        partial = np.mean([to_vector(m) for m in masked], axis=0)
        true_partial = np.mean([to_vector(trees[i]) for i in (0, 1)], axis=0)
        assert np.linalg.norm(partial - true_partial) > 10.0

    def test_rounds_use_fresh_masks(self):
        agg = SecureAggregator([0, 1], seed=7)
        params = make_params(0)
        m1 = agg.mask(0, round_index=1, params=params)
        m2 = agg.mask(0, round_index=2, params=params)
        assert not np.allclose(to_vector(m1), to_vector(m2))

    def test_weighted_aggregation_via_prescaling(self):
        node_ids = [0, 1, 2]
        weights = [0.2, 0.3, 0.5]
        agg = SecureAggregator(node_ids, seed=3)
        trees = {i: make_params(i) for i in node_ids}
        masked = [
            agg.mask(i, 1, agg.prescale(trees[i], w, len(node_ids)))
            for i, w in zip(node_ids, weights)
        ]
        result = agg.aggregate(masked, weights)
        expected = np.sum(
            [w * to_vector(trees[i]) for i, w in zip(node_ids, weights)], axis=0
        )
        np.testing.assert_allclose(to_vector(result), expected, atol=1e-9)

    def test_unknown_node_raises(self):
        agg = SecureAggregator([0, 1], seed=0)
        with pytest.raises(KeyError):
            agg.mask(9, 1, make_params())

    def test_too_few_nodes_raises(self):
        with pytest.raises(ValueError):
            SecureAggregator([0])

    def test_duplicate_ids_raise(self):
        with pytest.raises(ValueError):
            SecureAggregator([0, 0, 1])


class TestGaussianMechanism:
    def test_clipping_bounds_norm(self):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.0)
        params = make_params()
        out = mech.privatize(params)
        assert np.linalg.norm(to_vector(out)) <= 1.0 + 1e-9

    def test_small_vectors_not_scaled(self):
        mech = GaussianMechanism(clip_norm=1e6, noise_multiplier=0.0)
        params = make_params()
        out = mech.privatize(params)
        np.testing.assert_allclose(to_vector(out), to_vector(params))

    def test_noise_scale(self):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=2.0, seed=1)
        params = {"w": Tensor(np.zeros(2000))}
        out = mech.privatize(params)
        measured = np.std(to_vector(out))
        assert 1.7 < measured < 2.3  # sigma = multiplier * clip = 2.0

    def test_noise_differs_across_calls(self):
        mech = GaussianMechanism(clip_norm=1.0, noise_multiplier=1.0, seed=1)
        params = make_params()
        a = to_vector(mech.privatize(params))
        b = to_vector(mech.privatize(params))
        assert not np.allclose(a, b)

    def test_deterministic_under_seed(self):
        a = GaussianMechanism(1.0, 1.0, seed=5).privatize(make_params())
        b = GaussianMechanism(1.0, 1.0, seed=5).privatize(make_params())
        np.testing.assert_array_equal(to_vector(a), to_vector(b))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            GaussianMechanism(0.0, 1.0)
        with pytest.raises(ValueError):
            GaussianMechanism(1.0, -1.0)
