"""Tests for hierarchical (edge→gateway→cloud) aggregation."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.data import Dataset
from repro.federated import Platform, build_nodes
from repro.federated.hierarchy import GatewayAssignment, HierarchicalPlatform
from repro.nn.parameters import to_vector

RNG = np.random.default_rng(0)


def make_nodes(sizes=(10, 20, 30, 40)):
    datasets = [
        Dataset(x=RNG.normal(size=(n, 4)), y=RNG.integers(0, 3, size=n))
        for n in sizes
    ]
    return build_nodes(datasets, k=3)


def make_tree(value):
    return {"w": Tensor(np.full(3, float(value)))}


class TestGatewayAssignment:
    def test_round_robin_covers_all_nodes(self):
        assignment = GatewayAssignment.round_robin([0, 1, 2, 3, 4], 2)
        assert set(assignment.node_to_gateway) == {0, 1, 2, 3, 4}
        assert assignment.num_gateways == 2

    def test_members(self):
        assignment = GatewayAssignment.round_robin([0, 1, 2, 3], 2)
        assert assignment.gateway_members(0) == [0, 2]
        assert assignment.gateway_members(1) == [1, 3]

    def test_invalid_gateway_count(self):
        with pytest.raises(ValueError):
            GatewayAssignment.round_robin([0, 1], 0)


class TestHierarchicalPlatform:
    def _platform(self, nodes, num_gateways=2):
        assignment = GatewayAssignment.round_robin(
            [n.node_id for n in nodes], num_gateways
        )
        return HierarchicalPlatform(assignment=assignment)

    def test_matches_flat_weighted_mean(self):
        """Hierarchical aggregation must equal the flat aggregation exactly."""
        nodes_flat = make_nodes()
        nodes_hier = make_nodes()
        for i, (a, b) in enumerate(zip(nodes_flat, nodes_hier)):
            a.params = make_tree(i + 1.0)
            b.params = make_tree(i + 1.0)

        flat = Platform()
        flat.global_params = make_tree(0.0)
        expected = flat.aggregate(nodes_flat)

        hier = self._platform(nodes_hier)
        hier.global_params = make_tree(0.0)
        result = hier.aggregate(nodes_hier)

        np.testing.assert_allclose(
            to_vector(result), to_vector(expected), atol=1e-12
        )

    def test_single_gateway_equals_flat(self):
        nodes = make_nodes()
        for i, node in enumerate(nodes):
            node.params = make_tree(i)
        hier = self._platform(nodes, num_gateways=1)
        hier.global_params = make_tree(0.0)
        result = hier.aggregate(nodes)
        flat_nodes = make_nodes()
        for i, node in enumerate(flat_nodes):
            node.params = make_tree(i)
        flat = Platform()
        flat.global_params = make_tree(0.0)
        expected = flat.aggregate(flat_nodes)
        np.testing.assert_allclose(to_vector(result), to_vector(expected))

    def test_wan_carries_gateway_count_not_node_count(self):
        nodes = make_nodes()
        hier = self._platform(nodes, num_gateways=2)
        hier.initialize(make_tree(0.0), nodes)
        hier.aggregate(nodes)
        wan_uploads = [
            r for r in hier.wan_log.records
            if r.direction == "up" and r.round_index == 1
        ]
        lan_uploads = [
            r for r in hier.lan_log.records
            if r.direction == "up" and r.round_index == 1
        ]
        assert len(wan_uploads) == 2  # one per gateway
        assert len(lan_uploads) == 4  # one per node

    def test_wan_cheaper_than_flat_platform(self):
        nodes_flat, nodes_hier = make_nodes(), make_nodes()
        flat = Platform()
        flat.initialize(make_tree(0.0), nodes_flat)
        flat.aggregate(nodes_flat)

        hier = self._platform(nodes_hier, num_gateways=2)
        hier.initialize(make_tree(0.0), nodes_hier)
        hier.aggregate(nodes_hier)

        assert hier.wan_log.uplink_bytes < flat.comm_log.uplink_bytes

    def test_comm_log_property_is_wan(self):
        nodes = make_nodes()
        hier = self._platform(nodes)
        assert hier.comm_log is hier.wan_log

    def test_missing_assignment_raises(self):
        nodes = make_nodes()
        assignment = GatewayAssignment.round_robin([99], 1)
        hier = HierarchicalPlatform(assignment=assignment)
        hier.global_params = make_tree(0.0)
        for node in nodes:
            node.params = make_tree(1.0)
        with pytest.raises(KeyError):
            hier.aggregate(nodes)

    def test_trains_fedml_end_to_end(self):
        from repro.core import FedML, FedMLConfig
        from repro.data import SyntheticConfig, generate_synthetic

        fed = generate_synthetic(
            SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=8, mean_samples=18, seed=2)
        )
        from repro.nn import LogisticRegression

        model = LogisticRegression(60, 10)
        sources = list(range(8))
        assignment = GatewayAssignment.round_robin(sources, 2)
        runner = FedML(
            model,
            FedMLConfig(alpha=0.05, beta=0.05, t0=5, total_iterations=20, k=5),
            platform=HierarchicalPlatform(assignment=assignment),
        )
        result = runner.fit(fed, sources)
        losses = result.global_meta_losses
        assert losses[-1] < losses[0]

    def test_transfer_before_training_raises(self):
        hier = HierarchicalPlatform(
            assignment=GatewayAssignment.round_robin([0, 1], 1)
        )
        with pytest.raises(RuntimeError):
            hier.transfer_to_target()
