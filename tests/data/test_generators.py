"""Tests for the three workload generators."""

import numpy as np
import pytest

from repro.data import (
    MnistLikeConfig,
    Sent140LikeConfig,
    SyntheticConfig,
    digit_prototypes,
    generate_mnist_like,
    generate_sent140_like,
    generate_synthetic,
)


class TestSynthetic:
    def test_shapes_and_metadata(self):
        fed = generate_synthetic(SyntheticConfig(num_nodes=10, seed=0))
        assert len(fed) == 10
        assert fed.num_classes == 10
        assert fed.nodes[0].x.shape[1] == 60
        assert len(fed.metadata["true_w"]) == 10

    def test_deterministic_under_seed(self):
        a = generate_synthetic(SyntheticConfig(num_nodes=5, seed=3))
        b = generate_synthetic(SyntheticConfig(num_nodes=5, seed=3))
        np.testing.assert_array_equal(a.nodes[2].x, b.nodes[2].x)
        np.testing.assert_array_equal(a.nodes[2].y, b.nodes[2].y)

    def test_different_seeds_differ(self):
        a = generate_synthetic(SyntheticConfig(num_nodes=5, seed=3))
        b = generate_synthetic(SyntheticConfig(num_nodes=5, seed=4))
        assert not np.array_equal(a.nodes[0].x, b.nodes[0].x)

    def test_labels_consistent_with_true_model(self):
        fed = generate_synthetic(SyntheticConfig(num_nodes=4, seed=1))
        for i, node in enumerate(fed.nodes):
            w = fed.metadata["true_w"][i]
            b = fed.metadata["true_b"][i]
            expected = np.argmax(node.x @ w.T + b, axis=1)
            np.testing.assert_array_equal(node.y, expected)

    def test_alpha_increases_model_heterogeneity(self):
        """Larger α̃ spreads the per-node true models further apart."""

        def model_spread(alpha):
            fed = generate_synthetic(
                SyntheticConfig(alpha=alpha, beta=0.0, num_nodes=30, seed=0)
            )
            means = np.array([w.mean() for w in fed.metadata["true_w"]])
            return means.std()

        assert model_spread(1.0) > model_spread(0.0)

    def test_beta_increases_feature_heterogeneity(self):
        def feature_spread(beta):
            fed = generate_synthetic(
                SyntheticConfig(alpha=0.0, beta=beta, num_nodes=30, seed=0)
            )
            means = np.array([node.x.mean() for node in fed.nodes])
            return means.std()

        assert feature_spread(1.0) > feature_spread(0.0)

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            SyntheticConfig(alpha=-1.0)
        with pytest.raises(ValueError):
            SyntheticConfig(num_nodes=1)

    def test_name_encodes_similarity_knobs(self):
        fed = generate_synthetic(SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=3))
        assert fed.name == "Synthetic(0.5,0.5)"


class TestMnistLike:
    def test_prototypes_are_distinct(self):
        protos = digit_prototypes()
        assert protos.shape == (10, 64)
        for i in range(10):
            for j in range(i + 1, 10):
                assert np.abs(protos[i] - protos[j]).sum() > 3

    def test_each_node_has_two_classes(self):
        fed = generate_mnist_like(MnistLikeConfig(num_nodes=20, seed=0))
        for node in fed.nodes:
            assert len(np.unique(node.y)) <= 2

    def test_pixels_in_unit_range(self):
        fed = generate_mnist_like(MnistLikeConfig(num_nodes=5, seed=0))
        for node in fed.nodes:
            assert node.x.min() >= 0.0
            assert node.x.max() <= 1.0

    def test_deterministic(self):
        a = generate_mnist_like(MnistLikeConfig(num_nodes=5, seed=2))
        b = generate_mnist_like(MnistLikeConfig(num_nodes=5, seed=2))
        np.testing.assert_array_equal(a.nodes[1].x, b.nodes[1].x)

    def test_class_signal_is_learnable_by_nearest_prototype(self):
        """Noisy digits must still be closest to their own prototype mostly."""
        fed = generate_mnist_like(
            MnistLikeConfig(num_nodes=10, jitter=False, seed=0)
        )
        protos = digit_prototypes()
        correct = total = 0
        for node in fed.nodes:
            dists = ((node.x[:, None, :] - protos[None]) ** 2).sum(axis=2)
            nearest = np.argmin(dists, axis=1)
            correct += int((nearest == node.y).sum())
            total += len(node)
        assert correct / total > 0.9

    def test_statistics_close_to_table1(self):
        fed = generate_mnist_like(MnistLikeConfig(num_nodes=100, seed=0))
        stats = fed.statistics()
        assert stats["nodes"] == 100
        assert 25 < stats["samples_mean"] < 45


class TestSent140Like:
    def test_shapes(self):
        fed = generate_sent140_like(
            Sent140LikeConfig(num_nodes=10, seq_len=25, vocab_size=64, seed=0)
        )
        assert fed.nodes[0].x.shape[1] == 25
        assert fed.num_classes == 2

    def test_token_ids_in_vocab(self):
        fed = generate_sent140_like(
            Sent140LikeConfig(num_nodes=10, vocab_size=30, seed=0)
        )
        for node in fed.nodes:
            assert node.x.min() >= 0
            assert node.x.max() < 30
            assert node.x.dtype.kind == "i"

    def test_binary_labels(self):
        fed = generate_sent140_like(Sent140LikeConfig(num_nodes=10, seed=0))
        for node in fed.nodes:
            assert set(np.unique(node.y)).issubset({0, 1})

    def test_sentiment_signal_exists(self):
        """Positive-pool tokens must be more frequent in positive samples."""
        cfg = Sent140LikeConfig(num_nodes=40, vocab_size=30, seed=0)
        fed = generate_sent140_like(cfg)
        third = cfg.vocab_size // 3
        pos_rate = {0: [], 1: []}
        for node in fed.nodes:
            for seq, label in zip(node.x, node.y):
                share = np.mean(seq < third)
                pos_rate[int(label)].append(share)
        assert np.mean(pos_rate[1]) > np.mean(pos_rate[0]) + 0.2

    def test_deterministic(self):
        a = generate_sent140_like(Sent140LikeConfig(num_nodes=5, seed=9))
        b = generate_sent140_like(Sent140LikeConfig(num_nodes=5, seed=9))
        np.testing.assert_array_equal(a.nodes[0].x, b.nodes[0].x)

    def test_tiny_vocab_raises(self):
        with pytest.raises(ValueError):
            generate_sent140_like(Sent140LikeConfig(vocab_size=6, num_nodes=3))

    def test_table1_scale_default(self):
        cfg = Sent140LikeConfig()
        assert cfg.num_nodes == 706
        assert cfg.mean_samples == 42.0
