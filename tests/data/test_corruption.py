"""Tests for data-corruption (failure-injection) models."""

import numpy as np
import pytest

from repro.data import (
    Dataset,
    FederatedDataset,
    add_feature_noise,
    corrupt_nodes,
    flip_labels,
    poison_node_labels,
)

RNG = np.random.default_rng(0)


def make_dataset(n=40, classes=4):
    return Dataset(
        x=RNG.normal(size=(n, 3)), y=RNG.integers(0, classes, size=n)
    )


class TestFlipLabels:
    def test_flips_requested_fraction(self):
        ds = make_dataset(100)
        flipped = flip_labels(ds, 0.3, 4, np.random.default_rng(1))
        changed = np.sum(flipped.y != ds.y)
        assert changed == 30

    def test_flipped_labels_are_different_classes(self):
        ds = make_dataset(100)
        flipped = flip_labels(ds, 1.0, 4, np.random.default_rng(1))
        assert np.all(flipped.y != ds.y)
        assert flipped.y.min() >= 0
        assert flipped.y.max() < 4

    def test_zero_fraction_is_identity(self):
        ds = make_dataset()
        flipped = flip_labels(ds, 0.0, 4, np.random.default_rng(1))
        np.testing.assert_array_equal(flipped.y, ds.y)

    def test_original_untouched(self):
        ds = make_dataset()
        before = ds.y.copy()
        flip_labels(ds, 0.5, 4, np.random.default_rng(1))
        np.testing.assert_array_equal(ds.y, before)

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            flip_labels(make_dataset(), 1.5, 4, np.random.default_rng(0))


class TestFeatureNoise:
    def test_noise_changes_features_not_labels(self):
        ds = make_dataset()
        noisy = add_feature_noise(ds, 0.5, np.random.default_rng(1))
        assert not np.array_equal(noisy.x, ds.x)
        np.testing.assert_array_equal(noisy.y, ds.y)

    def test_zero_stddev_is_identity(self):
        ds = make_dataset()
        noisy = add_feature_noise(ds, 0.0, np.random.default_rng(1))
        np.testing.assert_array_equal(noisy.x, ds.x)

    def test_negative_stddev_raises(self):
        with pytest.raises(ValueError):
            add_feature_noise(make_dataset(), -1.0, np.random.default_rng(0))


class TestPoisonNode:
    def test_all_labels_become_target(self):
        poisoned = poison_node_labels(make_dataset(), target_class=2)
        assert set(poisoned.y.tolist()) == {2}

    def test_negative_target_raises(self):
        with pytest.raises(ValueError):
            poison_node_labels(make_dataset(), target_class=-1)


class TestCorruptNodes:
    def _fed(self):
        return FederatedDataset(
            name="toy", nodes=[make_dataset() for _ in range(4)], num_classes=4
        )

    def test_only_selected_nodes_corrupted(self):
        fed = self._fed()
        out = corrupt_nodes(fed, [1], lambda ds: poison_node_labels(ds, 0))
        assert set(out.nodes[1].y.tolist()) == {0}
        np.testing.assert_array_equal(out.nodes[0].y, fed.nodes[0].y)
        assert out.nodes[0] is fed.nodes[0]  # untouched nodes shared

    def test_name_records_corruption(self):
        out = corrupt_nodes(
            self._fed(), [0, 2], lambda ds: poison_node_labels(ds, 0)
        )
        assert "corrupted(2)" in out.name

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            corrupt_nodes(self._fed(), [9], lambda ds: ds)

    def test_poisoned_nodes_corrupt_the_global_model_locally(self):
        """End-to-end failure injection: a node training on poisoned labels
        drags the global model away from the true map *on that node's own
        feature region* (per-node clusters keep the damage local — which is
        itself the realistic behaviour)."""
        from repro.core import FedAvg, FedAvgConfig
        from repro.data import SyntheticConfig, generate_synthetic
        from repro.nn import LogisticRegression, accuracy

        fed = generate_synthetic(
            SyntheticConfig(
                alpha=0.0, beta=0.0, num_nodes=8, mean_samples=20,
                input_dim=20, num_classes=5, seed=4,
            )
        )
        model = LogisticRegression(20, 5)
        cfg = FedAvgConfig(learning_rate=0.05, t0=5, total_iterations=80, seed=0)
        sources = list(range(8))
        corrupted_ids = [0, 1, 2]

        clean = FedAvg(model, cfg).fit(fed, sources)
        poisoned_fed = corrupt_nodes(
            fed, corrupted_ids, lambda ds: poison_node_labels(ds, 4)
        )
        poisoned = FedAvg(model, cfg).fit(poisoned_fed, sources)

        # Evaluate both models on the corrupted nodes' ORIGINAL clean data.
        affected = fed.nodes[corrupted_ids[0]]
        for i in corrupted_ids[1:]:
            affected = affected.concat(fed.nodes[i])
        clean_acc = accuracy(model.apply(clean.params, affected.x), affected.y)
        poisoned_acc = accuracy(
            model.apply(poisoned.params, affected.x), affected.y
        )
        assert poisoned_acc < clean_acc - 0.1
