"""Tests for partitioning helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import power_law_sizes, shard_labels


class TestPowerLawSizes:
    def test_respects_minimum(self):
        sizes = power_law_sizes(100, 20.0, np.random.default_rng(0), minimum=5)
        assert sizes.min() >= 5

    def test_mean_is_approximately_requested(self):
        sizes = power_law_sizes(2000, 30.0, np.random.default_rng(0), minimum=4)
        assert abs(sizes.mean() - 30.0) < 4.0

    def test_heavy_tail_exists(self):
        sizes = power_law_sizes(2000, 30.0, np.random.default_rng(0), minimum=4)
        assert sizes.max() > 3 * sizes.mean()

    def test_deterministic_under_seed(self):
        a = power_law_sizes(50, 20.0, np.random.default_rng(7))
        b = power_law_sizes(50, 20.0, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            power_law_sizes(0, 20.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            power_law_sizes(5, 3.0, np.random.default_rng(0), minimum=4)

    @given(st.integers(1, 200), st.integers(10, 60))
    @settings(max_examples=25, deadline=None)
    def test_property_counts_and_floor(self, num_nodes, mean):
        sizes = power_law_sizes(
            num_nodes, float(mean), np.random.default_rng(0), minimum=4
        )
        assert len(sizes) == num_nodes
        assert np.all(sizes >= 4)
        assert sizes.dtype.kind == "i"


class TestShardLabels:
    def test_each_node_gets_requested_count(self):
        shards = shard_labels(100, 10, 2, np.random.default_rng(0))
        assert all(len(s) == 2 for s in shards)

    def test_labels_within_range_and_distinct(self):
        shards = shard_labels(100, 10, 2, np.random.default_rng(0))
        for s in shards:
            assert len(set(s.tolist())) == 2
            assert all(0 <= label < 10 for label in s)

    def test_all_classes_covered_with_enough_nodes(self):
        shards = shard_labels(50, 10, 2, np.random.default_rng(0))
        covered = set()
        for s in shards:
            covered.update(s.tolist())
        assert covered == set(range(10))

    def test_too_many_labels_per_node_raises(self):
        with pytest.raises(ValueError):
            shard_labels(5, 3, 4, np.random.default_rng(0))

    def test_full_assignment_allowed(self):
        shards = shard_labels(3, 4, 4, np.random.default_rng(0))
        for s in shards:
            np.testing.assert_array_equal(np.sort(s), np.arange(4))

    @given(st.integers(1, 50), st.integers(2, 10))
    @settings(max_examples=25, deadline=None)
    def test_property_sorted_unique(self, num_nodes, num_classes):
        per_node = min(2, num_classes)
        shards = shard_labels(
            num_nodes, num_classes, per_node, np.random.default_rng(1)
        )
        for s in shards:
            assert list(s) == sorted(set(s.tolist()))
