"""Tests for dataset containers."""

import numpy as np
import pytest

from repro.data import Dataset, FederatedDataset

RNG = np.random.default_rng(0)


def make_dataset(n=10, d=4):
    return Dataset(x=RNG.normal(size=(n, d)), y=RNG.integers(0, 3, size=n))


class TestDataset:
    def test_length(self):
        assert len(make_dataset(7)) == 7

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            Dataset(x=np.zeros((3, 2)), y=np.zeros(4, dtype=int))

    def test_num_features_flattens(self):
        ds = Dataset(x=np.zeros((5, 2, 3)), y=np.zeros(5, dtype=int))
        assert ds.num_features == 6

    def test_split_sizes(self):
        train, test = make_dataset(10).split(3)
        assert len(train) == 3
        assert len(test) == 7

    def test_split_is_disjoint_and_complete(self):
        ds = make_dataset(10)
        train, test = ds.split(4)
        recombined = np.concatenate([train.x, test.x])
        np.testing.assert_array_equal(recombined, ds.x)

    @pytest.mark.parametrize("k", [0, 10, 11])
    def test_split_invalid_k_raises(self, k):
        with pytest.raises(ValueError):
            make_dataset(10).split(k)

    def test_subset(self):
        ds = make_dataset(10)
        sub = ds.subset([1, 3])
        np.testing.assert_array_equal(sub.x, ds.x[[1, 3]])

    def test_shuffled_preserves_pairs(self):
        ds = make_dataset(20)
        shuffled = ds.shuffled(np.random.default_rng(1))
        pairs = {(tuple(row), label) for row, label in zip(ds.x, ds.y)}
        pairs2 = {(tuple(row), label) for row, label in zip(shuffled.x, shuffled.y)}
        assert pairs == pairs2

    def test_concat(self):
        a, b = make_dataset(3), make_dataset(4)
        assert len(a.concat(b)) == 7

    def test_batches_cover_everything(self):
        ds = make_dataset(10)
        batches = list(ds.batches(3))
        assert sum(len(b) for b in batches) == 10
        assert len(batches) == 4

    def test_batches_shuffled(self):
        ds = make_dataset(50)
        batch = next(ds.batches(50, rng=np.random.default_rng(0)))
        assert not np.array_equal(batch.x, ds.x)


class TestFederatedDataset:
    def _make(self, num_nodes=10):
        nodes = [make_dataset(n) for n in range(5, 5 + num_nodes)]
        return FederatedDataset(name="test", nodes=nodes, num_classes=3)

    def test_statistics(self):
        fed = self._make(4)  # sizes 5,6,7,8
        stats = fed.statistics()
        assert stats["nodes"] == 4
        assert stats["samples_mean"] == pytest.approx(6.5)
        assert stats["samples_total"] == 26

    def test_split_sources_targets_partition(self):
        fed = self._make(10)
        sources, targets = fed.split_sources_targets(0.8, np.random.default_rng(0))
        assert len(sources) == 8
        assert len(targets) == 2
        assert set(sources) | set(targets) == set(range(10))
        assert not set(sources) & set(targets)

    def test_split_always_leaves_a_target(self):
        fed = self._make(3)
        sources, targets = fed.split_sources_targets(0.99, np.random.default_rng(0))
        assert len(targets) >= 1

    def test_split_invalid_fraction_raises(self):
        fed = self._make(3)
        with pytest.raises(ValueError):
            fed.split_sources_targets(1.0, np.random.default_rng(0))

    def test_node_split_protocol(self):
        fed = self._make(4)
        split = fed.node_split(0, k=2)
        assert len(split.train) == 2
        assert len(split.test) == len(fed.nodes[0]) - 2

    def test_sizes(self):
        fed = self._make(3)
        np.testing.assert_array_equal(fed.sizes(), [5, 6, 7])
