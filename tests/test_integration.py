"""End-to-end integration tests combining multiple subsystems."""

import numpy as np
import pytest

from repro.core import FedML, FedMLConfig, evaluate_adaptation
from repro.data import SyntheticConfig, generate_synthetic
from repro.federated import (
    CompressedPlatform,
    DropoutInjector,
    FullParticipation,
    Platform,
    UniformQuantizer,
)
from repro.metrics import target_splits
from repro.nn import LogisticRegression
from repro.nn.parameters import to_vector


@pytest.fixture(scope="module")
def workload():
    fed = generate_synthetic(
        SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=10, mean_samples=20, seed=1)
    )
    sources, targets = fed.split_sources_targets(0.8, np.random.default_rng(0))
    return fed, sources, targets


MODEL = LogisticRegression(60, 10)
BASE = dict(alpha=0.05, beta=0.05, t0=5, total_iterations=40, k=5, seed=0)


class TestCompressedTraining:
    def test_fedml_trains_through_quantized_uploads(self, workload):
        fed, sources, _ = workload
        runner = FedML(
            MODEL,
            FedMLConfig(**BASE),
            platform=CompressedPlatform(UniformQuantizer(bits=8)),
        )
        result = runner.fit(fed, sources)
        losses = result.global_meta_losses
        assert losses[-1] < losses[0]

    def test_quantized_run_close_to_full_precision(self, workload):
        fed, sources, _ = workload
        init = MODEL.init(np.random.default_rng(7))
        full = FedML(MODEL, FedMLConfig(**BASE)).fit(fed, sources, init_params=init)
        quant = FedML(
            MODEL,
            FedMLConfig(**BASE),
            platform=CompressedPlatform(UniformQuantizer(bits=16)),
        ).fit(fed, sources, init_params=init)
        drift = np.linalg.norm(to_vector(full.params) - to_vector(quant.params))
        scale = np.linalg.norm(to_vector(full.params))
        assert drift < 0.05 * scale


class TestFaultTolerantTraining:
    def test_training_survives_random_dropouts(self, workload):
        fed, sources, _ = workload
        participation = DropoutInjector(
            FullParticipation(), rate=0.4, rng=np.random.default_rng(3)
        )
        runner = FedML(MODEL, FedMLConfig(**BASE), participation=participation)
        result = runner.fit(fed, sources)
        losses = result.global_meta_losses
        assert losses[-1] < losses[0]
        # All nodes stay synchronized despite dropouts.
        reference = to_vector(result.nodes[0].params)
        for node in result.nodes[1:]:
            np.testing.assert_array_equal(to_vector(node.params), reference)

    def test_dropout_run_adapts_at_targets(self, workload):
        fed, sources, targets = workload
        participation = DropoutInjector(
            FullParticipation(), rate=0.3, rng=np.random.default_rng(4)
        )
        result = FedML(
            MODEL, FedMLConfig(**BASE), participation=participation
        ).fit(fed, sources)
        splits = target_splits(fed, targets, k=5)
        curve = evaluate_adaptation(
            MODEL, result.params, splits, alpha=0.05, max_steps=5
        )
        assert curve.losses[5] < curve.losses[0]


class TestFullPipelineDeterminism:
    def test_two_identical_pipelines_agree_bit_for_bit(self, workload):
        fed, sources, targets = workload

        def pipeline():
            result = FedML(MODEL, FedMLConfig(**BASE)).fit(fed, sources)
            splits = target_splits(fed, targets, k=5)
            curve = evaluate_adaptation(
                MODEL, result.params, splits, alpha=0.05, max_steps=3
            )
            return to_vector(result.params), curve.losses

        params_a, losses_a = pipeline()
        params_b, losses_b = pipeline()
        np.testing.assert_array_equal(params_a, params_b)
        assert losses_a == losses_b

    def test_comm_accounting_consistent_with_rounds(self, workload):
        fed, sources, _ = workload
        platform = Platform()
        result = FedML(MODEL, FedMLConfig(**BASE), platform=platform).fit(
            fed, sources
        )
        rounds = platform.rounds_completed
        uploads = sum(
            1 for r in platform.comm_log.records if r.direction == "up"
        )
        assert uploads == rounds * len(result.nodes)


class TestPrivacyPipeline:
    def test_secure_aggregation_matches_plain_fedml_round(self, workload):
        """One FedML aggregation computed through secure masking equals the
        platform's weighted average (with node-side pre-scaling)."""
        from repro.federated import SecureAggregator
        from repro.federated.aggregation import weighted_mean

        fed, sources, _ = workload
        runner = FedML(MODEL, FedMLConfig(**BASE))
        nodes = runner.build_source_nodes(fed, sources)
        platform = Platform()
        platform.initialize(MODEL.init(np.random.default_rng(0)), nodes)
        for node in nodes:
            runner.local_step(node)

        weights = np.array([n.weight for n in nodes])
        weights = weights / weights.sum()
        expected = weighted_mean(
            [n.params for n in nodes], weights.tolist()
        )

        agg = SecureAggregator([n.node_id for n in nodes], seed=5)
        masked = [
            agg.mask(
                n.node_id, 1, agg.prescale(n.params, w, len(nodes))
            )
            for n, w in zip(nodes, weights)
        ]
        secure = agg.aggregate(masked, weights.tolist())
        np.testing.assert_allclose(
            to_vector(secure), to_vector(expected), atol=1e-9
        )
