"""Unit tests for fault plans, schedules, and the CLI spec parser."""

import pytest

from repro.faults import (
    CorruptSchedule,
    CrashSchedule,
    DelaySchedule,
    DropSchedule,
    ExplicitSchedule,
    FaultEvent,
    FaultPlan,
    FlakyWorkerSchedule,
    KillSchedule,
)

NODES = [0, 1, 2, 3, 4]
BLOCKS = 4


class TestFaultEventValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultEvent("meltdown", 0)

    def test_negative_block(self):
        with pytest.raises(ValueError):
            FaultEvent("drop", -1)

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            FaultEvent("crash", 0, 1, duration=0)

    def test_bad_corruption_mode(self):
        with pytest.raises(ValueError):
            FaultEvent("corrupt", 0, 1, mode="zero")

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            FaultEvent("corrupt", 0, 1, fraction=0.0)
        with pytest.raises(ValueError):
            FaultEvent("corrupt", 0, 1, fraction=1.5)

    def test_negative_delay(self):
        with pytest.raises(ValueError):
            FaultEvent("delay", 0, 1, delay_s=-1.0)

    def test_bad_fail_times(self):
        with pytest.raises(ValueError):
            FaultEvent("flaky", 0, 1, fail_times=0)


class TestCompile:
    def test_empty_plan_compiles_empty(self):
        compiled = FaultPlan.none().compile(NODES, BLOCKS)
        assert compiled.empty
        assert compiled.crashed_nodes(0) == set()

    def test_same_seed_same_faults(self):
        plan = FaultPlan(
            [CrashSchedule(rate=0.3), DropSchedule(rate=0.3)], seed=42
        )
        assert plan.compile(NODES, BLOCKS) == plan.compile(NODES, BLOCKS)

    def test_different_seed_different_faults(self):
        schedules = [DropSchedule(rate=0.5)]
        a = FaultPlan(schedules, seed=0).compile(NODES, BLOCKS)
        b = FaultPlan(schedules, seed=1).compile(NODES, BLOCKS)
        assert a.drops != b.drops

    def test_compile_independent_of_node_order(self):
        plan = FaultPlan([DropSchedule(rate=0.5)], seed=7)
        forward = plan.compile(NODES, BLOCKS)
        backward = plan.compile(list(reversed(NODES)), BLOCKS)
        assert forward == backward

    def test_adding_schedule_preserves_earlier_events(self):
        """Each schedule draws its own named stream, so composition is
        stable: appending a schedule never perturbs the ones before it."""
        base = FaultPlan([DropSchedule(rate=0.4)], seed=3)
        extended = FaultPlan(
            [DropSchedule(rate=0.4), CrashSchedule(rate=0.4)], seed=3
        )
        assert base.compile(NODES, BLOCKS).drops == (
            extended.compile(NODES, BLOCKS).drops
        )

    def test_crash_duration_spans_blocks(self):
        plan = FaultPlan(
            [ExplicitSchedule((FaultEvent("crash", 1, 2, duration=2),))]
        )
        compiled = plan.compile(NODES, BLOCKS)
        assert compiled.crashed_nodes(0) == set()
        assert compiled.crashed_nodes(1) == {2}
        assert compiled.crashed_nodes(2) == {2}
        assert compiled.crashed_nodes(3) == set()

    def test_explicit_event_for_unknown_node_rejected(self):
        plan = FaultPlan([ExplicitSchedule((FaultEvent("drop", 0, 99),))])
        with pytest.raises(ValueError):
            plan.compile(NODES, BLOCKS)

    def test_kill_schedule_is_not_node_scoped(self):
        compiled = FaultPlan([KillSchedule(block=2)]).compile(NODES, BLOCKS)
        assert compiled.kills == {2}
        assert not compiled.empty

    def test_delays_accumulate_and_flaky_takes_max(self):
        events = (
            FaultEvent("delay", 0, 1, delay_s=1.0),
            FaultEvent("delay", 0, 1, delay_s=2.5),
            FaultEvent("flaky", 0, 2, fail_times=1),
            FaultEvent("flaky", 0, 2, fail_times=3),
        )
        compiled = FaultPlan([ExplicitSchedule(events)]).compile(NODES, BLOCKS)
        assert compiled.delays[(0, 1)] == pytest.approx(3.5)
        assert compiled.flaky[(0, 2)] == 3

    def test_rate_bounds_checked(self):
        with pytest.raises(ValueError):
            FaultPlan([DropSchedule(rate=1.5)]).compile(NODES, BLOCKS)

    def test_rate_one_hits_every_cell(self):
        compiled = FaultPlan([DropSchedule(rate=1.0)]).compile(NODES, BLOCKS)
        assert len(compiled.drops) == len(NODES) * BLOCKS


class TestFromSpec:
    def test_full_grammar(self):
        plan = FaultPlan.from_spec(
            "crash:rate=0.2,duration=2;"
            "drop:rate=0.1;"
            "corrupt:rate=0.1,mode=scale,scale=5.0;"
            "delay:rate=0.3,delay_s=2.0;"
            "flaky:rate=0.2,fail_times=2;"
            "kill:block=3",
            seed=9,
        )
        kinds = [type(s).__name__ for s in plan.schedules]
        assert kinds == [
            "CrashSchedule",
            "DropSchedule",
            "CorruptSchedule",
            "DelaySchedule",
            "FlakyWorkerSchedule",
            "KillSchedule",
        ]
        assert plan.seed == 9
        assert plan.schedules[0].duration == 2
        assert plan.schedules[2].mode == "scale"
        assert plan.schedules[5].block == 3

    def test_spec_matches_hand_built_plan(self):
        spec = FaultPlan.from_spec("drop:rate=0.4", seed=5)
        built = FaultPlan([DropSchedule(rate=0.4)], seed=5)
        assert spec.compile(NODES, BLOCKS) == built.compile(NODES, BLOCKS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_spec("meltdown:rate=0.2")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="bad 'drop' option"):
            FaultPlan.from_spec("drop:severity=9")

    def test_empty_spec_is_empty_plan(self):
        assert FaultPlan.from_spec("").compile(NODES, BLOCKS).empty

    def test_with_seed_and_describe(self):
        plan = FaultPlan.from_spec("drop:rate=0.1", seed=1)
        reseeded = plan.with_seed(2)
        assert reseeded.seed == 2
        assert reseeded.schedules == plan.schedules
        assert "DropSchedule" in plan.describe()
        assert "empty" in FaultPlan.none().describe()
