"""Chaos matrix for the fleet path (ISSUE 9 satellite).

The eager engine's chaos suite (``test_chaos.py``) proves faulted runs
are as bit-reproducible as clean ones; this file extends the same claims
to the event-driven fleet simulator under *buffered* aggregation, where
determinism is harder — completion order, staleness corrections, and the
carry-over buffer all have to be pure functions of the seed.  Plus the
strongest rail: kill-and-resume bit-equal to uninterrupted, which forces
the checkpoint to round-trip the event queue and the aggregation buffer
(including the base models stale entries are anchored to).
"""

import numpy as np
import pytest

from repro.core.fedavg import FedAvgConfig
from repro.engine.strategies import SgdStrategy
from repro.faults import FaultPlan, RunInterrupted
from repro.federated.fleet import (
    FleetConfig,
    FleetSimulator,
    SyntheticShardFactory,
)
from repro.nn import LogisticRegression


def build_simulator(faults=None, checkpoint=None, seed=0, rounds=6,
                    buffer_size=3, round_timeout_s=None):
    shards = SyntheticShardFactory(seed=seed)
    model = LogisticRegression(shards.input_dim, shards.num_classes)
    strategy = SgdStrategy(
        model,
        FedAvgConfig(
            learning_rate=0.05, t0=2, total_iterations=rounds * 2,
            eval_every=1, seed=seed,
        ),
    )
    config = FleetConfig(
        fleet_size=400,
        sampled_per_round=8,
        rounds=rounds,
        local_steps=2,
        buffer_size=buffer_size,
        staleness_alpha=0.5,
        seed=seed,
        round_timeout_s=round_timeout_s,
    )
    return FleetSimulator(
        strategy, config, shards=shards, faults=faults,
        checkpoint_path=checkpoint,
    )


def trees_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(a[name].data, b[name].data) for name in a
    )


CHAOS_SPECS = [
    "crash:rate=0.3",
    "crash:rate=0.2,duration=2",
    "drop:rate=0.3",
    "delay:rate=0.5,delay_s=5.0",
    "corrupt:rate=0.3,mode=nan",
    "corrupt:rate=0.3,mode=scale,scale=8.0",
    "crash:rate=0.2;drop:rate=0.2;delay:rate=0.3,delay_s=2.0",
]


class TestFleetChaosDeterminism:
    @pytest.mark.parametrize("spec", CHAOS_SPECS)
    def test_faulted_buffered_run_is_bit_reproducible(self, spec):
        plan = FaultPlan.from_spec(spec, seed=7)
        first = build_simulator(faults=plan).run()
        second = build_simulator(faults=plan).run()
        assert trees_equal(first.params, second.params)
        assert first.history.records == second.history.records
        assert first.server_version == second.server_version
        assert first.comm_log.uplink_bytes == second.comm_log.uplink_bytes

    def test_delay_under_timeout_drops_stragglers_deterministically(self):
        plan = FaultPlan.from_spec("delay:rate=0.5,delay_s=100.0", seed=3)
        first = build_simulator(faults=plan, round_timeout_s=10.0).run()
        second = build_simulator(faults=plan, round_timeout_s=10.0).run()
        assert trees_equal(first.params, second.params)
        # The 100s delay blows the 10s deadline: delayed nodes time out,
        # so fewer updates aggregate than in the unfaulted run.
        clean = build_simulator(round_timeout_s=10.0).run()
        assert first.updates_aggregated < clean.updates_aggregated

    def test_nan_corruption_is_quarantined(self):
        plan = FaultPlan.from_spec("corrupt:rate=0.4,mode=nan", seed=1)
        result = build_simulator(faults=plan).run()
        # Poisoned updates never reach the buffer: θ stays finite.
        for tensor in result.params.values():
            assert np.isfinite(tensor.data).all()

    def test_crashed_nodes_cost_no_bytes(self):
        plan = FaultPlan.from_spec("crash:rate=1.0", seed=2)
        result = build_simulator(faults=plan, rounds=2).run()
        # Everyone is down every round: no dispatches, no transfers, no
        # aggregations — but the run itself completes.
        assert result.comm_log.total_bytes == 0
        assert result.server_version == 0


class TestFleetKillAndResume:
    def test_kill_and_resume_bit_equal_to_uninterrupted(self, tmp_path):
        """The checkpoint must round-trip queue + buffer + versions."""
        baseline = build_simulator().run()

        ckpt = str(tmp_path / "fleet.ckpt")
        plan = FaultPlan.from_spec("kill:block=2", seed=0)
        with pytest.raises(RunInterrupted) as info:
            build_simulator(faults=plan, checkpoint=ckpt).run()
        assert info.value.block == 2
        assert info.value.checkpoint_path == ckpt

        resumed = build_simulator(faults=plan, checkpoint=ckpt).run(
            resume=True
        )
        assert trees_equal(baseline.params, resumed.params)
        assert baseline.history.records == resumed.history.records
        assert baseline.server_version == resumed.server_version
        assert baseline.comm_log.uplink_bytes == resumed.comm_log.uplink_bytes
        assert (
            baseline.comm_log.downlink_bytes
            == resumed.comm_log.downlink_bytes
        )
        assert baseline.updates_aggregated == resumed.updates_aggregated

    def test_kill_and_resume_under_chaos(self, tmp_path):
        """Kill + crash/delay faults together: resume still bit-equal."""
        spec = "crash:rate=0.2;delay:rate=0.3,delay_s=2.0"
        baseline = build_simulator(
            faults=FaultPlan.from_spec(spec, seed=5)
        ).run()

        ckpt = str(tmp_path / "fleet_chaos.ckpt")
        killing = FaultPlan.from_spec(spec + ";kill:block=3", seed=5)
        with pytest.raises(RunInterrupted):
            build_simulator(faults=killing, checkpoint=ckpt).run()
        resumed = build_simulator(faults=killing, checkpoint=ckpt).run(
            resume=True
        )
        assert trees_equal(baseline.params, resumed.params)
        assert baseline.history.records == resumed.history.records

    def test_resume_rejects_mismatched_seed(self, tmp_path):
        ckpt = str(tmp_path / "fleet.ckpt")
        plan = FaultPlan.from_spec("kill:block=1", seed=0)
        with pytest.raises(RunInterrupted):
            build_simulator(faults=plan, checkpoint=ckpt).run()
        other = build_simulator(checkpoint=ckpt, seed=1)
        with pytest.raises(ValueError, match="seed"):
            other.run(resume=True)

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            build_simulator().run(resume=True)
