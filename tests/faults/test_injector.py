"""Unit tests for the fault injector and the resilience policy."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.data.dataset import Dataset, NodeSplit
from repro.faults import (
    CorruptSchedule,
    ExplicitSchedule,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultToleranceError,
    FlakyWorkerSchedule,
    KillSchedule,
    ResiliencePolicy,
)
from repro.federated.network import LinkModel
from repro.federated.node import EdgeNode
from repro.obs import MemorySink, Telemetry

#: an effectively free link so block time reduces to compute + delay
FAST_LINK = LinkModel(uplink_bytes_per_s=1e12, downlink_bytes_per_s=1e12, latency_s=0.0)


def make_node(node_id, value=1.0):
    data = Dataset(x=np.zeros((2, 3)), y=np.zeros(2, dtype=np.int64))
    node = EdgeNode(
        node_id=node_id,
        split=NodeSplit(train=data, test=data),
        weight=0.25,
    )
    node.params = {"w": Tensor(np.full(4, value, dtype=np.float64))}
    return node


def make_injector(events, policy=None, telemetry=None, num_nodes=4):
    plan = FaultPlan([ExplicitSchedule(tuple(events))])
    injector = FaultInjector(plan, policy=policy, telemetry=telemetry)
    injector.begin(list(range(num_nodes)), num_blocks=8)
    return injector


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(round_timeout_s=0.0),
            dict(round_timeout_s=-1.0),
            dict(max_retries=-1),
            dict(backoff_base_s=-0.1),
            dict(min_participants=0),
            dict(seconds_per_step=0.0),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ResiliencePolicy(**kwargs)

    def test_backoff_is_exponential(self):
        policy = ResiliencePolicy(backoff_base_s=0.5)
        assert policy.backoff_s(0) == pytest.approx(0.5)
        assert policy.backoff_s(1) == pytest.approx(1.0)
        assert policy.backoff_s(2) == pytest.approx(2.0)


class TestCrashAndKill:
    def test_crashed_reports_window_and_counts(self):
        tel = Telemetry(sink=MemorySink())
        injector = make_injector(
            [FaultEvent("crash", 1, 2, duration=2)], telemetry=tel
        )
        assert injector.crashed(0) == set()
        assert injector.crashed(1) == {2}
        assert injector.crashed(2) == {2}
        assert injector.crashed(3) == set()
        counter = tel.registry.get("fl_faults_total", kind="crash")
        assert counter.value == 2

    def test_kill_scheduled(self):
        injector = make_injector([], num_nodes=2)
        injector._compiled = FaultPlan([KillSchedule(block=3)]).compile(
            [0, 1], 8
        )
        assert not injector.kill_scheduled(2)
        assert injector.kill_scheduled(3)


class TestFlaky:
    def test_recovered_flaky_charges_retries_and_backoff(self):
        tel = Telemetry(sink=MemorySink())
        injector = make_injector(
            [FaultEvent("flaky", 0, 1, fail_times=2)],
            policy=ResiliencePolicy(max_retries=2, backoff_base_s=0.5),
            telemetry=tel,
        )
        failed, backoff = injector.simulate_flaky(0, [0, 1, 2, 3])
        assert failed == set()
        assert backoff == {1: pytest.approx(0.5 + 1.0)}
        assert tel.registry.get("fl_retries_total").value == 2
        assert tel.registry.get("fl_faults_total", kind="flaky").value == 1

    def test_flaky_beyond_budget_fails_the_block(self):
        injector = make_injector(
            [FaultEvent("flaky", 0, 1, fail_times=5)],
            policy=ResiliencePolicy(max_retries=2),
        )
        failed, backoff = injector.simulate_flaky(0, [0, 1])
        assert failed == {1}
        assert 1 in backoff  # the budget was still spent before giving up

    def test_zero_retry_budget_fails_immediately(self):
        injector = make_injector(
            [FaultEvent("flaky", 0, 1, fail_times=1)],
            policy=ResiliencePolicy(max_retries=0),
        )
        failed, backoff = injector.simulate_flaky(0, [0, 1])
        assert failed == {1}
        assert backoff == {}


class TestFilterUpdates:
    def test_drop_excludes_node(self):
        tel = Telemetry(sink=MemorySink())
        injector = make_injector([FaultEvent("drop", 0, 1)], telemetry=tel)
        nodes = [make_node(i) for i in range(4)]
        kept = injector.filter_updates(0, nodes, set(), steps=3)
        assert [n.node_id for n in kept] == [0, 2, 3]
        assert tel.registry.get("fl_faults_total", kind="drop").value == 1

    def test_corrupt_nan_is_quarantined(self):
        tel = Telemetry(sink=MemorySink())
        injector = make_injector(
            [FaultEvent("corrupt", 0, 1, mode="nan")], telemetry=tel
        )
        nodes = [make_node(i) for i in range(4)]
        kept = injector.filter_updates(0, nodes, set(), steps=3)
        assert [n.node_id for n in kept] == [0, 2, 3]
        assert np.isnan(nodes[1].params["w"].data).all()
        assert tel.registry.get("fl_quarantined_total").value == 1
        assert tel.registry.get("fl_faults_total", kind="corrupt").value == 1

    def test_partial_nan_fraction_poisons_some_entries(self):
        injector = make_injector(
            [FaultEvent("corrupt", 0, 1, mode="nan", fraction=0.5)]
        )
        node = make_node(1)
        node.params = {"w": Tensor(np.ones(1000, dtype=np.float64))}
        injector.filter_updates(0, [make_node(0), node], set(), steps=1)
        nan_count = int(np.isnan(node.params["w"].data).sum())
        assert 0 < nan_count < 1000

    def test_corrupt_scale_passes_quarantine_but_scales(self):
        injector = make_injector(
            [FaultEvent("corrupt", 0, 1, mode="scale", scale=10.0)]
        )
        nodes = [make_node(i, value=2.0) for i in range(4)]
        kept = injector.filter_updates(0, nodes, set(), steps=3)
        # finite, so it stays in the aggregate — silently poisoned
        assert [n.node_id for n in kept] == [0, 1, 2, 3]
        np.testing.assert_allclose(nodes[1].params["w"].data, 20.0)

    def test_corruption_is_deterministic(self):
        def run():
            injector = make_injector(
                [FaultEvent("corrupt", 0, 1, mode="nan", fraction=0.3)]
            )
            node = make_node(1)
            node.params = {"w": Tensor(np.ones(64, dtype=np.float64))}
            injector.filter_updates(0, [make_node(0), node], set(), steps=1)
            return np.isnan(node.params["w"].data)

        np.testing.assert_array_equal(run(), run())

    def test_delay_without_timeout_only_moves_the_clock(self):
        tel = Telemetry(sink=MemorySink())
        injector = make_injector(
            [FaultEvent("delay", 0, 1, delay_s=30.0)], telemetry=tel
        )
        nodes = [make_node(i) for i in range(4)]
        kept = injector.filter_updates(0, nodes, set(), steps=3)
        assert len(kept) == 4
        assert tel.registry.get("fl_faults_total", kind="delay").value == 1
        # no timeout configured -> no straggler accounting, no clock
        assert injector.sim_clock_s == 0.0

    def test_timeout_drops_delayed_straggler(self):
        tel = Telemetry(sink=MemorySink())
        policy = ResiliencePolicy(
            round_timeout_s=5.0, seconds_per_step=0.05, link=FAST_LINK
        )
        injector = make_injector(
            [FaultEvent("delay", 0, 1, delay_s=30.0)],
            policy=policy,
            telemetry=tel,
        )
        nodes = [make_node(i) for i in range(4)]
        kept = injector.filter_updates(0, nodes, set(), steps=3)
        assert [n.node_id for n in kept] == [0, 2, 3]
        assert tel.registry.get("fl_stragglers_dropped_total").value == 1
        # the round clock advances by the slowest *kept* node's block time
        assert injector.sim_clock_s == pytest.approx(3 * 0.05)

    def test_timeout_dropping_everyone_keeps_min_participants(self):
        policy = ResiliencePolicy(
            round_timeout_s=0.01,
            min_participants=2,
            seconds_per_step=0.05,
            link=FAST_LINK,
        )
        events = [
            FaultEvent("delay", 0, node_id, delay_s=float(node_id))
            for node_id in range(4)
        ]
        injector = make_injector(events, policy=policy)
        nodes = [make_node(i) for i in range(4)]
        kept = injector.filter_updates(0, nodes, set(), steps=3)
        # the two fastest nodes survive even though all missed the deadline
        assert [n.node_id for n in kept] == [0, 1]

    def test_floor_reinstates_dropped_update_over_stale(self):
        policy = ResiliencePolicy(min_participants=2)
        injector = make_injector(
            [FaultEvent("drop", 0, 1), FaultEvent("drop", 0, 2)],
            policy=policy,
        )
        nodes = [make_node(i) for i in range(4)]
        # nodes 0 and 3 stale (crashed): only drops 1, 2 computed anything
        kept = injector.filter_updates(0, nodes, {0, 3}, steps=3)
        assert [n.node_id for n in kept] == [1, 2]

    def test_quarantined_update_is_never_reinstated(self):
        policy = ResiliencePolicy(min_participants=2)
        injector = make_injector(
            [FaultEvent("corrupt", 0, 0, mode="nan"), FaultEvent("drop", 0, 1)],
            policy=policy,
        )
        nodes = [make_node(i) for i in range(3)]
        kept = injector.filter_updates(0, nodes, set(), steps=3)
        # node 0 is poisoned: the floor backfills from the dropped node 1
        assert [n.node_id for n in kept] == [2, 1]

    def test_nothing_usable_raises(self):
        injector = make_injector(
            [FaultEvent("corrupt", 0, i, mode="nan") for i in range(2)],
            num_nodes=2,
        )
        nodes = [make_node(i) for i in range(2)]
        with pytest.raises(FaultToleranceError, match="no usable updates"):
            injector.filter_updates(0, nodes, set(), steps=3)

    def test_stale_node_backfills_as_last_resort(self):
        policy = ResiliencePolicy(min_participants=2)
        injector = make_injector(
            [FaultEvent("drop", 0, 1)], policy=policy, num_nodes=3
        )
        nodes = [make_node(i) for i in range(3)]
        # node 2 crashed (stale); drop loses node 1 -> floor prefers the
        # dropped update (computed) before falling back to stale params
        kept = injector.filter_updates(0, nodes, {2}, steps=3)
        assert [n.node_id for n in kept] == [0, 1]
