"""Engine retry/drop behaviour under *real* executor failures.

Plan-injected flakiness is resolved synthetically by the injector
(``tests/faults/test_chaos.py``); these tests throw genuine exceptions
from ``local_step`` and check the engine's snapshot-restore-rerun path.
"""

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate_synthetic
from repro.engine import (
    EngineOptions,
    ExecutorError,
    ParallelExecutor,
    RoundEngine,
    SerialExecutor,
)
from repro.faults import ResiliencePolicy
from repro.nn import LogisticRegression
from repro.nn.parameters import to_vector
from repro.obs import MemorySink, Telemetry

from ..engine.test_executors import (
    ExplodingStrategy,
    NoisyConfig,
    NoisyStrategy,
)


@pytest.fixture(scope="module")
def workload():
    fed = generate_synthetic(
        SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=6, mean_samples=20, seed=1)
    )
    return fed, list(range(6)), LogisticRegression(60, 10)


class FlakyOnceStrategy(NoisyStrategy):
    """Fails node 3's first-ever step — *after* mutating its params, so a
    successful retry proves the pre-block snapshot restore is complete."""

    def __init__(self, model, config):
        super().__init__(model, config)
        self.exploded = False

    def local_step(self, node):
        loss = super().local_step(node)
        if node.node_id == 3 and not self.exploded:
            self.exploded = True
            raise ValueError("transient failure")
        return loss


def drop_policy(max_retries=1):
    return ResiliencePolicy(drop_on_failure=True, max_retries=max_retries)


class TestRealFailures:
    def test_default_policy_raises_after_retries(self, workload):
        fed, sources, model = workload
        tel = Telemetry(sink=MemorySink())
        engine = RoundEngine(
            ExplodingStrategy(model, NoisyConfig()),
            telemetry=tel,
            options=EngineOptions(
                resilience=ResiliencePolicy(max_retries=2)
            ),
        )
        with pytest.raises(ExecutorError) as excinfo:
            engine.fit(fed, sources)
        assert excinfo.value.node_id == 3
        assert tel.registry.get("fl_retries_total").value == 2

    def test_drop_on_failure_completes_without_the_node(self, workload):
        fed, sources, model = workload
        tel = Telemetry(sink=MemorySink())
        engine = RoundEngine(
            ExplodingStrategy(model, NoisyConfig()),
            telemetry=tel,
            options=EngineOptions(resilience=drop_policy()),
        )
        result = engine.fit(fed, sources)
        assert np.isfinite(to_vector(result.params)).all()
        node3 = next(n for n in result.nodes if n.node_id == 3)
        assert node3.local_steps == 0
        # node 3 still receives every broadcast
        np.testing.assert_array_equal(
            to_vector(node3.params), to_vector(result.params)
        )
        # one retry per block before the drop (2 blocks at this config)
        assert tel.registry.get("fl_retries_total").value == 2

    def test_drop_on_failure_serial_matches_parallel(self, workload):
        fed, sources, model = workload

        def run(executor):
            engine = RoundEngine(
                ExplodingStrategy(model, NoisyConfig()),
                executor=executor,
                options=EngineOptions(resilience=drop_policy()),
            )
            return engine.fit(fed, sources)

        serial = run(SerialExecutor())
        with ParallelExecutor(max_workers=3) as executor:
            parallel = run(executor)
        np.testing.assert_array_equal(
            to_vector(serial.params), to_vector(parallel.params)
        )
        assert serial.history.records == parallel.history.records

    def test_retry_restores_snapshot_bit_exactly(self, workload):
        """A transient failure absorbed by one retry leaves the run
        bit-identical to a run where the failure never happened."""
        fed, sources, model = workload
        flaky_engine = RoundEngine(
            FlakyOnceStrategy(model, NoisyConfig()),
            options=EngineOptions(
                resilience=ResiliencePolicy(max_retries=2)
            ),
        )
        flaky = flaky_engine.fit(fed, sources)
        clean = RoundEngine(NoisyStrategy(model, NoisyConfig())).fit(
            fed, sources
        )
        np.testing.assert_array_equal(
            to_vector(flaky.params), to_vector(clean.params)
        )
        assert flaky.history.records == clean.history.records
        assert [n.local_steps for n in flaky.nodes] == [
            n.local_steps for n in clean.nodes
        ]
