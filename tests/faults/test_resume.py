"""Kill/resume bit-exactness and the fault-tolerance acceptance criteria."""

import json
import pathlib

import numpy as np
import pytest

from repro.core import FedML, FedMLConfig
from repro.engine import EngineOptions
from repro.faults import (
    CorruptSchedule,
    CrashSchedule,
    FaultPlan,
    FlakyWorkerSchedule,
    KillSchedule,
    ResiliencePolicy,
    RunInterrupted,
)
from repro.nn.parameters import to_vector
from repro.obs import MemorySink, Telemetry

from ..engine.capture_golden import build_runners, build_workload

GOLDEN = json.loads(
    (
        pathlib.Path(__file__).resolve().parent.parent
        / "engine"
        / "golden_traces.json"
    ).read_text()
)


def run(name, options=None, resume=False, telemetry=None):
    fed, sources, model = build_workload()
    kwargs = {}
    if options is not None:
        kwargs["engine_options"] = options
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
    runner = build_runners(model, **kwargs)[name]
    return runner.fit(fed, sources, resume=resume)


def assert_same_run(result, baseline):
    np.testing.assert_array_equal(
        to_vector(result.params), to_vector(baseline.params)
    )
    assert result.history.records == baseline.history.records
    assert (
        result.platform.comm_log.uplink_bytes
        == baseline.platform.comm_log.uplink_bytes
    )
    assert [n.local_steps for n in result.nodes] == [
        n.local_steps for n in baseline.nodes
    ]


class TestKillAndResume:
    @pytest.mark.parametrize("name", ["fedml", "robust-fedml"])
    def test_resume_matches_uninterrupted_run(self, name, tmp_path):
        """robust-fedml also exercises checkpointed strategy extras (the
        adversarial datasets) and checkpointed strategy state."""
        ckpt = str(tmp_path / "run.ckpt")
        options = EngineOptions(
            faults=FaultPlan([KillSchedule(block=1)]),
            checkpoint_path=ckpt,
        )
        with pytest.raises(RunInterrupted) as excinfo:
            run(name, options)
        assert excinfo.value.block == 1
        assert excinfo.value.checkpoint_path == ckpt

        resumed = run(name, options, resume=True)
        baseline = run(name)
        assert_same_run(resumed, baseline)

    def test_resume_matches_under_concurrent_faults(self, tmp_path):
        """Kill mid-way through a crash-faulted run: the resumed half must
        replay the same fault schedule the uninterrupted run sees."""
        ckpt = str(tmp_path / "run.ckpt")
        crash = CrashSchedule(rate=0.2)
        policy = ResiliencePolicy(min_participants=2)
        interrupted = EngineOptions(
            faults=FaultPlan([crash, KillSchedule(block=2)], seed=7),
            resilience=policy,
            checkpoint_path=ckpt,
        )
        with pytest.raises(RunInterrupted):
            run("fedml", interrupted)
        resumed = run("fedml", interrupted, resume=True)

        # same crash stream: each schedule draws from its own indexed
        # stream, so dropping the kill does not perturb the crashes
        baseline = run(
            "fedml",
            EngineOptions(
                faults=FaultPlan([crash], seed=7), resilience=policy
            ),
        )
        assert_same_run(resumed, baseline)

    def test_checkpoint_every_skips_boundaries(self, tmp_path):
        tel = Telemetry(sink=MemorySink())
        options = EngineOptions(
            faults=FaultPlan.none(),
            checkpoint_path=str(tmp_path / "run.ckpt"),
            checkpoint_every=2,
        )
        result = run("fedml", options, telemetry=tel)
        # 4 aggregations at the golden config -> checkpoints at 2 and 4
        assert tel.registry.get("fl_checkpoints_total").value == 2
        np.testing.assert_allclose(
            to_vector(result.params),
            np.asarray(GOLDEN["fedml"]["final_params"]),
            rtol=1e-9,
        )

    def test_resume_counter_increments(self, tmp_path):
        ckpt = str(tmp_path / "run.ckpt")
        options = EngineOptions(
            faults=FaultPlan([KillSchedule(block=1)]),
            checkpoint_path=ckpt,
        )
        with pytest.raises(RunInterrupted):
            run("fedavg", options)
        tel = Telemetry(sink=MemorySink())
        run("fedavg", options, resume=True, telemetry=tel)
        assert tel.registry.get("fl_resumes_total").value == 1


class TestResumeValidation:
    def test_resume_requires_checkpoint_path(self):
        options = EngineOptions(faults=FaultPlan.none())
        with pytest.raises(ValueError, match="checkpoint_path"):
            run("fedavg", options, resume=True)

    def test_missing_checkpoint_file(self, tmp_path):
        options = EngineOptions(
            checkpoint_path=str(tmp_path / "never-written.ckpt")
        )
        with pytest.raises(FileNotFoundError):
            run("fedavg", options, resume=True)

    def test_wrong_algorithm_rejected(self, tmp_path):
        ckpt = str(tmp_path / "run.ckpt")
        run("fedml", EngineOptions(checkpoint_path=ckpt))
        with pytest.raises(ValueError, match="algorithm"):
            run("fedavg", EngineOptions(checkpoint_path=ckpt), resume=True)

    def test_wrong_seed_rejected(self, tmp_path):
        ckpt = str(tmp_path / "run.ckpt")
        run("fedml", EngineOptions(checkpoint_path=ckpt))
        fed, sources, model = build_workload()
        reseeded = FedML(
            model,
            FedMLConfig(
                alpha=0.05, beta=0.05, k=3, t0=3, total_iterations=12, seed=1
            ),
            engine_options=EngineOptions(checkpoint_path=ckpt),
        )
        with pytest.raises(ValueError, match="seed"):
            reseeded.fit(fed, sources, resume=True)


class TestAcceptance:
    """The issue's headline numbers, asserted directly."""

    def test_twenty_percent_crash_rate_completes(self):
        tel = Telemetry(sink=MemorySink())
        options = EngineOptions(
            faults=FaultPlan([CrashSchedule(rate=0.2)], seed=7),
            resilience=ResiliencePolicy(),
        )
        result = run("fedml", options, telemetry=tel)
        assert np.isfinite(to_vector(result.params)).all()
        assert tel.registry.get("fl_faults_total", kind="crash").value > 0
        # the other resilience counters are registered (possibly zero)
        assert tel.registry.get("fl_retries_total") is not None
        assert tel.registry.get("fl_quarantined_total") is not None

    def test_flaky_workers_charge_retries(self):
        tel = Telemetry(sink=MemorySink())
        options = EngineOptions(
            faults=FaultPlan(
                [FlakyWorkerSchedule(rate=0.3, fail_times=1)], seed=7
            ),
            resilience=ResiliencePolicy(),
        )
        run("fedml", options, telemetry=tel)
        assert tel.registry.get("fl_faults_total", kind="flaky").value > 0
        assert tel.registry.get("fl_retries_total").value > 0

    def test_nan_corruption_is_quarantined(self):
        tel = Telemetry(sink=MemorySink())
        options = EngineOptions(
            faults=FaultPlan(
                [CorruptSchedule(rate=0.2, mode="nan")], seed=7
            ),
            resilience=ResiliencePolicy(),
        )
        result = run("fedml", options, telemetry=tel)
        assert tel.registry.get("fl_quarantined_total").value > 0
        assert np.isfinite(to_vector(result.params)).all()
