"""Chaos regression suite: every fault kind against every strategy.

Two guarantees are checked on the exact golden workload from
``tests/engine/capture_golden.py``:

1. Running with the fault subsystem *active but empty*
   (``FaultPlan.none()`` + default :class:`ResiliencePolicy`) reproduces
   ``golden_traces.json`` bit-for-bit — the resilient code path is not a
   fork of the clean one.
2. Every fault kind, against all seven strategies, completes and is
   deterministic: two runs from the same seed and plan produce
   bit-identical final parameters and history.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.engine import EngineOptions
from repro.faults import (
    CorruptSchedule,
    CrashSchedule,
    DelaySchedule,
    DropSchedule,
    FaultPlan,
    FlakyWorkerSchedule,
    ResiliencePolicy,
)
from repro.nn.parameters import to_vector

from ..engine.capture_golden import build_runners, build_workload

GOLDEN = json.loads(
    (
        pathlib.Path(__file__).resolve().parent.parent
        / "engine"
        / "golden_traces.json"
    ).read_text()
)

STRATEGIES = sorted(GOLDEN)

#: one representative schedule per injectable fault kind (kill is covered
#: by the resume suite); rates are low enough that every strategy keeps a
#: usable participant set in every block
SCHEDULES = {
    "crash": CrashSchedule(rate=0.2),
    "drop": DropSchedule(rate=0.2),
    "corrupt": CorruptSchedule(rate=0.2, mode="nan"),
    "delay": DelaySchedule(rate=0.3, delay_s=30.0),
    "flaky": FlakyWorkerSchedule(rate=0.3, fail_times=1),
}

#: the delay schedule only bites under a round timeout; 5 simulated
#: seconds comfortably passes an undelayed block (~0.2 s) and drops a
#: 30 s-late one
POLICY = ResiliencePolicy(round_timeout_s=5.0, min_participants=2)


def run_strategy(name, options=None):
    fed, sources, model = build_workload()
    kwargs = {} if options is None else {"engine_options": options}
    runner = build_runners(model, **kwargs)[name]
    return runner.fit(fed, sources)


@pytest.mark.parametrize("name", STRATEGIES)
def test_empty_plan_reproduces_golden_traces(name):
    options = EngineOptions(
        faults=FaultPlan.none(), resilience=ResiliencePolicy()
    )
    result = run_strategy(name, options)
    expected = GOLDEN[name]
    np.testing.assert_allclose(
        to_vector(result.params),
        np.asarray(expected["final_params"]),
        rtol=1e-9,
    )
    assert len(result.history.records) == len(expected["records"])
    for record, golden_record in zip(result.history.records, expected["records"]):
        assert record.keys() == golden_record.keys()
        for key in record:
            assert record[key] == pytest.approx(golden_record[key], rel=1e-9)
    assert result.platform.comm_log.uplink_bytes == expected["uplink_bytes"]
    assert [n.local_steps for n in result.nodes] == expected["local_steps"]


@pytest.mark.parametrize("kind", sorted(SCHEDULES))
@pytest.mark.parametrize("name", STRATEGIES)
def test_fault_kind_completes_and_is_deterministic(name, kind):
    options = EngineOptions(
        faults=FaultPlan([SCHEDULES[kind]], seed=7), resilience=POLICY
    )
    first = run_strategy(name, options)
    second = run_strategy(name, options)
    np.testing.assert_array_equal(
        to_vector(first.params), to_vector(second.params)
    )
    assert first.history.records == second.history.records
    assert (
        first.platform.comm_log.uplink_bytes
        == second.platform.comm_log.uplink_bytes
    )
    assert np.isfinite(to_vector(first.params)).all()


@pytest.mark.parametrize("kind", ["crash", "drop"])
def test_faults_change_the_trajectory(kind):
    """Sanity: the plan actually injects — a faulty run differs from golden."""
    options = EngineOptions(
        faults=FaultPlan([SCHEDULES[kind]], seed=7), resilience=POLICY
    )
    result = run_strategy("fedml", options)
    golden = np.asarray(GOLDEN["fedml"]["final_params"])
    assert not np.allclose(to_vector(result.params), golden, rtol=1e-9)
