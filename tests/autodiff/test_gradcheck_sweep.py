"""Parameterized gradient checks over every op registered in ``ops.py``.

Reuses the sanitizer's audit spec table so coverage is mechanically tied to
``ops.__all__``: adding an op without a spec fails ``test_sweep_is_exhaustive``
(and the ``repro check-graph`` audit) before any kernel bug can hide.

Three layers per op:
  * first-order: reverse-mode gradients vs central finite differences,
  * double-backward: gradients stay differentiable w.r.t. the cotangent
    (the MAML meta-gradient requirement), and
  * second-order: full Hessian of a scalarized single-input slice vs a
    finite-difference Hessian of the analytic gradient.
"""

import numpy as np
import pytest

from repro.analysis.sanitizer import OP_SPECS, audited_op_names
from repro.autodiff import ops
from repro.autodiff.check import (
    check_double_backward,
    check_gradients,
    check_second_order,
)

SWEEP = sorted(OP_SPECS)


def scalarized(fn):
    """Wrap an op to produce the scalar the checkers differentiate."""

    def wrapped(*tensors):
        return ops.sum_(fn(*tensors))

    return wrapped


def test_sweep_is_exhaustive():
    registered = set(audited_op_names())
    assert registered <= set(SWEEP), sorted(registered - set(SWEEP))


@pytest.mark.parametrize("name", SWEEP)
def test_first_order(name):
    spec = OP_SPECS[name]
    check_gradients(scalarized(spec.fn), spec.args)


@pytest.mark.parametrize("name", SWEEP)
def test_double_backward(name):
    spec = OP_SPECS[name]
    check_double_backward(spec.fn, spec.args)


@pytest.mark.parametrize("name", SWEEP)
def test_second_order(name):
    spec = OP_SPECS[name]
    first = spec.args[0]
    rest = [np.asarray(a, dtype=np.float64) for a in spec.args[1:]]

    def single(t):
        from repro.autodiff.tensor import Tensor

        return ops.sum_(spec.fn(t, *[Tensor(a) for a in rest]))

    check_second_order(single, first)
