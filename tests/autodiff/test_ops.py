"""Per-op tests: forward values against NumPy, gradients against finite
differences (via repro.autodiff.check)."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, grad, ops

RNG = np.random.default_rng(42)


class TestForwardValues:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.array([1.0, 2.0, 3.0]))
        expected = np.broadcast_to(np.array([2.0, 3.0, 4.0]), (2, 3))
        np.testing.assert_allclose((a + b).data, expected)

    def test_sub(self):
        np.testing.assert_allclose(
            (Tensor([3.0]) - Tensor([1.0])).data, [2.0]
        )

    def test_div(self):
        np.testing.assert_allclose(
            (Tensor([6.0]) / Tensor([2.0])).data, [3.0]
        )

    def test_exp_log_roundtrip(self):
        x = np.array([0.5, 1.0, 2.0])
        np.testing.assert_allclose(ops.log(ops.exp(Tensor(x))).data, x)

    def test_sqrt(self):
        np.testing.assert_allclose(ops.sqrt(Tensor([4.0])).data, [2.0])

    def test_relu(self):
        np.testing.assert_allclose(
            ops.relu(Tensor([-1.0, 0.0, 2.0])).data, [0.0, 0.0, 2.0]
        )

    def test_abs(self):
        np.testing.assert_allclose(
            ops.abs_(Tensor([-1.5, 2.0])).data, [1.5, 2.0]
        )

    def test_clip(self):
        np.testing.assert_allclose(
            ops.clip(Tensor([-2.0, 0.5, 3.0]), 0.0, 1.0).data, [0.0, 0.5, 1.0]
        )

    def test_sigmoid_at_zero(self):
        assert ops.sigmoid(Tensor(0.0)).item() == pytest.approx(0.5)

    def test_tanh_matches_numpy(self):
        x = RNG.normal(size=5)
        np.testing.assert_allclose(ops.tanh(Tensor(x)).data, np.tanh(x))

    def test_matmul_matches_numpy(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(4, 2))
        np.testing.assert_allclose(
            ops.matmul(Tensor(a), Tensor(b)).data, a @ b
        )

    def test_matmul_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ops.matmul(Tensor(np.zeros(3)), Tensor(np.zeros((3, 2))))

    def test_sum_axis_keepdims(self):
        x = RNG.normal(size=(2, 3))
        out = ops.sum_(Tensor(x), axis=1, keepdims=True)
        np.testing.assert_allclose(out.data, x.sum(axis=1, keepdims=True))

    def test_sum_negative_axis(self):
        x = RNG.normal(size=(2, 3))
        np.testing.assert_allclose(
            ops.sum_(Tensor(x), axis=-1).data, x.sum(axis=-1)
        )

    def test_mean_matches_numpy(self):
        x = RNG.normal(size=(4, 5))
        np.testing.assert_allclose(
            ops.mean(Tensor(x), axis=0).data, x.mean(axis=0)
        )

    def test_reshape_transpose(self):
        x = RNG.normal(size=(2, 6))
        np.testing.assert_allclose(
            ops.reshape(Tensor(x), (3, 4)).data, x.reshape(3, 4)
        )
        np.testing.assert_allclose(
            ops.transpose(Tensor(x)).data, x.T
        )

    def test_transpose_with_axes(self):
        x = RNG.normal(size=(2, 3, 4))
        np.testing.assert_allclose(
            ops.transpose(Tensor(x), (2, 0, 1)).data, np.transpose(x, (2, 0, 1))
        )

    def test_broadcast_to(self):
        x = Tensor(np.array([1.0, 2.0]))
        out = ops.broadcast_to(x, (3, 2))
        assert out.shape == (3, 2)

    def test_concatenate(self):
        a, b = RNG.normal(size=(2, 3)), RNG.normal(size=(1, 3))
        np.testing.assert_allclose(
            ops.concatenate([Tensor(a), Tensor(b)], axis=0).data,
            np.concatenate([a, b], axis=0),
        )

    def test_logsumexp_stability(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = ops.logsumexp(x, axis=1)
        np.testing.assert_allclose(out.data, [1000.0 + np.log(2.0)])

    def test_log_softmax_normalizes(self):
        x = RNG.normal(size=(3, 5))
        probs = np.exp(ops.log_softmax(Tensor(x), axis=1).data)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(3))

    def test_softmax_matches_scipy(self):
        from scipy.special import softmax as scipy_softmax

        x = RNG.normal(size=(3, 5))
        np.testing.assert_allclose(
            ops.softmax(Tensor(x), axis=1).data, scipy_softmax(x, axis=1)
        )

    def test_getitem_fancy_index(self):
        x = RNG.normal(size=(5, 4))
        idx = np.array([0, 0, 3])
        np.testing.assert_allclose(ops.getitem(Tensor(x), idx).data, x[idx])

    def test_norm_sq(self):
        x = RNG.normal(size=7)
        assert ops.norm_sq(Tensor(x)).item() == pytest.approx(float(x @ x))


class TestGradientsAgainstFiniteDifferences:
    @pytest.mark.parametrize(
        "name,fn,shapes",
        [
            ("add", lambda a, b: (a + b).sum(), [(3, 2), (3, 2)]),
            ("add_broadcast", lambda a, b: (a + b).sum(), [(3, 2), (2,)]),
            ("sub", lambda a, b: (a - b).mean(), [(4,), (4,)]),
            ("mul", lambda a, b: (a * b).sum(), [(2, 2), (2, 2)]),
            ("mul_broadcast", lambda a, b: (a * b).sum(), [(3, 4), (1, 4)]),
            ("div", lambda a, b: (a / b).sum(), [(3,), (3,)]),
            ("power3", lambda a: (a**3).sum(), [(4,)]),
            ("matmul", lambda a, b: (a @ b).sum(), [(3, 4), (4, 2)]),
            ("sum_axis", lambda a: a.sum(axis=0).sum(), [(3, 4)]),
            ("mean_keep", lambda a: a.mean(axis=1, keepdims=True).sum(), [(3, 4)]),
            ("reshape", lambda a: (a.reshape(6) * a.reshape(6)).sum(), [(2, 3)]),
            ("transpose", lambda a: (a.T @ a).sum(), [(3, 2)]),
            ("tanh", lambda a: ops.tanh(a).sum(), [(5,)]),
            ("sigmoid", lambda a: ops.sigmoid(a).sum(), [(5,)]),
            ("exp", lambda a: ops.exp(a).sum(), [(4,)]),
            ("logsumexp", lambda a: ops.logsumexp(a, axis=1).sum(), [(3, 4)]),
            ("log_softmax", lambda a: ops.log_softmax(a, axis=1).sum(), [(2, 5)]),
            ("softmax_pick", lambda a: ops.softmax(a, axis=1)[0].sum(), [(2, 5)]),
            ("broadcast_to", lambda a: ops.broadcast_to(a, (4, 3)).sum(), [(3,)]),
            ("norm_sq", lambda a: ops.norm_sq(a), [(6,)]),
        ],
    )
    def test_gradient(self, name, fn, shapes):
        args = [RNG.normal(size=s) for s in shapes]
        check_gradients(fn, args)

    def test_log_gradient_positive_domain(self):
        check_gradients(
            lambda a: ops.log(a).sum(), [RNG.uniform(0.5, 2.0, size=(4,))]
        )

    def test_sqrt_gradient_positive_domain(self):
        check_gradients(
            lambda a: ops.sqrt(a).sum(), [RNG.uniform(0.5, 2.0, size=(4,))]
        )

    def test_relu_gradient_away_from_kink(self):
        x = RNG.normal(size=(6,))
        x[np.abs(x) < 0.1] = 0.5  # avoid the nondifferentiable point
        check_gradients(lambda a: ops.relu(a).sum(), [x])

    def test_abs_gradient_away_from_zero(self):
        x = RNG.normal(size=(6,))
        x[np.abs(x) < 0.1] = 0.5
        check_gradients(lambda a: ops.abs_(a).sum(), [x])

    def test_getitem_gradient_scatter_adds_duplicates(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        idx = np.array([1, 1, 2])
        (g,) = grad(ops.getitem(x, idx).sum(), [x])
        np.testing.assert_allclose(g.data, [0.0, 2.0, 1.0, 0.0])

    def test_concatenate_gradient(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(1, 3)), requires_grad=True)
        out = ops.concatenate([a, b], axis=0)
        ga, gb = grad((out * out).sum(), [a, b])
        np.testing.assert_allclose(ga.data, 2 * a.data)
        np.testing.assert_allclose(gb.data, 2 * b.data)

    def test_clip_gradient_masks_out_of_range(self):
        x = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        (g,) = grad(ops.clip(x, 0.0, 1.0).sum(), [x])
        np.testing.assert_allclose(g.data, [0.0, 1.0, 0.0])
