"""Tests for the autodiff tape profiler."""

import numpy as np
import pytest

from repro.autodiff import Tensor, grad, ops
from repro.autodiff.profile import TapeProfiler, profile_ops


def forward_backward():
    x = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True)
    w = Tensor(np.random.default_rng(1).normal(size=(3, 2)), requires_grad=True)
    loss = ops.sum_(ops.relu(ops.matmul(x, w)))
    return grad(loss, [x, w])


class TestProfileOps:
    def test_counts_ops_by_type(self):
        with profile_ops() as prof:
            forward_backward()
        assert prof.op_stats["matmul"].calls >= 1
        assert prof.op_stats["relu"].calls >= 1
        assert prof.op_stats["sum"].calls >= 1
        assert prof.total_ops >= 3

    def test_tape_length_counts_grad_tracked_tensors_only(self):
        with profile_ops() as prof:
            a = Tensor(np.ones(3))  # constant
            b = Tensor(np.ones(3), requires_grad=True)
            ops.add(a, a)  # pruned: no parent requires grad
            ops.add(b, b)  # tape node
        add_stats = prof.op_stats["add"]
        assert add_stats.calls == 2
        assert add_stats.grad_calls == 1
        assert prof.tape_length == 1

    def test_tape_grows_with_graph_depth(self):
        def chain(steps):
            with profile_ops() as prof:
                x = Tensor(np.ones(4), requires_grad=True)
                y = x
                for _ in range(steps):
                    y = ops.mul(y, y)
                grad(ops.sum_(y), [x])
            return prof.tape_length

        assert chain(8) > chain(2)

    def test_per_op_time_recorded(self):
        with profile_ops() as prof:
            forward_backward()
        assert prof.op_stats["matmul"].seconds > 0
        assert prof.total_seconds > 0
        assert prof.op_stats["matmul"].mean_seconds > 0

    def test_element_volume_recorded(self):
        with profile_ops() as prof:
            a = Tensor(np.ones((10, 10)), requires_grad=True)
            ops.add(a, a)
        assert prof.op_stats["add"].elements == 100

    def test_ops_restored_after_context(self):
        original = ops.matmul
        with profile_ops():
            assert ops.matmul is not original
        assert ops.matmul is original
        assert ops._PROFILE_HOOK is None

    def test_restored_even_on_exception(self):
        original = ops.add
        with pytest.raises(RuntimeError):
            with profile_ops():
                raise RuntimeError("boom")
        assert ops.add is original
        assert ops._PROFILE_HOOK is None

    def test_nested_profiling_rejected(self):
        with profile_ops():
            with pytest.raises(RuntimeError):
                with profile_ops():
                    pass

    def test_results_unchanged_under_profiling(self):
        baseline = forward_backward()
        with profile_ops():
            profiled = forward_backward()
        for a, b in zip(baseline, profiled):
            np.testing.assert_allclose(a.data, b.data)


class TestExport:
    def test_summary_renders_totals(self):
        with profile_ops() as prof:
            forward_backward()
        text = prof.summary()
        assert "matmul" in text
        assert "total" in text

    def test_summary_top_limits_rows(self):
        with profile_ops() as prof:
            forward_backward()
        assert len(prof.summary(top=1).splitlines()) == 4  # header, rule, 1 op, total

    def test_to_registry_exports_counters(self):
        from repro.obs import MetricRegistry

        with profile_ops() as prof:
            forward_backward()
        registry = MetricRegistry()
        prof.to_registry(registry)
        assert registry.get("autodiff_op_calls_total", op="matmul").value >= 1
        assert (
            registry.get("autodiff_tape_nodes_total").value == prof.tape_length
        )

    def test_accumulates_across_contexts_with_shared_profiler(self):
        prof = TapeProfiler()
        with profile_ops(prof):
            forward_backward()
        first = prof.total_ops
        with profile_ops(prof):
            forward_backward()
        assert prof.total_ops == 2 * first

    def test_zero_time_ops_still_export_seconds(self):
        """Regression: ops too fast for the timer (seconds == 0.0) used to
        be silently dropped from autodiff_op_seconds_total, so the metric's
        presence varied run-to-run."""
        from repro.obs import MetricRegistry

        prof = TapeProfiler()
        prof.record_creation("add", 4, True)  # created, never timed: 0.0s
        registry = MetricRegistry()
        prof.to_registry(registry)
        seconds = registry.get("autodiff_op_seconds_total", op="add")
        assert seconds is not None
        assert seconds.value == 0.0

    def test_sum_creation_and_timing_share_one_bucket(self):
        """The op function is ``sum_`` but the tape records ``sum``; the
        rstrip keying must land creation counts and wall time in the same
        stats bucket (and therefore the same metric labels)."""
        from repro.obs import MetricRegistry

        with profile_ops() as prof:
            a = Tensor(np.ones((8, 8)), requires_grad=True)
            ops.sum_(a)
        assert "sum" in prof.op_stats
        assert "sum_" not in prof.op_stats
        assert prof.op_stats["sum"].calls == 1
        assert prof.op_stats["sum"].seconds > 0
        registry = MetricRegistry()
        prof.to_registry(registry)
        assert registry.get("autodiff_op_calls_total", op="sum").value == 1
        assert registry.get("autodiff_op_seconds_total", op="sum") is not None
        assert registry.get("autodiff_op_calls_total", op="sum_") is None

    def test_graph_walks_counted_and_exported(self):
        from repro.obs import MetricRegistry

        with profile_ops() as prof:
            forward_backward()  # one grad() call -> one traversal
            forward_backward()
        assert prof.graph_walks == 2
        assert prof.walked_nodes > 0
        registry = MetricRegistry()
        prof.to_registry(registry)
        assert registry.get("autodiff_graph_walks_total").value == 2

    def test_walk_hook_uninstalled_after_context(self):
        from repro.autodiff.profile import tensor_mod

        with profile_ops():
            assert tensor_mod._WALK_HOOK is not None
        assert tensor_mod._WALK_HOOK is None


class TestAllocationCounter:
    """The profiler observes the fastpath's hot-path allocation counter."""

    def test_allocations_recorded_and_exported(self):
        from repro.autodiff import fastpath
        from repro.obs import MetricRegistry

        fastpath.enable()
        fastpath.clear_cache()
        with profile_ops() as prof:
            forward_backward()
        # The cached tier allocates one array per VJP plus result copies.
        assert prof.allocations > 0
        registry = MetricRegistry()
        prof.to_registry(registry)
        assert (
            registry.get("autodiff_allocations_total").value
            == prof.allocations
        )

    def test_warm_compiled_replay_records_zero_allocations(self):
        """The zero-allocation contract, observed end to end: a warmed
        compiled replay with caller-owned out-buffers records nothing."""
        from repro.autodiff import fastpath, toposort

        fastpath.enable()
        fastpath.clear_cache()
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        w = Tensor(np.ones((3, 2)), requires_grad=True)
        loss = ops.sum_(ops.relu(ops.matmul(x, w)))
        order = toposort(loss)
        seed = np.array(1.0)
        for _ in range(3):  # miss -> arm+compile -> replay
            fastpath.backward(loss, [x, w], order, seed)
        out = [np.empty(x.data.shape), np.empty(w.data.shape)]
        with profile_ops() as prof:
            fastpath.backward(loss, [x, w], order, seed, out=out)
        assert prof.allocations == 0
        fastpath.clear_cache()

    def test_alloc_hook_uninstalled_after_context(self):
        from repro.autodiff import fastpath

        sink = []
        previous = fastpath.set_alloc_hook(sink.append)
        try:
            with profile_ops() as prof:
                forward_backward()
            assert prof.allocations > 0
            assert sink == []  # profiler replaced the hook inside the block
            forward_backward()
            assert sum(sink) > 0  # and restored it on exit
        finally:
            fastpath.set_alloc_hook(previous)

    def test_merge_portable_carries_allocations(self):
        prof = TapeProfiler()
        prof.record_allocations(3)
        child = TapeProfiler()
        prof.merge_portable(child.as_portable(), allocations=4)
        assert prof.allocations == 7
