"""Second-order (double-backward) correctness — the property MAML relies on."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_second_order, grad, ops

RNG = np.random.default_rng(7)


class TestHessians:
    @pytest.mark.parametrize(
        "name,fn,size",
        [
            ("cubic", lambda x: (x * x * x).sum(), 4),
            ("tanh_x", lambda x: (ops.tanh(x) * x).sum(), 4),
            ("sigmoid", lambda x: ops.sigmoid(x).sum(), 3),
            ("exp", lambda x: ops.exp(x).sum(), 3),
            ("log", lambda x: ops.log(x * x + ops.as_tensor(1.0)).sum(), 3),
            (
                "logsumexp",
                lambda x: ops.logsumexp(x.reshape(1, -1), axis=1).sum(),
                5,
            ),
            ("power", lambda x: ((x * x) ** 2).sum(), 3),
            ("div", lambda x: (ops.as_tensor(1.0) / (x * x + 1.0)).sum(), 3),
        ],
    )
    def test_hessian_matches_finite_difference(self, name, fn, size):
        check_second_order(fn, RNG.normal(size=size))

    def test_quadratic_hessian_exact(self):
        a = RNG.normal(size=(4, 4))
        a = a @ a.T + np.eye(4)

        def f(x):
            q = x.reshape(1, -1)
            return ((q @ Tensor(a)) @ q.T).reshape(()) * 0.5

        x = Tensor(RNG.normal(size=4), requires_grad=True)
        (g,) = grad(f(x), [x], create_graph=True)
        rows = []
        for i in range(4):
            seed = np.zeros(4)
            seed[i] = 1.0
            (row,) = grad(g, [x], grad_output=Tensor(seed), allow_unused=True)
            rows.append(row.data)
        np.testing.assert_allclose(np.stack(rows), a, atol=1e-10)

    def test_third_order_derivative(self):
        # d^3/dx^3 x^4 = 24 x
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = (x**4).sum()
        (g1,) = grad(y, [x], create_graph=True)
        (g2,) = grad(g1.sum(), [x], create_graph=True)
        (g3,) = grad(g2.sum(), [x])
        np.testing.assert_allclose(g3.data, [48.0])


class TestMamlMetaGradient:
    """Closed-form validation of the quadratic-loss MAML meta-gradient."""

    def _quadratics(self):
        a1 = RNG.normal(size=(5, 5))
        a1 = a1 @ a1.T / 5 + np.eye(5)
        a2 = RNG.normal(size=(5, 5))
        a2 = a2 @ a2.T / 5 + np.eye(5)
        b1 = RNG.normal(size=5)
        b2 = RNG.normal(size=5)
        return a1, b1, a2, b2

    @staticmethod
    def _loss(theta, a, b):
        q = theta.reshape(1, -1)
        quad = ((q @ Tensor(a)) @ q.T).reshape(()) * 0.5
        lin = (q @ Tensor(b.reshape(-1, 1))).reshape(())
        return quad + lin

    def test_exact_meta_gradient(self):
        a1, b1, a2, b2 = self._quadratics()
        alpha = 0.07
        theta = Tensor(RNG.normal(size=5), requires_grad=True)
        (g_inner,) = grad(self._loss(theta, a1, b1), [theta], create_graph=True)
        phi = theta - alpha * g_inner
        (meta_g,) = grad(self._loss(phi, a2, b2), [theta])
        # Analytic: (I - alpha*A1) @ (A2 phi + b2)
        phi_np = theta.data - alpha * (a1 @ theta.data + b1)
        expected = (np.eye(5) - alpha * a1) @ (a2 @ phi_np + b2)
        np.testing.assert_allclose(meta_g.data, expected, rtol=1e-10)

    def test_first_order_drops_hessian_term(self):
        a1, b1, a2, b2 = self._quadratics()
        alpha = 0.07
        theta = Tensor(RNG.normal(size=5), requires_grad=True)
        (g_inner,) = grad(self._loss(theta, a1, b1), [theta], create_graph=False)
        phi = theta - alpha * g_inner  # g_inner detached: FOMAML
        (meta_g,) = grad(self._loss(phi, a2, b2), [theta])
        phi_np = theta.data - alpha * (a1 @ theta.data + b1)
        expected_fo = a2 @ phi_np + b2  # no (I - alpha*A1) factor
        np.testing.assert_allclose(meta_g.data, expected_fo, rtol=1e-10)

    def test_exact_and_first_order_differ(self):
        a1, b1, a2, b2 = self._quadratics()
        alpha = 0.2
        theta_np = RNG.normal(size=5)

        theta = Tensor(theta_np, requires_grad=True)
        (gi,) = grad(self._loss(theta, a1, b1), [theta], create_graph=True)
        (exact,) = grad(self._loss(theta - alpha * gi, a2, b2), [theta])

        theta2 = Tensor(theta_np, requires_grad=True)
        (gi2,) = grad(self._loss(theta2, a1, b1), [theta2], create_graph=False)
        (fo,) = grad(self._loss(theta2 - alpha * gi2, a2, b2), [theta2])

        assert not np.allclose(exact.data, fo.data)
