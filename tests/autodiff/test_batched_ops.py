"""Node-axis (batched) op variants: stacked-vs-loop equivalence.

The contract (docs/AUTODIFF.md): for every op that understands a leading
node axis, forward/backward slices of the stacked computation must match
N independent per-node tapes within documented tolerance — stacked fp
math may reorder accumulations, so the claim is tolerance-level, not
bitwise.  (The per-op cases here verify that for the ops actually in use
the slices come out bit-identical today; the hypothesis property only
requires the documented tolerance.)  Raw VJP twins added for
``tanh``/``sigmoid``/``power``/``clip`` keep graphs containing them on
the fast path, bit-identical to the closure backward.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, fastpath, grad, ops

#: documented per-op stacked-vs-loop tolerance (see docs/AUTODIFF.md)
RTOL = 1e-9
ATOL = 1e-12


@pytest.fixture(autouse=True)
def _fresh_fastpath():
    fastpath.enable()
    fastpath.clear_cache()
    fastpath.reset_stats()
    yield
    fastpath.enable()
    fastpath.clear_cache()


def one_hot3(rng, n, b, c):
    labels = rng.integers(0, c, size=(n, b))
    out = np.zeros((n, b, c))
    out[np.arange(n)[:, None], np.arange(b)[None, :], labels] = 1.0
    return out


class TestRawTwins:
    """tanh/sigmoid/power/clip now carry raw VJPs: fastpath bit-parity."""

    @pytest.mark.parametrize(
        "name,fn",
        [
            ("tanh", ops.tanh),
            ("sigmoid", ops.sigmoid),
            ("power", lambda t: ops.power(t, 3.0)),
            ("clip", lambda t: ops.clip(t, -0.5, 0.5)),
        ],
    )
    def test_bit_identical_to_closure_backward(self, name, fn):
        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        (g_fast,) = grad(ops.sum_(fn(x)), [x])
        with fastpath.disabled():
            (g_ref,) = grad(ops.sum_(fn(x)), [x])
        assert g_fast.data.tobytes() == g_ref.data.tobytes()

    def test_stays_on_raw_path(self):
        """A graph of the four ops must not fall back to closure VJPs."""
        rng = np.random.default_rng(6)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        loss = ops.sum_(
            ops.clip(ops.power(ops.tanh(ops.sigmoid(x)), 2.0), -0.9, 0.9)
        )
        base = fastpath.stats().closure_vjp_calls
        grad(loss, [x])
        assert fastpath.stats().closure_vjp_calls == base


class TestBatchedMatmul:
    def test_forward_backward_slices_match_loops(self):
        rng = np.random.default_rng(0)
        n = 5
        a = Tensor(rng.normal(size=(n, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(n, 4, 2)), requires_grad=True)
        out = ops.matmul(a, b)
        ga, gb = grad(ops.sum_(out), [a, b])
        for i in range(n):
            ai = Tensor(a.data[i], requires_grad=True)
            bi = Tensor(b.data[i], requires_grad=True)
            oi = ops.matmul(ai, bi)
            gai, gbi = grad(ops.sum_(oi), [ai, bi])
            np.testing.assert_array_equal(out.data[i], oi.data)
            np.testing.assert_allclose(
                ga.data[i], gai.data, rtol=RTOL, atol=ATOL
            )
            np.testing.assert_allclose(
                gb.data[i], gbi.data, rtol=RTOL, atol=ATOL
            )

    def test_double_backward_through_batched_contraction(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 2)), requires_grad=True)
        ga, _ = grad(
            ops.sum_(ops.matmul(a, b)), [a, b], create_graph=True
        )
        (gg,) = grad(ops.sum_(ops.mul(ga, ga)), [b])
        assert gg.shape == (2, 4, 2)

    def test_mismatched_leading_dims_rejected(self):
        a = Tensor(np.zeros((2, 3, 4)))
        b = Tensor(np.zeros((3, 4, 2)))
        with pytest.raises(ValueError, match="matching leading"):
            ops.matmul(a, b)


class TestBatchedXent:
    def test_softmax_xent_nodes_matches_loops(self):
        rng = np.random.default_rng(2)
        n, b, c = 4, 6, 3
        logits = Tensor(rng.normal(size=(n, b, c)), requires_grad=True)
        targets = Tensor(one_hot3(rng, n, b, c))
        loss_vec = ops.softmax_xent(logits, targets)
        assert loss_vec.shape == (n,)
        (gl,) = grad(ops.sum_(loss_vec), [logits])
        for i in range(n):
            li = Tensor(logits.data[i], requires_grad=True)
            ti = Tensor(targets.data[i])
            loss_i = ops.softmax_xent(li, ti)
            (gi,) = grad(loss_i, [li])
            np.testing.assert_allclose(
                loss_vec.data[i], loss_i.data, rtol=RTOL, atol=ATOL
            )
            np.testing.assert_allclose(
                gl.data[i], gi.data, rtol=RTOL, atol=ATOL
            )

    def test_linear_softmax_xent_nodes_matches_loops(self):
        rng = np.random.default_rng(3)
        n, b, f, c = 4, 5, 6, 3
        x = Tensor(rng.normal(size=(n, b, f)), requires_grad=True)
        w = Tensor(rng.normal(size=(n, f, c)), requires_grad=True)
        bias = Tensor(rng.normal(size=(n, c)), requires_grad=True)
        targets = Tensor(one_hot3(rng, n, b, c))
        loss_vec = ops.linear_softmax_xent(x, w, bias, targets)
        gx, gw, gb = grad(ops.sum_(loss_vec), [x, w, bias])
        for i in range(n):
            xi = Tensor(x.data[i], requires_grad=True)
            wi = Tensor(w.data[i], requires_grad=True)
            bi = Tensor(bias.data[i], requires_grad=True)
            loss_i = ops.linear_softmax_xent(
                xi, wi, bi, Tensor(targets.data[i])
            )
            gxi, gwi, gbi = grad(loss_i, [xi, wi, bi])
            np.testing.assert_allclose(
                loss_vec.data[i], loss_i.data, rtol=RTOL, atol=ATOL
            )
            for stacked_g, loop_g in ((gx, gxi), (gw, gwi), (gb, gbi)):
                np.testing.assert_allclose(
                    stacked_g.data[i], loop_g.data, rtol=RTOL, atol=ATOL
                )

    def test_fastpath_bit_identical_on_stacked_graph(self):
        """The raw-VJP path over a stacked graph matches its own reference."""
        rng = np.random.default_rng(4)
        n, b, f, c = 3, 4, 5, 2
        x = Tensor(rng.normal(size=(n, b, f)), requires_grad=True)
        w = Tensor(rng.normal(size=(n, f, c)), requires_grad=True)
        bias = Tensor(rng.normal(size=(n, c)), requires_grad=True)
        targets = Tensor(one_hot3(rng, n, b, c))

        def loss():
            return ops.sum_(ops.linear_softmax_xent(x, w, bias, targets))

        fast = grad(loss(), [x, w, bias])
        with fastpath.disabled():
            ref = grad(loss(), [x, w, bias])
        for f_, r_ in zip(fast, ref):
            assert f_.data.tobytes() == r_.data.tobytes()

    def test_plan_replays_over_stacked_buffers(self):
        """One cached backward plan serves repeated stacked backwards."""
        rng = np.random.default_rng(7)
        n, b, f, c = 3, 4, 5, 2
        targets = Tensor(one_hot3(rng, n, b, c))
        fastpath.reset_stats()
        for _ in range(4):
            x = Tensor(rng.normal(size=(n, b, f)), requires_grad=True)
            w = Tensor(rng.normal(size=(n, f, c)), requires_grad=True)
            bias = Tensor(rng.normal(size=(n, c)), requires_grad=True)
            grad(
                ops.sum_(ops.linear_softmax_xent(x, w, bias, targets)),
                [x, w, bias],
            )
        stats = fastpath.stats()
        assert stats.plan_misses == 1
        assert stats.plan_hits == 3


_BATCHED_UNARY = [
    ("tanh", ops.tanh),
    ("sigmoid", ops.sigmoid),
    ("relu", ops.relu),
    ("exp", ops.exp),
    ("power", lambda t: ops.power(t, 2.0)),
    ("clip", lambda t: ops.clip(t, -0.7, 0.7)),
]
_BATCHED_BINARY = [
    ("add", ops.add),
    ("sub", ops.sub),
    ("mul", ops.mul),
]


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(1, 4),
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    unary=st.sampled_from(_BATCHED_UNARY),
    binary=st.sampled_from(_BATCHED_BINARY),
)
@settings(max_examples=60, deadline=None)
def test_random_stacked_graphs_match_per_node_tapes(
    seed, n, rows, cols, unary, binary
):
    """Property: a random stacked elementwise+matmul graph equals N loops."""
    rng = np.random.default_rng(seed)
    _, un_op = unary
    _, bin_op = binary
    a = Tensor(rng.normal(size=(n, rows, cols)), requires_grad=True)
    b = Tensor(rng.normal(size=(n, rows, cols)), requires_grad=True)
    m = Tensor(rng.normal(size=(n, cols, rows)), requires_grad=True)

    def build(at, bt, mt):
        h = bin_op(un_op(at), bt)
        return ops.sum_(ops.matmul(h, mt))

    total = build(a, b, m)
    ga, gb, gm = grad(total, [a, b, m], allow_unused=True)
    for i in range(n):
        ai = Tensor(a.data[i], requires_grad=True)
        bi = Tensor(b.data[i], requires_grad=True)
        mi = Tensor(m.data[i], requires_grad=True)
        loss_i = build(ai, bi, mi)
        gai, gbi, gmi = grad(loss_i, [ai, bi, mi], allow_unused=True)
        for stacked_g, loop_g in ((ga, gai), (gb, gbi), (gm, gmi)):
            if loop_g is None:
                continue
            np.testing.assert_allclose(
                stacked_g.data[i], loop_g.data, rtol=RTOL, atol=ATOL
            )
