"""Hypothesis property tests for the autodiff engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autodiff import Tensor, grad, ops

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def small_arrays(max_dims=2, max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
        elements=finite_floats,
    )


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    (g,) = grad(t.sum(), [t])
    np.testing.assert_array_equal(g.data, np.ones_like(x))


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_linearity_of_gradient(x):
    """grad of (3f + 2h) equals 3 grad f + 2 grad h for f=sum, h=sum of squares."""
    t = Tensor(x, requires_grad=True)
    combined = 3.0 * t.sum() + 2.0 * (t * t).sum()
    (g,) = grad(combined, [t])
    np.testing.assert_allclose(g.data, 3.0 + 4.0 * x, rtol=1e-10, atol=1e-10)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_mul_gradient_symmetry(x):
    """d(a*b)/da evaluated at a=b=x equals x for both operands."""
    a = Tensor(x, requires_grad=True)
    b = Tensor(x, requires_grad=True)
    ga, gb = grad((a * b).sum(), [a, b])
    np.testing.assert_allclose(ga.data, x)
    np.testing.assert_allclose(gb.data, x)


@given(small_arrays(max_dims=1), small_arrays(max_dims=1))
@settings(max_examples=40, deadline=None)
def test_add_commutes_in_values_and_grads(x, y):
    n = min(len(x), len(y))
    x, y = x[:n], y[:n]
    a1, b1 = Tensor(x, requires_grad=True), Tensor(y, requires_grad=True)
    a2, b2 = Tensor(x, requires_grad=True), Tensor(y, requires_grad=True)
    g1 = grad(((a1 + b1) ** 2).sum(), [a1, b1])
    g2 = grad(((b2 + a2) ** 2).sum(), [a2, b2])
    np.testing.assert_allclose(g1[0].data, g2[0].data)
    np.testing.assert_allclose(g1[1].data, g2[1].data)


@given(
    arrays(np.float64, (3, 4), elements=finite_floats),
    st.integers(min_value=0, max_value=1),
)
@settings(max_examples=30, deadline=None)
def test_sum_then_sum_equals_full_sum_gradient(x, axis):
    t = Tensor(x, requires_grad=True)
    (g,) = grad(t.sum(axis=axis).sum(), [t])
    np.testing.assert_array_equal(g.data, np.ones_like(x))


@given(small_arrays())
@settings(max_examples=30, deadline=None)
def test_detach_blocks_gradient(x):
    t = Tensor(x, requires_grad=True)
    blocked = (t * t).detach()
    out = (blocked * 1.0).sum() + t.sum()
    (g,) = grad(out, [t])
    np.testing.assert_array_equal(g.data, np.ones_like(x))


@given(arrays(np.float64, (2, 3), elements=finite_floats))
@settings(max_examples=30, deadline=None)
def test_softmax_rows_are_distributions(x):
    out = ops.softmax(Tensor(x), axis=1).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=1), np.ones(2), rtol=1e-9)


@given(arrays(np.float64, (4,), elements=finite_floats))
@settings(max_examples=30, deadline=None)
def test_broadcast_then_unbroadcast_gradient_counts_uses(x):
    t = Tensor(x, requires_grad=True)
    wide = ops.broadcast_to(t, (5, 4))
    (g,) = grad(wide.sum(), [t])
    np.testing.assert_array_equal(g.data, np.full(4, 5.0))
