"""Tests for the first-order backward fast path.

The contract is absolute: with the fast path on, every
``grad(..., create_graph=False)`` result must be **bit-identical** to the
reference backward — across fused ops, plan-cache reuse, buffer reuse, and
arbitrary graph shapes (hypothesis property at the bottom).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, fastpath, grad, ops, toposort
from repro.autodiff.profile import profile_ops
from repro.nn import LogisticRegression, cross_entropy, fused_model_loss, one_hot
from repro.obs import MetricRegistry


@pytest.fixture(autouse=True)
def _fresh_fastpath():
    fastpath.enable()
    fastpath.clear_cache()
    fastpath.reset_stats()
    yield
    fastpath.enable()
    fastpath.clear_cache()


def lr_problem(seed=0, n=6, d=5, c=3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    y = rng.integers(0, c, size=n)
    model = LogisticRegression(d, c)
    params = {
        name: Tensor(t.data, requires_grad=True)
        for name, t in model.init(rng).items()
    }
    return model, params, x, y


def both_backwards(make_loss, inputs):
    """(fastpath grads, reference grads) for the same loss builder."""
    fast = grad(make_loss(), inputs, allow_unused=True)
    with fastpath.disabled():
        ref = grad(make_loss(), inputs, allow_unused=True)
    return fast, ref


def assert_bit_equal(fast, ref):
    assert len(fast) == len(ref)
    for f, r in zip(fast, ref):
        if r is None:
            assert f is None
        else:
            assert f is not None
            assert f.data.shape == r.data.shape
            assert f.data.tobytes() == r.data.tobytes()


class TestBitExactness:
    def test_simple_graph(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 2)), requires_grad=True)

        def loss():
            return ops.sum_(ops.tanh(ops.matmul(a, b)))

        assert_bit_equal(*both_backwards(loss, [a, b]))

    def test_shared_subexpression_accumulation(self):
        """Multiple cotangent contributions exercise the buffered add path."""
        x = Tensor(np.linspace(-1.0, 2.0, 12).reshape(3, 4), requires_grad=True)

        def loss():
            h = ops.sigmoid(x)
            return ops.sum_(h * h + ops.exp(h) - h)

        assert_bit_equal(*both_backwards(loss, [x]))

    def test_cross_entropy_composite(self):
        model, params, x, y = lr_problem()

        def loss():
            return cross_entropy(model.apply(params, x), y)

        assert_bit_equal(*both_backwards(loss, [params["W"], params["b"]]))

    def test_fused_equals_composite_forward_and_grad(self):
        model, params, x, y = lr_problem(seed=3)
        targets = Tensor(one_hot(y, model.num_classes))
        fused = ops.linear_softmax_xent(
            Tensor(np.asarray(x, dtype=np.float64)),
            params["W"], params["b"], targets,
        )
        composite = cross_entropy(model.apply(params, x), y)
        assert fused.data.tobytes() == composite.data.tobytes()
        gf = grad(fused, [params["W"], params["b"]])
        with fastpath.disabled():
            gc = grad(
                cross_entropy(model.apply(params, x), y),
                [params["W"], params["b"]],
            )
        assert_bit_equal(gf, gc)

    def test_bifused_softmax_xent_matches_composite(self):
        rng = np.random.default_rng(7)
        logits = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        y = rng.integers(0, 4, size=5)
        targets = Tensor(one_hot(y, 4))

        fast = grad(ops.softmax_xent(logits, targets), [logits])
        with fastpath.disabled():
            ref = grad(cross_entropy(logits, y), [logits])
        assert_bit_equal(fast, ref)

    def test_fused_model_loss_dispatch_is_bit_exact(self):
        model, params, x, y = lr_problem(seed=5)
        fast = grad(
            fused_model_loss(model, params, x, y),
            [params["W"], params["b"]],
        )
        with fastpath.disabled():
            ref = grad(
                cross_entropy(model.apply(params, x), y),
                [params["W"], params["b"]],
            )
        assert_bit_equal(fast, ref)
        assert fastpath.stats().fused_dispatches == 1

    def test_meta_gradient_exact_maml_bit_exact(self):
        from repro.core.maml import meta_gradient
        from repro.data.dataset import Dataset, NodeSplit

        rng = np.random.default_rng(11)
        model = LogisticRegression(6, 3)
        params = model.init(rng)
        split = NodeSplit(
            train=Dataset(rng.normal(size=(8, 6)), rng.integers(0, 3, size=8)),
            test=Dataset(rng.normal(size=(5, 6)), rng.integers(0, 3, size=5)),
        )
        for first_order in (False, True):
            g_fast, v_fast = meta_gradient(
                model, params, split, alpha=0.1, first_order=first_order
            )
            with fastpath.disabled():
                g_ref, v_ref = meta_gradient(
                    model, params, split, alpha=0.1, first_order=first_order
                )
            assert v_fast == v_ref
            for name in g_ref:
                assert (
                    g_fast[name].data.tobytes() == g_ref[name].data.tobytes()
                ), (first_order, name)

    def test_nonscalar_output_with_seed(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        seed = Tensor(np.linspace(0.5, 1.5, 6).reshape(2, 3))

        def run():
            return grad(ops.tanh(a), [a], grad_output=seed)

        fast = run()
        with fastpath.disabled():
            ref = run()
        assert_bit_equal(fast, ref)

    def test_grad_of_output_wrt_itself(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = ops.mul(a, a)
        seed = Tensor(np.full(3, 2.0))
        (g,) = grad(out, [out], grad_output=seed)
        assert g.data.tobytes() == seed.data.tobytes()


class TestSemantics:
    def test_unused_input_raises_without_allow_unused(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(Exception, match="allow_unused"):
            grad(ops.sum_(a), [b])

    def test_unused_input_none_with_allow_unused(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        g = grad(ops.sum_(a), [a, b], allow_unused=True)
        assert g[0] is not None and g[1] is None

    def test_results_do_not_alias_plan_buffers(self):
        """Returned grads are fresh copies; mutating one never corrupts a
        later backward that reuses the same cached plan and buffers."""
        x = Tensor(np.ones((3, 3)), requires_grad=True)

        def loss():
            h = ops.exp(x)
            return ops.sum_(h * h + h)

        (g1,) = grad(loss(), [x])
        baseline = g1.data.tobytes()
        g1.data[:] = -777.0  # deliberate mutation of the returned array
        (g2,) = grad(loss(), [x])
        assert g2.data.tobytes() == baseline
        assert fastpath.stats().plan_hits >= 1

    def test_different_seeds_same_structure_no_stale_memo(self):
        """Buffer reuse must not fool the fused raw-VJP memo (epoch check)."""
        model, params, x, y = lr_problem(seed=9)
        targets = Tensor(one_hot(y, model.num_classes))
        xt = Tensor(np.asarray(x, dtype=np.float64))

        def run(seed_value):
            out = ops.linear_softmax_xent(
                xt, params["W"], params["b"], targets
            )
            return grad(
                out, [params["W"]],
                grad_output=Tensor(np.asarray(seed_value)),
            )[0]

        g1 = run(1.0)
        g2 = run(2.0)
        with fastpath.disabled():
            r1 = run(1.0)
            r2 = run(2.0)
        assert g1.data.tobytes() == r1.data.tobytes()
        assert g2.data.tobytes() == r2.data.tobytes()
        np.testing.assert_allclose(g2.data, 2.0 * g1.data, rtol=1e-15)

    def test_disabled_context_restores(self):
        assert fastpath.enabled()
        with fastpath.disabled():
            assert not fastpath.enabled()
        assert fastpath.enabled()

    def test_create_graph_bypasses_fastpath(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        before = fastpath.stats().backwards
        (g,) = grad(ops.sum_(a * a * a), [a], create_graph=True)
        assert fastpath.stats().backwards == before  # reference path used
        (gg,) = grad(ops.sum_(g), [a])  # second order via fast path
        np.testing.assert_allclose(gg.data, 6.0 * a.data)


class TestPlanCache:
    def test_hit_miss_counters(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)

        def loss():
            return ops.sum_(ops.exp(x))

        grad(loss(), [x])
        assert fastpath.stats().plan_misses == 1
        assert fastpath.stats().plan_hits == 0
        grad(loss(), [x])
        grad(loss(), [x])
        assert fastpath.stats().plan_misses == 1
        assert fastpath.stats().plan_hits == 2
        assert fastpath.plan_cache_size() == 1

    def test_different_structures_get_different_plans(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        grad(ops.sum_(ops.exp(x)), [x])
        grad(ops.sum_(ops.tanh(x)), [x])  # different op name
        grad(ops.sum_(ops.exp(ops.exp(x))), [x])  # different depth
        assert fastpath.stats().plan_misses == 3

    def test_plan_reuse_does_not_confuse_op_parameters(self):
        """Same topology, different reduction axes: the cached plan must not
        bake in per-op parameters (VJPs always come from the live graph)."""
        x = Tensor(np.arange(9.0).reshape(3, 3), requires_grad=True)
        seed = Tensor(np.array([1.0, 2.0, 3.0]))
        g0 = grad(ops.sum_(x, axis=0), [x], grad_output=seed)[0]
        g1 = grad(ops.sum_(x, axis=1), [x], grad_output=seed)[0]
        np.testing.assert_array_equal(g0.data, np.tile(seed.data, (3, 1)))
        np.testing.assert_array_equal(g1.data, np.tile(seed.data[:, None], (1, 3)))

    def test_clear_cache(self):
        x = Tensor(np.ones(3), requires_grad=True)
        grad(ops.sum_(x), [x])
        assert fastpath.plan_cache_size() == 1
        fastpath.clear_cache()
        assert fastpath.plan_cache_size() == 0

    def test_to_registry_exports_counters(self):
        x = Tensor(np.ones(3), requires_grad=True)
        grad(ops.sum_(x), [x])
        grad(ops.sum_(x), [x])
        registry = MetricRegistry()
        fastpath.to_registry(registry)
        assert registry.get("autodiff_fastpath_backwards_total").value == 2
        assert registry.get("autodiff_fastpath_plan_hits_total").value == 1
        assert registry.get("autodiff_fastpath_plan_misses_total").value == 1
        assert registry.get("autodiff_fastpath_cached_plans").value == 1


class TestSingleWalkBackward:
    def test_backward_walks_graph_once(self):
        """Regression: Tensor.backward() used to toposort twice (once for
        leaf discovery, once inside grad)."""
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        w = Tensor(np.ones((3, 2)), requires_grad=True)
        with profile_ops() as prof:
            loss = ops.sum_(ops.matmul(x, w))
            loss.backward()
        assert prof.graph_walks == 1
        assert x.grad is not None and w.grad is not None

    def test_grad_walks_graph_once_on_both_paths(self):
        x = Tensor(np.ones(5), requires_grad=True)
        with profile_ops() as prof:
            grad(ops.sum_(ops.exp(x)), [x])
        assert prof.graph_walks == 1
        with fastpath.disabled():
            with profile_ops() as prof:
                grad(ops.sum_(ops.exp(x)), [x])
        assert prof.graph_walks == 1


class TestCompiledTier:
    """The compile layer: arena kernels, coalescing, and the exec cache.

    A live graph is armed on its first backward, compiled on the second,
    and every subsequent backward replays bound arena-kernel steps — all
    three executions must be byte-identical to the reference walk.
    """

    @staticmethod
    def _mlp_loss(seed=0):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(6, 5)))
        w1 = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        b1 = Tensor(rng.normal(size=(4,)), requires_grad=True)
        w2 = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        h = ops.tanh(ops.add(ops.matmul(x, w1), b1))
        # `h` feeds two consumers so its cotangent exercises fan-in >= 2
        # accumulation through the arena.
        out = ops.sum_(ops.matmul(h, w2)) + ops.sum_(ops.mul(h, h))
        return out, [w1, b1, w2]

    def test_compiles_on_second_sighting_and_replays(self):
        loss, inputs = self._mlp_loss()
        with fastpath.disabled():
            ref = grad(loss, inputs)
        runs = [grad(loss, inputs) for _ in range(4)]
        stats = fastpath.stats()
        assert stats.compiled_graphs == 1
        assert stats.compiled_runs == 2  # calls 3 and 4 replay the exec
        assert stats.kernel_vjp_calls > 0
        assert fastpath.exec_cache_size() == 1
        for fast in runs:
            assert_bit_equal(fast, ref)

    def test_compiled_replay_counts_arena_reuse(self):
        loss, inputs = self._mlp_loss(seed=2)
        for _ in range(4):
            grad(loss, inputs)
        assert fastpath.stats().arena_reuse_hits > 0
        assert fastpath.arena_stats()["slots"] > 0

    def test_compiled_results_do_not_alias_arena(self):
        loss, inputs = self._mlp_loss(seed=3)
        for _ in range(3):
            grads = grad(loss, inputs)
        baseline = [g.data.tobytes() for g in grads]
        for g in grads:
            g.data[:] = -123.0  # deliberate mutation of returned arrays
        again = grad(loss, inputs)
        assert [g.data.tobytes() for g in again] == baseline

    def test_backward_out_buffers_are_zero_allocation(self):
        """Satellite: warmed compiled replay with ``out=`` allocates nothing."""
        loss, inputs = self._mlp_loss(seed=4)
        order = toposort(loss)
        seed = np.array(1.0)
        for _ in range(3):  # miss -> arm -> compile
            fastpath.backward(loss, inputs, order, seed)
        out = [np.empty(t.data.shape) for t in inputs]
        before = fastpath.stats().as_dict()
        results = fastpath.backward(loss, inputs, order, seed, out=out)
        delta = fastpath.stats().delta_since(before)
        assert delta["compiled_runs"] == 1
        assert delta["hot_allocations"] == 0
        assert delta["result_copies"] == 0
        for res, buf in zip(results, out):
            assert res is buf  # written in place, not reallocated
        ref = fastpath.backward(loss, inputs, order, seed)
        for res, r in zip(out, ref):
            assert res.tobytes() == r.tobytes()

    def test_alloc_hook_sees_cached_path_not_warm_replay(self):
        loss, inputs = self._mlp_loss(seed=5)
        order = toposort(loss)
        seed = np.array(1.0)
        counts = []
        previous = fastpath.set_alloc_hook(counts.append)
        try:
            fastpath.backward(loss, inputs, order, seed)  # cached: allocates
            assert sum(counts) > 0
            for _ in range(2):
                fastpath.backward(loss, inputs, order, seed)
            counts.clear()
            out = [np.empty(t.data.shape) for t in inputs]
            fastpath.backward(loss, inputs, order, seed, out=out)
            assert sum(counts) == 0
        finally:
            fastpath.set_alloc_hook(previous)

    def test_cached_mode_never_compiles(self):
        previous = fastpath.set_mode("cached")
        try:
            loss, inputs = self._mlp_loss(seed=6)
            with fastpath.disabled():
                ref = grad(loss, inputs)
            for _ in range(4):
                fast = grad(loss, inputs)
                assert_bit_equal(fast, ref)
            assert fastpath.stats().compiled_graphs == 0
            assert fastpath.exec_cache_size() == 0
        finally:
            fastpath.set_mode(previous)

    def test_set_mode_rejects_unknown(self):
        with pytest.raises(ValueError):
            fastpath.set_mode("jit")

    def test_plan_eviction_releases_arena(self):
        """Satellite: arena buffers must not leak across cache eviction."""
        x = Tensor(np.ones((4, 4)), requires_grad=True)
        loss = ops.sum_(ops.mul(ops.exp(x), ops.tanh(x)))
        for _ in range(3):
            grad(loss, [x])
        assert fastpath.arena_stats()["bytes"] > 0
        registry = MetricRegistry()
        fastpath.to_registry(registry)
        occupied = registry.get("autodiff_arena_bytes").value
        assert occupied > 0

        # Churn enough distinct signatures to evict every earlier plan.
        # These throwaway graphs are backwarded once each, so they build
        # plans (evicting the compiled one) without compiling themselves.
        depth_x = Tensor(np.ones(2), requires_grad=True)
        node = depth_x
        for _ in range(70):
            node = ops.sigmoid(node)
            grad(ops.sum_(node), [depth_x])
        assert fastpath.plan_cache_size() <= 64
        # The compiled plan was evicted: its arena was released and its
        # executable dropped, so the bytes gauge decreases (here: to zero,
        # since nothing else compiled).
        assert fastpath.exec_cache_size() == 0
        registry2 = MetricRegistry()
        fastpath.to_registry(registry2)
        live = registry2.get("autodiff_arena_bytes").value
        assert live < occupied
        assert live == 0
        assert registry2.get("autodiff_arena_peak_bytes").value >= occupied

    def test_signature_churn_bounds_peak_arena_bytes(self):
        """>64 distinct signatures churned twice: the arena footprint stays
        bounded by the LRU capacity instead of growing with every plan."""
        x = Tensor(np.ones(3), requires_grad=True)
        high_water = []
        round_bytes = []
        for _round in range(2):
            node = x
            peak = 0
            for _ in range(80):
                node = ops.tanh(node)
                loss = ops.sum_(node)
                for _ in range(3):  # miss -> arm+compile -> replay
                    grad(loss, [x])
                peak = max(peak, fastpath.arena_stats()["bytes"])
            high_water.append(peak)
            round_bytes.append(fastpath.arena_stats()["bytes"])
            node = None
        assert fastpath.plan_cache_size() <= 64
        assert round_bytes[0] > 0
        # Round two rebuilds the same 80 signatures: plans (and their
        # arenas) are reused, so neither the live footprint nor the
        # high-water mark moves — an eviction leak would double both.
        assert round_bytes[1] == round_bytes[0]
        assert high_water[1] == high_water[0]
        fastpath.clear_cache()
        drained = fastpath.arena_stats()
        assert drained["bytes"] == 0
        assert drained["slots"] == 0

    def test_clear_cache_resets_arena_gauges(self):
        loss, inputs = self._mlp_loss(seed=7)
        for _ in range(3):
            grad(loss, inputs)
        registry = MetricRegistry()
        fastpath.to_registry(registry)
        before = registry.get("autodiff_arena_bytes").value
        assert before > 0
        fastpath.clear_cache()
        registry2 = MetricRegistry()
        fastpath.to_registry(registry2)
        assert registry2.get("autodiff_arena_bytes").value == 0
        assert registry2.get("autodiff_arena_slots").value == 0

    def test_set_backend_drops_executables(self):
        loss, inputs = self._mlp_loss(seed=8)
        with fastpath.disabled():
            ref = grad(loss, inputs)
        for _ in range(3):
            grad(loss, inputs)
        assert fastpath.exec_cache_size() == 1
        backend = fastpath.get_backend()
        fastpath.set_backend(backend)  # any swap invalidates compiled state
        assert fastpath.exec_cache_size() == 0
        for _ in range(3):  # recompiles cleanly through the same plan
            assert_bit_equal(grad(loss, inputs), ref)


# ----------------------------------------------------------------------
# Property: fastpath == reference, bit for bit, over random graph shapes
# ----------------------------------------------------------------------
_UNARY = [ops.exp, ops.tanh, ops.sigmoid, ops.relu, ops.neg, ops.abs_]
_BINARY = [ops.add, ops.sub, ops.mul]


@given(
    shape=st.tuples(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    ),
    op_picks=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=len(_UNARY) + len(_BINARY) - 1),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=1,
        max_size=8,
    ),
    data_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_property_fastpath_bit_identical(shape, op_picks, data_seed):
    rng = np.random.default_rng(data_seed)
    a = Tensor(rng.normal(size=shape), requires_grad=True)
    b = Tensor(rng.normal(size=shape), requires_grad=True)

    def build():
        frontier = [a, b]
        for op_index, operand in op_picks:
            if op_index < len(_UNARY):
                node = _UNARY[op_index](frontier[operand % len(frontier)])
            else:
                binary = _BINARY[op_index - len(_UNARY)]
                node = binary(
                    frontier[operand % len(frontier)],
                    frontier[(operand + 1) % len(frontier)],
                )
            frontier.append(node)
        return ops.sum_(frontier[-1])

    fastpath.enable()
    fast = grad(build(), [a, b], allow_unused=True)
    with fastpath.disabled():
        ref = grad(build(), [a, b], allow_unused=True)
    assert_bit_equal(fast, ref)


@given(
    shape=st.tuples(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    ),
    op_picks=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=len(_UNARY) + len(_BINARY) - 1),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=2,
        max_size=8,
    ),
    data_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_compiled_replay_bit_identical(shape, op_picks, data_seed):
    """Satellite: the arena-backed compiled backward is byte-identical to
    the allocating cached path and the reference walk — including fan-in>=2
    accumulation and repeated executions over warm arena buffers."""
    rng = np.random.default_rng(data_seed)
    a = Tensor(rng.normal(size=shape), requires_grad=True)
    b = Tensor(rng.normal(size=shape), requires_grad=True)

    frontier = [a, b]
    for op_index, operand in op_picks:
        if op_index < len(_UNARY):
            node = _UNARY[op_index](frontier[operand % len(frontier)])
        else:
            binary = _BINARY[op_index - len(_UNARY)]
            node = binary(
                frontier[operand % len(frontier)],
                frontier[(operand + 1) % len(frontier)],
            )
        frontier.append(node)
    # Summing a product of the last two frontier nodes forces at least one
    # shared consumer, so some cotangent accumulates from >= 2 edges.
    loss = ops.sum_(ops.add(frontier[-1], ops.mul(frontier[-1], frontier[-2])))

    fastpath.enable()
    fastpath.clear_cache()
    with fastpath.disabled():
        ref = grad(loss, [a, b], allow_unused=True)
    previous = fastpath.set_mode("cached")
    try:
        cached = grad(loss, [a, b], allow_unused=True)
    finally:
        fastpath.set_mode(previous)
    assert_bit_equal(cached, ref)
    # Compiled tier: arm, compile, then replay twice over warm buffers.
    for _ in range(4):
        assert_bit_equal(grad(loss, [a, b], allow_unused=True), ref)
