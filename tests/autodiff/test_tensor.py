"""Unit tests for the Tensor graph core and the grad() API."""

import numpy as np
import pytest

from repro.autodiff import GradientError, Tensor, grad, ops, tensor


class TestTensorBasics:
    def test_construction_from_list(self):
        t = tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_construction_casts_to_float64(self):
        t = tensor(np.array([1, 2], dtype=np.int32))
        assert t.data.dtype == np.float64

    def test_wrapping_tensor_raises(self):
        with pytest.raises(TypeError):
            Tensor(tensor([1.0]))

    def test_scalar_item(self):
        assert tensor(3.5).item() == 3.5

    def test_leaf_detection(self):
        a = tensor([1.0], requires_grad=True)
        b = a + a
        assert a.is_leaf()
        assert not b.is_leaf()

    def test_detach_breaks_graph(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        b = (a * a).detach()
        assert b.is_leaf()
        assert not b.requires_grad
        np.testing.assert_array_equal(b.data, [1.0, 4.0])

    def test_numpy_returns_read_only_view(self):
        """Regression: ``t.numpy()`` used to hand out a writable view of the
        tensor's storage, so callers could silently corrupt values already
        captured by VJP closures."""
        a = tensor([1.0, 2.0], requires_grad=True)
        view = a.numpy()
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0] = 99.0
        # The underlying tensor still reads/writes normally through ops.
        np.testing.assert_array_equal(a.data, [1.0, 2.0])

    def test_detach_returns_read_only_view(self):
        a = tensor([1.0, 2.0], requires_grad=True)
        d = (a * a).detach()
        assert not d.data.flags.writeable
        with pytest.raises(ValueError):
            d.data[0] = 99.0

    def test_numpy_shares_storage_without_copy(self):
        a = tensor([1.0, 2.0])
        assert a.numpy().base is a.data

    def test_requires_grad_propagates(self):
        a = tensor([1.0], requires_grad=True)
        b = tensor([2.0])
        assert (a + b).requires_grad
        assert not (b + b).requires_grad

    def test_constant_graph_is_pruned(self):
        a = tensor([1.0])
        b = tensor([2.0])
        assert (a * b).is_leaf()

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(tensor([1.0], requires_grad=True))

    def test_shape_properties(self):
        t = tensor(np.zeros((2, 3)))
        assert t.ndim == 2
        assert t.size == 6
        assert t.T.shape == (3, 2)


class TestGradAPI:
    def test_simple_gradient(self):
        x = tensor([2.0], requires_grad=True)
        y = x * x
        (g,) = grad(y.sum(), [x])
        np.testing.assert_allclose(g.data, [4.0])

    def test_gradient_is_detached_by_default(self):
        x = tensor([2.0], requires_grad=True)
        (g,) = grad((x * x).sum(), [x])
        assert g.is_leaf()
        assert not g.requires_grad

    def test_create_graph_keeps_gradient_differentiable(self):
        x = tensor([2.0], requires_grad=True)
        (g,) = grad((x * x * x).sum(), [x], create_graph=True)
        (gg,) = grad(g.sum(), [x])
        np.testing.assert_allclose(gg.data, [12.0])  # d2/dx2 x^3 = 6x

    def test_non_scalar_output_requires_seed(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(GradientError):
            grad(x * x, [x])

    def test_explicit_grad_output_seed(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        seed = tensor([1.0, 0.0])
        (g,) = grad(x * x, [x], grad_output=seed)
        np.testing.assert_allclose(g.data, [2.0, 0.0])

    def test_grad_output_shape_mismatch_raises(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(GradientError):
            grad(x * x, [x], grad_output=tensor([1.0]))

    def test_unused_input_raises_without_allow_unused(self):
        x = tensor([1.0], requires_grad=True)
        z = tensor([1.0], requires_grad=True)
        with pytest.raises(GradientError):
            grad((x * x).sum(), [z])

    def test_unused_input_none_with_allow_unused(self):
        x = tensor([1.0], requires_grad=True)
        z = tensor([1.0], requires_grad=True)
        result = grad((x * x).sum(), [x, z], allow_unused=True)
        assert result[1] is None
        np.testing.assert_allclose(result[0].data, [2.0])

    def test_gradient_accumulates_over_multiple_uses(self):
        x = tensor([3.0], requires_grad=True)
        y = x * x + x * x  # x used twice in two branches
        (g,) = grad(y.sum(), [x])
        np.testing.assert_allclose(g.data, [12.0])

    def test_diamond_graph(self):
        x = tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 5.0
        (g,) = grad((a * b).sum(), [x])
        np.testing.assert_allclose(g.data, [60.0])  # d/dx 15x^2 = 30x

    def test_gradient_wrt_intermediate_node(self):
        x = tensor([2.0], requires_grad=True)
        mid = x * x
        out = (mid * 3.0).sum()
        g_mid, g_x = grad(out, [mid, x])
        np.testing.assert_allclose(g_mid.data, [3.0])
        np.testing.assert_allclose(g_x.data, [12.0])

    def test_grad_of_output_wrt_itself(self):
        x = tensor([1.0], requires_grad=True)
        y = (x * 2.0).sum()
        (g,) = grad(y, [y])
        np.testing.assert_allclose(g.data, 1.0)

    def test_non_tensor_output_raises(self):
        with pytest.raises(TypeError):
            grad(3.0, [tensor([1.0], requires_grad=True)])


class TestBackward:
    def test_backward_populates_leaf_grads(self):
        x = tensor([1.0, 2.0], requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad.data, [2.0, 4.0])

    def test_backward_accumulates_across_calls(self):
        x = tensor([1.0], requires_grad=True)
        (x * x).sum().backward()
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad.data, [4.0])

    def test_backward_skips_non_grad_leaves(self):
        x = tensor([1.0], requires_grad=True)
        c = tensor([5.0])
        (x * c).sum().backward()
        assert c.grad is None
        np.testing.assert_allclose(x.grad.data, [5.0])


class TestOperatorSugar:
    def test_radd_rsub_rmul_rtruediv(self):
        x = tensor([2.0], requires_grad=True)
        np.testing.assert_allclose((1.0 + x).data, [3.0])
        np.testing.assert_allclose((1.0 - x).data, [-1.0])
        np.testing.assert_allclose((3.0 * x).data, [6.0])
        np.testing.assert_allclose((8.0 / x).data, [4.0])

    def test_negation(self):
        x = tensor([2.0], requires_grad=True)
        (g,) = grad((-x).sum(), [x])
        np.testing.assert_allclose(g.data, [-1.0])

    def test_pow_operator(self):
        x = tensor([3.0], requires_grad=True)
        (g,) = grad((x**2).sum(), [x])
        np.testing.assert_allclose(g.data, [6.0])

    def test_matmul_operator(self):
        a = tensor(np.eye(2), requires_grad=True)
        b = tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_getitem(self):
        x = tensor([1.0, 2.0, 3.0], requires_grad=True)
        (g,) = grad(x[1].sum(), [x])
        np.testing.assert_allclose(g.data, [0.0, 1.0, 0.0])

    def test_mean_method(self):
        x = tensor([1.0, 3.0], requires_grad=True)
        assert x.mean().item() == 2.0
