"""Tests for the extended op set: max/min reductions, where, stack."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, grad, ops

RNG = np.random.default_rng(11)


class TestMaxMin:
    def test_max_forward(self):
        x = RNG.normal(size=(3, 4))
        np.testing.assert_allclose(
            ops.max_(Tensor(x), axis=1).data, x.max(axis=1)
        )
        np.testing.assert_allclose(ops.max_(Tensor(x)).data, x.max())

    def test_min_forward(self):
        x = RNG.normal(size=(3, 4))
        np.testing.assert_allclose(
            ops.min_(Tensor(x), axis=0).data, x.min(axis=0)
        )

    def test_max_gradient_hits_argmax_only(self):
        x = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        (g,) = grad(ops.max_(x), [x])
        np.testing.assert_allclose(g.data, [0.0, 1.0, 0.0])

    def test_max_gradient_splits_ties(self):
        x = Tensor(np.array([5.0, 5.0, 3.0]), requires_grad=True)
        (g,) = grad(ops.max_(x), [x])
        np.testing.assert_allclose(g.data, [0.5, 0.5, 0.0])

    def test_max_axis_gradient_finite_difference(self):
        x = RNG.normal(size=(3, 4))
        # Perturb-safe: ensure unique maxima so FD is valid.
        x += np.arange(12).reshape(3, 4) * 0.01
        check_gradients(lambda a: ops.max_(a, axis=1).sum(), [x])

    def test_min_gradient_finite_difference(self):
        x = RNG.normal(size=(5,))
        x += np.arange(5) * 0.01
        check_gradients(lambda a: ops.min_(a).sum(), [x])

    def test_max_keepdims_shape(self):
        x = Tensor(RNG.normal(size=(3, 4)))
        assert ops.max_(x, axis=1, keepdims=True).shape == (3, 1)


class TestWhere:
    def test_forward(self):
        cond = np.array([True, False, True])
        out = ops.where(cond, Tensor([1.0, 2.0, 3.0]), Tensor([9.0, 9.0, 9.0]))
        np.testing.assert_allclose(out.data, [1.0, 9.0, 3.0])

    def test_gradients_route_by_condition(self):
        cond = np.array([True, False])
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        ga, gb = grad(ops.where(cond, a, b).sum(), [a, b])
        np.testing.assert_allclose(ga.data, [1.0, 0.0])
        np.testing.assert_allclose(gb.data, [0.0, 1.0])

    def test_gradient_finite_difference(self):
        cond = RNG.normal(size=(4,)) > 0
        check_gradients(
            lambda a, b: (ops.where(cond, a, b) ** 2).sum(),
            [RNG.normal(size=(4,)), RNG.normal(size=(4,))],
        )


class TestStack:
    def test_forward_matches_numpy(self):
        arrays = [RNG.normal(size=(2, 3)) for _ in range(4)]
        out = ops.stack([Tensor(a) for a in arrays], axis=0)
        np.testing.assert_allclose(out.data, np.stack(arrays, axis=0))

    def test_stack_axis_one(self):
        arrays = [RNG.normal(size=(2,)) for _ in range(3)]
        out = ops.stack([Tensor(a) for a in arrays], axis=1)
        assert out.shape == (2, 3)

    def test_gradient_splits_back(self):
        a = Tensor(RNG.normal(size=(2,)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2,)), requires_grad=True)
        stacked = ops.stack([a, b], axis=0)
        ga, gb = grad((stacked * stacked).sum(), [a, b])
        np.testing.assert_allclose(ga.data, 2 * a.data)
        np.testing.assert_allclose(gb.data, 2 * b.data)

    def test_gradient_finite_difference(self):
        check_gradients(
            lambda a, b: (ops.stack([a, b], axis=1) ** 2).sum(),
            [RNG.normal(size=(3,)), RNG.normal(size=(3,))],
        )

    def test_second_order_through_max(self):
        """max is piecewise linear: second derivative zero away from ties."""
        x = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        (g,) = grad(ops.max_(x * x), [x], create_graph=True)
        (gg,) = grad(g.sum(), [x], allow_unused=True)
        # d/dx max(x^2) = 2x at argmax; second derivative = 2 at argmax.
        np.testing.assert_allclose(gg.data, [0.0, 2.0, 0.0])
