"""Sanity checks on the examples, docs, and bench scaffolding."""

import ast
import pathlib
import py_compile

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]


class TestExamples:
    EXAMPLES = sorted((REPO / "examples").glob("*.py"))

    def test_at_least_three_examples_exist(self):
        assert len(self.EXAMPLES) >= 3

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.name for p in EXAMPLES]
    )
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.name for p in EXAMPLES]
    )
    def test_example_has_main_guard_and_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
        assert 'if __name__ == "__main__":' in path.read_text()

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.name for p in EXAMPLES]
    )
    def test_example_imports_only_public_api(self, path):
        """Examples must demonstrate the public surface, not internals."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    parts = node.module.split(".")
                    # allow repro.<pkg> and repro.<pkg>.<public module>
                    assert not any(p.startswith("_") for p in parts)


class TestBenchmarks:
    BENCHES = sorted((REPO / "benchmarks").glob("bench_*.py"))

    def test_every_table_and_figure_has_a_bench(self):
        names = {p.stem for p in self.BENCHES}
        required = {
            "bench_table1_dataset_stats",
            "bench_fig2a_node_similarity",
            "bench_fig2b_local_steps",
            "bench_fig3a_sent140_convergence",
            "bench_fig3b_target_similarity",
            "bench_fig3c_adapt_synthetic",
            "bench_fig3d_adapt_mnist",
            "bench_fig3e_adapt_sent140",
            "bench_fig4_robust_tradeoff",
            "bench_fig4e_fgsm_strength",
        }
        missing = required - names
        assert not missing, f"paper artifacts without a bench: {missing}"

    @pytest.mark.parametrize(
        "path", BENCHES, ids=[p.name for p in BENCHES]
    )
    def test_bench_compiles_and_documents_its_figure(self, path):
        py_compile.compile(str(path), doraise=True)
        doc = ast.get_docstring(ast.parse(path.read_text()))
        assert doc and ("Figure" in doc or "Table" in doc or "Ablation" in doc)


class TestDocs:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/THEORY.md", "docs/API.md"):
            assert (REPO / name).is_file(), f"missing {name}"

    def test_experiments_covers_every_paper_artifact(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in (
            "Table I", "Figure 2(a)", "Figure 2(b)", "Figure 3(a)",
            "Figure 3(b)", "Figure 3(c)", "Figure 3(d)", "Figure 3(e)",
            "Figure 4(a)", "Figure 4(e)",
        ):
            assert artifact in text, f"EXPERIMENTS.md misses {artifact}"

    def test_design_records_substitutions(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "MNIST" in text
        assert "Sent140" in text
        assert "autodiff" in text
