"""Tests for FGSM, PGD and the Wasserstein-DRO ascent."""

import numpy as np
import pytest

from repro.attacks import (
    embed_inputs,
    fgsm,
    input_gradient,
    pgd,
    surrogate_objective,
    wasserstein_ascent,
)
from repro.autodiff import Tensor
from repro.nn import EmbeddingClassifier, LogisticRegression, cross_entropy

RNG = np.random.default_rng(3)


@pytest.fixture(scope="module")
def trained_model():
    """A logistic-regression model fit on separable data."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(60, 8))
    w_true = rng.normal(size=(8, 4)) * 2.0
    y = np.argmax(x @ w_true, axis=1)
    model = LogisticRegression(8, 4)
    params = model.init(rng)
    from repro.autodiff import grad
    from repro.nn.parameters import require_grad

    for _ in range(150):
        theta = require_grad(params)
        loss = cross_entropy(model.apply(theta, x), y)
        names = sorted(theta)
        grads = grad(loss, [theta[n] for n in names])
        params = {
            n: Tensor(theta[n].data - 0.5 * g.data) for n, g in zip(names, grads)
        }
    return model, params, x, y


class TestInputGradient:
    def test_shape_matches_input(self, trained_model):
        model, params, x, y = trained_model
        g = input_gradient(model, params, x, y)
        assert g.shape == x.shape

    def test_moving_along_gradient_increases_loss(self, trained_model):
        model, params, x, y = trained_model
        g = input_gradient(model, params, x, y)
        before = cross_entropy(model.apply(params, x), y).item()
        after = cross_entropy(model.apply(params, x + 0.01 * g), y).item()
        assert after > before

    def test_embed_inputs_passthrough_for_continuous(self, trained_model):
        model, _, x, _ = trained_model
        np.testing.assert_array_equal(embed_inputs(model, x), x)

    def test_embed_inputs_maps_token_ids(self):
        model = EmbeddingClassifier(
            vocab_size=7, embed_dim=3, seq_len=4, hidden_dims=(), num_classes=2
        )
        ids = RNG.integers(0, 7, size=(2, 4))
        out = embed_inputs(model, ids)
        assert out.shape == (2, 12)


class TestFGSM:
    def test_perturbation_bounded_by_xi(self, trained_model):
        model, params, x, y = trained_model
        adv = fgsm(model, params, x, y, xi=0.1)
        assert np.abs(adv - x).max() <= 0.1 + 1e-12

    def test_increases_loss(self, trained_model):
        model, params, x, y = trained_model
        adv = fgsm(model, params, x, y, xi=0.3)
        clean = cross_entropy(model.apply(params, x), y).item()
        attacked = cross_entropy(model.apply(params, adv), y).item()
        assert attacked > clean

    def test_zero_xi_is_identity(self, trained_model):
        model, params, x, y = trained_model
        np.testing.assert_array_equal(fgsm(model, params, x, y, xi=0.0), x)

    def test_negative_xi_raises(self, trained_model):
        model, params, x, y = trained_model
        with pytest.raises(ValueError):
            fgsm(model, params, x, y, xi=-0.1)

    def test_clip_range_respected(self, trained_model):
        model, params, x, y = trained_model
        adv = fgsm(model, params, x, y, xi=5.0, clip_range=(0.0, 1.0))
        assert adv.min() >= 0.0
        assert adv.max() <= 1.0

    def test_stronger_attack_hurts_more(self, trained_model):
        model, params, x, y = trained_model
        losses = []
        for xi in (0.05, 0.2, 0.5):
            adv = fgsm(model, params, x, y, xi=xi)
            losses.append(cross_entropy(model.apply(params, adv), y).item())
        assert losses[0] < losses[1] < losses[2]


class TestPGD:
    def test_stays_in_epsilon_ball(self, trained_model):
        model, params, x, y = trained_model
        adv = pgd(model, params, x, y, epsilon=0.1, step_size=0.05, steps=5)
        assert np.abs(adv - x).max() <= 0.1 + 1e-12

    def test_at_least_as_strong_as_fgsm(self, trained_model):
        model, params, x, y = trained_model
        eps = 0.2
        adv_fgsm = fgsm(model, params, x, y, xi=eps)
        adv_pgd = pgd(model, params, x, y, epsilon=eps, step_size=eps / 4, steps=10)
        loss_fgsm = cross_entropy(model.apply(params, adv_fgsm), y).item()
        loss_pgd = cross_entropy(model.apply(params, adv_pgd), y).item()
        assert loss_pgd >= loss_fgsm * 0.95

    def test_invalid_args(self, trained_model):
        model, params, x, y = trained_model
        with pytest.raises(ValueError):
            pgd(model, params, x, y, epsilon=-1, step_size=0.1, steps=3)
        with pytest.raises(ValueError):
            pgd(model, params, x, y, epsilon=0.1, step_size=0.1, steps=0)


class TestWassersteinAscent:
    def test_increases_surrogate_objective(self, trained_model):
        model, params, x, y = trained_model
        lam = 0.5
        adv = wasserstein_ascent(model, params, x, y, lam=lam, nu=0.2, steps=5)
        before = surrogate_objective(
            model, params, Tensor(x), y, x, lam
        ).item()
        after = surrogate_objective(
            model, params, Tensor(adv), y, x, lam
        ).item()
        assert after >= before

    def test_larger_lambda_keeps_samples_closer(self, trained_model):
        model, params, x, y = trained_model
        near = wasserstein_ascent(model, params, x, y, lam=2.0, nu=0.1, steps=8)
        far = wasserstein_ascent(model, params, x, y, lam=0.0, nu=0.1, steps=8)
        assert np.linalg.norm(near - x) < np.linalg.norm(far - x)

    def test_increases_plain_loss(self, trained_model):
        model, params, x, y = trained_model
        adv = wasserstein_ascent(model, params, x, y, lam=0.1, nu=0.2, steps=8)
        clean = cross_entropy(model.apply(params, x), y).item()
        attacked = cross_entropy(model.apply(params, adv), y).item()
        assert attacked > clean

    def test_invalid_args(self, trained_model):
        model, params, x, y = trained_model
        with pytest.raises(ValueError):
            wasserstein_ascent(model, params, x, y, lam=-1, nu=0.1, steps=3)
        with pytest.raises(ValueError):
            wasserstein_ascent(model, params, x, y, lam=1, nu=0.0, steps=3)
        with pytest.raises(ValueError):
            wasserstein_ascent(model, params, x, y, lam=1, nu=0.1, steps=0)

    def test_labels_never_change(self, trained_model):
        # The transport cost is infinite for label flips; the API expresses
        # this by construction — perturbed x is returned, y is reused.
        model, params, x, y = trained_model
        adv = wasserstein_ascent(model, params, x, y, lam=0.5, nu=0.2, steps=3)
        assert adv.shape == x.shape
