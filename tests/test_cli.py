"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.algorithm == "fedml"
        assert args.dataset == "synthetic"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--algorithm", "sgd"])


class TestStatsCommand:
    def test_synthetic_stats_text(self, capsys):
        assert main(["stats", "--dataset", "synthetic", "--nodes", "10"]) == 0
        out = capsys.readouterr().out
        assert "Synthetic" in out
        assert "10" in out

    def test_stats_json(self, capsys):
        assert (
            main(["stats", "--dataset", "mnist", "--nodes", "8", "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["nodes"] == 8
        assert payload["name"] == "MNIST-like"


class TestTrainCommand:
    COMMON = [
        "train", "--nodes", "10", "--iterations", "10", "--t0", "5",
        "--adapt-steps", "2", "--eval-every", "1",
    ]

    @pytest.mark.parametrize(
        "algorithm",
        ["fedml", "fedavg", "fedprox", "reptile", "meta-sgd"],
    )
    def test_each_algorithm_runs(self, algorithm, capsys):
        assert main(self.COMMON + ["--algorithm", algorithm]) == 0
        out = capsys.readouterr().out
        assert algorithm in out
        assert "target acc" in out

    def test_adml_runs(self, capsys):
        argv = self.COMMON + [
            "--algorithm", "adml", "--dataset", "mnist", "--epsilon", "0.05",
        ]
        assert main(argv) == 0
        assert "adml" in capsys.readouterr().out

    def test_robust_fedml_runs(self, capsys):
        argv = self.COMMON + [
            "--algorithm", "robust-fedml", "--dataset", "mnist",
            "--ta", "2", "--n0", "1", "--r-max", "1", "--nu", "0.5",
        ]
        assert main(argv) == 0
        assert "robust-fedml" in capsys.readouterr().out

    def test_json_output_shape(self, capsys):
        assert main(self.COMMON + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "fedml"
        assert len(payload["adaptation_losses"]) == 3  # steps 0..2
        assert payload["final_loss"] <= payload["initial_loss"]
        assert payload["uplink_bytes"] > 0


class TestFleetSimCommand:
    SMALL = [
        "fleet-sim", "--fleet-size", "2000", "--sampled", "8",
        "--rounds", "4", "--local-steps", "2", "--buffer-size", "4",
    ]

    def test_json_run_reports_residency_bound(self, capsys):
        assert main(self.SMALL + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fleet_size"] == 2000
        assert payload["sampled_per_round"] == 8
        assert payload["resident_peak"] <= payload["resident_bound"]
        assert payload["updates_aggregated"] > 0
        assert payload["uplink_bytes"] > 0
        assert payload["sim_clock_s"] > 0

    def test_fedml_algorithm_runs(self, capsys):
        argv = self.SMALL + ["--algorithm", "fedml", "--json"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "fedml"

    def test_kill_exits_3_and_resume_completes(self, tmp_path, capsys):
        ckpt = str(tmp_path / "fleet.ckpt")
        argv = self.SMALL + [
            "--faults", "kill:block=2", "--checkpoint", ckpt, "--json",
        ]
        assert main(argv) == 3
        assert "resume" in capsys.readouterr().err.lower()
        assert main(argv + ["--resume"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rounds"] == 4
