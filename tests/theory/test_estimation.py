"""Tests for empirical constant estimation (HVPs, smoothness, similarity)."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.nn import LogisticRegression, mse
from repro.nn.parameters import from_vector, to_vector
from repro.theory import (
    estimate_similarity,
    estimate_smoothness,
    hessian_vector_product,
    loss_gradient_vector,
)


def quadratic_setup():
    """A linear-regression node whose MSE Hessian is known in closed form.

    Model: logits = x @ W with one output; loss = mean((x w - y)^2).
    Hessian wrt w is 2 X^T X / n.
    """
    rng = np.random.default_rng(0)
    x = rng.normal(size=(30, 5))
    w_true = rng.normal(size=5)
    y = x @ w_true
    return x, y, w_true


class _LinearModel:
    """Minimal functional model: predictions = x @ w."""

    output_dim = 1

    def init(self, rng):
        from repro.autodiff import Tensor

        return {"w": Tensor(rng.normal(size=(5, 1)))}

    def apply(self, params, x):
        from repro.autodiff import Tensor, ops

        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=np.float64))
        return ops.matmul(x, params["w"])


def regression_loss(predictions, targets):
    return mse(predictions.reshape((predictions.shape[0],)), np.asarray(targets))


class TestHVP:
    def test_matches_closed_form_quadratic_hessian(self):
        x, y, _ = quadratic_setup()
        model = _LinearModel()
        params = model.init(np.random.default_rng(1))
        data = Dataset(x=x, y=y)
        hessian = 2.0 * x.T @ x / len(x)
        rng = np.random.default_rng(2)
        for _ in range(3):
            v = rng.normal(size=5)
            hv = hessian_vector_product(
                model, params, data, v, loss_fn=regression_loss
            )
            np.testing.assert_allclose(hv, hessian @ v, rtol=1e-8)

    def test_gradient_vector_matches_closed_form(self):
        x, y, _ = quadratic_setup()
        model = _LinearModel()
        params = model.init(np.random.default_rng(1))
        data = Dataset(x=x, y=y)
        g = loss_gradient_vector(model, params, data, loss_fn=regression_loss)
        w = params["w"].data.reshape(-1)
        expected = 2.0 * x.T @ (x @ w - y) / len(x)
        np.testing.assert_allclose(g, expected, rtol=1e-8)

    def test_hvp_is_linear_in_v(self):
        x, y, _ = quadratic_setup()
        model = _LinearModel()
        params = model.init(np.random.default_rng(1))
        data = Dataset(x=x, y=y)
        rng = np.random.default_rng(3)
        v1, v2 = rng.normal(size=5), rng.normal(size=5)
        h1 = hessian_vector_product(model, params, data, v1, loss_fn=regression_loss)
        h2 = hessian_vector_product(model, params, data, v2, loss_fn=regression_loss)
        h12 = hessian_vector_product(
            model, params, data, v1 + 2 * v2, loss_fn=regression_loss
        )
        np.testing.assert_allclose(h12, h1 + 2 * h2, rtol=1e-8)


class TestSmoothnessEstimation:
    def test_quadratic_constants(self):
        """For f(w) = mean((xw−y)²): H = λ_max(2XᵀX/n), μ = λ_min, ρ = 0."""
        x, y, _ = quadratic_setup()
        model = _LinearModel()
        data = Dataset(x=x, y=y)
        hessian = 2.0 * x.T @ x / len(x)
        eigs = np.linalg.eigvalsh(hessian)
        est = estimate_smoothness(
            model, data, np.random.default_rng(0), num_points=10,
            loss_fn=regression_loss,
        )
        # Sampled ratios land inside [λ_min, λ_max].
        assert est.smoothness <= eigs[-1] * 1.01
        assert est.smoothness >= eigs[0] * 0.99
        assert est.mu >= eigs[0] * 0.9
        assert est.mu <= eigs[-1] * 1.01
        assert est.hessian_lipschitz == pytest.approx(0.0, abs=1e-6)

    def test_gradient_bound_positive(self):
        x, y, _ = quadratic_setup()
        est = estimate_smoothness(
            _LinearModel(), Dataset(x=x, y=y), np.random.default_rng(0),
            loss_fn=regression_loss,
        )
        assert est.gradient_bound > 0


class TestSimilarityEstimation:
    def _nodes(self, shift):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(30, 5))
        w = rng.normal(size=5)
        nodes = []
        for i in range(3):
            w_i = w + shift * i
            nodes.append(Dataset(x=x, y=x @ w_i))
        return nodes

    def test_identical_nodes_have_zero_dissimilarity(self):
        nodes = self._nodes(shift=0.0)
        model = _LinearModel()
        params = model.init(np.random.default_rng(1))
        sim = estimate_similarity(
            model, params, nodes, [1 / 3] * 3, np.random.default_rng(2),
            loss_fn=regression_loss,
        )
        np.testing.assert_allclose(sim.delta, 0.0, atol=1e-10)
        np.testing.assert_allclose(sim.sigma, 0.0, atol=1e-10)

    def test_dissimilarity_grows_with_heterogeneity(self):
        model = _LinearModel()
        params = model.init(np.random.default_rng(1))
        sims = []
        for shift in (0.1, 1.0):
            sim = estimate_similarity(
                model, params, self._nodes(shift), [1 / 3] * 3,
                np.random.default_rng(2), loss_fn=regression_loss,
            )
            sims.append(sim.delta_mean)
        assert sims[1] > sims[0]

    def test_weighted_aggregates(self):
        model = _LinearModel()
        params = model.init(np.random.default_rng(1))
        sim = estimate_similarity(
            model, params, self._nodes(0.5), [0.2, 0.3, 0.5],
            np.random.default_rng(2), loss_fn=regression_loss,
        )
        delta, sigma, tau = sim.weighted([0.2, 0.3, 0.5])
        assert delta >= 0 and sigma >= 0 and tau >= 0
        manual = 0.2 * sim.delta[0] + 0.3 * sim.delta[1] + 0.5 * sim.delta[2]
        assert delta == pytest.approx(manual)

    def test_synthetic_alpha_knob_orders_dissimilarity(self):
        """δ measured on Synthetic(α̃) grows with α̃ — links theory to data."""
        from repro.data import SyntheticConfig, generate_synthetic
        from repro.nn import LogisticRegression, cross_entropy

        model = LogisticRegression(10, 4)
        params = model.init(np.random.default_rng(0))
        deltas = {}
        for alpha in (0.0, 1.0):
            fed = generate_synthetic(
                SyntheticConfig(
                    alpha=alpha, beta=0.0, num_nodes=12, input_dim=10,
                    num_classes=4, mean_samples=30, seed=5,
                )
            )
            sim = estimate_similarity(
                model, params, fed.nodes, [1 / 12] * 12,
                np.random.default_rng(1), num_probes=2,
            )
            deltas[alpha] = sim.delta_mean
        assert deltas[1.0] > deltas[0.0]
