"""Tests for the paper's bounds (Lemma 1, Theorems 1–4)."""

import numpy as np
import pytest

from repro.theory import (
    contraction_factor,
    h_error_term,
    lemma1_constants,
    max_inner_learning_rate,
    max_meta_learning_rate,
    theorem1_dissimilarity_bound,
    theorem2_bound,
    theorem4_lambda_threshold,
)

# A representative strongly-convex landscape.
MU, H, RHO, B = 1.0, 4.0, 0.5, 2.0


class TestLemma1:
    def test_alpha_limit_formula(self):
        expected = min(MU / (2 * MU * H + RHO * B), 1 / MU)
        assert max_inner_learning_rate(MU, H, RHO, B) == pytest.approx(expected)

    def test_constants_at_alpha_zero_limit(self):
        consts = lemma1_constants(1e-12, MU, H, RHO, B)
        assert consts.mu_prime == pytest.approx(MU, rel=1e-6)
        assert consts.h_prime == pytest.approx(H, rel=1e-6)

    def test_valid_alpha_keeps_strong_convexity(self):
        alpha = max_inner_learning_rate(MU, H, RHO, B)
        consts = lemma1_constants(alpha, MU, H, RHO, B)
        assert consts.is_strongly_convex

    def test_mu_prime_below_mu_and_h_prime_formula(self):
        consts = lemma1_constants(0.05, MU, H, RHO, B)
        assert consts.mu_prime < MU
        assert consts.h_prime == pytest.approx(
            H * (1 - 0.05 * MU) ** 2 + 0.05 * RHO * B
        )

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            lemma1_constants(0.0, MU, H, RHO, B)
        with pytest.raises(ValueError):
            lemma1_constants(0.05, -1.0, H, RHO, B)


class TestTheorem1:
    def test_zero_dissimilarity_gives_zero_bound(self):
        assert theorem1_dissimilarity_bound(0.05, H, B, 0.0, 0.0, 0.0) == 0.0

    def test_monotone_in_delta_and_sigma(self):
        base = theorem1_dissimilarity_bound(0.05, H, B, 0.1, 0.1, 0.01)
        more_delta = theorem1_dissimilarity_bound(0.05, H, B, 0.2, 0.1, 0.01)
        more_sigma = theorem1_dissimilarity_bound(0.05, H, B, 0.1, 0.2, 0.01)
        assert more_delta > base
        assert more_sigma > base

    def test_reduces_to_delta_at_alpha_zero_limit(self):
        value = theorem1_dissimilarity_bound(0.0, H, B, 0.3, 0.1, 0.01)
        assert value == pytest.approx(0.3)


class TestTheorem2:
    def _consts(self, alpha=0.05):
        return lemma1_constants(alpha, MU, H, RHO, B)

    def test_contraction_in_unit_interval_for_valid_beta(self):
        consts = self._consts()
        beta = 0.5 * max_meta_learning_rate(consts)
        assert 0.0 < contraction_factor(beta, consts) < 1.0

    def test_h_is_zero_at_t0_one(self):
        consts = self._consts()
        h = h_error_term(1, 0.05, 0.05, consts, H, B, 0.1, 0.1, 0.01)
        assert h == pytest.approx(0.0, abs=1e-12)

    def test_h_increases_with_t0(self):
        consts = self._consts()
        values = [
            h_error_term(t0, 0.05, 0.05, consts, H, B, 0.1, 0.1, 0.01)
            for t0 in (1, 2, 5, 10, 20)
        ]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_h_increases_with_dissimilarity(self):
        consts = self._consts()
        low = h_error_term(10, 0.05, 0.05, consts, H, B, 0.05, 0.05, 0.0)
        high = h_error_term(10, 0.05, 0.05, consts, H, B, 0.5, 0.5, 0.0)
        assert high > low

    def test_bound_decreases_with_t_at_t0_one(self):
        consts = self._consts()
        beta = 0.5 * max_meta_learning_rate(consts)
        kwargs = dict(
            t0=1, initial_gap=1.0, alpha=0.05, beta=beta, mu=MU,
            constants=consts, smoothness=H, b=B, delta=0.1, sigma=0.1, tau=0.01,
        )
        b100 = theorem2_bound(total_iterations=100, **kwargs)
        b500 = theorem2_bound(total_iterations=500, **kwargs)
        assert b500 < b100

    def test_corollary1_no_steady_state_error(self):
        consts = self._consts()
        beta = 0.5 * max_meta_learning_rate(consts)
        bound = theorem2_bound(
            total_iterations=10_000, t0=1, initial_gap=1.0, alpha=0.05,
            beta=beta, mu=MU, constants=consts, smoothness=H, b=B,
            delta=0.5, sigma=0.5, tau=0.25,
        )
        assert bound == pytest.approx(0.0, abs=1e-6)

    def test_steady_state_error_grows_with_t0(self):
        consts = self._consts()
        beta = 0.5 * max_meta_learning_rate(consts)
        kwargs = dict(
            total_iterations=100_000, initial_gap=1.0, alpha=0.05, beta=beta,
            mu=MU, constants=consts, smoothness=H, b=B,
            delta=0.1, sigma=0.1, tau=0.01,
        )
        bounds = [theorem2_bound(t0=t0, **kwargs) for t0 in (2, 5, 10)]
        assert bounds[0] < bounds[1] < bounds[2]

    def test_invalid_beta_rejected(self):
        consts = self._consts()
        beta = 10.0 * max_meta_learning_rate(consts)
        with pytest.raises(ValueError):
            theorem2_bound(
                total_iterations=10, t0=2, initial_gap=1.0, alpha=0.05,
                beta=beta, mu=MU, constants=consts, smoothness=H, b=B,
                delta=0.1, sigma=0.1, tau=0.01,
            )

    def test_meta_rate_requires_strong_convexity(self):
        from repro.theory import MetaObjectiveConstants

        with pytest.raises(ValueError):
            max_meta_learning_rate(MetaObjectiveConstants(mu_prime=-0.1, h_prime=1.0))


class TestTheorem4:
    def test_threshold_formula(self):
        assert theorem4_lambda_threshold(2.0, 1.0, 1.5, 0.5) == pytest.approx(
            2.0 + 1.0 * 1.5 / 0.5
        )

    def test_threshold_decreases_with_mu(self):
        low_mu = theorem4_lambda_threshold(2.0, 1.0, 1.5, 0.1)
        high_mu = theorem4_lambda_threshold(2.0, 1.0, 1.5, 10.0)
        assert high_mu < low_mu

    def test_invalid_mu_raises(self):
        with pytest.raises(ValueError):
            theorem4_lambda_threshold(2.0, 1.0, 1.5, 0.0)
