"""Tests for Theorem 3 (adaptation performance bound)."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.data import Dataset
from repro.nn import LogisticRegression
from repro.theory import (
    estimate_gradient_sample_error,
    surrogate_difference,
    theorem3_bound,
)


class TestTheorem3Bound:
    def test_formula(self):
        # αHε + H(1+αH)(ε_c + ‖θt*−θc*‖)
        value = theorem3_bound(
            alpha=0.1, smoothness=2.0, epsilon_sample=0.5,
            epsilon_convergence=0.3, surrogate_diff=1.0,
        )
        amplification = 2.0 * (1 + 0.1 * 2.0)
        expected = 0.1 * 2.0 * 0.5 + amplification * (0.3 + 1.0)
        assert value == pytest.approx(expected)

    def test_zero_everything_gives_zero(self):
        assert theorem3_bound(0.0, 1.0, 0.0, 0.0, 0.0) == 0.0

    def test_monotone_in_each_term(self):
        base = theorem3_bound(0.1, 2.0, 0.5, 0.3, 1.0)
        assert theorem3_bound(0.1, 2.0, 0.9, 0.3, 1.0) > base
        assert theorem3_bound(0.1, 2.0, 0.5, 0.9, 1.0) > base
        assert theorem3_bound(0.1, 2.0, 0.5, 0.3, 2.0) > base

    def test_negative_inputs_raise(self):
        with pytest.raises(ValueError):
            theorem3_bound(-0.1, 2.0, 0.5, 0.3, 1.0)


class TestGradientSampleError:
    def _population(self, n=300):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(n, 6))
        w = rng.normal(size=(6, 3))
        y = np.argmax(x @ w, axis=1)
        return Dataset(x=x, y=y)

    def test_error_shrinks_with_k(self):
        """Theorem 3: ε = ε(K) decreases with the target sample size."""
        model = LogisticRegression(6, 3)
        params = model.init(np.random.default_rng(1))
        population = self._population()
        rng = np.random.default_rng(2)
        small = estimate_gradient_sample_error(
            model, params, population, k=5, rng=rng, num_draws=20
        )
        large = estimate_gradient_sample_error(
            model, params, population, k=100, rng=rng, num_draws=20
        )
        assert large.epsilon_mean < small.epsilon_mean

    def test_full_population_has_zero_error(self):
        model = LogisticRegression(6, 3)
        params = model.init(np.random.default_rng(1))
        population = self._population(50)
        est = estimate_gradient_sample_error(
            model, params, population, k=50,
            rng=np.random.default_rng(0), num_draws=3,
        )
        assert est.epsilon_mean == pytest.approx(0.0, abs=1e-10)

    def test_invalid_k_raises(self):
        model = LogisticRegression(6, 3)
        params = model.init(np.random.default_rng(1))
        population = self._population(20)
        with pytest.raises(ValueError):
            estimate_gradient_sample_error(
                model, params, population, k=21, rng=np.random.default_rng(0)
            )


class TestSurrogateDifference:
    def test_zero_for_identical(self):
        params = {"w": Tensor(np.ones(4))}
        assert surrogate_difference(params, params) == 0.0

    def test_matches_l2(self):
        a = {"w": Tensor(np.zeros(4))}
        b = {"w": Tensor(np.full(4, 2.0))}
        assert surrogate_difference(a, b) == pytest.approx(4.0)
