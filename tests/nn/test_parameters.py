"""Tests for parameter-tree utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor
from repro.nn import parameters as P


def make_params(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "W": Tensor(rng.normal(size=(3, 2))),
        "b": Tensor(rng.normal(size=2)),
    }


class TestTreeOps:
    def test_tree_map_preserves_keys(self):
        p = make_params()
        out = P.tree_map(lambda t: t * 2.0, p)
        assert set(out) == {"W", "b"}
        np.testing.assert_allclose(out["W"].data, 2 * p["W"].data)

    def test_tree_binary_map(self):
        p, q = make_params(0), make_params(1)
        out = P.tree_binary_map(lambda a, b: a + b, p, q)
        np.testing.assert_allclose(out["b"].data, p["b"].data + q["b"].data)

    def test_tree_binary_map_key_mismatch_raises(self):
        p = make_params()
        with pytest.raises(KeyError):
            P.tree_binary_map(lambda a, b: a, p, {"W": p["W"]})

    def test_detach_produces_leaves(self):
        p = {"W": Tensor(np.ones(2), requires_grad=True)}
        p2 = {"W": p["W"] * 2.0}
        out = P.detach(p2)
        assert out["W"].is_leaf()

    def test_clone_copies_data(self):
        p = make_params()
        c = P.clone(p)
        c["W"].data[0, 0] = 99.0
        assert p["W"].data[0, 0] != 99.0

    def test_require_grad_shares_data(self):
        p = make_params()
        r = P.require_grad(p)
        assert all(t.requires_grad for t in r.values())
        assert r["W"].data is p["W"].data


class TestVectorRoundTrip:
    def test_roundtrip(self):
        p = make_params()
        vec = P.to_vector(p)
        back = P.from_vector(vec, p)
        for name in p:
            np.testing.assert_array_equal(back[name].data, p[name].data)

    def test_vector_length(self):
        p = make_params()
        assert P.to_vector(p).size == P.num_parameters(p) == 8

    def test_from_vector_wrong_size_raises(self):
        p = make_params()
        with pytest.raises(ValueError):
            P.from_vector(np.zeros(3), p)

    def test_key_order_is_sorted_not_insertion(self):
        rng = np.random.default_rng(0)
        a = {"z": Tensor(rng.normal(size=2)), "a": Tensor(rng.normal(size=2))}
        b = {"a": a["a"], "z": a["z"]}
        np.testing.assert_array_equal(P.to_vector(a), P.to_vector(b))


class TestAveraging:
    def test_weighted_average_exact(self):
        p, q = make_params(0), make_params(1)
        avg = P.weighted_average([p, q], [0.25, 0.75])
        np.testing.assert_allclose(
            avg["W"].data, 0.25 * p["W"].data + 0.75 * q["W"].data
        )

    def test_weights_must_sum_to_one(self):
        p, q = make_params(0), make_params(1)
        with pytest.raises(ValueError):
            P.weighted_average([p, q], [0.5, 0.6])

    def test_weight_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            P.weighted_average([make_params()], [0.5, 0.5])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            P.weighted_average([], [])

    def test_average_of_identical_trees_is_identity(self):
        p = make_params()
        avg = P.weighted_average([p, p, p], [1 / 3] * 3)
        np.testing.assert_allclose(avg["W"].data, p["W"].data)

    @given(st.lists(st.integers(0, 100), min_size=2, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_average_stays_in_convex_hull(self, seeds):
        trees = [make_params(s) for s in seeds]
        weights = [1.0 / len(trees)] * len(trees)
        avg = P.weighted_average(trees, weights)
        stacked = np.stack([t["W"].data for t in trees])
        assert np.all(avg["W"].data <= stacked.max(axis=0) + 1e-12)
        assert np.all(avg["W"].data >= stacked.min(axis=0) - 1e-12)


class TestArithmetic:
    def test_add_scaled(self):
        p = make_params(0)
        u = make_params(1)
        out = P.add_scaled(p, u, -0.5)
        np.testing.assert_allclose(
            out["b"].data, p["b"].data - 0.5 * u["b"].data
        )

    def test_l2_distance_zero_for_same_tree(self):
        p = make_params()
        assert P.l2_distance(p, p) == 0.0

    def test_l2_distance_matches_vector_norm(self):
        p, q = make_params(0), make_params(1)
        expected = np.linalg.norm(P.to_vector(p) - P.to_vector(q))
        assert P.l2_distance(p, q) == pytest.approx(expected)

    def test_l2_norm(self):
        p = make_params()
        assert P.l2_norm(p) == pytest.approx(np.linalg.norm(P.to_vector(p)))

    def test_zeros_like(self):
        z = P.zeros_like_params(make_params())
        assert P.l2_norm(z) == 0.0

    def test_num_bytes_is_8_per_parameter(self):
        p = make_params()
        assert P.num_bytes(p) == 8 * P.num_parameters(p)
