"""Tests for loss functions and metrics."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, grad
from repro.nn import accuracy, cross_entropy, mse, one_hot

RNG = np.random.default_rng(1)


class TestOneHot:
    def test_values(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), 3)

    def test_non_1d_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestCrossEntropy:
    def test_uniform_logits_give_log_num_classes(self):
        logits = Tensor(np.zeros((4, 5)))
        labels = np.array([0, 1, 2, 3])
        assert cross_entropy(logits, labels).item() == pytest.approx(np.log(5))

    def test_confident_correct_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0]]))
        assert cross_entropy(logits, np.array([0])).item() == pytest.approx(
            0.0, abs=1e-8
        )

    def test_matches_manual_computation(self):
        logits_np = RNG.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        shifted = logits_np - logits_np.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(3), labels].mean()
        assert cross_entropy(Tensor(logits_np), labels).item() == pytest.approx(
            expected
        )

    def test_gradient_matches_softmax_minus_onehot(self):
        logits_np = RNG.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        logits = Tensor(logits_np, requires_grad=True)
        (g,) = grad(cross_entropy(logits, labels), [logits])
        shifted = logits_np - logits_np.max(axis=1, keepdims=True)
        probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        expected = (probs - one_hot(labels, 4)) / 3.0
        np.testing.assert_allclose(g.data, expected, rtol=1e-8)

    def test_gradient_against_finite_differences(self):
        labels = np.array([0, 2])
        check_gradients(
            lambda logits: cross_entropy(logits, labels),
            [RNG.normal(size=(2, 3))],
        )

    def test_rejects_1d_logits(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros(3)), np.array([0]))

    def test_extreme_logits_stay_finite(self):
        logits = Tensor(np.array([[1e4, -1e4], [-1e4, 1e4]]))
        value = cross_entropy(logits, np.array([1, 0])).item()
        assert np.isfinite(value)
        assert value > 100


class TestMSE:
    def test_zero_for_equal(self):
        x = Tensor(RNG.normal(size=(3, 2)))
        assert mse(x, x.data).item() == 0.0

    def test_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert mse(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_gradient(self):
        target = RNG.normal(size=(4,))
        check_gradients(lambda p: mse(p, target), [RNG.normal(size=(4,))])


class TestAccuracy:
    def test_from_logits(self):
        logits = Tensor(np.array([[2.0, 1.0], [0.0, 3.0]]))
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 1])) == 0.5

    def test_from_hard_predictions(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(
            2 / 3
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0, 1, 2]))
