"""Tests for optimizers."""

import numpy as np
import pytest

from repro.autodiff import Tensor, grad
from repro.nn import SGD, Adam
from repro.nn.parameters import require_grad


def quadratic_grad(params):
    """Gradient of f(w) = 0.5 ||w||^2 is w itself."""
    return {name: Tensor(t.data.copy()) for name, t in params.items()}


def make_params(value=1.0):
    return {"w": Tensor(np.full(3, value))}


class TestSGD:
    def test_plain_step(self):
        opt = SGD(learning_rate=0.1)
        out = opt.step(make_params(1.0), quadratic_grad(make_params(1.0)))
        np.testing.assert_allclose(out["w"].data, np.full(3, 0.9))

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, momentum=1.0)

    def test_key_mismatch_raises(self):
        opt = SGD(learning_rate=0.1)
        with pytest.raises(KeyError):
            opt.step(make_params(), {"v": Tensor(np.zeros(3))})

    def test_momentum_accelerates_constant_gradient(self):
        plain = SGD(learning_rate=0.1)
        momentum = SGD(learning_rate=0.1, momentum=0.9)
        g = {"w": Tensor(np.ones(3))}
        p_plain, p_mom = make_params(0.0), make_params(0.0)
        for _ in range(5):
            p_plain = plain.step(p_plain, g)
            p_mom = momentum.step(p_mom, g)
        assert p_mom["w"].data[0] < p_plain["w"].data[0]

    def test_reset_clears_velocity(self):
        opt = SGD(learning_rate=0.1, momentum=0.9)
        p = opt.step(make_params(0.0), {"w": Tensor(np.ones(3))})
        opt.reset()
        p2 = opt.step(make_params(0.0), {"w": Tensor(np.ones(3))})
        np.testing.assert_allclose(p2["w"].data, np.full(3, -0.1))

    def test_converges_on_quadratic(self):
        opt = SGD(learning_rate=0.3)
        params = make_params(5.0)
        for _ in range(50):
            params = opt.step(params, quadratic_grad(params))
        assert np.abs(params["w"].data).max() < 1e-6

    def test_step_returns_detached_leaves(self):
        opt = SGD(learning_rate=0.1)
        out = opt.step(make_params(), quadratic_grad(make_params()))
        assert out["w"].is_leaf()
        assert not out["w"].requires_grad


class TestAdam:
    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=-1.0)

    def test_first_step_size_is_learning_rate(self):
        # With bias correction, |first update| == lr for any nonzero gradient.
        opt = Adam(learning_rate=0.1)
        out = opt.step(make_params(0.0), {"w": Tensor(np.full(3, 7.0))})
        np.testing.assert_allclose(out["w"].data, np.full(3, -0.1), rtol=1e-6)

    def test_converges_on_quadratic(self):
        opt = Adam(learning_rate=0.2)
        params = make_params(5.0)
        for _ in range(200):
            params = opt.step(params, quadratic_grad(params))
        assert np.abs(params["w"].data).max() < 1e-3

    def test_reset(self):
        opt = Adam(learning_rate=0.1)
        opt.step(make_params(), quadratic_grad(make_params()))
        opt.reset()
        assert opt._t == 0

    def test_trains_logistic_regression(self):
        from repro.nn import LogisticRegression, cross_entropy

        rng = np.random.default_rng(0)
        x = rng.normal(size=(40, 4))
        w_true = rng.normal(size=(4, 3))
        y = np.argmax(x @ w_true, axis=1)
        model = LogisticRegression(4, 3)
        params = model.init(rng)
        opt = Adam(learning_rate=0.05)
        first_loss = None
        for _ in range(100):
            theta = require_grad(params)
            loss = cross_entropy(model.apply(theta, x), y)
            if first_loss is None:
                first_loss = loss.item()
            names = sorted(theta)
            grads = dict(zip(names, grad(loss, [theta[n] for n in names])))
            params = opt.step(params, grads)
        final_loss = cross_entropy(model.apply(params, x), y).item()
        assert final_loss < first_loss * 0.5


class TestWeightDecay:
    def test_decay_shrinks_params_with_zero_gradient(self):
        opt = SGD(learning_rate=0.1, weight_decay=0.5)
        params = make_params(1.0)
        zero = {"w": Tensor(np.zeros(3))}
        out = opt.step(params, zero)
        np.testing.assert_allclose(out["w"].data, np.full(3, 0.95))

    def test_zero_decay_matches_plain_sgd(self):
        plain = SGD(learning_rate=0.1)
        decayed = SGD(learning_rate=0.1, weight_decay=0.0)
        g = quadratic_grad(make_params())
        np.testing.assert_allclose(
            plain.step(make_params(), g)["w"].data,
            decayed.step(make_params(), g)["w"].data,
        )

    def test_negative_decay_raises(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, weight_decay=-0.1)

    def test_decay_composes_with_momentum(self):
        opt = SGD(learning_rate=0.1, momentum=0.9, weight_decay=0.5)
        params = make_params(1.0)
        zero = {"w": Tensor(np.zeros(3))}
        out = opt.step(params, zero)
        np.testing.assert_allclose(out["w"].data, np.full(3, 0.95))
