"""Tests for learning-rate schedules."""

import pytest

from repro.nn import ConstantSchedule, CosineSchedule, StepDecaySchedule


class TestConstant:
    def test_always_base(self):
        schedule = ConstantSchedule(0.1)
        assert schedule(0) == schedule(1000) == 0.1

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)


class TestStepDecay:
    def test_decays_every_interval(self):
        schedule = StepDecaySchedule(1.0, factor=0.5, every=10)
        assert schedule(0) == 1.0
        assert schedule(9) == 1.0
        assert schedule(10) == 0.5
        assert schedule(25) == 0.25

    def test_factor_one_is_constant(self):
        schedule = StepDecaySchedule(0.3, factor=1.0, every=5)
        assert schedule(100) == 0.3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": 0.0, "factor": 0.5, "every": 10},
            {"base": 1.0, "factor": 0.0, "every": 10},
            {"base": 1.0, "factor": 1.5, "every": 10},
            {"base": 1.0, "factor": 0.5, "every": 0},
        ],
    )
    def test_invalid_args(self, kwargs):
        with pytest.raises(ValueError):
            StepDecaySchedule(**kwargs)

    def test_negative_step_raises(self):
        with pytest.raises(ValueError):
            StepDecaySchedule(1.0, 0.5, 10)(-1)


class TestCosine:
    def test_endpoints(self):
        schedule = CosineSchedule(1.0, horizon=100, floor=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(0.1)
        assert schedule(1000) == pytest.approx(0.1)  # clamped past horizon

    def test_halfway_is_midpoint(self):
        schedule = CosineSchedule(1.0, horizon=100, floor=0.0)
        assert schedule(50) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        schedule = CosineSchedule(1.0, horizon=50)
        values = [schedule(s) for s in range(51)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            CosineSchedule(1.0, horizon=0)
        with pytest.raises(ValueError):
            CosineSchedule(1.0, horizon=10, floor=1.0)

    def test_works_with_optimizer(self):
        """Schedules drive the optimizer's learning rate step by step."""
        import numpy as np

        from repro.autodiff import Tensor
        from repro.nn import SGD

        schedule = CosineSchedule(0.5, horizon=10)
        opt = SGD(learning_rate=schedule(0))
        params = {"w": Tensor(np.ones(2))}
        for step in range(10):
            opt.learning_rate = schedule(step)
            params = opt.step(params, {"w": Tensor(np.ones(2))})
        assert params["w"].data[0] < 1.0
