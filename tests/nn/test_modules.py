"""Tests for functional models."""

import numpy as np
import pytest

from repro.autodiff import Tensor, grad
from repro.nn import MLP, EmbeddingClassifier, LogisticRegression, cross_entropy
from repro.nn.parameters import require_grad

RNG = np.random.default_rng(0)


class TestLogisticRegression:
    def test_output_shape(self):
        model = LogisticRegression(6, 4)
        params = model.init(np.random.default_rng(0))
        out = model.apply(params, RNG.normal(size=(5, 6)))
        assert out.shape == (5, 4)

    def test_init_is_deterministic_under_seed(self):
        model = LogisticRegression(6, 4)
        p1 = model.init(np.random.default_rng(3))
        p2 = model.init(np.random.default_rng(3))
        np.testing.assert_array_equal(p1["W"].data, p2["W"].data)

    def test_bias_initialized_to_zero(self):
        model = LogisticRegression(6, 4)
        params = model.init(np.random.default_rng(0))
        np.testing.assert_array_equal(params["b"].data, np.zeros(4))

    def test_wrong_input_shape_raises(self):
        model = LogisticRegression(6, 4)
        params = model.init(np.random.default_rng(0))
        with pytest.raises(ValueError):
            model.apply(params, RNG.normal(size=(5, 7)))

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            LogisticRegression(0, 4)
        with pytest.raises(ValueError):
            LogisticRegression(6, 1)

    def test_predict_returns_argmax(self):
        model = LogisticRegression(2, 3)
        params = {
            "W": Tensor(np.array([[10.0, 0.0, 0.0], [0.0, 10.0, 0.0]])),
            "b": Tensor(np.zeros(3)),
        }
        preds = model.predict(params, np.array([[1.0, 0.0], [0.0, 1.0]]))
        np.testing.assert_array_equal(preds, [0, 1])

    def test_gradients_flow_to_all_parameters(self):
        model = LogisticRegression(4, 3)
        params = require_grad(model.init(np.random.default_rng(0)))
        loss = cross_entropy(
            model.apply(params, RNG.normal(size=(6, 4))),
            RNG.integers(0, 3, size=6),
        )
        grads = grad(loss, list(params.values()))
        assert all(g is not None for g in grads)


class TestMLP:
    def test_output_shape_and_param_names(self):
        model = MLP(5, (8, 4), 3)
        params = model.init(np.random.default_rng(0))
        assert set(params) == {"W0", "b0", "W1", "b1", "W2", "b2"}
        out = model.apply(params, RNG.normal(size=(7, 5)))
        assert out.shape == (7, 3)

    def test_batch_norm_adds_gamma_beta(self):
        model = MLP(5, (8,), 3, batch_norm=True)
        params = model.init(np.random.default_rng(0))
        assert "gamma0" in params and "beta0" in params
        assert "gamma1" not in params  # no BN on the output layer

    def test_batch_norm_normalizes_hidden_activations(self):
        model = MLP(5, (8,), 3, batch_norm=True)
        params = model.init(np.random.default_rng(0))
        out = model.apply(params, RNG.normal(size=(32, 5)))
        assert np.all(np.isfinite(out.data))

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            MLP(5, (8,), 3, activation="gelu")

    def test_tanh_activation(self):
        model = MLP(5, (8,), 3, activation="tanh")
        params = model.init(np.random.default_rng(0))
        out = model.apply(params, RNG.normal(size=(2, 5)))
        assert out.shape == (2, 3)

    def test_no_hidden_layers_reduces_to_linear(self):
        model = MLP(5, (), 3)
        params = model.init(np.random.default_rng(0))
        x = RNG.normal(size=(2, 5))
        expected = x @ params["W0"].data + params["b0"].data
        np.testing.assert_allclose(model.apply(params, x).data, expected)

    def test_second_order_gradients_through_mlp(self):
        """MAML needs grad-of-grad through the full network."""
        model = MLP(3, (4,), 2, activation="tanh")
        params = require_grad(model.init(np.random.default_rng(0)))
        x = RNG.normal(size=(5, 3))
        y = RNG.integers(0, 2, size=5)
        loss = cross_entropy(model.apply(params, x), y)
        names = sorted(params)
        grads = grad(loss, [params[n] for n in names], create_graph=True)
        inner = sum((g * g).sum() for g in grads)
        second = grad(inner, [params[n] for n in names], allow_unused=True)
        assert any(s is not None and np.any(s.data != 0) for s in second)

    def test_batch_norm_gradients_exist(self):
        model = MLP(3, (4,), 2, batch_norm=True)
        params = require_grad(model.init(np.random.default_rng(0)))
        loss = cross_entropy(
            model.apply(params, RNG.normal(size=(6, 3))),
            RNG.integers(0, 2, size=6),
        )
        grads = grad(loss, [params["gamma0"], params["beta0"]])
        assert all(np.all(np.isfinite(g.data)) for g in grads)


class TestEmbeddingClassifier:
    def _model(self):
        return EmbeddingClassifier(
            vocab_size=11, embed_dim=4, seq_len=6, hidden_dims=(8,),
            num_classes=2, batch_norm=False, embedding_seed=1,
        )

    def test_embedding_is_frozen_and_not_in_params(self):
        model = self._model()
        params = model.init(np.random.default_rng(0))
        assert not any("embed" in name.lower() for name in params)
        assert not model.embedding.requires_grad

    def test_apply_on_token_ids(self):
        model = self._model()
        params = model.init(np.random.default_rng(0))
        ids = RNG.integers(0, 11, size=(3, 6))
        out = model.apply(params, ids)
        assert out.shape == (3, 2)

    def test_apply_on_embedded_features(self):
        model = self._model()
        params = model.init(np.random.default_rng(0))
        ids = RNG.integers(0, 11, size=(3, 6))
        features = model.embed(ids)
        out_ids = model.apply(params, ids)
        out_feat = model.apply(params, features)
        np.testing.assert_allclose(out_ids.data, out_feat.data)

    def test_embed_shape(self):
        model = self._model()
        ids = RNG.integers(0, 11, size=(3, 6))
        assert model.embed(ids).shape == (3, 24)

    def test_embed_rejects_floats(self):
        model = self._model()
        with pytest.raises(TypeError):
            model.embed(RNG.normal(size=(3, 6)))

    def test_embed_rejects_wrong_seq_len(self):
        model = self._model()
        with pytest.raises(ValueError):
            model.embed(RNG.integers(0, 11, size=(3, 5)))

    def test_custom_embedding_matrix(self):
        table = RNG.normal(size=(11, 4))
        model = EmbeddingClassifier(
            vocab_size=11, embed_dim=4, seq_len=6, hidden_dims=(8,),
            num_classes=2, embedding=table,
        )
        np.testing.assert_array_equal(model.embedding.data, table)

    def test_wrong_embedding_shape_raises(self):
        with pytest.raises(ValueError):
            EmbeddingClassifier(
                vocab_size=11, embed_dim=4, seq_len=6, hidden_dims=(8,),
                num_classes=2, embedding=RNG.normal(size=(5, 4)),
            )

    def test_same_embedding_seed_gives_same_table(self):
        m1 = self._model()
        m2 = self._model()
        np.testing.assert_array_equal(m1.embedding.data, m2.embedding.data)
