"""End-to-end tests: CLI --telemetry-out, the report subcommand, and the
report module itself."""

import json

import pytest

from repro.cli import main
from repro.obs import load_records, render_report, summarize


@pytest.fixture(scope="module")
def telemetry_file(tmp_path_factory):
    """One tiny instrumented CLI training run shared by the module's tests."""
    path = tmp_path_factory.mktemp("telemetry") / "run.jsonl"
    code = main(
        [
            "train", "--algorithm", "fedml", "--dataset", "synthetic",
            "--nodes", "6", "--iterations", "6", "--t0", "3",
            "--adapt-steps", "1", "--json",
            "--telemetry-out", str(path),
        ]
    )
    assert code == 0
    return str(path)


class TestTelemetryOut:
    def test_file_is_valid_jsonl_with_metadata_header(self, telemetry_file):
        with open(telemetry_file) as handle:
            records = [json.loads(line) for line in handle]
        assert records[0]["type"] == "meta"
        assert records[0]["seed"] == 0
        assert records[0]["config"]["algorithm"] == "fedml"
        assert records[0]["config"]["iterations"] == 6

    def test_file_contains_round_spans_and_byte_counters(self, telemetry_file):
        records = load_records(telemetry_file)
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert {"round", "local_steps", "aggregate"} <= span_names
        counters = {
            r["name"]: r["value"] for r in records if r["type"] == "counter"
        }
        assert counters["fl_bytes_up_total"] > 0
        assert counters["fl_bytes_down_total"] > 0
        assert counters["fl_rounds_total"] == 2

    def test_report_subcommand_renders_summary(self, telemetry_file, capsys):
        assert main(["report", telemetry_file]) == 0
        out = capsys.readouterr().out
        assert "run metadata" in out
        assert "spans" in out
        assert "local_steps" in out
        assert "fl_bytes_up_total" in out

    def test_report_subcommand_json(self, telemetry_file, capsys):
        assert main(["report", telemetry_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == len(load_records(telemetry_file))
        assert payload["meta"]["type"] == "meta"
        assert "round" in payload["spans"]

    def test_report_on_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_report_on_invalid_jsonl_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "meta"}\nnot json\n')
        assert main(["report", str(bad)]) == 1
        assert "invalid JSON" in capsys.readouterr().err


class TestSpansDroppedWarning:
    def test_report_warns_when_spans_were_dropped(self):
        records = [
            {"type": "counter", "name": "obs_spans_dropped_total",
             "labels": {}, "value": 9.0},
        ]
        text = render_report(summarize(records))
        assert "WARNING: 9 spans dropped" in text
        assert "obs_spans_dropped_total" in text
        assert "span_ring_size" in text

    def test_no_warning_on_clean_run(self, telemetry_file):
        text = render_report(summarize(load_records(telemetry_file)))
        assert "WARNING" not in text


class TestReportModule:
    def test_summarize_aggregates_spans_by_name(self):
        records = [
            {"type": "span", "name": "round", "duration": 1.0},
            {"type": "span", "name": "round", "duration": 3.0},
            {"type": "span", "name": "fit", "duration": 4.5},
        ]
        summary = summarize(records)
        assert summary.spans["round"] == {"count": 2, "total": 4.0, "max": 3.0}
        assert summary.spans["fit"]["count"] == 1

    def test_render_handles_empty_file(self):
        assert "no records" in render_report(summarize([]))

    def test_render_orders_spans_by_total_time(self):
        records = [
            {"type": "span", "name": "fast", "duration": 0.1},
            {"type": "span", "name": "slow", "duration": 9.0},
        ]
        out = render_report(summarize(records))
        assert out.index("slow") < out.index("fast")
