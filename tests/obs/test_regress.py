"""The perf-regression gate: seeding, tolerance bands, CLI exit codes."""

import json

import pytest

from repro.cli import main
from repro.obs.regress import (
    BASELINE_VERSION,
    check_result,
    gated_metrics,
    load_baselines,
    run_gate,
    save_baselines,
)

ENGINE_RESULT = {
    "nodes": 8,
    "cpus": 4,
    "serial_seconds": 2.0,
    "parallel_seconds": 1.0,
    "serial_rounds_per_sec": 5.0,
    "parallel_rounds_per_sec": 10.0,
    "speedup": 2.0,
    "deterministic": True,
}


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


class TestGatedMetrics:
    def test_selects_flags_ratios_and_throughput(self):
        spec = gated_metrics(ENGINE_RESULT)
        assert spec["deterministic"] == {"value": True, "direction": "exact"}
        assert spec["speedup"]["direction"] == "higher"
        assert "serial_rounds_per_sec" in spec
        # config echoes and raw timings are informational, never gated
        assert "nodes" not in spec
        assert "serial_seconds" not in spec

    def test_suffixed_speedup_ratios_gate_like_speedup(self):
        spec = gated_metrics(
            {
                "replay_speedup": 3.0,
                "steady_state_zero_alloc": True,
                "steady_state_allocations": 0,  # int: informational
            }
        )
        from repro.obs.regress import RATIO_TOLERANCE

        assert spec["replay_speedup"]["direction"] == "higher"
        assert spec["replay_speedup"]["tolerance"] == RATIO_TOLERANCE
        assert spec["steady_state_zero_alloc"]["direction"] == "exact"
        assert "steady_state_allocations" not in spec


class TestCheckResult:
    def _entry(self):
        return {"metrics": gated_metrics(ENGINE_RESULT)}

    def test_identical_results_pass(self):
        assert check_result("b", ENGINE_RESULT, self._entry()) == []

    def test_within_tolerance_passes(self):
        current = dict(ENGINE_RESULT, speedup=1.2)  # floor is 2.0 * 0.5
        assert check_result("b", current, self._entry()) == []

    def test_slowdown_past_tolerance_fails(self):
        current = dict(ENGINE_RESULT, speedup=0.6)
        failures = check_result("b", current, self._entry())
        assert len(failures) == 1
        assert failures[0].metric == "speedup"
        assert "below floor" in failures[0].message

    def test_flag_flip_fails_exactly(self):
        current = dict(ENGINE_RESULT, deterministic=False)
        failures = check_result("b", current, self._entry())
        assert [f.metric for f in failures] == ["deterministic"]

    def test_missing_metric_is_a_regression(self):
        current = {k: v for k, v in ENGINE_RESULT.items() if k != "speedup"}
        failures = check_result("b", current, self._entry())
        assert any("missing" in f.message for f in failures)

    def test_lower_direction_gates_ceilings(self):
        entry = {
            "metrics": {
                "p99_latency": {
                    "value": 10.0, "direction": "lower", "tolerance": 0.2
                }
            }
        }
        assert check_result("b", {"p99_latency": 11.0}, entry) == []
        failures = check_result("b", {"p99_latency": 13.0}, entry)
        assert "above ceiling" in failures[0].message


class TestRunGate:
    def test_seeds_baseline_on_first_contact(self, tmp_path):
        bench = _write(tmp_path / "BENCH_engine.json", ENGINE_RESULT)
        baseline = str(tmp_path / "baselines.json")
        failures, lines = run_gate([bench], baseline)
        assert failures == []
        assert any("seeded" in line for line in lines)
        data = load_baselines(baseline)
        assert data["version"] == BASELINE_VERSION
        assert "BENCH_engine.json" in data["benchmarks"]

        # second run checks against the seeded values and passes
        failures, lines = run_gate([bench], baseline)
        assert failures == []
        assert any("within tolerance" in line for line in lines)

    def test_detects_synthetic_slowdown(self, tmp_path):
        bench = _write(tmp_path / "BENCH_engine.json", ENGINE_RESULT)
        baseline = str(tmp_path / "baselines.json")
        run_gate([bench], baseline)

        slowed = dict(
            ENGINE_RESULT,
            speedup=ENGINE_RESULT["speedup"] / 3.0,
            parallel_rounds_per_sec=(
                ENGINE_RESULT["parallel_rounds_per_sec"] / 3.0
            ),
        )
        _write(tmp_path / "BENCH_engine.json", slowed)
        failures, _ = run_gate([bench], baseline)
        assert {f.metric for f in failures} == {
            "speedup", "parallel_rounds_per_sec"
        }

    def test_update_rewrites_baseline(self, tmp_path):
        bench = _write(tmp_path / "BENCH_engine.json", ENGINE_RESULT)
        baseline = str(tmp_path / "baselines.json")
        run_gate([bench], baseline)
        slowed = dict(ENGINE_RESULT, speedup=0.5)
        _write(tmp_path / "BENCH_engine.json", slowed)
        failures, _ = run_gate([bench], baseline, update=True)
        assert failures == []
        data = load_baselines(baseline)
        metrics = data["benchmarks"]["BENCH_engine.json"]["metrics"]
        assert metrics["speedup"]["value"] == 0.5

    def test_missing_bench_file_fails(self, tmp_path):
        baseline = str(tmp_path / "baselines.json")
        failures, _ = run_gate([str(tmp_path / "absent.json")], baseline)
        assert failures and "not found" in failures[0].message

    def test_newer_baseline_version_is_rejected(self, tmp_path):
        baseline = str(tmp_path / "baselines.json")
        save_baselines(
            baseline,
            {"version": BASELINE_VERSION + 1, "benchmarks": {}},
        )
        with pytest.raises(ValueError, match="newer"):
            load_baselines(baseline)


class TestBenchCheckCli:
    def test_exit_codes(self, tmp_path, capsys):
        bench = _write(tmp_path / "BENCH_engine.json", ENGINE_RESULT)
        baseline = str(tmp_path / "baselines.json")
        assert main(["bench-check", bench, "--baseline", baseline]) == 0
        assert main(["bench-check", bench, "--baseline", baseline]) == 0

        _write(
            tmp_path / "BENCH_engine.json",
            dict(ENGINE_RESULT, speedup=0.1, deterministic=False),
        )
        assert main(["bench-check", bench, "--baseline", baseline]) == 1
        err = capsys.readouterr().err
        assert "regression" in err
