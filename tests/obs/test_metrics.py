"""Tests for the metric primitives and registry."""

import pytest

from repro.obs import MetricRegistry, parse_prometheus


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricRegistry()
        counter = registry.counter("events_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        counter = MetricRegistry().counter("events_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_instance(self):
        registry = MetricRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_labels_create_distinct_children(self):
        registry = MetricRegistry()
        a = registry.counter("c", algorithm="fedml")
        b = registry.counter("c", algorithm="fedavg")
        a.inc(3)
        assert a is not b
        assert b.value == 0.0
        # label order must not matter
        assert registry.counter("d", x="1", y="2") is registry.counter(
            "d", y="2", x="1"
        )

    def test_type_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")
        with pytest.raises(TypeError):
            registry.histogram("m")


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricRegistry().gauge("depth")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value == pytest.approx(3.0)


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        hist = MetricRegistry().histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 100.0):
            hist.observe(value)
        # cumulative: <=1 -> {0.5, 1.0}; <=2 adds {1.5, 2.0}; <=5 adds {4.9, 5.0}
        assert hist.bucket_counts == [2, 4, 6]
        assert hist.count == 7
        assert hist.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 4.9 + 5.0 + 100.0)
        assert hist.mean == pytest.approx(hist.sum / 7)

    def test_bucket_edges_fixed_and_validated(self):
        registry = MetricRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("dup", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("empty", buckets=())

    def test_default_buckets_used_when_unspecified(self):
        hist = MetricRegistry().histogram("h")
        assert len(hist.buckets) > 0
        assert list(hist.buckets) == sorted(hist.buckets)


class TestSeries:
    def test_observe_keeps_history(self):
        series = MetricRegistry().series("loss")
        series.observe(0, 1.0)
        series.observe(5, 0.5)
        assert series.steps == [0.0, 5.0]
        assert series.values == [1.0, 0.5]
        assert series.last() == 0.5

    def test_empty_last_raises(self):
        with pytest.raises(KeyError):
            MetricRegistry().series("loss").last()


class TestSnapshot:
    def test_snapshot_records_are_json_ready(self):
        import json

        registry = MetricRegistry()
        registry.counter("c", algorithm="fedml").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.series("s").observe(0, 3.0)
        records = registry.snapshot()
        assert [r["type"] for r in records] == [
            "counter", "gauge", "histogram", "series",
        ]
        json.dumps(records)  # must not raise
        counter = records[0]
        assert counter["labels"] == {"algorithm": "fedml"}
        assert counter["value"] == 2.0


class TestPrometheusExposition:
    def test_round_trip(self):
        registry = MetricRegistry()
        registry.counter("fl_rounds_total", algorithm="fedml").inc(4)
        registry.gauge("fl_participants").set(8)
        hist = registry.histogram("round_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(2.0)
        registry.series("loss").observe(0, 0.25)

        text = registry.to_prometheus()
        samples = parse_prometheus(text)

        assert samples['fl_rounds_total{algorithm="fedml"}'] == 4
        assert samples["fl_participants"] == 8
        assert samples['round_seconds_bucket{le="0.1"}'] == 1
        assert samples['round_seconds_bucket{le="1"}'] == 2
        assert samples['round_seconds_bucket{le="+Inf"}'] == 3
        assert samples["round_seconds_count"] == 3
        assert samples["round_seconds_sum"] == pytest.approx(2.55)
        assert samples["loss"] == pytest.approx(0.25)

    def test_type_lines_present_once_per_name(self):
        registry = MetricRegistry()
        registry.counter("c", a="1").inc()
        registry.counter("c", a="2").inc()
        text = registry.to_prometheus()
        assert text.count("# TYPE c counter") == 1

    def test_empty_registry_exposes_nothing(self):
        assert MetricRegistry().to_prometheus() == ""
