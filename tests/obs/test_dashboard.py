"""HTML dashboard rendering: real run output, sparse input, warnings."""

import re

import pytest

from repro.core import FedML, FedMLConfig
from repro.data import SyntheticConfig, generate_synthetic
from repro.faults import FaultPlan, ResiliencePolicy
from repro.engine import EngineOptions
from repro.nn import LogisticRegression
from repro.obs import MemorySink, Telemetry, render_dashboard
from repro.obs.events import RunRecord


@pytest.fixture(scope="module")
def run_records():
    fed = generate_synthetic(
        SyntheticConfig(num_nodes=5, mean_samples=20, seed=1)
    )
    telemetry = Telemetry(sink=MemorySink())
    telemetry.emit_metadata(config={"algorithm": "fedml"}, seed=0)
    trainer = FedML(
        LogisticRegression(60, 10),
        FedMLConfig(
            alpha=0.05, beta=0.05, t0=3, total_iterations=9, k=3, seed=0,
            eval_every=1,
        ),
        telemetry=telemetry,
        engine_options=EngineOptions(
            faults=FaultPlan.from_spec("drop:rate=0.3", seed=3),
            resilience=ResiliencePolicy(),
        ),
    )
    trainer.fit(fed, list(range(5)))
    telemetry.close()
    return telemetry.sink.records


class TestDashboardFromRealRun:
    def test_renders_every_expected_section(self, run_records):
        page = render_dashboard(RunRecord.from_records(run_records))
        # self-contained: no external fetches of any kind
        assert "<script src" not in page and "http" not in page.split("</style>")[0].replace("http-equiv", "")
        assert page.startswith("<!DOCTYPE html>")

        # KPI tiles
        assert "Rounds" in page
        assert "Uplink" in page
        # loss curve + heatmap + fault timeline as SVG
        assert "Global meta-loss" in page
        assert "Local-train duration" in page
        assert "Fault &amp; lifecycle timeline" in page
        assert page.count("<svg") >= 3
        # fault dots carry tooltips
        assert "fault_injected" in page
        # accessibility fallback: the history table exists
        assert "Run history table" in page
        assert "<table>" in page

    def test_values_are_not_color_alone(self, run_records):
        page = render_dashboard(RunRecord.from_records(run_records))
        # end label on each line chart (direct label, ink-colored)
        assert 'class="endlabel"' in page
        # every heatmap cell has a text tooltip with the value
        cells = re.findall(r"<rect[^>]*><title>([^<]+)</title>", page)
        assert cells and all("ms" in c for c in cells)

    def test_escapes_untrusted_strings(self, run_records):
        page = render_dashboard(
            RunRecord.from_records(run_records),
            title='<script>alert("x")</script>',
        )
        assert "<script>alert" not in page
        assert "&lt;script&gt;" in page


class TestDashboardSparseInputs:
    def test_empty_run_still_renders(self):
        page = render_dashboard(RunRecord.from_records([]))
        assert page.startswith("<!DOCTYPE html>")
        assert "0 events" in page

    def test_metrics_only_run_renders_series(self):
        records = [
            {"type": "series", "name": "loss", "labels": {},
             "steps": [0, 5, 10], "values": [1.0, 0.6, 0.4]},
        ]
        page = render_dashboard(RunRecord.from_records(records))
        assert "Training loss" in page
        assert "<polyline" in page

    def test_constant_series_has_no_degenerate_axis(self):
        records = [
            {"type": "series", "name": "loss", "labels": {},
             "steps": [0, 1], "values": [2.0, 2.0]},
        ]
        page = render_dashboard(RunRecord.from_records(records))
        assert "NaN" not in page

    def test_spans_dropped_warning_banner(self):
        records = [
            {"type": "counter", "name": "obs_spans_dropped_total",
             "labels": {}, "value": 17.0},
        ]
        page = render_dashboard(RunRecord.from_records(records))
        assert "17 spans" in page
        assert "span_ring_size" in page

    def test_no_banner_when_nothing_dropped(self):
        page = render_dashboard(RunRecord.from_records([]))
        assert "spans dropped" not in page
