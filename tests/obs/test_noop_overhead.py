"""Overhead guard: disabled telemetry must stay out of the hot path.

Strategy: measure the per-call cost of the no-op primitives directly (a
micro-benchmark large enough to be stable), generously over-count how many
instrumentation calls a short FedAvg run performs, and assert the implied
total is under the budget fraction of the run's measured wall time.  This is
deterministic where a run-vs-run wall-clock diff would be noise-dominated,
while still failing if someone makes the no-op path allocate, lock, or read
a clock.
"""

from repro.core import FedAvg, FedAvgConfig
from repro.data import SyntheticConfig, generate_synthetic
from repro.nn import LogisticRegression
from repro.obs import NULL_TELEMETRY

ITERATIONS = 10
NODES = 5


def run_fedavg():
    federated = generate_synthetic(SyntheticConfig(num_nodes=NODES, seed=0))
    model = LogisticRegression(60, 10)
    trainer = FedAvg(
        model,
        FedAvgConfig(learning_rate=0.05, t0=5, total_iterations=ITERATIONS),
    )
    return trainer.fit(federated, list(range(NODES)))


def touch_noop_telemetry():
    """One exaggerated instrumentation site: a span plus three metric calls."""
    with NULL_TELEMETRY.span("round", algorithm="fedavg"):
        NULL_TELEMETRY.counter("fl_rounds_total", algorithm="fedavg").inc()
        NULL_TELEMETRY.counter("fl_bytes_up_total").inc(1024)
        NULL_TELEMETRY.gauge("fl_participants").set(NODES)


def test_noop_telemetry_overhead_under_budget(best_of, noop_overhead_budget):
    run_seconds = best_of(run_fedavg, repeats=3)

    calls = 20_000
    micro = best_of(
        lambda: [touch_noop_telemetry() for _ in range(calls)], repeats=3
    )
    per_site = micro / calls

    # Generous over-count of instrumentation sites in the measured run: the
    # real number is ~2 per iteration plus ~6 per aggregation; charge 10 per
    # iteration per node.
    sites = 10 * ITERATIONS * NODES
    overhead = per_site * sites

    assert overhead < noop_overhead_budget * run_seconds, (
        f"no-op telemetry would cost {overhead * 1e3:.3f} ms against a "
        f"{run_seconds * 1e3:.1f} ms run "
        f"({overhead / run_seconds:.1%} > {noop_overhead_budget:.0%})"
    )


def test_noop_span_returns_shared_object():
    # The no-op path must not allocate per call.
    a = NULL_TELEMETRY.span("x")
    b = NULL_TELEMETRY.span("y", attr=1)
    assert a is b
    assert NULL_TELEMETRY.counter("c") is NULL_TELEMETRY.gauge("g")


class _CountingStrategy:
    """Minimal strategy: counts local steps, needs no model or data."""

    def __init__(self):
        self.steps = 0

    def bind_node_rng(self, rng):
        self.rng = rng

    def local_step(self, node):
        self.steps += 1


class _StubNode:
    def __init__(self, node_id):
        self.node_id = node_id
        self.params = None
        self.local_steps = 0
        self.gradient_evaluations = 0


def test_disabled_serial_run_block_reads_no_clock(monkeypatch):
    # With telemetry off the executor must run the bare pre-observability
    # loop: zero perf_counter reads, zero span/event bookkeeping.
    from repro.engine import SerialExecutor, executors

    reads = {"count": 0}
    real = executors.time.perf_counter

    def counting_clock():
        reads["count"] += 1
        return real()

    monkeypatch.setattr(executors.time, "perf_counter", counting_clock)
    strategy = _CountingStrategy()
    SerialExecutor().run_block(
        strategy,
        [_StubNode(i) for i in range(4)],
        3,
        block_index=0,
        base_seed=0,
        telemetry=None,
    )
    assert strategy.steps == 12
    assert reads["count"] == 0


def test_disabled_worker_entry_ships_no_trace():
    # The parent captures no TraceContext when telemetry is off, so the
    # worker entry point must skip the collector entirely and return no
    # WorkerTrace bundle.
    from repro.engine.executors import _run_node_block

    assert NULL_TELEMETRY.trace_context() is None
    strategy = _CountingStrategy()
    params, steps, gevals, worker = _run_node_block(
        strategy, _StubNode(0), 3, [0, 0, 0], trace=None
    )
    assert strategy.steps == 3
    assert worker is None
