"""Fleet event kinds in the closed schema, v2 parsing, dashboard smoke.

ISSUE 9 satellite: the fleet simulator's round lifecycle joins the
unified event log as first-class kinds.  That means three contracts:
the kinds are in the closed ``EVENT_KINDS`` set (so typos fail loudly),
the schema version bumped to 2 (readers forward-skip what they don't
understand), and the HTML dashboard renders a fleet run — including the
buffered-aggregation rows — without special-casing.
"""

from repro.core.fedavg import FedAvgConfig
from repro.engine.strategies import SgdStrategy
from repro.federated.fleet import (
    FleetConfig,
    FleetSimulator,
    SyntheticShardFactory,
)
from repro.nn import LogisticRegression
from repro.obs import MemorySink, Telemetry
from repro.obs.dashboard import render_dashboard
from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    RunRecord,
    read_events,
)

FLEET_KINDS = {
    "fleet_round_start",
    "fleet_dispatch",
    "fleet_completion",
    "fleet_timeout",
    "fleet_flush",
    "fleet_round_end",
}


def fleet_records(rounds=3, round_timeout_s=None):
    shards = SyntheticShardFactory(seed=0)
    model = LogisticRegression(shards.input_dim, shards.num_classes)
    strategy = SgdStrategy(
        model,
        FedAvgConfig(
            learning_rate=0.05, t0=1, total_iterations=rounds,
            eval_every=1, seed=0,
        ),
    )
    config = FleetConfig(
        fleet_size=300, sampled_per_round=6, rounds=rounds, local_steps=1,
        buffer_size=4, seed=0, round_timeout_s=round_timeout_s,
    )
    telemetry = Telemetry(sink=MemorySink())
    FleetSimulator(strategy, config, shards=shards,
                   telemetry=telemetry).run()
    return telemetry.sink.records


class TestFleetSchema:
    def test_fleet_kinds_are_in_the_closed_set(self):
        assert FLEET_KINDS <= EVENT_KINDS

    def test_adding_kinds_bumped_the_schema_version(self):
        assert EVENT_SCHEMA_VERSION == 2

    def test_fleet_run_emits_only_known_v2_events(self):
        events = read_events(fleet_records())
        assert events, "fleet run produced no events"
        assert all(e["v"] == EVENT_SCHEMA_VERSION for e in events)
        assert all(e["kind"] in EVENT_KINDS for e in events)
        kinds = {e["kind"] for e in events}
        # Everything but timeout shows up in a clean run.
        assert FLEET_KINDS - {"fleet_timeout"} <= kinds

    def test_lifecycle_ordering_per_round(self):
        events = read_events(fleet_records())
        rounds = {}
        for e in events:
            if e["kind"].startswith("fleet_"):
                rounds.setdefault(e["block"], []).append(e["kind"])
        for kinds in rounds.values():
            assert kinds[0] == "fleet_round_start"
            assert kinds[-1] == "fleet_round_end"
            # dispatches precede the first completion
            assert kinds.index("fleet_dispatch") < kinds.index(
                "fleet_completion"
            )

    def test_readers_forward_skip_future_versions(self):
        records = [
            {"type": "event", "v": 1, "seq": 0, "kind": "run_start"},
            {"type": "event", "v": 2, "seq": 1, "kind": "fleet_flush",
             "block": 0},
            {"type": "event", "v": EVENT_SCHEMA_VERSION + 1, "seq": 2,
             "kind": "from_the_future"},
        ]
        events = read_events(records)
        assert [e["seq"] for e in events] == [0, 1]


class TestFleetDashboard:
    def test_dashboard_renders_fleet_run(self):
        run = RunRecord.from_records(fleet_records())
        html = render_dashboard(run, title="fleet smoke")
        assert "<html" in html
        assert "fleet flushes" in html

    def test_dashboard_renders_timeouts(self):
        # An impossible deadline forces every node onto the timeout path.
        records = fleet_records(round_timeout_s=1e-9)
        events = read_events(records)
        assert any(e["kind"] == "fleet_timeout" for e in events)
        html = render_dashboard(RunRecord.from_records(records))
        assert "fleet timeouts" in html
