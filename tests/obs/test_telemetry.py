"""Tests for the telemetry facade, sinks, and trainer integration."""

import json

import numpy as np
import pytest

from repro.core import FedML, FedMLConfig
from repro.data import SyntheticConfig, generate_synthetic
from repro.nn import LogisticRegression
from repro.obs import (
    NULL_TELEMETRY,
    JsonlFileSink,
    MemorySink,
    MetricRegistry,
    Telemetry,
    parse_prometheus,
    resolve,
    run_metadata,
)


class TestFacade:
    def test_resolve_maps_none_to_null(self):
        assert resolve(None) is NULL_TELEMETRY
        telemetry = Telemetry(sink=MemorySink())
        assert resolve(telemetry) is telemetry

    def test_spans_stream_to_sink_on_close(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink)
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        names = [r["name"] for r in sink.of_type("span")]
        assert names == ["inner", "outer"]

    def test_flush_exports_metric_state(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink)
        telemetry.counter("c").inc(2)
        telemetry.gauge("g").set(1)
        telemetry.flush()
        assert {r["name"] for r in sink.records} == {"c", "g"}

    def test_flush_exports_spans_dropped_incrementally(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink, span_ring_size=2)
        for i in range(5):
            with telemetry.span(f"s{i}"):
                pass
        telemetry.flush()
        assert telemetry.registry.counter("obs_spans_dropped_total").value == 3

        # more evictions between flushes add only the new drops
        with telemetry.span("s5"):
            pass
        telemetry.flush()
        assert telemetry.registry.counter("obs_spans_dropped_total").value == 4

    def test_close_flushes_and_closes_once(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink)
        telemetry.counter("c").inc()
        telemetry.close()
        telemetry.close()
        assert sink.closed
        assert len(sink.of_type("counter")) == 1

    def test_metadata_header_fields(self):
        record = run_metadata(config={"alpha": 0.05}, seed=7)
        assert record["type"] == "meta"
        assert record["seed"] == 7
        assert record["config"] == {"alpha": 0.05}
        assert record["timestamp"] > 0
        assert "timestamp_iso" in record
        assert "git_sha" in record  # may be None outside a checkout

    def test_null_telemetry_is_inert(self):
        NULL_TELEMETRY.counter("c", any="label").inc(5)
        NULL_TELEMETRY.gauge("g").set(1)
        NULL_TELEMETRY.histogram("h").observe(1)
        NULL_TELEMETRY.series("s").observe(0, 1)
        with NULL_TELEMETRY.span("s"):
            pass
        NULL_TELEMETRY.emit_metadata()
        NULL_TELEMETRY.flush()
        NULL_TELEMETRY.close()
        assert not NULL_TELEMETRY.enabled


class TestJsonlFileSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = JsonlFileSink(str(path))
        sink.emit({"type": "meta", "seed": 0})
        sink.emit({"type": "counter", "name": "c", "value": 1.0})
        sink.close()
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line)["type"] for line in lines] == ["meta", "counter"]

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlFileSink(str(tmp_path / "out.jsonl"))
        sink.close()
        with pytest.raises(RuntimeError):
            sink.emit({"type": "meta"})


def small_run(telemetry=None, iterations=6, t0=3):
    federated = generate_synthetic(SyntheticConfig(num_nodes=4, seed=0))
    model = LogisticRegression(60, 10)
    trainer = FedML(
        model,
        FedMLConfig(alpha=0.05, beta=0.05, t0=t0, total_iterations=iterations, k=3),
        telemetry=telemetry,
    )
    return trainer.fit(federated, list(range(4)))


class TestTrainerSmoke:
    def test_fedml_emits_round_counters_and_spans(self):
        sink = MemorySink()
        telemetry = Telemetry(sink=sink)
        small_run(telemetry=telemetry, iterations=6, t0=3)

        # 6 iterations / t0=3 -> 2 aggregations
        assert telemetry.registry.get("fl_rounds_total", algorithm="fedml").value == 2
        assert (
            telemetry.registry.get("fl_local_steps_total", algorithm="fedml").value
            == 6 * 4
        )
        assert telemetry.registry.get("fl_bytes_up_total").value > 0
        assert telemetry.registry.get("fl_bytes_down_total").value > 0
        assert telemetry.registry.get("fl_participants").value == 4

        span_names = {r["name"] for r in sink.of_type("span")}
        assert {"fit", "round", "local_steps", "aggregate"} <= span_names
        round_spans = [r for r in sink.of_type("span") if r["name"] == "round"]
        assert len(round_spans) == 2
        assert all(r["path"] == "fit/round" for r in round_spans)

        # loss history rides along in the telemetry registry
        assert telemetry.registry.get("global_meta_loss", run="fedml") is not None

        # and the whole state round-trips through Prometheus exposition
        samples = parse_prometheus(telemetry.registry.to_prometheus())
        assert samples['fl_rounds_total{algorithm="fedml"}'] == 2

    def test_history_unchanged_with_and_without_telemetry(self):
        plain = small_run(telemetry=None)
        traced = small_run(telemetry=Telemetry(sink=MemorySink()))
        assert plain.global_meta_losses == pytest.approx(traced.global_meta_losses)

    def test_default_off_means_no_new_required_arguments(self):
        # seed-compatible call: no telemetry anywhere
        result = small_run()
        assert result.params is not None

    def test_trainer_does_not_clobber_platform_telemetry(self):
        from repro.federated import Platform

        platform_tel = Telemetry(sink=MemorySink())
        trainer_tel = Telemetry(sink=MemorySink())
        platform = Platform(telemetry=platform_tel)
        model = LogisticRegression(60, 10)
        trainer = FedML(
            model,
            FedMLConfig(total_iterations=3, t0=3, k=3),
            platform=platform,
            telemetry=trainer_tel,
        )
        assert trainer.platform.telemetry is platform_tel


class TestRunLoggerAdapter:
    def test_logger_writes_into_shared_registry(self):
        from repro.utils.logging import RunLogger

        registry = MetricRegistry()
        logger = RunLogger(name="fedml", registry=registry)
        logger.log(0, loss=1.0)
        logger.log(5, loss=0.5)
        series = registry.get("loss", run="fedml")
        assert series.values == [1.0, 0.5]
        assert logger.series("loss") == [1.0, 0.5]
        assert logger.steps() == [0, 5]
        assert logger.last("loss") == 0.5
        assert logger.records == [
            {"step": 0.0, "loss": 1.0},
            {"step": 5.0, "loss": 0.5},
        ]
