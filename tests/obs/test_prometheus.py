"""Prometheus exposition correctness: escaping and histogram semantics."""

from repro.obs import DEFAULT_BUCKETS, Histogram, MetricRegistry


class TestLabelEscaping:
    def test_backslash_quote_and_newline_are_escaped(self):
        registry = MetricRegistry()
        registry.counter(
            "findings_total", path='C:\\repo\n"src"'
        ).inc()
        line = registry.to_prometheus().splitlines()[-1]
        # backslash first, then quote, then newline — each escaped once
        assert line == (
            'findings_total{path="C:\\\\repo\\n\\"src\\""} 1'
        )

    def test_backslash_before_quote_ordering(self):
        # escaping the quote first would double-escape its backslash
        registry = MetricRegistry()
        registry.counter("c", v='\\"').inc()
        line = registry.to_prometheus().splitlines()[-1]
        assert '\\\\\\"' in line

    def test_plain_labels_unchanged(self):
        registry = MetricRegistry()
        registry.counter("c", algorithm="fedml").inc(3)
        assert 'c{algorithm="fedml"} 3' in registry.to_prometheus()


class TestHistogramExposition:
    def test_inf_bucket_equals_count(self):
        hist = Histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        lines = hist.expose()
        inf_line = next(l for l in lines if 'le="+Inf"' in l)
        count_line = next(l for l in lines if l.startswith("lat_seconds_count"))
        assert inf_line.endswith(" 4")
        assert count_line.endswith(" 4")

    def test_bucket_counts_are_cumulative_and_monotone(self):
        hist = Histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.5, 5.0, 500.0):
            hist.observe(value)
        lines = hist.expose()
        bucket_values = [
            int(l.rsplit(" ", 1)[1]) for l in lines if "_bucket" in l
        ]
        # le=0.1 -> 2, le=1.0 -> 3, le=10.0 -> 4, +Inf -> 5
        assert bucket_values == [2, 3, 4, 5]
        assert bucket_values == sorted(bucket_values)

    def test_observation_on_edge_lands_in_its_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)  # le semantics: <= 1.0
        assert hist.bucket_counts == [1, 1]

    def test_sum_line_carries_total(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.25)
        hist.observe(0.5)
        sum_line = next(l for l in hist.expose() if l.startswith("h_sum"))
        assert sum_line == "h_sum 0.75"

    def test_default_buckets_expose_in_registry_roundtrip(self):
        registry = MetricRegistry()
        hist = registry.histogram("round_seconds", algorithm="fedml")
        hist.observe(0.3)
        text = registry.to_prometheus()
        assert text.count("round_seconds_bucket") == len(DEFAULT_BUCKETS) + 1
        assert 'le="+Inf"' in text
