"""Tests for the tracing spans and ring buffer."""

import pytest

from repro.obs import (
    NULL_TRACER,
    SpanRecord,
    TraceContext,
    Tracer,
    WorkerTrace,
    reparent,
)


class FakeClock:
    """Deterministic monotone clock: each read advances by ``tick``."""

    def __init__(self, tick=1.0):
        self.now = 0.0
        self.tick = tick

    def __call__(self):
        value = self.now
        self.now += self.tick
        return value


class TestNesting:
    def test_paths_and_depths(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("fit"):
            with tracer.span("round"):
                with tracer.span("local_steps"):
                    pass
                with tracer.span("aggregate"):
                    pass
        paths = [r.path for r in tracer.records()]
        assert paths == [
            "fit/round/local_steps",
            "fit/round/aggregate",
            "fit/round",
            "fit",
        ]
        depths = {r.name: r.depth for r in tracer.records()}
        assert depths == {"fit": 0, "round": 1, "local_steps": 2, "aggregate": 2}

    def test_children_close_before_parents(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.records("outer")[0]
        inner = tracer.records("inner")[0]
        assert inner.end <= outer.end
        assert inner.start >= outer.start

    def test_manual_spans_spanning_loop_iterations(self):
        tracer = Tracer(clock=FakeClock())
        round_span = tracer.span("round")
        for _ in range(3):
            with tracer.span("step"):
                pass
        round_span.end()
        assert [r.name for r in tracer.records()] == [
            "step", "step", "step", "round",
        ]
        assert all(r.path == "round/step" for r in tracer.records("step"))

    def test_end_is_idempotent(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("s")
        span.end()
        span.end()
        assert len(tracer.records("s")) == 1

    def test_ending_parent_closes_forgotten_children(self):
        tracer = Tracer(clock=FakeClock())
        parent = tracer.span("parent")
        tracer.span("orphan")  # never explicitly ended
        parent.end()
        assert [r.name for r in tracer.records()] == ["orphan", "parent"]
        assert tracer.active_depth == 0


class TestTiming:
    def test_duration_from_clock(self):
        tracer = Tracer(clock=FakeClock(tick=2.0))
        with tracer.span("s"):
            pass
        record = tracer.records("s")[0]
        assert record.duration == pytest.approx(2.0)

    def test_attributes_recorded(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", algorithm="fedml") as span:
            span.set(participants=8)
        record = tracer.records("s")[0]
        assert record.attributes == {"algorithm": "fedml", "participants": 8}


class TestRingBuffer:
    def test_oldest_records_evicted(self):
        tracer = Tracer(ring_size=3, clock=FakeClock())
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.records()] == ["s2", "s3", "s4"]

    def test_zero_ring_size_disables_retention(self):
        tracer = Tracer(ring_size=0, clock=FakeClock())
        with tracer.span("s"):
            pass
        assert tracer.records() == []

    def test_on_close_still_fires_without_retention(self):
        seen = []
        tracer = Tracer(ring_size=0, on_close=seen.append, clock=FakeClock())
        with tracer.span("s"):
            pass
        assert [r.name for r in seen] == ["s"]


class TestNullTracer:
    def test_shared_span_and_no_records(self):
        span = NULL_TRACER.span("anything", key="value")
        assert span is NULL_TRACER.span("other")
        with span:
            pass
        span.end()
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.active_depth == 0

    def test_span_record_to_dict(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s"):
            pass
        record = tracer.records("s")[0].to_dict()
        assert record["type"] == "span"
        assert record["name"] == "s"
        assert record["duration"] == record["end"] - record["start"]


class TestRingEviction:
    def test_spans_dropped_counts_evictions(self):
        tracer = Tracer(ring_size=3, clock=FakeClock())
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.spans_dropped == 2
        assert [r.name for r in tracer.records()] == ["s2", "s3", "s4"]

    def test_no_drops_while_ring_has_room(self):
        tracer = Tracer(ring_size=8, clock=FakeClock())
        for i in range(8):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.spans_dropped == 0

    def test_evicted_spans_still_reach_on_close(self):
        # the ring bounds retention, not the stream: a sink sees everything
        seen = []
        tracer = Tracer(ring_size=1, on_close=seen.append, clock=FakeClock())
        for i in range(3):
            with tracer.span(f"s{i}"):
                pass
        assert len(seen) == 3
        assert tracer.spans_dropped == 2


class TestCurrentPosition:
    def test_current_path_and_depth_track_open_spans(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.current_path == ""
        assert tracer.current_depth == 0
        with tracer.span("fit"):
            assert tracer.current_path == "fit"
            assert tracer.current_depth == 1
            with tracer.span("round"):
                assert tracer.current_path == "fit/round"
                assert tracer.current_depth == 2
        assert tracer.current_path == ""
        assert tracer.current_depth == 0


class TestTraceContext:
    def test_capture_snapshots_current_position(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("fit"):
            with tracer.span("round"):
                context = TraceContext.capture(tracer)
        assert context.path == "fit/round"
        assert context.depth == 2
        assert context.profile_tape is False

    def test_capture_from_null_tracer_is_rootless(self):
        context = TraceContext.capture(NULL_TRACER, profile_tape=True)
        assert context == TraceContext(path="", depth=0, profile_tape=True)

    def test_round_trips_through_pickle(self):
        import pickle

        context = TraceContext(path="fit/round", depth=2, profile_tape=True)
        assert pickle.loads(pickle.dumps(context)) == context


class TestReparent:
    def _worker_record(self, depth=0):
        return SpanRecord(
            name="local_train",
            path="local_train",
            start=1.0,
            end=2.5,
            depth=depth,
            attributes={"node": 4, "worker": True},
        )

    def test_prefixes_path_and_rebases_depth(self):
        context = TraceContext(path="fit/round/local_steps", depth=3)
        record = reparent(self._worker_record(), context)
        assert record.path == "fit/round/local_steps/local_train"
        assert record.depth == 3
        assert record.attributes == {"node": 4, "worker": True}
        assert (record.start, record.end) == (1.0, 2.5)

    def test_empty_parent_path_keeps_worker_path(self):
        record = reparent(self._worker_record(), TraceContext(path="", depth=0))
        assert record.path == "local_train"
        assert record.depth == 0

    def test_ingested_reparented_span_lands_in_ring(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("fit"):
            context = TraceContext.capture(tracer)
        tracer.ingest(reparent(self._worker_record(), context))
        record = tracer.records("local_train")[0]
        assert record.path == "fit/local_train"
        assert record.depth == 1

    def test_null_tracer_position_and_ingest_are_inert(self):
        NULL_TRACER.ingest(self._worker_record())
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.current_path == ""
        assert NULL_TRACER.current_depth == 0
        assert NULL_TRACER.spans_dropped == 0


class TestWorkerTrace:
    def test_defaults_are_empty_and_picklable(self):
        import pickle

        worker = WorkerTrace()
        assert worker.spans == []
        assert worker.fastpath_delta == {}
        assert worker.op_stats == {}
        assert worker.graph_walks == 0
        clone = pickle.loads(pickle.dumps(worker))
        assert clone.spans == [] and clone.walked_nodes == 0
