"""Tests for the tracing spans and ring buffer."""

import pytest

from repro.obs import NULL_TRACER, Tracer


class FakeClock:
    """Deterministic monotone clock: each read advances by ``tick``."""

    def __init__(self, tick=1.0):
        self.now = 0.0
        self.tick = tick

    def __call__(self):
        value = self.now
        self.now += self.tick
        return value


class TestNesting:
    def test_paths_and_depths(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("fit"):
            with tracer.span("round"):
                with tracer.span("local_steps"):
                    pass
                with tracer.span("aggregate"):
                    pass
        paths = [r.path for r in tracer.records()]
        assert paths == [
            "fit/round/local_steps",
            "fit/round/aggregate",
            "fit/round",
            "fit",
        ]
        depths = {r.name: r.depth for r in tracer.records()}
        assert depths == {"fit": 0, "round": 1, "local_steps": 2, "aggregate": 2}

    def test_children_close_before_parents(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.records("outer")[0]
        inner = tracer.records("inner")[0]
        assert inner.end <= outer.end
        assert inner.start >= outer.start

    def test_manual_spans_spanning_loop_iterations(self):
        tracer = Tracer(clock=FakeClock())
        round_span = tracer.span("round")
        for _ in range(3):
            with tracer.span("step"):
                pass
        round_span.end()
        assert [r.name for r in tracer.records()] == [
            "step", "step", "step", "round",
        ]
        assert all(r.path == "round/step" for r in tracer.records("step"))

    def test_end_is_idempotent(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("s")
        span.end()
        span.end()
        assert len(tracer.records("s")) == 1

    def test_ending_parent_closes_forgotten_children(self):
        tracer = Tracer(clock=FakeClock())
        parent = tracer.span("parent")
        tracer.span("orphan")  # never explicitly ended
        parent.end()
        assert [r.name for r in tracer.records()] == ["orphan", "parent"]
        assert tracer.active_depth == 0


class TestTiming:
    def test_duration_from_clock(self):
        tracer = Tracer(clock=FakeClock(tick=2.0))
        with tracer.span("s"):
            pass
        record = tracer.records("s")[0]
        assert record.duration == pytest.approx(2.0)

    def test_attributes_recorded(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", algorithm="fedml") as span:
            span.set(participants=8)
        record = tracer.records("s")[0]
        assert record.attributes == {"algorithm": "fedml", "participants": 8}


class TestRingBuffer:
    def test_oldest_records_evicted(self):
        tracer = Tracer(ring_size=3, clock=FakeClock())
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.records()] == ["s2", "s3", "s4"]

    def test_zero_ring_size_disables_retention(self):
        tracer = Tracer(ring_size=0, clock=FakeClock())
        with tracer.span("s"):
            pass
        assert tracer.records() == []

    def test_on_close_still_fires_without_retention(self):
        seen = []
        tracer = Tracer(ring_size=0, on_close=seen.append, clock=FakeClock())
        with tracer.span("s"):
            pass
        assert [r.name for r in seen] == ["s"]


class TestNullTracer:
    def test_shared_span_and_no_records(self):
        span = NULL_TRACER.span("anything", key="value")
        assert span is NULL_TRACER.span("other")
        with span:
            pass
        span.end()
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.active_depth == 0

    def test_span_record_to_dict(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s"):
            pass
        record = tracer.records("s")[0].to_dict()
        assert record["type"] == "span"
        assert record["name"] == "s"
        assert record["duration"] == record["end"] - record["start"]
