"""The unified event log: ordering, validation, versioning, parsing."""

import pytest

from repro.obs import MemorySink, Telemetry
from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    NULL_EVENT_LOG,
    EventLog,
    RunRecord,
    read_events,
)


class TestEventLog:
    def test_events_carry_schema_version_and_monotone_seq(self):
        out = []
        log = EventLog(out.append)
        log.emit("round_start", block=0, t=0)
        log.emit("node_result", node=2, block=0)
        log.emit("round_end", block=0, t=5)
        assert [e["seq"] for e in out] == [0, 1, 2]
        assert all(e["type"] == "event" for e in out)
        assert all(e["v"] == EVENT_SCHEMA_VERSION for e in out)
        assert out[1]["kind"] == "node_result"
        assert out[1]["node"] == 2

    def test_unknown_kind_fails_loudly(self):
        log = EventLog(lambda record: None)
        with pytest.raises(ValueError, match="unknown event kind"):
            log.emit("round_strat", block=0)

    def test_every_documented_kind_is_emittable(self):
        out = []
        log = EventLog(out.append)
        for kind in sorted(EVENT_KINDS):
            log.emit(kind)
        assert [e["kind"] for e in out] == sorted(EVENT_KINDS)

    def test_null_log_is_silent_and_unvalidating(self):
        # the disabled path must not pay for kind validation
        assert NULL_EVENT_LOG.emit("whatever", x=1) is None

    def test_telemetry_routes_events_to_its_sink(self):
        telemetry = Telemetry(sink=MemorySink())
        telemetry.events.emit("checkpoint", t=6, path="/tmp/ck.npz")
        records = telemetry.sink.of_type("event")
        assert len(records) == 1
        assert records[0]["kind"] == "checkpoint"


class TestReadEvents:
    def test_orders_by_seq_and_filters_nonevents(self):
        records = [
            {"type": "counter", "name": "x", "value": 1},
            {"type": "event", "v": 1, "seq": 2, "kind": "round_end"},
            {"type": "event", "v": 1, "seq": 0, "kind": "run_start"},
            {"type": "meta"},
            {"type": "event", "v": 1, "seq": 1, "kind": "round_start"},
        ]
        kinds = [e["kind"] for e in read_events(records)]
        assert kinds == ["run_start", "round_start", "round_end"]

    def test_newer_schema_versions_are_skipped_not_misread(self):
        records = [
            {"type": "event", "v": 1, "seq": 0, "kind": "run_start"},
            {
                "type": "event",
                "v": EVENT_SCHEMA_VERSION + 1,
                "seq": 1,
                "kind": "run_start",
            },
        ]
        events = read_events(records)
        assert len(events) == 1
        assert events[0]["v"] == 1


class TestRunRecord:
    def _records(self):
        return [
            {"type": "meta", "seed": 7},
            {"type": "event", "v": 1, "seq": 0, "kind": "run_start"},
            {"type": "event", "v": 1, "seq": 1, "kind": "node_result",
             "node": 0, "block": 0, "duration_s": 0.5},
            {"type": "span", "name": "fit", "start": 0.0, "end": 1.0},
            {"type": "counter", "name": "fl_rounds_total",
             "labels": {"algorithm": "fedml"}, "value": 4.0},
            {"type": "counter", "name": "fl_rounds_total",
             "labels": {"algorithm": "fedavg"}, "value": 2.0},
            {"type": "series", "name": "loss", "labels": {},
             "steps": [0, 1], "values": [1.0, 0.5]},
        ]

    def test_buckets_every_stream(self):
        run = RunRecord.from_records(self._records())
        assert run.meta["seed"] == 7
        assert [e["kind"] for e in run.events] == ["run_start", "node_result"]
        assert len(run.spans) == 1
        assert len(run.counters) == 2
        assert run.find_series("loss")["values"] == [1.0, 0.5]
        assert run.find_series("missing") is None

    def test_counter_value_respects_labels(self):
        run = RunRecord.from_records(self._records())
        assert run.counter_value("fl_rounds_total", algorithm="fedml") == 4.0
        # unlabelled lookup returns the last matching export
        assert run.counter_value("fl_rounds_total") == 2.0
        assert run.counter_value("nope") == 0.0

    def test_events_of_filters_by_kind(self):
        run = RunRecord.from_records(self._records())
        assert len(run.events_of("node_result")) == 1
        assert run.events_of("fault_injected") == []
