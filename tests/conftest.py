"""Shared test fixtures, including the instrumentation-overhead guard.

The observability layer promises near-zero cost when disabled.  To keep
future instrumentation honest, ``tests/obs/test_noop_overhead.py`` uses the
fixtures here to compare the measured per-call cost of the no-op telemetry
primitives against the wall time of a short training run.  Timing fixtures
take the *minimum* over repeats — the standard micro-benchmark estimator for
the noise-free cost on a shared machine.
"""

import time

import pytest


@pytest.fixture
def best_of():
    """Return ``best_of(fn, repeats=3) -> seconds``: min wall time of fn()."""

    def timer(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    return timer


@pytest.fixture
def noop_overhead_budget():
    """Maximum fraction of a run's wall time the no-op telemetry may cost."""
    return 0.05
