"""Tests for RNG streams, serialization, and run logging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor
from repro.utils import (
    RngFactory,
    RunLogger,
    deserialize_params,
    payload_bytes,
    serialize_params,
    spawn,
)


class TestRngFactory:
    def test_same_names_same_stream(self):
        factory = RngFactory(7)
        a = factory.stream("data", 3).normal(size=5)
        b = factory.stream("data", 3).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        factory = RngFactory(7)
        a = factory.stream("data", 3).normal(size=5)
        b = factory.stream("data", 4).normal(size=5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(1).stream("x").normal(size=5)
        b = RngFactory(2).stream("x").normal(size=5)
        assert not np.array_equal(a, b)

    def test_string_names_are_stable(self):
        a = spawn(0, "alpha", "beta").integers(0, 1000, size=3)
        b = spawn(0, "alpha", "beta").integers(0, 1000, size=3)
        np.testing.assert_array_equal(a, b)

    def test_repr(self):
        assert "seed=9" in repr(RngFactory(9))


class TestSerialization:
    def _params(self, seed=0):
        rng = np.random.default_rng(seed)
        return {
            "W": Tensor(rng.normal(size=(4, 3))),
            "b": Tensor(rng.normal(size=3)),
            "scalar": Tensor(rng.normal()),
        }

    def test_roundtrip(self):
        params = self._params()
        back = deserialize_params(serialize_params(params))
        assert set(back) == set(params)
        for name in params:
            np.testing.assert_array_equal(back[name].data, params[name].data)

    def test_roundtrip_preserves_shapes(self):
        back = deserialize_params(serialize_params(self._params()))
        assert back["W"].shape == (4, 3)
        assert back["scalar"].shape == ()

    def test_payload_bytes_dominated_by_data(self):
        params = self._params()
        data_bytes = sum(t.data.nbytes for t in params.values())
        total = payload_bytes(params)
        assert total > data_bytes
        assert total < data_bytes + 200  # header overhead is small

    def test_bad_magic_raises(self):
        with pytest.raises(ValueError):
            deserialize_params(b"XXXX" + b"\x00" * 16)

    def test_deserialized_are_plain_leaves(self):
        back = deserialize_params(serialize_params(self._params()))
        assert all(t.is_leaf() and not t.requires_grad for t in back.values())

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, seed):
        params = self._params(seed)
        back = deserialize_params(serialize_params(params))
        for name in params:
            np.testing.assert_array_equal(back[name].data, params[name].data)


class TestRunLogger:
    def test_series_extraction(self):
        log = RunLogger()
        log.log(0, loss=1.0)
        log.log(1, loss=0.5, acc=0.9)
        assert log.series("loss") == [1.0, 0.5]
        assert log.series("acc") == [0.9]

    def test_steps_filtered_by_key(self):
        log = RunLogger()
        log.log(0, loss=1.0)
        log.log(5, acc=0.9)
        assert log.steps() == [0, 5]
        assert log.steps("acc") == [5]

    def test_last(self):
        log = RunLogger()
        log.log(0, loss=1.0)
        log.log(1, loss=0.25)
        assert log.last("loss") == 0.25

    def test_last_missing_key_raises(self):
        with pytest.raises(KeyError):
            RunLogger().last("loss")

    def test_table_renders_rows(self):
        log = RunLogger()
        for i in range(5):
            log.log(i, loss=1.0 / (i + 1))
        table = log.table(["loss"])
        assert "loss" in table
        assert len(table.splitlines()) >= 3

    def test_table_subsamples_long_runs(self):
        log = RunLogger()
        for i in range(200):
            log.log(i, loss=float(i))
        table = log.table(["loss"], max_rows=10)
        assert len(table.splitlines()) <= 25

    def test_table_always_keeps_final_row_exactly_once(self):
        # 22 rows, max_rows=10 -> stride 2 samples indices 0..20; the final
        # row (index 21) must be appended even when it is value-equal to a
        # sampled row (the old dict-equality check dropped it here).
        log = RunLogger()
        for i in range(21):
            log.log(i, loss=float(i))
        log.log(0, loss=0.0)  # final row repeats row 0 by value
        table = log.table(["loss"], max_rows=10)
        rows = table.splitlines()[1:]
        assert rows.count(rows[-1]) == 2  # duplicate *values*, both kept
        assert len(rows) == 12  # 11 sampled + the final row

    def test_table_no_duplicate_when_stride_hits_final_row(self):
        log = RunLogger()
        for i in range(21):  # stride 2 samples 0,2,...,20 == final index
            log.log(i, loss=float(i))
        table = log.table(["loss"], max_rows=10)
        rows = table.splitlines()[1:]
        assert len(rows) == len(set(rows)) == 11

    def test_registry_backed_logger_shares_series(self):
        from repro.obs import MetricRegistry

        registry = MetricRegistry()
        log = RunLogger(name="fedml", registry=registry)
        log.log(0, loss=1.0)
        assert registry.get("loss", run="fedml").values == [1.0]
        assert log.registry is registry

    def test_records_legacy_view(self):
        log = RunLogger()
        log.log(0, loss=1.0)
        log.log(1, loss=0.5, acc=0.9)
        assert log.records == [
            {"step": 0.0, "loss": 1.0},
            {"step": 1.0, "loss": 0.5, "acc": 0.9},
        ]
