"""Property-based round-trip tests for the wire and checkpoint formats.

Hypothesis fuzzes parameter-tree shapes (including 0-d and zero-size
arrays), source dtypes, names, and JSON state; and proves the decoders
*reject* every strict prefix of a valid blob/file rather than silently
half-decoding it.
"""

import os
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.autodiff import Tensor
from repro.utils.checkpoint import load_checkpoint, save_checkpoint
from repro.utils.serialization import (
    deserialize_params,
    payload_bytes,
    serialize_params,
)

SETTINGS = settings(max_examples=50, deadline=None)

#: printable-ish names, including characters that stress utf-8 encoding
NAMES = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    min_size=1,
    max_size=16,
)


@st.composite
def params_trees(draw):
    names = draw(st.lists(NAMES, min_size=0, max_size=5, unique=True))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    params = {}
    for name in names:
        ndim = draw(st.integers(min_value=0, max_value=3))
        shape = tuple(
            draw(st.integers(min_value=0, max_value=4)) for _ in range(ndim)
        )
        dtype = draw(st.sampled_from([np.float64, np.float32, np.int64]))
        if np.issubdtype(dtype, np.integer):
            data = rng.integers(-1000, 1000, size=shape).astype(dtype)
        else:
            data = rng.standard_normal(size=shape).astype(dtype)
        params[name] = Tensor(data)
    return params


json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**53), max_value=2**53),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=16),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)

json_states = st.dictionaries(st.text(max_size=8), json_values, max_size=5)


def assert_trees_equal(restored, original):
    assert restored.keys() == original.keys()
    for name, tensor in original.items():
        assert restored[name].data.shape == tensor.data.shape
        np.testing.assert_array_equal(restored[name].data, tensor.data)
        assert restored[name].data.dtype == np.float64


class TestSerializationProperties:
    @SETTINGS
    @given(params=params_trees())
    def test_round_trip_is_exact(self, params):
        blob = serialize_params(params)
        assert payload_bytes(params) == len(blob)
        assert_trees_equal(deserialize_params(blob), params)

    @SETTINGS
    @given(params=params_trees(), data=st.data())
    def test_every_strict_prefix_is_rejected(self, params, data):
        blob = serialize_params(params)
        cut = data.draw(st.integers(0, len(blob) - 1), label="prefix length")
        with pytest.raises(ValueError):
            deserialize_params(blob[:cut])

    @SETTINGS
    @given(params=params_trees(), data=st.data())
    def test_magic_corruption_is_rejected(self, params, data):
        blob = bytearray(serialize_params(params))
        position = data.draw(st.integers(0, 3), label="corrupt byte")
        blob[position] ^= 0xFF
        with pytest.raises(ValueError, match="not a serialized"):
            deserialize_params(bytes(blob))

    def test_unknown_version_is_rejected(self):
        blob = bytearray(serialize_params({}))
        blob[4] ^= 0xFF  # low byte of the little-endian version field
        with pytest.raises(ValueError, match="unsupported version"):
            deserialize_params(bytes(blob))


class TestCheckpointProperties:
    @SETTINGS
    @given(params=params_trees(), state=json_states)
    def test_file_round_trip_is_exact(self, params, state):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "run.ckpt")
            save_checkpoint(path, params, state)
            checkpoint = load_checkpoint(path)
        assert_trees_equal(checkpoint.params, params)
        # json round-trips ints, shortest-repr floats, and text exactly
        assert checkpoint.state == state

    @SETTINGS
    @given(params=params_trees(), state=json_states, data=st.data())
    def test_every_truncation_is_rejected(self, params, state, data):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "run.ckpt")
            save_checkpoint(path, params, state)
            size = os.path.getsize(path)
            cut = data.draw(st.integers(0, size - 1), label="file length")
            with open(path, "rb") as handle:
                prefix = handle.read(cut)
            with open(path, "wb") as handle:
                handle.write(prefix)
            with pytest.raises(ValueError):
                load_checkpoint(path)

    @SETTINGS
    @given(params=params_trees(), data=st.data())
    def test_magic_corruption_is_rejected(self, params, data):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "run.ckpt")
            save_checkpoint(path, params, {})
            with open(path, "rb") as handle:
                raw = bytearray(handle.read())
            raw[data.draw(st.integers(0, 3), label="corrupt byte")] ^= 0xFF
            with open(path, "wb") as handle:
                handle.write(bytes(raw))
            with pytest.raises(ValueError, match="not a repro checkpoint"):
                load_checkpoint(path)

    def test_garbage_header_is_rejected(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "run.ckpt")
            save_checkpoint(path, {}, {"t": 3})
            with open(path, "rb") as handle:
                raw = bytearray(handle.read())
            raw[10] ^= 0xFF  # first byte of the JSON header
            with open(path, "wb") as handle:
                handle.write(bytes(raw))
            with pytest.raises(ValueError, match="corrupt state header"):
                load_checkpoint(path)
