"""Tests for run checkpointing."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn.parameters import to_vector
from repro.utils import load_checkpoint, save_checkpoint


def make_params(seed=0):
    rng = np.random.default_rng(seed)
    return {"W": Tensor(rng.normal(size=(5, 3))), "b": Tensor(rng.normal(size=3))}


class TestCheckpoint:
    def test_roundtrip_params(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        params = make_params()
        save_checkpoint(path, params, {"iteration": 42})
        restored = load_checkpoint(path)
        np.testing.assert_array_equal(to_vector(restored.params), to_vector(params))

    def test_state_and_iteration(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(path, make_params(), {"iteration": 7, "t0": 5})
        restored = load_checkpoint(path)
        assert restored.iteration == 7
        assert restored.state["t0"] == 5

    def test_missing_iteration_is_none(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(path, make_params())
        assert load_checkpoint(path).iteration is None

    def test_overwrite_is_atomic(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(path, make_params(0), {"iteration": 1})
        save_checkpoint(path, make_params(1), {"iteration": 2})
        restored = load_checkpoint(path)
        assert restored.iteration == 2
        np.testing.assert_array_equal(
            to_vector(restored.params), to_vector(make_params(1))
        )
        assert not (tmp_path / "run.ckpt.tmp").exists()

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(ValueError):
            load_checkpoint(str(path))

    def test_resume_training_equivalence(self, tmp_path):
        """Training N+M iterations == training N, checkpointing, resuming M."""
        from repro.core import FedML, FedMLConfig
        from repro.data import SyntheticConfig, generate_synthetic
        from repro.nn import LogisticRegression

        fed = generate_synthetic(
            SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=6, mean_samples=15, seed=3)
        )
        sources = list(range(6))
        model = LogisticRegression(60, 10)
        base = dict(alpha=0.05, beta=0.05, t0=5, k=5, seed=0, eval_every=10**9)

        full = FedML(model, FedMLConfig(total_iterations=20, **base)).fit(fed, sources)

        first = FedML(model, FedMLConfig(total_iterations=10, **base)).fit(fed, sources)
        path = str(tmp_path / "mid.ckpt")
        save_checkpoint(path, first.params, {"iteration": 10})
        restored = load_checkpoint(path)
        resumed = FedML(model, FedMLConfig(total_iterations=10, **base)).fit(
            fed, sources, init_params=restored.params
        )
        np.testing.assert_allclose(
            to_vector(resumed.params), to_vector(full.params), rtol=1e-12
        )
