"""Tests for the wall-clock costing of training histories."""

import numpy as np
import pytest

from repro.federated import DeviceProfile, LinkModel, sample_fleet
from repro.metrics import WallclockCurve, loss_vs_wallclock
from repro.utils.logging import RunLogger

LINK = LinkModel(uplink_bytes_per_s=1e6, downlink_bytes_per_s=1e6, latency_s=0.0)


def make_history(losses):
    log = RunLogger()
    for i, loss in enumerate(losses):
        log.log(i, global_meta_loss=loss)
    return log


class TestWallclockCurve:
    def test_loss_at_budget(self):
        curve = WallclockCurve(times=[0.0, 1.0, 2.0], losses=[3.0, 2.0, 1.0])
        assert curve.loss_at(0.5) == 3.0
        assert curve.loss_at(1.5) == 2.0
        assert curve.loss_at(10.0) == 1.0

    def test_loss_at_zero_budget_includes_time_zero(self):
        curve = WallclockCurve(times=[0.0, 1.0], losses=[3.0, 2.0])
        assert curve.loss_at(0.0) == 3.0

    def test_time_to_reach(self):
        curve = WallclockCurve(times=[0.0, 1.0, 2.0], losses=[3.0, 2.0, 1.0])
        assert curve.time_to_reach(2.5) == 1.0
        assert curve.time_to_reach(0.5) is None


class TestLossVsWallclock:
    def _fleet(self, speed=0.1):
        return [DeviceProfile(0, speed, LINK), DeviceProfile(1, speed, LINK)]

    def test_times_match_round_schedule(self):
        history = make_history([3.0, 2.0, 1.0])  # 2 aggregations
        curve = loss_vs_wallclock(
            history, t0=10, fleet=self._fleet(0.1), upload_bytes=0
        )
        # each round: 10 steps * 0.1 s = 1 s compute, no transfer
        assert curve.times == pytest.approx([0.0, 1.0, 2.0])
        assert curve.losses == [3.0, 2.0, 1.0]

    def test_larger_t0_rounds_take_longer_each(self):
        history = make_history([3.0, 2.0])
        fast = loss_vs_wallclock(history, t0=1, fleet=self._fleet(), upload_bytes=0)
        slow = loss_vs_wallclock(history, t0=50, fleet=self._fleet(), upload_bytes=0)
        assert slow.times[-1] > fast.times[-1]

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            loss_vs_wallclock(RunLogger(), t0=1, fleet=self._fleet(), upload_bytes=0)

    def test_single_record_curve(self):
        history = make_history([3.0])
        curve = loss_vs_wallclock(history, t0=5, fleet=self._fleet(), upload_bytes=0)
        assert curve.times == [0.0]

    def test_upload_bytes_add_time(self):
        history = make_history([3.0, 2.0])
        free = loss_vs_wallclock(history, t0=5, fleet=self._fleet(), upload_bytes=0)
        heavy = loss_vs_wallclock(
            history, t0=5, fleet=self._fleet(), upload_bytes=10_000_000
        )
        assert heavy.times[-1] > free.times[-1]

    def test_integrates_with_sampled_fleet(self):
        history = make_history([3.0, 2.5, 2.0])
        fleet = sample_fleet(10, np.random.default_rng(0))
        curve = loss_vs_wallclock(history, t0=5, fleet=fleet, upload_bytes=5000)
        assert len(curve.times) == 3
        assert all(b > a for a, b in zip(curve.times, curve.times[1:]))
