"""Tests for evaluation protocols and table formatting."""

import numpy as np
import pytest

from repro.attacks import fgsm
from repro.data import Dataset, FederatedDataset
from repro.metrics import (
    evaluate_robustness,
    few_shot_sweep,
    format_table,
    target_splits,
)
from repro.nn import LogisticRegression

RNG = np.random.default_rng(0)
MODEL = LogisticRegression(4, 3)


def make_fed(sizes=(12, 15, 20, 6)):
    nodes = [
        Dataset(x=RNG.normal(size=(n, 4)), y=RNG.integers(0, 3, size=n))
        for n in sizes
    ]
    return FederatedDataset(name="toy", nodes=nodes, num_classes=3)


class TestTargetSplits:
    def test_k_shot_protocol(self):
        fed = make_fed()
        splits = target_splits(fed, [0, 1], k=5)
        assert all(len(s.train) == 5 for s in splits)

    def test_skips_too_small_nodes(self):
        fed = make_fed()
        splits = target_splits(fed, [0, 3], k=8)  # node 3 has only 6 samples
        assert len(splits) == 1

    def test_all_too_small_raises(self):
        fed = make_fed((4, 5))
        with pytest.raises(ValueError):
            target_splits(fed, [0, 1], k=10)


class TestFewShotSweep:
    def test_returns_curve_per_k(self):
        fed = make_fed()
        params = MODEL.init(np.random.default_rng(0))
        curves = few_shot_sweep(
            MODEL, params, fed, [0, 1], ks=[2, 5], alpha=0.1, max_steps=3
        )
        assert set(curves) == {2, 5}
        assert len(curves[2].losses) == 4


class TestEvaluateRobustness:
    def test_report_fields_consistent(self):
        fed = make_fed()
        params = MODEL.init(np.random.default_rng(0))
        splits = target_splits(fed, [0, 1], k=4)
        report = evaluate_robustness(
            MODEL, params, splits, alpha=0.1,
            attack=lambda m, p, x, y: fgsm(m, p, x, y, xi=0.3),
        )
        assert 0.0 <= report.clean_accuracy <= 1.0
        assert 0.0 <= report.adversarial_accuracy <= 1.0
        assert report.robustness_gap == pytest.approx(
            report.clean_accuracy - report.adversarial_accuracy
        )

    def test_attack_does_not_help(self):
        fed = make_fed()
        params = MODEL.init(np.random.default_rng(0))
        splits = target_splits(fed, [0, 1], k=4)
        report = evaluate_robustness(
            MODEL, params, splits, alpha=0.1, adapt_steps=5,
            attack=lambda m, p, x, y: fgsm(m, p, x, y, xi=0.5),
        )
        assert report.adversarial_loss >= report.clean_loss

    def test_identity_attack_gives_equal_metrics(self):
        fed = make_fed()
        params = MODEL.init(np.random.default_rng(0))
        splits = target_splits(fed, [0, 1], k=4)
        report = evaluate_robustness(
            MODEL, params, splits, alpha=0.1,
            attack=lambda m, p, x, y: x,
        )
        assert report.clean_loss == pytest.approx(report.adversarial_loss)
        assert report.clean_accuracy == pytest.approx(report.adversarial_accuracy)

    def test_empty_targets_raise(self):
        params = MODEL.init(np.random.default_rng(0))
        with pytest.raises(ValueError):
            evaluate_robustness(
                MODEL, params, [], alpha=0.1, attack=lambda m, p, x, y: x
            )


class TestFormatTable:
    def test_aligned_output(self):
        out = format_table(["name", "value"], [["a", 1.0], ["bb", 2.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.0000" in lines[2]

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_integers_render_without_decimals(self):
        out = format_table(["n"], [[42]])
        assert "42" in out
        assert "42.0" not in out
