"""Runtime determinism checker: ledger, bisector, planter, CLI.

Also hosts the regression tests for the latent DET findings fixed in our
own tree (round-engine identity keys, communication-log set iteration):
the proof obligation is bit-identical traces across reruns.
"""

import json

import numpy as np
import pytest

from repro.analysis.determinism import (
    EntropyPlanter,
    LedgerRng,
    RngLedger,
    StreamRecord,
    install_ledger,
    uninstall_ledger,
)
from repro.analysis.divergence import (
    DivergencePoint,
    RunFingerprint,
    compare_runs,
)
from repro.cli import main
from repro.federated.network import CommunicationLog, TransferRecord
from repro.utils.rng import instrument_node_rng, set_node_rng_hook

SMALL = [
    "check-determinism", "--nodes", "6", "--iterations", "10",
    "--t0", "5", "--eval-every", "5",
]


@pytest.fixture(autouse=True)
def _no_leaked_hook():
    yield
    set_node_rng_hook(None)


class _PicklableStrategy:
    """Module-level so pickle can find it (planter round-trip test)."""

    def local_step(self, node):
        return 0.0

    def on_block_end(self):
        return None


class TestLedger:
    def test_fingerprint_is_order_and_shape_sensitive(self):
        a = StreamRecord(block=0, node=1)
        b = StreamRecord(block=0, node=1)
        a.record("normal", np.zeros(3))
        a.record("integers", 4)
        b.record("integers", 4)
        b.record("normal", np.zeros(3))
        assert a.draws == b.draws == 2
        assert a.fingerprint != b.fingerprint

        c = StreamRecord(block=0, node=1)
        c.record("normal", np.zeros(4))
        c.record("integers", 4)
        assert c.fingerprint != a.fingerprint  # shape differs

    def test_records_sorted_and_totals(self):
        ledger = RngLedger()
        ledger.stream(1, 2).record("normal", 0.0)
        ledger.stream(0, 5).record("normal", 0.0)
        ledger.stream(0, 1).record("normal", 0.0)
        keys = [(r.block, r.node) for r in ledger.records()]
        assert keys == [(0, 1), (0, 5), (1, 2)]
        assert ledger.total_draws == 3

    def test_ledger_rng_is_draw_transparent(self):
        record = StreamRecord(block=0, node=0)
        plain = np.random.default_rng(42)
        wrapped = LedgerRng(np.random.default_rng(42), record)
        np.testing.assert_array_equal(
            plain.normal(size=5), wrapped.normal(size=5)
        )
        assert plain.integers(10) == wrapped.integers(10)
        # and afterwards both streams are in the same state
        assert plain.random() == wrapped.random()
        assert record.draws == 3  # .random() counted too

    def test_install_hook_wraps_instrumented_generators(self):
        ledger = install_ledger()
        try:
            rng = instrument_node_rng(np.random.default_rng(1), 3, 7)
            rng.normal(size=2)
        finally:
            uninstall_ledger()
        records = ledger.records()
        assert [(r.block, r.node, r.draws) for r in records] == [(3, 7, 1)]
        # after uninstall, generators pass through unchanged
        plain = instrument_node_rng(np.random.default_rng(1), 0, 0)
        assert isinstance(plain, np.random.Generator)

    def test_emit_events_and_registry_export(self):
        events = []

        class FakeEvents:
            def emit(self, kind, **fields):
                events.append((kind, fields))

        ledger = RngLedger()
        ledger.stream(0, 1).record("normal", 0.0)
        ledger.emit_events(FakeEvents())
        assert events[0][0] == "rng_ledger"
        assert events[0][1]["block"] == 0
        assert events[0][1]["node"] == 1
        assert events[0][1]["draws"] == 1


class TestCompareRuns:
    @staticmethod
    def fp(label="run", **overrides):
        base = dict(
            ledger={(0, 1): {"draws": 3, "fingerprint": "aa"}},
            node_results={(0, 1): {"params_fp": "x", "steps": 5}},
            rounds={0: 2},
            history=[{"metric": "global_loss", "values": (1.0, 0.5)}],
            final_params_fp="ff",
        )
        base.update(overrides)
        return RunFingerprint(label=label, **base)

    def test_identical_runs_compare_equal(self):
        assert compare_runs(self.fp("a"), self.fp("b")) is None

    def test_ledger_divergence_wins_within_a_block(self):
        b = self.fp(
            "b",
            ledger={(0, 1): {"draws": 4, "fingerprint": "aa"}},
            node_results={(0, 1): {"params_fp": "y", "steps": 5}},
        )
        point = compare_runs(self.fp("a"), b)
        assert point.metric == "rng.draws"
        assert (point.round, point.block, point.node) == (0, 0, 1)

    def test_earliest_block_wins(self):
        a = self.fp(
            "a",
            ledger={
                (0, 1): {"draws": 3, "fingerprint": "aa"},
                (1, 1): {"draws": 3, "fingerprint": "aa"},
            },
        )
        b = self.fp(
            "b",
            ledger={
                (0, 1): {"draws": 3, "fingerprint": "aa"},
                (1, 1): {"draws": 9, "fingerprint": "zz"},
            },
        )
        point = compare_runs(a, b)
        assert point.block == 1

    def test_node_fingerprint_divergence_names_the_node(self):
        b = self.fp("b", node_results={(0, 1): {"params_fp": "y", "steps": 5}})
        point = compare_runs(self.fp("a"), b)
        assert point.metric == "node.params_fp"
        assert point.node == 1

    def test_participants_then_history_then_final(self):
        point = compare_runs(self.fp("a"), self.fp("b", rounds={0: 3}))
        assert point.metric == "round.participants"

        b = self.fp(
            "b", history=[{"metric": "global_loss", "values": (1.0, 0.7)}]
        )
        assert compare_runs(self.fp("a"), b).metric == "history.values"

        assert (
            compare_runs(self.fp("a"), self.fp("b", final_params_fp="00")).metric
            == "final.params_fp"
        )

    def test_from_records_parses_event_stream(self):
        records = [
            {"type": "event", "v": 1, "seq": 0, "kind": "round_end",
             "block": 0, "t": 5, "participants": 4},
            {"type": "event", "v": 1, "seq": 1, "kind": "node_result",
             "block": 0, "node": 2, "steps": 5, "params_fp": "ab"},
            {"type": "event", "v": 1, "seq": 2, "kind": "rng_ledger",
             "block": 0, "node": 2, "draws": 7, "fingerprint": "cd"},
        ]
        fp = RunFingerprint.from_records(records, label="x")
        assert fp.rounds == {0: 4}
        assert fp.node_results[(0, 2)]["params_fp"] == "ab"
        assert fp.ledger[(0, 2)]["draws"] == 7
        assert fp.blocks() == [0]

    def test_render_names_the_coordinate(self):
        point = DivergencePoint(1, 1, 3, "node.params_fp", "a", "b")
        text = point.render()
        assert "round 1" in text and "block 1" in text and "node 3" in text


class TestEntropyPlanter:
    def test_forwards_and_perturbs_only_the_target(self):
        class Node:
            def __init__(self, node_id):
                self.node_id = node_id
                from repro.autodiff import Tensor

                self.params = {"w": Tensor(np.zeros(3))}

        class Strategy:
            def __init__(self):
                self.steps = []

            def local_step(self, node):
                self.steps.append(node.node_id)
                return 0.0

            def on_block_end(self):
                return None

            def evaluate(self):
                return "eval"

        inner = Strategy()
        planter = EntropyPlanter(inner, block=1, node=7)
        assert planter.evaluate() == "eval"  # non-hooks forward

        target, other = Node(7), Node(8)
        planter.local_step(target)  # block 0: untouched
        assert np.all(np.asarray(target.params["w"].data) == 0)
        planter.on_block_end()
        planter.local_step(other)
        planter.local_step(target)  # block 1, node 7: perturbed
        assert np.all(np.asarray(other.params["w"].data) == 0)
        assert np.any(np.asarray(target.params["w"].data) != 0)
        assert inner.steps == [7, 8, 7]

    def test_planter_survives_pickling(self):
        import pickle

        planter = EntropyPlanter(_PicklableStrategy(), block=2, node=5)
        clone = pickle.loads(pickle.dumps(planter))
        assert clone._plant_block == 2
        assert clone._plant_node == 5
        assert isinstance(clone._inner, _PicklableStrategy)


class TestCheckDeterminismCli:
    def test_clean_config_passes_serial_and_parallel(self, capsys):
        assert main(SMALL + ["--algorithm", "fedml"]) == 0
        out = capsys.readouterr().out
        assert "fedml serial-vs-serial: identical" in out
        assert "fedml serial-vs-parallel: identical" in out

    def test_planted_entropy_is_localized(self, capsys):
        code = main(
            SMALL
            + [
                "--algorithm", "fedml", "--compare", "serial",
                "--plant-entropy", "block=1,node=3", "--json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        divergence = payload["comparisons"][0]["divergence"]
        assert divergence["block"] == 1
        assert divergence["node"] == 3
        assert divergence["metric"] in ("node.params_fp", "rng.draws")

    def test_ledger_artifact_written(self, tmp_path, capsys):
        out_path = tmp_path / "ledger.jsonl"
        assert (
            main(
                SMALL
                + [
                    "--algorithm", "fedavg", "--compare", "serial",
                    "--ledger-out", str(out_path),
                ]
            )
            == 0
        )
        lines = out_path.read_text().strip().splitlines()
        # one stream per (block, node) binding — the current strategies are
        # full-batch (zero draws), so the artifact proves binding coverage
        # and ordering rather than draw volume
        assert len(lines) > 1
        rows = [json.loads(line) for line in lines]
        assert all(row["type"] == "rng_ledger" for row in rows)
        assert all(row["algorithm"] == "fedavg" for row in rows)
        keys = [(row["block"], row["node"]) for row in rows]
        assert keys == sorted(keys)
        assert all("fingerprint" in row for row in rows)

    def test_malformed_plant_spec_is_a_usage_error(self, capsys):
        assert main(SMALL + ["--plant-entropy", "oops"]) == 2


class TestLatentFixRegressions:
    def test_robust_fedml_rerun_bit_identical(self, capsys):
        """The round engine resynchronizes non-participants via node_id
        (not id()): reruns — including the subset-selecting robust
        strategy — must stay bit-identical."""
        assert (
            main(
                SMALL
                + [
                    "--algorithm", "robust-fedml", "--compare", "serial",
                    "--ta", "2", "--n0", "1", "--r-max", "1",
                ]
            )
            == 0
        )
        assert "identical" in capsys.readouterr().out

    def test_total_time_independent_of_record_order(self):
        records = [
            TransferRecord(2, 0, "up", 1000, 0.31),
            TransferRecord(0, 0, "up", 1000, 0.17),
            TransferRecord(1, 0, "up", 1000, 0.23),
        ]
        forward = CommunicationLog(records=list(records))
        scrambled = CommunicationLog(records=list(reversed(records)))
        assert forward.total_time == scrambled.total_time
        # exact float equality: summation happens in sorted round order
        expected = 0.0
        for value in (0.17, 0.23, 0.31):
            expected += forward.link.latency_s * 0 + value
        assert forward.total_time == pytest.approx(expected)
