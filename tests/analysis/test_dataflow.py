"""Units for the intraprocedural dataflow engine behind the DET rules."""

import ast
import textwrap

from repro.analysis.dataflow import (
    ENTROPY,
    IDENTITY,
    UNORDERED,
    WALLCLOCK,
    ModuleDataflow,
    Taint,
    dotted,
    scope_statements,
    stmt_expressions,
)


def analyze(source):
    return ModuleDataflow(ast.parse(textwrap.dedent(source)))


def scope_named(df, name):
    for scope in df.scopes:
        if scope.name == name:
            return scope
    raise AssertionError(f"no scope {name!r}")


class TestTaint:
    def test_merged_keeps_earliest_origin(self):
        a = Taint({WALLCLOCK: 9})
        b = Taint({WALLCLOCK: 3, ENTROPY: 5})
        merged = a.merged(b)
        assert merged.origin(WALLCLOCK) == 3
        assert merged.origin(ENTROPY) == 5
        # and merge order does not matter
        assert b.merged(a).origins == merged.origins

    def test_without_is_non_destructive(self):
        taint = Taint({UNORDERED: 1, ENTROPY: 2})
        stripped = taint.without(UNORDERED)
        assert not stripped.has(UNORDERED)
        assert taint.has(UNORDERED)

    def test_merge_into_weak_update(self):
        env = {}
        assert Taint({ENTROPY: 4}).merge_into(env, "x")
        # merging the same labels again is a no-op
        assert not Taint({ENTROPY: 9}).merge_into(env, "x")
        assert env["x"].origin(ENTROPY) == 4


class TestHelpers:
    def test_dotted_flattens_chains(self):
        expr = ast.parse("np.random.normal", mode="eval").body
        assert dotted(expr) == ["np", "random", "normal"]

    def test_dotted_rejects_non_name_roots(self):
        expr = ast.parse("a().b", mode="eval").body
        assert dotted(expr) == []

    def test_scope_statements_skip_nested_functions(self):
        df = analyze(
            """
            def outer():
                a = 1
                def inner():
                    b = 2
                a = 3
            """
        )
        outer = scope_named(df, "outer")
        lines = [s.lineno for s in scope_statements(outer.node)]
        # the `def inner` statement itself is outer's (line 4); inner's
        # body (line 5) belongs to inner's scope
        assert 4 in lines
        assert 5 not in lines

    def test_stmt_expressions_exclude_child_statements(self):
        stmt = ast.parse("if cond:\n    body()\n").body[0]
        exprs = list(stmt_expressions(stmt))
        assert [type(e).__name__ for e in exprs] == ["Name"]


class TestPropagation:
    def test_assignment_chain_carries_taint(self):
        df = analyze(
            """
            import time
            def f():
                t = time.time()
                u = t * 2
                return u
            """
        )
        scope = scope_named(df, "f")
        assert scope.taint_of("u").has(WALLCLOCK)
        assert scope.taint_of("u").origin(WALLCLOCK) == 4

    def test_tuple_unpacking_and_for_targets(self):
        df = analyze(
            """
            import os
            def f(pairs):
                a, b = os.urandom(1), 2
                for item in {1, 2}:
                    c = item
            """
        )
        scope = scope_named(df, "f")
        assert scope.taint_of("a").has(ENTROPY)
        assert scope.taint_of("b").has(ENTROPY)  # over-approximation
        assert scope.taint_of("c").has(UNORDERED)

    def test_weak_update_keeps_old_labels(self):
        df = analyze(
            """
            import time
            def f():
                x = time.time()
                x = 0
            """
        )
        assert scope_named(df, "f").taint_of("x").has(WALLCLOCK)

    def test_module_function_summary_reaches_call_site(self):
        df = analyze(
            """
            import time
            def stamp():
                return time.time()
            def g():
                v = stamp()
            """
        )
        assert df.summaries["stamp"].has(WALLCLOCK)
        assert scope_named(df, "g").taint_of("v").has(WALLCLOCK)

    def test_tainted_callable_name(self):
        df = analyze(
            """
            import time
            def f():
                clock = time.perf_counter
                v = clock()
            """
        )
        assert scope_named(df, "f").taint_of("v").has(WALLCLOCK)

    def test_receiver_taint_flows_through_methods(self):
        df = analyze(
            """
            def f(xs):
                s = set(xs)
                t = s.union(xs)
            """
        )
        assert scope_named(df, "f").taint_of("t").has(UNORDERED)


class TestSanitizers:
    def test_sorted_strips_unordered(self):
        df = analyze(
            """
            def f(xs):
                s = set(xs)
                ordered = sorted(s)
                n = len(s)
            """
        )
        scope = scope_named(df, "f")
        assert not scope.taint_of("ordered").has(UNORDERED)
        assert not scope.taint_of("n").has(UNORDERED)

    def test_membership_test_is_order_independent(self):
        df = analyze(
            """
            def f(xs, y):
                s = set(xs)
                hit = y in s
            """
        )
        assert not scope_named(df, "f").taint_of("hit").has(UNORDERED)

    def test_sanitizer_keeps_other_labels(self):
        df = analyze(
            """
            import time
            def f(xs):
                s = {time.time()}
                ordered = sorted(s)
            """
        )
        taint = scope_named(df, "f").taint_of("ordered")
        assert taint.has(WALLCLOCK)
        assert not taint.has(UNORDERED)


class TestClassifiers:
    def test_entropy_calls(self):
        positives = [
            "os.urandom(8)",
            "secrets.token_bytes(4)",
            "uuid.uuid4()",
            "np.random.default_rng()",
            "np.random.normal()",
            "random.random()",
        ]
        negatives = [
            "np.random.default_rng(7)",
            "np.random.SeedSequence([1])",
            "np.random.PCG64(3)",
            "rng.normal()",
        ]
        for src in positives:
            call = ast.parse(src, mode="eval").body
            assert ModuleDataflow.is_entropy_call(call), src
        for src in negatives:
            call = ast.parse(src, mode="eval").body
            assert not ModuleDataflow.is_entropy_call(call), src

    def test_identity_sources(self):
        df = analyze(
            """
            def f(x):
                k = id(x)
                h = hash(x)
            """
        )
        scope = scope_named(df, "f")
        assert scope.taint_of("k").has(IDENTITY)
        assert scope.taint_of("h").has(IDENTITY)

    def test_bare_wallclock_attribute_reference(self):
        df = analyze(
            """
            import time
            def f():
                fn = time.monotonic
            """
        )
        assert scope_named(df, "f").taint_of("fn").has(WALLCLOCK)


class TestDefUse:
    def test_definitions_recorded_with_taint(self):
        df = analyze(
            """
            import time
            def f():
                t = time.time()
            """
        )
        scope = scope_named(df, "f")
        defs = [d for d in scope.defs if d.name == "t"]
        assert len(defs) == 1
        assert defs[0].line == 4
        assert defs[0].taint.has(WALLCLOCK)

    def test_uses_finds_load_sites_only(self):
        df = analyze(
            """
            def f():
                x = 1
                y = x + x
            """
        )
        scope = scope_named(df, "f")
        assert len(scope.uses("x")) == 2
