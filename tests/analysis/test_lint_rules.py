"""Positive and negative fixtures for every reprolint rule.

Each rule gets at least one snippet that MUST fire and one that MUST stay
silent, so rule regressions (either direction) are caught.
"""

import textwrap

import pytest

from repro.analysis import lint_source
from repro.analysis.rules import REGISTRY, default_rules


def ids_in(source, path="<string>"):
    report = lint_source(textwrap.dedent(source), path=path)
    return [f.rule_id for f in report.findings]


class TestRegistry:
    def test_at_least_eight_rules_registered(self):
        default_rules()  # import side effect registers domain rules
        assert len(REGISTRY) >= 8

    def test_rule_metadata_complete(self):
        for rule in default_rules():
            assert rule.id
            assert rule.hint, f"rule {rule.id} has no autofix hint"
            assert rule.severity is not None


class TestRng001GlobalNumpyRandom:
    def test_fires_on_global_state_calls(self):
        src = """
        import numpy as np
        x = np.random.rand(3)
        np.random.seed(0)
        y = np.random.normal(size=4)
        """
        assert ids_in(src).count("RNG001") == 3

    def test_silent_on_seeded_generators(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(np.random.SeedSequence([1, 2]))
        gen = np.random.Generator(np.random.PCG64(7))
        z = rng.normal(size=3)
        """
        assert "RNG001" not in ids_in(src)


class TestRng002StdlibRandom:
    def test_fires_on_import(self):
        assert "RNG002" in ids_in("import random\n")

    def test_fires_on_from_import(self):
        assert "RNG002" in ids_in("from random import shuffle\n")

    def test_silent_on_other_modules(self):
        src = """
        import numpy as np
        from repro.utils.rng import spawn
        """
        assert "RNG002" not in ids_in(src)


class TestAd101InplaceMutation:
    def test_fires_on_subscript_and_attribute_writes(self):
        src = """
        def update(t, g):
            t.data[0] = 1.0
            t.data += g
            t.grad = g
        """
        assert ids_in(src).count("AD101") == 3

    def test_self_data_ownership_is_allowed(self):
        src = """
        class Buffer:
            def __init__(self, data):
                self.data = data
        """
        assert "AD101" not in ids_in(src)

    def test_exempt_inside_autodiff(self):
        src = "def f(t):\n    t.data[0] = 1.0\n"
        report = lint_source(src, path="src/repro/autodiff/tensor.py")
        assert "AD101" not in [f.rule_id for f in report.findings]

    def test_functional_update_is_clean(self):
        src = """
        def update(t, g, Tensor):
            return Tensor(t.data - 0.1 * g.data)
        """
        assert "AD101" not in ids_in(src)

    def test_fires_on_write_through_numpy_view(self):
        """Regression: ``t.numpy()[...] = x`` writes tensor storage through
        the exported view and used to slip past AD101 because the subscript
        base is a Call, not an Attribute."""
        src = """
        def corrupt(t, x):
            t.numpy()[0] = x
            t.numpy()[1:] += x
        """
        assert ids_in(src).count("AD101") == 2

    def test_numpy_read_is_clean(self):
        src = """
        def export(t):
            values = t.numpy()
            return values[0], t.numpy().sum()
        """
        assert "AD101" not in ids_in(src)


class TestAd102VjpDetach:
    def test_fires_on_data_access_in_vjp_closure(self):
        src = """
        def op(a, np, Tensor, _make):
            return _make(a.data, (a,), (lambda g: Tensor(g.data),), "op")
        """
        assert "AD102" in ids_in(src)

    def test_fires_in_named_vjp_function(self):
        src = """
        def op(a):
            def vjp(g):
                return g.numpy()
            return vjp
        """
        assert "AD102" in ids_in(src)

    def test_silent_on_differentiable_vjp(self):
        src = """
        def op(a, mul, _make):
            return _make(a.data, (a,), (lambda g: mul(g, a),), "op")
        """
        assert "AD102" not in ids_in(src)

    def test_forward_data_access_is_fine(self):
        src = """
        def op(a, np):
            out = np.exp(a.data)
            return out
        """
        assert "AD102" not in ids_in(src)


class TestAd103VjpRawNumpy:
    def test_fires_on_np_call_in_vjp(self):
        src = """
        def op(a, np, Tensor, _make):
            return _make(
                a.data, (a,), (lambda g: Tensor(np.ones_like(a.data)),), "op"
            )
        """
        assert "AD103" in ids_in(src)

    def test_fires_inside_make_vjp_factory(self):
        src = """
        def op(np):
            def make_vjp(i):
                return lambda g: np.take(g, i)
            return make_vjp
        """
        assert "AD103" in ids_in(src)

    def test_silent_on_ops_primitives(self):
        src = """
        def op(a, reshape, _make):
            return _make(a.data, (a,), (lambda g: reshape(g, (2,)),), "op")
        """
        assert "AD103" not in ids_in(src)


class TestTel001TelemetryInLoop:
    def test_fires_on_raw_call_in_loop(self):
        src = """
        def fit(self, rounds):
            for r in range(rounds):
                self.telemetry.counter("fl_rounds_total").inc()
        """
        assert "TEL001" in ids_in(src)

    def test_fires_on_bare_name_in_while(self):
        src = """
        def fit(telemetry):
            while True:
                telemetry.emit({"x": 1})
        """
        assert "TEL001" in ids_in(src)

    def test_resolved_handle_is_clean(self):
        src = """
        def fit(self, rounds, resolve):
            tel = resolve(self.telemetry)
            for r in range(rounds):
                tel.counter("fl_rounds_total").inc()
        """
        assert "TEL001" not in ids_in(src)

    def test_guarded_call_is_clean(self):
        src = """
        def fit(self, rounds):
            for r in range(rounds):
                if self.telemetry is not None:
                    self.telemetry.counter("x").inc()
        """
        assert "TEL001" not in ids_in(src)

    def test_nested_loop_reports_once(self):
        src = """
        def fit(self, xs, ys):
            for x in xs:
                for y in ys:
                    self.telemetry.emit({"y": y})
        """
        assert ids_in(src).count("TEL001") == 1


class TestEng001EngineBypass:
    def test_fires_on_direct_platform_aggregate(self):
        src = """
        def fit(self, nodes):
            return self.platform.aggregate(nodes)
        """
        assert "ENG001" in ids_in(src)

    def test_fires_on_bare_platform_name(self):
        src = """
        def step(platform, nodes):
            return platform.aggregate(nodes)
        """
        assert "ENG001" in ids_in(src)

    def test_fires_on_hand_rolled_round_loop(self):
        src = """
        def fit(self, cfg, nodes):
            for t in range(1, cfg.total_iterations + 1):
                train(nodes)
                if t % cfg.t0 == 0:
                    sync(nodes)
        """
        assert "ENG001" in ids_in(src)

    def test_silent_on_other_aggregators(self):
        src = """
        def combine(agg, uploads):
            return agg.aggregate(uploads, [0.5, 0.5])
        """
        assert "ENG001" not in ids_in(src)

    def test_silent_on_unrelated_range_loops(self):
        src = """
        def train(cfg, nodes):
            for t in range(cfg.total_iterations):
                step(nodes)
            for i in range(10):
                if i % 2 == 0:
                    log(i)
        """
        assert "ENG001" not in ids_in(src)

    def test_line_suppression_covers_engine_call_sites(self):
        src = (
            "def fit(self, nodes):\n"
            "    return self.platform.aggregate(nodes)"
            "  # reprolint: disable=ENG001\n"
        )
        report = lint_source(src)
        assert "ENG001" not in [f.rule_id for f in report.findings]
        assert report.suppressed == 1


class TestEng002VectorizedNodeLoop:
    def test_fires_on_loop_in_local_block_vectorized(self):
        src = """
        class Strategy:
            supports_vectorized = True

            def local_block_vectorized(self, nodes, steps, rngs):
                for node in nodes:
                    step(node)
        """
        assert "ENG002" in ids_in(src)

    def test_fires_on_zip_loop_via_self_helper(self):
        src = """
        class Strategy:
            supports_vectorized = True

            def local_block_vectorized(self, nodes, steps, rngs):
                self._fan_out(nodes, result)

            def _fan_out(self, nodes, result):
                for node, tree in zip(nodes, result):
                    node.params = tree
        """
        findings = ids_in(src)
        assert findings.count("ENG002") == 1

    def test_fires_when_only_the_method_marks_the_class(self):
        # inherited supports_vectorized (e.g. ProxStrategy): defining
        # local_block_vectorized is itself the opt-in signal
        src = """
        class Sub(Base):
            def local_block_vectorized(self, nodes, steps, rngs):
                for node in enumerate(nodes):
                    pass
        """
        assert "ENG002" in ids_in(src)

    def test_silent_on_explicit_opt_out(self):
        src = """
        class Adml(Meta):
            supports_vectorized = False

            def local_step(self, node):
                for node in nodes:
                    step(node)
        """
        assert "ENG002" not in ids_in(src)

    def test_silent_on_non_strategy_class(self):
        src = """
        class Plain:
            def local_step(self, node):
                for node in nodes:
                    step(node)
        """
        assert "ENG002" not in ids_in(src)

    def test_silent_on_stacking_comprehensions(self):
        src = """
        class Strategy:
            supports_vectorized = True

            def local_block_vectorized(self, nodes, steps, rngs):
                xs = [node.data for node in nodes]
                stacked = stack([p for p in xs])
        """
        assert "ENG002" not in ids_in(src)

    def test_silent_on_loops_off_the_step_path(self):
        src = """
        class Strategy:
            supports_vectorized = True

            def local_block_vectorized(self, nodes, steps, rngs):
                run(nodes)

            def evaluate(self, params, nodes):
                for node in nodes:
                    score(node)
        """
        assert "ENG002" not in ids_in(src)

    def test_message_names_class_and_method(self):
        src = """
        class MyStrategy:
            supports_vectorized = True

            def local_step(self, node):
                for other in sorted(nodes):
                    pass
        """
        report = lint_source(textwrap.dedent(src))
        messages = [
            f.message for f in report.findings if f.rule_id == "ENG002"
        ]
        assert messages == [
            "per-node loop in MyStrategy.local_step on the vectorized "
            "step path"
        ]


class TestGen001MutableDefault:
    def test_fires_on_list_and_dict_literals(self):
        src = """
        def f(a=[], b={}):
            return a, b
        """
        assert ids_in(src).count("GEN001") == 2

    def test_fires_on_constructor_call(self):
        assert "GEN001" in ids_in("def f(a=list()):\n    return a\n")

    def test_none_sentinel_is_clean(self):
        src = """
        def f(a=None, b=(), c=0):
            return a, b, c
        """
        assert "GEN001" not in ids_in(src)


class TestGen002SwallowedException:
    def test_fires_on_pass_body(self):
        src = """
        try:
            risky()
        except Exception:
            pass
        """
        assert "GEN002" in ids_in(src)

    def test_silent_when_handled(self):
        src = """
        import logging
        try:
            risky()
        except ValueError as exc:
            logging.warning("failed: %s", exc)
        """
        assert "GEN002" not in ids_in(src)


class TestGen003MissingAll:
    def test_fires_for_public_src_module(self):
        src = "def public_api():\n    return 1\n"
        report = lint_source(src, path="src/repro/newmod.py")
        assert "GEN003" in [f.rule_id for f in report.findings]

    def test_silent_with_all_declared(self):
        src = "__all__ = ['public_api']\n\ndef public_api():\n    return 1\n"
        report = lint_source(src, path="src/repro/newmod.py")
        assert "GEN003" not in [f.rule_id for f in report.findings]

    def test_silent_outside_src(self):
        src = "def public_api():\n    return 1\n"
        report = lint_source(src, path="examples/demo.py")
        assert "GEN003" not in [f.rule_id for f in report.findings]

    def test_silent_for_private_only_module(self):
        src = "def _helper():\n    return 1\n"
        report = lint_source(src, path="src/repro/helpers.py")
        assert "GEN003" not in [f.rule_id for f in report.findings]


class TestSuppressions:
    def test_line_suppression(self):
        src = "import numpy as np\nx = np.random.rand(3)  # reprolint: disable=RNG001\n"
        report = lint_source(src)
        assert "RNG001" not in [f.rule_id for f in report.findings]
        assert report.suppressed == 1

    def test_line_suppression_is_line_scoped(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # reprolint: disable=RNG001\n"
            "y = np.random.rand(3)\n"
        )
        report = lint_source(src)
        # The fixture also trips DET101 (both lines; the suppression names
        # only RNG001) — this test cares only that RNG001 on the suppressed
        # line is gone while the unsuppressed line still fires.
        rng = [f for f in report.findings if f.rule_id == "RNG001"]
        assert [f.line for f in rng] == [3]

    def test_file_suppression(self):
        src = (
            "# reprolint: disable-file=RNG001\n"
            "import numpy as np\n"
            "x = np.random.rand(3)\n"
            "y = np.random.rand(3)\n"
        )
        report = lint_source(src)
        assert "RNG001" not in [f.rule_id for f in report.findings]
        assert report.suppressed == 2

    def test_disable_all(self):
        src = "import random  # reprolint: disable=all\n"
        report = lint_source(src)
        assert not report.findings

    def test_wrong_rule_id_does_not_suppress(self):
        src = "import random  # reprolint: disable=RNG001\n"
        report = lint_source(src)
        assert "RNG002" in [f.rule_id for f in report.findings]


class TestEachRuleHasFixtureCoverage:
    """Guard: every registered rule id appears in some fixture file here.

    Rule families live in sibling modules (the DET fixtures are in
    test_det_rules.py), so the scan covers every test_*.py in this
    directory, not just this file.
    """

    def test_all_rules_exercised(self):
        default_rules()
        import pathlib

        fixture_dir = pathlib.Path(__file__).parent
        corpus = "".join(
            p.read_text(encoding="utf-8")
            for p in sorted(fixture_dir.glob("test_*.py"))
        )
        for rule_id in REGISTRY:
            assert rule_id in corpus, f"no fixture exercises rule {rule_id}"
