"""Tier-1 gate: the repository itself must pass its own analysis tooling.

These tests make ``repro lint`` and ``repro check-graph`` regressions a test
failure, so CI and local runs agree on what "clean" means.  Lint runs against
``analysis/baseline.json`` — the explicit, shrink-only list of accepted
findings (see :mod:`repro.analysis.baseline`); anything not baselined fails.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import lint_paths, load_baseline, run_graph_checks
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "analysis" / "baseline.json"
LINT_TARGETS = [
    str(REPO_ROOT / name)
    for name in ("src", "benchmarks", "examples")
    if (REPO_ROOT / name).is_dir()
]


def test_repo_tree_is_lint_clean():
    baseline = load_baseline(BASELINE_PATH)
    report = lint_paths(LINT_TARGETS, baseline=baseline)
    assert report.ok, "\n" + report.render_text()


def test_repo_tree_is_det_clean_modulo_baseline():
    """Every DET1xx finding in the tree is in the reviewed baseline."""
    baseline = load_baseline(BASELINE_PATH)
    report = lint_paths(LINT_TARGETS, baseline=baseline)
    det = [f for f in report.findings if f.rule_id.startswith("DET")]
    assert not det, "\n".join(str(f) for f in det)


def test_baseline_entries_all_still_match():
    """The baseline is shrink-only: stale entries must be deleted."""
    baseline = load_baseline(BASELINE_PATH)
    unbaselined = lint_paths(LINT_TARGETS)
    matched = {
        (f.rule_id, baseline.normalize(f.path), f.message)
        for f in unbaselined.findings
        if baseline.matches(f)
    }
    stale = baseline.unused_entries(matched)
    assert not stale, "stale baseline entries: " + ", ".join(
        f"{e.rule}:{e.path}" for e in stale
    )


def test_graph_checks_are_clean():
    report = run_graph_checks()
    assert report.ok, "\n" + report.render_text()


def test_cli_lint_exit_code(capsys):
    assert main(["lint", "--baseline", str(BASELINE_PATH), *LINT_TARGETS]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_check_graph_exit_code(capsys):
    assert main(["check-graph"]) == 0
    assert "clean" in capsys.readouterr().out


def test_mypy_override_blocks_do_not_grow():
    """The pyproject escape hatch stays at exactly two override blocks."""
    text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    # Line-anchored, like the CI grep — prose mentioning the literal in a
    # comment must not count as a block.
    count = sum(
        1 for line in text.splitlines() if line.startswith("[[tool.mypy.overrides]]")
    )
    assert count == 2, (
        f"{count} [[tool.mypy.overrides]] blocks in pyproject.toml — "
        "graduate modules into the strict list instead of adding hatches"
    )


@pytest.mark.skipif(
    shutil.which("mypy") is None, reason="mypy not installed in this env"
)
def test_mypy_strict_packages():
    """Typed packages stay mypy-clean under the pyproject config (CI runs this)."""
    result = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
