"""Tier-1 gate: the repository itself must pass its own analysis tooling.

These tests make ``repro lint`` and ``repro check-graph`` regressions a test
failure, so CI and local runs agree on what "clean" means.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import lint_paths, run_graph_checks
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
LINT_TARGETS = [
    str(REPO_ROOT / name)
    for name in ("src", "benchmarks", "examples")
    if (REPO_ROOT / name).is_dir()
]


def test_repo_tree_is_lint_clean():
    report = lint_paths(LINT_TARGETS)
    assert report.ok, "\n" + report.render_text()


def test_graph_checks_are_clean():
    report = run_graph_checks()
    assert report.ok, "\n" + report.render_text()


def test_cli_lint_exit_code(capsys):
    assert main(["lint", *LINT_TARGETS]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_check_graph_exit_code(capsys):
    assert main(["check-graph"]) == 0
    assert "clean" in capsys.readouterr().out


@pytest.mark.skipif(
    shutil.which("mypy") is None, reason="mypy not installed in this env"
)
def test_mypy_strict_packages():
    """Typed packages stay mypy-clean under the pyproject config (CI runs this)."""
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "src/repro/analysis",
            "src/repro/autodiff",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
