"""Engine-level behaviour: file discovery, parse errors, rendering, CLI."""

import json

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.engine import iter_python_files
from repro.cli import main


class TestFileDiscovery:
    def test_walks_directories_and_dedups(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "b.py").write_text("y = 2\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("z = 3\n")
        files = iter_python_files([tmp_path, tmp_path / "pkg" / "a.py"])
        names = [f.name for f in files]
        assert names == ["a.py", "b.py"]

    def test_non_python_paths_are_skipped(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello")
        assert iter_python_files([tmp_path / "notes.txt"]) == []


class TestParseErrors:
    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = lint_paths([bad])
        assert not report.ok
        assert report.parse_errors[0].rule_id == "PARSE"

    def test_suppression_cannot_hide_parse_errors(self):
        report = lint_source("# reprolint: disable-file=all\ndef f(:\n")
        assert not report.ok


class TestRendering:
    def test_text_summary_counts(self):
        report = lint_source("import random\n")
        text = report.render_text()
        assert "RNG002" in text
        assert "FAILED" in text

    def test_json_round_trips(self):
        report = lint_source("import random\n")
        payload = json.loads(report.render_json())
        assert payload["ok"] is False
        assert payload["by_rule"]["RNG002"] == 1
        assert payload["findings"][0]["rule"] == "RNG002"

    def test_clean_report(self):
        report = lint_source("x = 1\n")
        assert report.ok
        assert "clean" in report.render_text()


class TestCliLint:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_nonzero_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "RNG002" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main(["lint", "--json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1

    def test_telemetry_metrics_recorded(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        out_path = tmp_path / "lint.jsonl"
        assert (
            main(["lint", str(tmp_path), "--telemetry-out", str(out_path)])
            == 1
        )
        records = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
            if line
        ]
        names = {r.get("name") for r in records}
        assert "analysis_lint_seconds" in names
        assert "analysis_files_scanned_total" in names
        by_rule = [
            r
            for r in records
            if r.get("name") == "analysis_findings_total"
            and r.get("labels", {}).get("rule") == "RNG002"
        ]
        assert by_rule and by_rule[0]["value"] == 1

    def test_report_renders_lint_telemetry(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        out_path = tmp_path / "lint.jsonl"
        main(["lint", str(tmp_path), "--telemetry-out", str(out_path)])
        capsys.readouterr()
        assert main(["report", str(out_path)]) == 0
        assert "analysis_lint_seconds" in capsys.readouterr().out
