"""Positive/negative fixtures for the DET1xx determinism rule family,
plus suppression-wildcard, baseline, and monotonicity properties."""

import ast
import re
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Baseline,
    BaselineEntry,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.analysis.findings import parse_suppressions


def report_for(source, path="src/repro/core/mod.py"):
    return lint_source(textwrap.dedent(source), path=path)


def ids_in(source, path="src/repro/core/mod.py"):
    return [f.rule_id for f in report_for(source, path).findings]


class TestDet101UnseededEntropy:
    def test_fires_on_unseeded_sources(self):
        src = """
        import os, uuid
        import numpy as np
        a = os.urandom(8)
        b = uuid.uuid4()
        rng = np.random.default_rng()
        c = np.random.normal(size=3)
        """
        assert ids_in(src).count("DET101") == 4

    def test_silent_on_seeded_streams(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(7)
        seq = np.random.SeedSequence([1, 2])
        x = rng.normal(size=3)
        """
        assert "DET101" not in ids_in(src)

    def test_rng_factory_module_is_exempt(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert "DET101" in ids_in(src, path="src/repro/core/x.py")
        assert "DET101" not in ids_in(src, path="src/repro/utils/rng.py")


class TestDet102WallClockControlFlow:
    def test_fires_on_branch_condition(self):
        src = """
        import time
        def f(budget):
            start = time.time()
            if time.time() - start > budget:
                return None
        """
        assert "DET102" in ids_in(src)

    def test_fires_through_assignment_chain(self):
        src = """
        import time
        def f(nodes, platform):
            elapsed = time.perf_counter()
            score = elapsed * 2
            platform.aggregate(nodes, score)
        """
        findings = report_for(src).findings
        det = [f for f in findings if f.rule_id == "DET102"]
        assert det and "introduced at line 4" in det[0].message

    def test_fires_on_conditional_expression(self):
        src = """
        import time
        def f():
            t = time.monotonic()
            return 1 if t > 0 else 0
        """
        assert "DET102" in ids_in(src)

    def test_silent_on_telemetry_only_reads(self):
        src = """
        import time
        def f(tel):
            start = time.perf_counter()
            tel.observe(time.perf_counter() - start)
        """
        assert "DET102" not in ids_in(src)


class TestDet103UnorderedIteration:
    def test_fires_on_reduction_over_set(self):
        src = """
        def f(xs):
            return sum(set(xs))
        """
        assert "DET103" in ids_in(src)

    def test_fires_on_materialization_and_append(self):
        src = """
        def f(xs, out):
            vals = list({x for x in xs})
            out.extend(set(xs))
        """
        assert ids_in(src).count("DET103") == 2

    def test_fires_on_accumulation(self):
        src = """
        def f(xs):
            total = 0.0
            for v in set(xs):
                total += v
            return total
        """
        assert "DET103" in ids_in(src)

    def test_silent_on_sorted_len_membership(self):
        src = """
        def f(xs, y):
            s = set(xs)
            ordered = sorted(s)
            return sum(ordered) + len(s) + (1 if y in s else 0)
        """
        assert "DET103" not in ids_in(src)

    def test_silent_on_set_algebra_augments(self):
        src = """
        def f(seen, fresh):
            seen |= set(fresh)
            return seen
        """
        assert "DET103" not in ids_in(src)


class TestDet104IdentityKeys:
    def test_fires_on_identity_keys_and_elements(self):
        src = """
        def f(node, table, seen):
            table[id(node)] = node
            seen.add(id(node))
            d = {hash(node): 1}
        """
        assert ids_in(src).count("DET104") == 3

    def test_fires_on_identity_sort_key(self):
        src = """
        def f(nodes):
            return sorted(nodes, key=lambda n: id(n))
        """
        assert "DET104" in ids_in(src)

    def test_silent_on_stable_domain_keys(self):
        src = """
        def f(nodes):
            table = {n.node_id: n for n in nodes}
            return sorted(nodes, key=lambda n: n.node_id)
        """
        assert "DET104" not in ids_in(src)

    def test_autodiff_tape_is_exempt(self):
        src = """
        def f(node, table):
            table[id(node)] = node
        """
        assert "DET104" not in ids_in(src, path="src/repro/autodiff/tape.py")


class TestDet105SharedMutableState:
    WORKER_PATH = "src/repro/engine/helpers.py"

    def test_fires_on_worker_side_writes(self):
        src = """
        _CACHE = {}
        _COUNT = 0
        def run_block(key, value):
            global _COUNT
            _COUNT = _COUNT + 1
            _CACHE[key] = value
        """
        found = ids_in(src, path=self.WORKER_PATH)
        assert found.count("DET105") == 2

    def test_fires_on_mutating_method(self):
        src = """
        _SEEN = set()
        def run_block(key):
            _SEEN.add(key)
        """
        assert "DET105" in ids_in(src, path=self.WORKER_PATH)

    def test_silent_when_shadowed_by_local(self):
        src = """
        _CACHE = {}
        def run_block(key, value):
            _CACHE = {}
            _CACHE[key] = value
        """
        assert "DET105" not in ids_in(src, path=self.WORKER_PATH)

    def test_silent_outside_worker_reachable_paths(self):
        src = """
        _CACHE = {}
        def run_block(key, value):
            _CACHE[key] = value
        """
        assert "DET105" not in ids_in(src, path="src/repro/obs/helpers.py")


class TestSuppressionWildcards:
    def test_family_wildcard_suppresses_det_rules(self):
        src = (
            "import os\n"
            "a = os.urandom(8)  # reprolint: disable=DET1*\n"
        )
        report = lint_source(src, path="x.py")
        assert "DET101" not in [f.rule_id for f in report.findings]
        assert report.suppressed >= 1

    def test_wildcard_does_not_leak_across_families(self):
        src = (
            "import numpy as np\n"
            "a = np.random.normal()  # reprolint: disable=RNG*\n"
        )
        # RNG001 suppressed by the wildcard; DET101 still fires.
        assert "DET101" in ids_in(src, path="x.py")

    def test_comma_space_tolerated(self):
        lines = ["x = 1  # reprolint: disable=DET101,  RNG001, AD1*"]
        suppressions = parse_suppressions(lines)
        assert suppressions.is_suppressed("DET101", 1)
        assert suppressions.is_suppressed("RNG001", 1)
        assert suppressions.is_suppressed("AD102", 1)
        assert not suppressions.is_suppressed("ENG001", 1)


class TestBaseline:
    def test_round_trip_and_absolute_path_matching(self, tmp_path):
        report = lint_source(
            "import os\na = os.urandom(8)\n",
            path=str(tmp_path / "src" / "mod.py"),
        )
        assert report.findings
        target = tmp_path / "analysis" / "baseline.json"
        target.parent.mkdir()
        write_baseline(target, report.findings, root=tmp_path)
        loaded = load_baseline(target)
        assert len(loaded) == 1
        assert loaded.entries[0].path == "src/mod.py"
        assert all(loaded.matches(f) for f in report.findings)

    def test_baselined_findings_do_not_fail_the_gate(self, tmp_path):
        src = "import os\na = os.urandom(8)\n"
        report = lint_source(src, path=str(tmp_path / "mod.py"))
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    rule=f.rule_id,
                    path="mod.py",
                    message=f.message,
                )
                for f in report.findings
            ],
            root=tmp_path,
        )
        gated = lint_source(
            src, path=str(tmp_path / "mod.py"), baseline=baseline
        )
        assert gated.ok
        assert gated.baselined == len(report.findings)
        assert not gated.findings

    def test_unrelated_findings_still_fail(self, tmp_path):
        baseline = Baseline(
            entries=[BaselineEntry("DET101", "other.py", "nope")],
            root=tmp_path,
        )
        report = lint_source(
            "import os\na = os.urandom(8)\n",
            path=str(tmp_path / "mod.py"),
            baseline=baseline,
        )
        assert not report.ok

    def test_version_check(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError):
            load_baseline(bad)


# --- monotonicity: adding unrelated statements never removes a finding ---

_SEGMENTS = (
    "import os\n",
    "import numpy as np\n",
    "def agg(xs):\n    s = set(xs)\n    return sum(s)\n",
    "token = os.urandom(8)\n",
    "def pick(nodes, table):\n    table[id(nodes[0])] = 1\n",
)


def _det_signature(source):
    report = lint_source(source, path="src/repro/core/mod.py")
    # Line references inside messages legitimately shift when statements
    # are inserted above an origin; compare the line-free message.
    return {
        (f.rule_id, re.sub(r" \(introduced at line \d+\)", "", f.message))
        for f in report.findings
        if f.rule_id.startswith("DET")
    }


@settings(max_examples=40, deadline=None)
@given(
    inserts=st.lists(
        st.integers(min_value=0, max_value=len(_SEGMENTS)),
        min_size=1,
        max_size=6,
    )
)
def test_taint_analysis_is_monotone(inserts):
    """Inserting unrelated module-level statements anywhere in the file
    never removes a DET finding (the over-approximation only grows)."""
    base = _det_signature("".join(_SEGMENTS))
    assert base  # the fixture must actually fire

    pieces = list(_SEGMENTS)
    for offset, position in enumerate(sorted(inserts)):
        name = f"unrelated_{offset}"
        pieces.insert(position + offset, f"{name} = {offset}\n")
    grown = "".join(pieces)
    ast.parse(grown)  # inserted statements keep the module valid
    assert _det_signature(grown) >= base


class TestDedupRegressions:
    """The id()-free dedup rewrites keep rule output unchanged."""

    def test_vjp_closure_seen_via_two_paths_reported_once(self):
        src = """
        def f(x, y, ins, ins2):
            return _make(x, _make(y, lambda g: g.data, ins2), ins)
        """
        # The inner lambda is reachable through both _make arg walks; the
        # node-set dedup must still report its `.data` detach exactly once.
        assert ids_in(src).count("AD102") == 1

    def test_nested_loop_telemetry_reported_once(self):
        src = """
        def f(self, items):
            for a in items:
                for b in a:
                    self.telemetry.counter("x").inc()
        """
        assert ids_in(src).count("TEL001") == 1
