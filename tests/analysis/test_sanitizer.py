"""Graph sanitizer tests: replay, double-backward audit, leak detection."""

import json

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    CONSTANT_OPS,
    OP_SPECS,
    OpSpec,
    audit_double_backward,
    audited_op_names,
    detect_retained_graphs,
    replay_graph,
    run_graph_checks,
)
from repro.autodiff import ops
from repro.autodiff.ops import _make
from repro.autodiff.tensor import Tensor, grad
from repro.cli import main


def bad_identity(a: Tensor) -> Tensor:
    """An op whose VJP detaches via a raw numpy call (the target bug class)."""
    return _make(
        a.data.copy(),
        (a,),
        (lambda g: Tensor(np.ones_like(g.data)),),
        "bad_identity",
    )


def detached_scale(a: Tensor) -> Tensor:
    """An op whose VJP returns a constant built from ``.data`` access."""
    return _make(
        a.data * 2.0,
        (a,),
        (lambda g: Tensor(2.0 * np.ones(g.shape)),),
        "detached_scale",
    )


class TestAuditCoverage:
    def test_spec_table_covers_every_registered_op(self):
        missing = [
            name for name in audited_op_names() if name not in OP_SPECS
        ]
        assert missing == [], f"ops without audit specs: {missing}"

    def test_constant_ops_are_excluded(self):
        names = audited_op_names()
        for constant in CONSTANT_OPS:
            assert constant not in names

    def test_audit_passes_on_the_real_engine(self):
        findings = audit_double_backward()
        assert findings == [], [f.render() for f in findings]

    def test_unregistered_op_fails_the_audit(self):
        findings = audit_double_backward(op_names=["add", "brand_new_op"])
        assert any(f.rule_id == "AD210" for f in findings)

    def test_every_all_entry_is_considered(self):
        # A new op appended to ops.__all__ with no spec must surface.
        names = list(ops.__all__) + ["future_op"]
        findings = audit_double_backward(op_names=names)
        assert any(
            f.rule_id == "AD210" and "future_op" in f.message
            for f in findings
        )


class TestAuditCatchesGraphBreakers:
    def test_raw_numpy_vjp_is_flagged(self):
        specs = dict(OP_SPECS)
        specs["bad_identity"] = OpSpec(
            "bad_identity", bad_identity, (np.array([[0.3, -0.7]]),)
        )
        findings = audit_double_backward(
            op_names=["bad_identity"], specs=specs
        )
        assert [f.rule_id for f in findings] == ["AD211"]

    def test_data_detach_vjp_is_flagged(self):
        specs = {
            "detached_scale": OpSpec(
                "detached_scale", detached_scale, (np.array([1.0, 2.0]),)
            )
        }
        findings = audit_double_backward(
            op_names=["detached_scale"], specs=specs
        )
        assert [f.rule_id for f in findings] == ["AD211"]

    def test_crashing_op_reports_instead_of_raising(self):
        def exploding(a: Tensor) -> Tensor:
            raise RuntimeError("boom")

        specs = {"exploding": OpSpec("exploding", exploding, (np.ones(2),))}
        findings = audit_double_backward(op_names=["exploding"], specs=specs)
        assert [f.rule_id for f in findings] == ["AD212"]


class TestReplayGraph:
    def test_clean_float64_graph(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = ops.mul(ops.add(a, a), a)
        assert replay_graph(out) == []

    def test_flags_dtype_downcast(self):
        a = Tensor(np.ones(3))
        a.data = np.ones(3, dtype=np.float32)  # simulate a buggy op output
        findings = replay_graph(a)
        assert [f.rule_id for f in findings] == ["AD201"]

    def test_flags_outer_product_broadcast(self):
        col = Tensor(np.ones((4, 1)), requires_grad=True)
        row = Tensor(np.ones(4))
        out = ops.add(col, row)  # (4, 1) + (4,) -> (4, 4): the classic trap
        findings = replay_graph(out)
        assert "AD202" in [f.rule_id for f in findings]

    def test_matching_broadcast_is_silent(self):
        mat = Tensor(np.ones((2, 3)), requires_grad=True)
        row = Tensor(np.ones(3))
        assert replay_graph(ops.add(mat, row)) == []

    def test_flags_non_finite_values(self):
        a = Tensor(np.array([1.0, -1.0]), requires_grad=True)
        out = ops.log(a)  # log(-1) -> nan
        findings = replay_graph(out)
        assert "AD203" in [f.rule_id for f in findings]


class TestRetainedGraphDetection:
    def test_backward_grads_are_leak_free(self):
        w = Tensor(np.ones((2, 2)), requires_grad=True)
        loss = ops.sum_(ops.mul(w, w))
        loss.backward()
        assert detect_retained_graphs({"w": w}) == []

    def test_graph_carrying_grad_is_flagged(self):
        w = Tensor(np.ones((2, 2)), requires_grad=True)
        loss = ops.sum_(ops.mul(w, w))
        (g,) = grad(loss, [w], create_graph=True)
        w.grad = g  # simulates a buggy optimizer retaining the graph
        findings = detect_retained_graphs({"w": w})
        assert [f.rule_id for f in findings] == ["AD220"]
        assert "nodes" in findings[0].message


class TestRunGraphChecks:
    def test_full_run_is_clean(self):
        report = run_graph_checks()
        assert report.ok, [f.render() for f in report.findings]
        assert report.ops_audited == report.ops_total
        assert set(report.section_seconds) == {
            "double_backward_audit",
            "shape_dtype_replay",
            "retained_graph_check",
        }

    def test_cli_check_graph_exit_zero(self, capsys):
        assert main(["check-graph"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_check_graph_json(self, capsys):
        assert main(["check-graph", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["ops_audited"] == payload["ops_total"]

    def test_cli_records_sanitizer_metrics(self, tmp_path, capsys):
        out_path = tmp_path / "graph.jsonl"
        assert main(["check-graph", "--telemetry-out", str(out_path)]) == 0
        records = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
            if line
        ]
        names = {r.get("name") for r in records}
        assert "analysis_check_graph_seconds" in names
        assert "analysis_ops_audited" in names
