#!/usr/bin/env python3
"""Quickstart — train FedML on a synthetic federation and adapt at a target.

This walks through the paper's whole pipeline in ~30 seconds:

1. generate a heterogeneous federated workload (Synthetic(0.5, 0.5));
2. designate 80% of the edge nodes as sources, the rest as targets;
3. run federated meta-learning (Algorithm 1) across the sources;
4. transfer the learned initialization to each target node and adapt it
   with one (or a few) gradient steps on K = 5 local samples;
5. compare against the paper's baseline: fine-tuning the FedAvg consensus
   model (McMahan et al.) trained on the same sources.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import FedAvg, FedAvgConfig, FedML, FedMLConfig, evaluate_adaptation
from repro.data import SyntheticConfig, generate_synthetic
from repro.metrics import format_table, target_splits
from repro.nn import LogisticRegression


def main() -> None:
    # 1. A federation of 30 edge nodes with heterogeneous local tasks.
    federated = generate_synthetic(
        SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=30, mean_samples=25, seed=1)
    )
    print(f"workload: {federated.name}, stats: {federated.statistics()}")

    # 2. Sources run the federated meta-training; targets are held out.
    sources, targets = federated.split_sources_targets(
        0.8, np.random.default_rng(0)
    )
    print(f"{len(sources)} source nodes, {len(targets)} target nodes")

    # 3. Algorithm 1: T0 = 5 local meta-steps between global aggregations.
    model = LogisticRegression(input_dim=60, num_classes=10)
    config = FedMLConfig(
        alpha=0.05,  # inner (adaptation) learning rate, eq. 3
        beta=0.05,  # meta learning rate, eq. 4
        t0=5,  # local steps per communication round
        total_iterations=300,
        k=5,  # K-shot inner split
        eval_every=10,
        seed=0,
    )
    result = FedML(model, config).fit(federated, sources, verbose=False)
    losses = result.global_meta_losses
    print(f"global meta-loss: {losses[0]:.3f} -> {losses[-1]:.3f}")
    print(
        f"communication: {result.uplink_bytes / 1e6:.2f} MB uploaded over "
        f"{result.platform.rounds_completed} aggregation rounds"
    )

    # 4. Fast adaptation at the held-out targets (eq. 6).
    splits = target_splits(federated, targets, k=5)
    meta_curve = evaluate_adaptation(
        model, result.params, splits, alpha=0.05, max_steps=5
    )

    # 5. Baseline: fine-tuning the FedAvg consensus model.
    fedavg = FedAvg(
        model,
        FedAvgConfig(
            learning_rate=0.05, t0=5, total_iterations=300,
            eval_every=60, seed=0,
        ),
    ).fit(federated, sources)
    fedavg_curve = evaluate_adaptation(
        model, fedavg.params, splits, alpha=0.05, max_steps=5
    )

    rows = []
    for step in range(6):
        rows.append(
            [
                step,
                meta_curve.losses[step],
                meta_curve.accuracies[step],
                fedavg_curve.losses[step],
                fedavg_curve.accuracies[step],
            ]
        )
    print()
    print(
        format_table(
            ["steps", "FedML loss", "FedML acc", "FedAvg loss", "FedAvg acc"],
            rows,
        )
    )
    print(
        "\nFedML's initialization adapts fastest in the first couple of "
        "gradient steps — the real-time edge-intelligence regime."
    )


if __name__ == "__main__":
    main()
