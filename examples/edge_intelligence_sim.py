#!/usr/bin/env python3
"""End-to-end platform-aided edge-intelligence simulation (Figure 1).

This example exercises the full *systems* story of the paper, not just the
learning algorithm:

* 100 edge devices hold non-IID digit data (two digit classes each,
  power-law sample counts) — the MNIST-like workload;
* a platform coordinates federated meta-training over an LTE-like link,
  with every upload/download charged against the link model;
* a latecomer device (the target) receives the learned initialization and
  reaches a personalized model within a handful of on-device gradient
  steps — the "real-time edge intelligence" the title promises;
* we account for the complete cost: bytes moved, simulated communication
  time, and on-device gradient evaluations.

Run:  python examples/edge_intelligence_sim.py
"""

import numpy as np

from repro.core import FedML, FedMLConfig, adapt
from repro.data import MnistLikeConfig, generate_mnist_like
from repro.federated import LinkModel, Platform
from repro.metrics import format_table, target_splits
from repro.nn import LogisticRegression, accuracy, cross_entropy
from repro.nn.parameters import num_parameters
from repro.utils.serialization import payload_bytes


def main() -> None:
    # --- the device fleet -------------------------------------------------
    federated = generate_mnist_like(MnistLikeConfig(num_nodes=100, seed=7))
    stats = federated.statistics()
    print(
        f"fleet: {int(stats['nodes'])} devices, "
        f"{stats['samples_mean']:.1f} ± {stats['samples_std']:.1f} samples "
        "per device, 2 digit classes each"
    )

    sources, targets = federated.split_sources_targets(
        0.8, np.random.default_rng(0)
    )

    # --- the platform and its wireless link --------------------------------
    link = LinkModel(
        uplink_bytes_per_s=1.25e6,  # 10 Mbit/s up
        downlink_bytes_per_s=5.0e6,  # 40 Mbit/s down
        latency_s=0.05,
    )
    platform = Platform(link=link)

    model = LogisticRegression(input_dim=64, num_classes=10)
    config = FedMLConfig(
        alpha=0.1, beta=0.1, t0=5, total_iterations=400, k=5,
        eval_every=20, seed=0,
    )
    runner = FedML(model, config, platform=platform)
    result = runner.fit(federated, sources)

    blob = payload_bytes(result.params)
    log = platform.comm_log
    print(
        f"\nmeta-training: {config.total_iterations} local iterations, "
        f"{platform.rounds_completed} aggregation rounds"
    )
    print(
        f"model: {num_parameters(result.params)} parameters, "
        f"{blob / 1024:.1f} KiB on the wire"
    )
    print(
        f"traffic: {log.uplink_bytes / 1e6:.2f} MB up, "
        f"{log.downlink_bytes / 1e6:.2f} MB down, "
        f"simulated comm time {log.total_time:.1f} s"
    )
    compute = sum(n.gradient_evaluations for n in result.nodes)
    print(f"compute: {compute} gradient evaluations across the fleet")
    print(
        "meta-loss: "
        + " -> ".join(f"{v:.3f}" for v in result.global_meta_losses[::3])
    )

    # --- a latecomer device joins ------------------------------------------
    print("\n--- target device onboarding ---")
    initialization = platform.transfer_to_target()
    rows = []
    for target_index, split in zip(
        targets, target_splits(federated, targets, k=5)
    ):
        device_params = initialization
        logits = model.apply(device_params, split.test.x)
        before = accuracy(logits, split.test.y)
        # One on-device gradient step on the K=5 local samples (eq. 6).
        device_params = adapt(model, device_params, split.train, alpha=0.1)
        one_step = accuracy(model.apply(device_params, split.test.x), split.test.y)
        device_params = adapt(
            model, device_params, split.train, alpha=0.1, steps=4
        )
        five_steps = accuracy(
            model.apply(device_params, split.test.x), split.test.y
        )
        rows.append([target_index, before, one_step, five_steps])
        if len(rows) >= 10:
            break

    print(
        format_table(
            ["device", "acc before", "acc @1 step", "acc @5 steps"], rows
        )
    )
    mean_before = np.mean([r[1] for r in rows])
    mean_after = np.mean([r[3] for r in rows])
    print(
        f"\nmean target accuracy {mean_before:.2f} -> {mean_after:.2f} after "
        "five on-device steps on five samples — real-time edge intelligence."
    )


if __name__ == "__main__":
    main()
