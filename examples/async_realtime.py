#!/usr/bin/env python3
"""Asynchronous FedML on a heterogeneous fleet — the real-time view.

Synchronous federated rounds are paced by the slowest device.  This example
builds a fleet with lognormal compute heterogeneity, trains FedML both
synchronously and asynchronously (staleness-aware mixing), and compares the
meta-loss reached per simulated wall-clock second — the metric a real-time
edge deployment cares about.

Run:  python examples/async_realtime.py
"""

import numpy as np

from repro.core import AsyncFedML, AsyncFedMLConfig, FedML, FedMLConfig
from repro.data import SyntheticConfig, generate_synthetic
from repro.federated import LinkModel, sample_fleet, simulate_synchronous_rounds
from repro.metrics import format_table, loss_vs_wallclock
from repro.nn import LogisticRegression
from repro.utils.serialization import payload_bytes


def main() -> None:
    federated = generate_synthetic(
        SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=25, mean_samples=25, seed=1)
    )
    sources, _ = federated.split_sources_targets(0.8, np.random.default_rng(0))
    model = LogisticRegression(input_dim=60, num_classes=10)
    t0 = 5

    link = LinkModel()
    fleet = sample_fleet(
        len(sources),
        np.random.default_rng(1),
        median_seconds_per_step=0.05,
        heterogeneity=1.0,
        link=link,
    )
    speeds = sorted(d.seconds_per_step for d in fleet)
    print(
        f"fleet of {len(fleet)} devices, seconds/step from "
        f"{speeds[0]:.3f} to {speeds[-1]:.3f} "
        f"({speeds[-1] / speeds[0]:.0f}x spread)"
    )

    # --- synchronous FedML, costed by the fleet clock ----------------------
    sync = FedML(
        model,
        FedMLConfig(
            alpha=0.05, beta=0.05, t0=t0, total_iterations=200, k=5,
            eval_every=1, seed=0,
        ),
    ).fit(federated, sources)
    upload = payload_bytes(sync.params)
    sync_curve = loss_vs_wallclock(
        sync.history, t0=t0, fleet=fleet, upload_bytes=upload
    )
    print(
        f"\nsynchronous: {len(sync_curve.times) - 1} rounds in "
        f"{sync_curve.times[-1]:.0f} simulated seconds "
        f"(every round waits for the slowest device)"
    )

    # --- asynchronous FedML -------------------------------------------------
    async_run = AsyncFedML(
        model,
        AsyncFedMLConfig(
            alpha=0.05, beta=0.05, t0=t0,
            total_uploads=(200 // t0) * len(sources), k=5,
            mixing=0.6, staleness_power=0.5, eval_every=20, seed=0,
        ),
    ).fit(federated, sources, fleet)
    print(
        f"asynchronous: {len(async_run.upload_times)} uploads in "
        f"{async_run.total_time:.0f} simulated seconds, max staleness "
        f"{max(async_run.staleness)} versions"
    )

    # --- loss at equal time budgets -----------------------------------------
    async_eval_steps = async_run.history.steps("global_meta_loss")
    async_times = [0.0] + [
        async_run.upload_times[min(s, len(async_run.upload_times)) - 1]
        for s in async_eval_steps[1:]
    ]
    async_losses = async_run.global_meta_losses

    def loss_at(times, losses, budget):
        best = None
        for t, value in zip(times, losses):
            if t > budget:
                break
            best = value if best is None else min(best, value)
        return best

    rows = []
    for budget in (5.0, 15.0, 40.0, 120.0):
        sync_loss = loss_at(sync_curve.times, sync_curve.losses, budget)
        async_loss = loss_at(async_times, async_losses, budget)
        rows.append(
            [
                budget,
                "-" if sync_loss is None else f"{sync_loss:.4f}",
                "-" if async_loss is None else f"{async_loss:.4f}",
            ]
        )
    print()
    print(
        format_table(
            ["time budget (s)", "sync meta-loss", "async meta-loss"], rows
        )
    )
    print(
        "\nthe asynchronous runner pulls ahead at tight budgets because fast"
        "\ndevices keep contributing while stragglers are still computing;"
        "\nsynchronous aggregation remains the quality reference given time."
    )


if __name__ == "__main__":
    main()
