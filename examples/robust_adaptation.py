#!/usr/bin/env python3
"""Robust FedML (Algorithm 2) — defending adaptation against FGSM attacks.

Trains plain FedML and Wasserstein-DRO Robust FedML at several λ on the
MNIST-like workload, then evaluates each transferred initialization at
held-out target nodes: adapt with clean data, attack the test inputs with
FGSM at increasing strength ξ, and report the robustness/accuracy
trade-off of the paper's Figure 4.

Run:  python examples/robust_adaptation.py
"""

import numpy as np

from repro.attacks import fgsm, pgd
from repro.core import FedML, FedMLConfig, RobustFedML, RobustFedMLConfig
from repro.data import MnistLikeConfig, generate_mnist_like
from repro.metrics import evaluate_robustness, format_table, target_splits
from repro.nn import LogisticRegression

ITERATIONS = 300
LAMBDAS = [0.1, 1.0, 10.0]
XIS = [0.0, 0.05, 0.1, 0.2]


def main() -> None:
    federated = generate_mnist_like(MnistLikeConfig(num_nodes=30, seed=2))
    sources, targets = federated.split_sources_targets(
        0.8, np.random.default_rng(0)
    )
    model = LogisticRegression(input_dim=64, num_classes=10)
    splits = target_splits(federated, targets, k=5)

    print("training FedML ...")
    initializations = {
        "FedML": FedML(
            model,
            FedMLConfig(
                alpha=0.05, beta=0.05, t0=5, total_iterations=ITERATIONS,
                k=5, eval_every=ITERATIONS, seed=0,
            ),
        )
        .fit(federated, sources)
        .params
    }
    for lam in LAMBDAS:
        print(f"training Robust FedML (λ={lam:g}) ...")
        run = RobustFedML(
            model,
            RobustFedMLConfig(
                alpha=0.05, beta=0.05, t0=5, total_iterations=ITERATIONS,
                k=5, lam=lam, nu=1.0, ta=10, n0=7, r_max=2,
                eval_every=ITERATIONS, seed=0,
            ),
        ).fit(federated, sources)
        total_adv = sum(run.adversarial_counts())
        print(f"  built {total_adv} adversarial samples across the fleet")
        initializations[f"Robust λ={lam:g}"] = run.params

    print("\naccuracy after clean 5-step adaptation, under FGSM(ξ):")
    rows = []
    for name, params in initializations.items():
        row = [name]
        for xi in XIS:
            report = evaluate_robustness(
                model, params, splits, alpha=0.05, adapt_steps=5,
                attack=lambda m, p, x, y, xi=xi: fgsm(
                    m, p, x, y, xi=xi, clip_range=(0.0, 1.0)
                ),
            )
            row.append(report.adversarial_accuracy)
        rows.append(row)
    print(format_table(["Method"] + [f"ξ={xi:g}" for xi in XIS], rows))

    print("\nunder the stronger PGD attack (ε=0.1, 10 steps):")
    rows = []
    for name, params in initializations.items():
        report = evaluate_robustness(
            model, params, splits, alpha=0.05, adapt_steps=5,
            attack=lambda m, p, x, y: pgd(
                m, p, x, y, epsilon=0.1, step_size=0.025, steps=10,
                clip_range=(0.0, 1.0),
            ),
        )
        rows.append([name, report.clean_accuracy, report.adversarial_accuracy])
    print(format_table(["Method", "clean acc", "PGD acc"], rows))

    print(
        "\nsmaller λ = larger Wasserstein uncertainty set = stronger "
        "defense; λ=10's set is too small to matter (Figure 4's trade-off)."
    )


if __name__ == "__main__":
    main()
