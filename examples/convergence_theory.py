#!/usr/bin/env python3
"""Convergence theory in practice — Theorems 1–2 against measured behaviour.

The paper's analysis predicts how FedML's convergence depends on the inner
learning rate α, the meta rate β, the number of local steps T0, and the
node-dissimilarity constants (δ, σ).  This example:

1. estimates the Assumption 1–4 constants (μ, H, B, ρ, δ_i, σ_i) for a
   synthetic federation, using exact Hessian-vector products;
2. derives the Lemma-1 constants (μ′, H′) of the meta objective, the valid
   learning-rate ranges, and the Theorem-2 contraction factor ξ;
3. evaluates the h(T0) error term across T0 and shows the predicted
   communication/accuracy trade-off;
4. runs FedML at several T0 and prints predicted-vs-measured behaviour.

Run:  python examples/convergence_theory.py
"""

import numpy as np

from repro.core import FedML, FedMLConfig
from repro.data import SyntheticConfig, generate_synthetic
from repro.metrics import format_table
from repro.nn import LogisticRegression
from repro.theory import (
    contraction_factor,
    estimate_similarity,
    estimate_smoothness,
    h_error_term,
    lemma1_constants,
    max_inner_learning_rate,
    max_meta_learning_rate,
)


def main() -> None:
    federated = generate_synthetic(
        SyntheticConfig(alpha=0.5, beta=0.5, num_nodes=20, mean_samples=25, seed=1)
    )
    model = LogisticRegression(input_dim=60, num_classes=10)
    rng = np.random.default_rng(0)

    # --- 1. estimate the assumption constants -------------------------------
    pooled = federated.nodes[0]
    for node in federated.nodes[1:]:
        pooled = pooled.concat(node)
    smooth = estimate_smoothness(model, pooled, rng, num_points=8)
    print("estimated loss-landscape constants (Assumptions 1-3):")
    print(f"  mu (strong convexity)  ≈ {smooth.mu:.4f}")
    print(f"  H  (smoothness)        ≈ {smooth.smoothness:.4f}")
    print(f"  B  (gradient bound)    ≈ {smooth.gradient_bound:.4f}")
    print(f"  rho (Hessian Lipschitz)≈ {smooth.hessian_lipschitz:.4f}")

    weights = [len(n) for n in federated.nodes]
    similarity = estimate_similarity(
        model,
        model.init(np.random.default_rng(1)),
        federated.nodes,
        weights,
        rng,
        num_probes=2,
    )
    delta, sigma, tau = similarity.weighted(weights)
    print("\nnode-dissimilarity constants (Assumption 4):")
    print(f"  delta = Σωδ_i ≈ {delta:.4f}")
    print(f"  sigma = Σωσ_i ≈ {sigma:.4f}")
    print(f"  tau   = Σωδσ  ≈ {tau:.4f}")

    # --- 2. Lemma 1 / Theorem 2 constants ------------------------------------
    mu = max(smooth.mu, 1e-3)  # guard: sampled mu can be tiny
    alpha_max = max_inner_learning_rate(
        mu, smooth.smoothness, smooth.hessian_lipschitz, smooth.gradient_bound
    )
    alpha = min(0.01, 0.9 * alpha_max)
    constants = lemma1_constants(
        alpha, mu, smooth.smoothness, smooth.hessian_lipschitz,
        smooth.gradient_bound,
    )
    beta_max = max_meta_learning_rate(constants)
    beta = min(0.05, 0.9 * beta_max)
    xi = contraction_factor(beta, constants)
    print("\nmeta-objective constants (Lemma 1) and rates (Theorem 2):")
    print(f"  alpha_max ≈ {alpha_max:.4f}  -> using alpha = {alpha:.4f}")
    print(f"  mu' ≈ {constants.mu_prime:.4f}, H' ≈ {constants.h_prime:.4f}")
    print(f"  beta_max ≈ {beta_max:.4f}   -> using beta = {beta:.4f}")
    print(f"  contraction factor xi ≈ {xi:.6f}")

    # --- 3. the h(T0) error term --------------------------------------------
    rows = []
    for t0 in (1, 2, 5, 10, 20, 50):
        h = h_error_term(
            t0, alpha, beta, constants, smooth.smoothness,
            smooth.gradient_bound, delta, sigma, tau,
        )
        rows.append([t0, h])
    print("\nTheorem 2's local-update error term h(T0):")
    print(format_table(["T0", "h(T0)"], rows))
    print("h(1) = 0 (Corollary 1): one local step adds no steady-state error.")

    # --- 4. measured convergence vs T0 ---------------------------------------
    sources = list(range(len(federated.nodes)))
    rows = []
    for t0 in (1, 5, 20):
        cfg = FedMLConfig(
            alpha=alpha, beta=beta, t0=t0, total_iterations=200, k=5,
            eval_every=10**9, seed=0,
        )
        runner = FedML(model, cfg)
        run = runner.fit(federated, sources)
        measured = runner.global_meta_loss(run.params, run.nodes)
        predicted_h = h_error_term(
            t0, alpha, beta, constants, smooth.smoothness,
            smooth.gradient_bound, delta, sigma, tau,
        )
        rows.append([t0, predicted_h, measured])
    print("\npredicted error term vs measured final meta-loss (T=200):")
    print(format_table(["T0", "predicted h(T0)", "measured G(θ^T)"], rows))
    print(
        "\nBoth columns grow with T0: more local steps per round save "
        "communication but leave a larger steady-state error, exactly the "
        "trade-off Theorem 2 quantifies."
    )


if __name__ == "__main__":
    main()
