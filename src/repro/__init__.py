"""repro — reproduction of "Real-Time Edge Intelligence in the Making:
A Collaborative Learning Framework via Federated Meta-Learning" (ICDCS 2020).

Subpackages
-----------
``repro.autodiff``
    NumPy reverse-mode autodiff with double-backward support.
``repro.nn``
    Functional neural-network models, losses and optimizers.
``repro.data``
    Federated workload generators (Synthetic(alpha, beta), MNIST-like,
    Sent140-like) and dataset containers.
``repro.federated``
    The platform-aided substrate: edge nodes, aggregation, link cost model.
``repro.core``
    The paper's algorithms: FedML (Algorithm 1), Robust FedML (Algorithm 2),
    FedAvg, centralized MAML, federated Reptile, target adaptation.
``repro.attacks``
    FGSM / PGD / Wasserstein-DRO perturbations.
``repro.theory``
    Assumption-constant estimation and Theorems 1-4 as callable bounds.
``repro.metrics``
    Few-shot and robustness evaluation protocols, table formatting.
``repro.faults``
    Deterministic fault injection (crash/drop/corrupt/delay/flaky/kill
    plans) and the resilience policy the round engine degrades with.
"""

from . import (
    attacks,
    autodiff,
    core,
    data,
    faults,
    federated,
    metrics,
    nn,
    theory,
    utils,
)

__version__ = "1.0.0"

__all__ = [
    "attacks",
    "autodiff",
    "core",
    "data",
    "faults",
    "federated",
    "metrics",
    "nn",
    "theory",
    "utils",
    "__version__",
]
