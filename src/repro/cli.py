"""Command-line interface: run the paper's pipelines without writing code.

Examples
--------
Train FedML on a synthetic federation and evaluate target adaptation::

    python -m repro.cli train --algorithm fedml --dataset synthetic \
        --nodes 30 --iterations 300 --t0 5 --alpha 0.05 --beta 0.05

Compare algorithms::

    python -m repro.cli train --algorithm fedavg --dataset mnist --iterations 200

Print workload statistics (Table I)::

    python -m repro.cli stats --dataset sent140 --nodes 100

Record telemetry (spans, per-round byte accounting) and summarize it::

    python -m repro.cli train --algorithm fedml --dataset synthetic \
        --telemetry-out run.jsonl
    python -m repro.cli report run.jsonl
    python -m repro.cli report run.jsonl --html dashboard.html

Gate benchmark results against the committed performance baselines
(non-zero exit on regression; re-baseline with ``--update``)::

    python -m repro.cli bench-check BENCH_engine.json BENCH_autodiff.json

Run the repo-specific linter and the autodiff graph sanitizer (both exit
non-zero on findings; rule catalog in ``docs/STATIC_ANALYSIS.md``)::

    python -m repro.cli lint --baseline analysis/baseline.json \
        src benchmarks examples
    python -m repro.cli check-graph --json

Audit a config's determinism contract end-to-end (runs it twice — serial
vs serial and serial vs parallel — and bisects the first diverging
``(round, block, node)`` from the event log; ``docs/TESTING.md``)::

    python -m repro.cli check-determinism --algorithm fedml --nodes 10
    python -m repro.cli check-determinism --algorithm all --compare both
    python -m repro.cli check-determinism --algorithm fedml \
        --plant-entropy block=1,node=3   # planted bug: exits 1, localized
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

import numpy as np

from .core import (
    ADMLConfig,
    FedAvg,
    FedAvgConfig,
    FederatedADML,
    FederatedMetaSGD,
    FederatedReptile,
    FedML,
    FedMLConfig,
    MetaSGDConfig,
    ReptileConfig,
    RobustFedML,
    RobustFedMLConfig,
    evaluate_adaptation,
)
from .core.fedprox import FedProx, FedProxConfig
from .engine import EngineOptions, Executor, ParallelExecutor, VectorizedExecutor
from .faults import FaultPlan, ResiliencePolicy, RunInterrupted
from .data import (
    FederatedDataset,
    MnistLikeConfig,
    Sent140LikeConfig,
    SyntheticConfig,
    generate_mnist_like,
    generate_sent140_like,
    generate_synthetic,
)
from .metrics import format_table, target_splits
from .nn import EmbeddingClassifier, LogisticRegression, Model
from .obs import (
    JsonlFileSink,
    StdoutSink,
    Telemetry,
    load_records,
    render_report,
    summarize,
)

__all__ = ["main", "build_parser"]


def _build_dataset(args: argparse.Namespace) -> FederatedDataset:
    if args.dataset == "synthetic":
        return generate_synthetic(
            SyntheticConfig(
                alpha=args.synthetic_alpha,
                beta=args.synthetic_beta,
                num_nodes=args.nodes,
                seed=args.data_seed,
            )
        )
    if args.dataset == "mnist":
        return generate_mnist_like(
            MnistLikeConfig(num_nodes=args.nodes, seed=args.data_seed)
        )
    if args.dataset == "sent140":
        return generate_sent140_like(
            Sent140LikeConfig(num_nodes=args.nodes, seed=args.data_seed)
        )
    raise ValueError(f"unknown dataset '{args.dataset}'")


def _build_model(args: argparse.Namespace, federated: FederatedDataset) -> Model:
    if args.dataset == "synthetic":
        return LogisticRegression(60, 10)
    if args.dataset == "mnist":
        return LogisticRegression(64, 10)
    return EmbeddingClassifier(
        vocab_size=federated.metadata["vocab_size"],
        embed_dim=16,
        seq_len=federated.metadata["seq_len"],
        hidden_dims=(32, 16),
        num_classes=2,
        batch_norm=True,
        embedding_seed=0,
    )


def _build_telemetry(args: argparse.Namespace) -> Optional[Telemetry]:
    """Construct the run's collector from ``--telemetry-out`` (default off)."""
    path = getattr(args, "telemetry_out", None)
    if not path:
        return None
    sink = StdoutSink() if path == "-" else JsonlFileSink(path)
    telemetry = Telemetry(sink=sink)
    config = {
        k: v
        for k, v in vars(args).items()
        if k != "func" and isinstance(v, (str, int, float, bool, type(None)))
    }
    telemetry.emit_metadata(config=config, seed=getattr(args, "seed", None))
    return telemetry


def _build_executor(args: argparse.Namespace) -> Optional[Executor]:
    """Map ``--executor``/``--workers`` to an engine executor (default serial)."""
    kind = getattr(args, "executor", "serial")
    if kind == "parallel":
        return ParallelExecutor(max_workers=getattr(args, "workers", None))
    if kind == "vectorized":
        return VectorizedExecutor()
    return None


def _build_engine_options(
    args: argparse.Namespace,
) -> Optional[EngineOptions]:
    """Map ``--faults``/``--checkpoint``/``--resume`` to engine options."""
    faults_spec = getattr(args, "faults", None)
    checkpoint = getattr(args, "checkpoint", None)
    resume = getattr(args, "resume", False)
    if faults_spec is None and checkpoint is None and not resume:
        return None
    plan = None
    resilience = None
    if faults_spec is not None:
        plan = FaultPlan.from_spec(
            faults_spec, seed=getattr(args, "faults_seed", 0)
        )
        resilience = ResiliencePolicy(
            round_timeout_s=getattr(args, "round_timeout", None),
            min_participants=getattr(args, "min_participants", 1),
        )
    return EngineOptions(
        faults=plan,
        resilience=resilience,
        checkpoint_path=checkpoint,
        checkpoint_every=getattr(args, "checkpoint_every", 1),
    )


def _build_trainer(
    args: argparse.Namespace,
    model: Model,
    telemetry: Optional[Telemetry] = None,
    executor: Optional[Executor] = None,
):
    # Every algorithm routes through the round engine, so they all accept
    # the same telemetry/executor/fault plumbing.
    common = dict(
        telemetry=telemetry,
        executor=executor,
        engine_options=_build_engine_options(args),
    )
    if args.algorithm == "fedml":
        return FedML(
            model,
            FedMLConfig(
                alpha=args.alpha, beta=args.beta, t0=args.t0,
                total_iterations=args.iterations, k=args.k,
                first_order=args.first_order, eval_every=args.eval_every,
                seed=args.seed,
            ),
            **common,
        )
    if args.algorithm == "robust-fedml":
        return RobustFedML(
            model,
            RobustFedMLConfig(
                alpha=args.alpha, beta=args.beta, t0=args.t0,
                total_iterations=args.iterations, k=args.k,
                lam=args.lam, nu=args.nu, ta=args.ta, n0=args.n0,
                r_max=args.r_max, eval_every=args.eval_every, seed=args.seed,
            ),
            **common,
        )
    if args.algorithm == "fedavg":
        return FedAvg(
            model,
            FedAvgConfig(
                learning_rate=args.beta, t0=args.t0,
                total_iterations=args.iterations, eval_every=args.eval_every,
                seed=args.seed,
            ),
            **common,
        )
    if args.algorithm == "fedprox":
        return FedProx(
            model,
            FedProxConfig(
                learning_rate=args.beta, mu_prox=args.mu_prox, t0=args.t0,
                total_iterations=args.iterations, eval_every=args.eval_every,
                seed=args.seed,
            ),
            **common,
        )
    if args.algorithm == "reptile":
        return FederatedReptile(
            model,
            ReptileConfig(
                inner_lr=args.alpha, outer_lr=args.beta, t0=args.t0,
                total_iterations=args.iterations, k=args.k,
                eval_every=args.eval_every, seed=args.seed,
            ),
            **common,
        )
    if args.algorithm == "meta-sgd":
        return FederatedMetaSGD(
            model,
            MetaSGDConfig(
                alpha_init=args.alpha, beta=args.beta, t0=args.t0,
                total_iterations=args.iterations, k=args.k,
                eval_every=args.eval_every, seed=args.seed,
            ),
            **common,
        )
    if args.algorithm == "adml":
        return FederatedADML(
            model,
            ADMLConfig(
                alpha=args.alpha, beta=args.beta, t0=args.t0,
                total_iterations=args.iterations, k=args.k,
                epsilon=args.epsilon, eval_every=args.eval_every,
                seed=args.seed,
            ),
            **common,
        )
    raise ValueError(f"unknown algorithm '{args.algorithm}'")


def _cmd_stats(args: argparse.Namespace) -> int:
    federated = _build_dataset(args)
    stats = federated.statistics()
    if args.json:
        print(json.dumps({"name": federated.name, **stats}))
    else:
        print(
            format_table(
                ["Dataset", "Nodes", "Samples mean", "Samples std"],
                [
                    [
                        federated.name,
                        int(stats["nodes"]),
                        stats["samples_mean"],
                        stats["samples_std"],
                    ]
                ],
            )
        )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    federated = _build_dataset(args)
    model = _build_model(args, federated)
    sources, targets = federated.split_sources_targets(
        args.source_fraction, np.random.default_rng(args.split_seed)
    )
    telemetry = _build_telemetry(args)
    executor = _build_executor(args)
    trainer = _build_trainer(args, model, telemetry, executor)

    from .autodiff import fastpath

    fastpath_was_enabled = fastpath.enabled()
    if args.no_fastpath:
        fastpath.disable()
    fastpath.reset_stats()

    try:
        if args.profile_tape:
            from .autodiff.profile import profile_ops

            with profile_ops() as tape_profile:
                result = trainer.fit(federated, sources, resume=args.resume)
            if telemetry is not None:
                tape_profile.to_registry(telemetry.registry)
            if not args.json:
                print(tape_profile.summary(top=10))
        else:
            result = trainer.fit(federated, sources, resume=args.resume)
    except RunInterrupted as interrupted:
        # A plan-scheduled kill: report where the run died and how to pick
        # it back up, with a distinct exit code so harnesses can detect it.
        if telemetry is not None:
            telemetry.close()
        print(f"run interrupted: {interrupted}", file=sys.stderr)
        if interrupted.checkpoint_path:
            print(
                "resume with: --resume --checkpoint "
                f"{interrupted.checkpoint_path}",
                file=sys.stderr,
            )
        return 3
    finally:
        if fastpath_was_enabled:
            fastpath.enable()
        if executor is not None:
            executor.close()

    if telemetry is not None:
        fastpath.to_registry(telemetry.registry)

    history = result.history
    loss_key = (
        "global_meta_loss"
        if history.series("global_meta_loss")
        else "global_loss"
    )
    losses = history.series(loss_key)

    splits = target_splits(federated, targets, k=args.k)
    curve = evaluate_adaptation(
        model, result.params, splits, alpha=args.alpha,
        max_steps=args.adapt_steps,
    )

    payload = {
        "algorithm": args.algorithm,
        "dataset": federated.name,
        "sources": len(sources),
        "targets": len(splits),
        "initial_loss": losses[0] if losses else None,
        "final_loss": losses[-1] if losses else None,
        "uplink_bytes": result.platform.comm_log.uplink_bytes,
        "adaptation_losses": curve.losses,
        "adaptation_accuracies": curve.accuracies,
    }
    if telemetry is not None:
        telemetry.close()
    if args.json:
        print(json.dumps(payload))
        return 0

    print(f"{args.algorithm} on {federated.name}: "
          f"{len(sources)} sources, {len(splits)} targets")
    if losses:
        print(f"training loss: {losses[0]:.4f} -> {losses[-1]:.4f}")
    print(f"uplink traffic: {payload['uplink_bytes'] / 1e6:.2f} MB")
    rows = [
        [step, curve.losses[step], curve.accuracies[step]]
        for step in range(len(curve.losses))
    ]
    print(format_table(["adapt steps", "target loss", "target acc"], rows))
    if telemetry is not None and args.telemetry_out != "-":
        print(f"telemetry written to {args.telemetry_out}")
    return 0


def _cmd_fleet_sim(args: argparse.Namespace) -> int:
    """Event-driven fleet run: lazy registry + buffered aggregation."""
    from .engine.strategies import MetaStrategy, SgdStrategy
    from .federated.fleet import (
        FleetConfig,
        FleetSimulator,
        SyntheticShardFactory,
    )
    from .nn import LogisticRegression

    shards = SyntheticShardFactory(seed=args.seed)
    model = LogisticRegression(shards.input_dim, shards.num_classes)
    if args.algorithm == "fedavg":
        strategy = SgdStrategy(
            model,
            FedAvgConfig(
                learning_rate=args.beta, t0=args.local_steps,
                total_iterations=args.rounds * args.local_steps,
                eval_every=args.eval_every, seed=args.seed,
            ),
        )
    else:
        strategy = MetaStrategy(
            model,
            FedMLConfig(
                alpha=args.alpha, beta=args.beta, t0=args.local_steps,
                total_iterations=args.rounds * args.local_steps,
                k=shards.k, eval_every=args.eval_every, seed=args.seed,
            ),
        )
    plan = None
    if args.faults is not None:
        plan = FaultPlan.from_spec(args.faults, seed=args.faults_seed)
    config = FleetConfig(
        fleet_size=args.fleet_size,
        sampled_per_round=args.sampled,
        rounds=args.rounds,
        local_steps=args.local_steps,
        buffer_size=args.buffer_size,
        staleness_alpha=args.staleness_alpha,
        seed=args.seed,
        round_timeout_s=args.round_timeout,
        eval_every=args.eval_every,
        eval_sample=args.eval_sample,
    )
    telemetry = _build_telemetry(args)
    simulator = FleetSimulator(
        strategy,
        config,
        shards=shards,
        telemetry=telemetry,
        faults=plan,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
    )
    try:
        result = simulator.run(resume=args.resume)
    except RunInterrupted as interrupted:
        if telemetry is not None:
            telemetry.close()
        print(f"run interrupted: {interrupted}", file=sys.stderr)
        if interrupted.checkpoint_path:
            print(
                "resume with: --resume --checkpoint "
                f"{interrupted.checkpoint_path}",
                file=sys.stderr,
            )
        return 3

    loss_key = (
        "global_meta_loss"
        if result.history.series("global_meta_loss")
        else "global_loss"
    )
    losses = result.history.series(loss_key)
    payload = {
        "algorithm": args.algorithm,
        "fleet_size": args.fleet_size,
        "sampled_per_round": args.sampled,
        "rounds": result.rounds_completed,
        "aggregations": result.server_version,
        "updates_aggregated": result.updates_aggregated,
        "resident_peak": result.resident_peak,
        "resident_bound": args.sampled + config.effective_buffer,
        "sim_clock_s": result.sim_clock_s,
        "final_loss": losses[-1] if losses else None,
        "uplink_bytes": result.comm_log.uplink_bytes,
        "downlink_bytes": result.comm_log.downlink_bytes,
    }
    if telemetry is not None:
        telemetry.close()
    if args.json:
        print(json.dumps(payload))
        return 0
    print(
        f"fleet-sim {args.algorithm}: {args.fleet_size} registered, "
        f"{args.sampled} sampled/round, {result.rounds_completed} rounds, "
        f"{result.server_version} aggregations"
    )
    print(
        f"resident-node peak: {result.resident_peak} "
        f"(bound {payload['resident_bound']})"
    )
    if losses:
        print(f"{loss_key}: {losses[0]:.4f} -> {losses[-1]:.4f}")
    print(f"simulated clock: {result.sim_clock_s:.1f} s")
    print(f"uplink traffic: {payload['uplink_bytes'] / 1e6:.2f} MB")
    if telemetry is not None and args.telemetry_out != "-":
        print(f"telemetry written to {args.telemetry_out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import lint_paths, load_baseline

    baseline = None
    baseline_path = getattr(args, "baseline", None)
    if baseline_path:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
    telemetry = _build_telemetry(args)
    start = time.perf_counter()
    report = lint_paths(args.paths, baseline=baseline)
    elapsed = time.perf_counter() - start
    if telemetry is not None:
        registry = telemetry.registry
        registry.gauge("analysis_lint_seconds").set(elapsed)
        registry.counter("analysis_files_scanned_total").inc(
            report.files_scanned
        )
        for rule_id, count in report.by_rule().items():
            registry.counter("analysis_findings_total", rule=rule_id).inc(
                count
            )
        telemetry.close()
    if args.json:
        print(report.render_json())
    else:
        print(report.render_text())
        if telemetry is not None and args.telemetry_out != "-":
            print(f"telemetry written to {args.telemetry_out}")
    return 0 if report.ok else 1


def _cmd_check_graph(args: argparse.Namespace) -> int:
    from .analysis import run_graph_checks

    telemetry = _build_telemetry(args)
    start = time.perf_counter()
    report = run_graph_checks()
    elapsed = time.perf_counter() - start
    if telemetry is not None:
        registry = telemetry.registry
        registry.gauge("analysis_check_graph_seconds").set(elapsed)
        registry.gauge("analysis_ops_audited").set(report.ops_audited)
        for section, seconds in report.section_seconds.items():
            registry.gauge(
                "analysis_section_seconds", section=section
            ).set(seconds)
        for finding in report.findings:
            registry.counter(
                "analysis_findings_total", rule=finding.rule_id
            ).inc()
        telemetry.close()
    if args.json:
        print(json.dumps(report.to_dict()))
    else:
        print(report.render_text())
        if telemetry is not None and args.telemetry_out != "-":
            print(f"telemetry written to {args.telemetry_out}")
    return 0 if report.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        records = load_records(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if getattr(args, "html", None):
        from .obs.dashboard import render_dashboard
        from .obs.events import RunRecord

        run = RunRecord.from_records(records)
        page = render_dashboard(run, title=f"repro run — {args.path}")
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(page)
        print(f"dashboard written to {args.html}")
        return 0
    summary = summarize(records)
    if args.json:
        print(
            json.dumps(
                {
                    "records": len(records),
                    "meta": summary.meta,
                    "spans": summary.spans,
                    "counters": summary.counters,
                    "gauges": summary.gauges,
                    "histograms": summary.histograms,
                    "series": [
                        {
                            "name": s["name"],
                            "labels": s.get("labels", {}),
                            "points": len(s.get("values", [])),
                        }
                        for s in summary.series
                    ],
                }
            )
        )
        return 0
    print(render_report(summary))
    return 0


_ALL_ALGORITHMS = (
    "fedml", "robust-fedml", "fedavg", "fedprox", "reptile", "meta-sgd",
    "adml",
)


def _parse_plant_spec(spec: str) -> "tuple[int, int]":
    """``block=B,node=N`` -> (B, N); raises ValueError on malformed input."""
    fields = {}
    for part in spec.split(","):
        key, _, value = part.strip().partition("=")
        fields[key.strip()] = value.strip()
    try:
        return int(fields["block"]), int(fields["node"])
    except (KeyError, ValueError) as exc:
        raise ValueError(
            f"malformed --plant-entropy spec '{spec}' "
            "(expected 'block=B,node=N')"
        ) from exc


def _determinism_run(
    args: argparse.Namespace,
    algorithm: str,
    executor_kind: str,
    label: str,
    plant: "Optional[tuple[int, int]]" = None,
):
    """One instrumented training run; returns its RunFingerprint + ledger."""
    from .analysis.determinism import (
        EntropyPlanter,
        install_ledger,
        uninstall_ledger,
    )
    from .analysis.divergence import RunFingerprint
    from .obs.sink import MemorySink
    from .utils.serialization import params_fingerprint

    run_args = argparse.Namespace(**vars(args))
    run_args.algorithm = algorithm
    federated = _build_dataset(run_args)
    model = _build_model(run_args, federated)
    sources, _ = federated.split_sources_targets(
        run_args.source_fraction, np.random.default_rng(run_args.split_seed)
    )
    sink = MemorySink()
    telemetry = Telemetry(sink=sink, node_fingerprints=True)
    executor: Optional[Executor] = None
    if executor_kind == "parallel":
        executor = ParallelExecutor(max_workers=getattr(args, "workers", None))
    elif executor_kind == "vectorized":
        executor = VectorizedExecutor()
    trainer = _build_trainer(run_args, model, telemetry, executor)
    if plant is not None:
        if not hasattr(trainer, "strategy"):
            raise ValueError(
                f"--plant-entropy is not supported for '{algorithm}'"
            )
        trainer.strategy = EntropyPlanter(trainer.strategy, *plant)
    # The ledger hook is process-global: only the serial path binds node
    # generators in this process, so parallel runs are compared via node
    # fingerprints and events instead (workers never report ledgers back).
    ledger = install_ledger() if executor_kind == "serial" else None
    try:
        result = trainer.fit(federated, sources)
    finally:
        uninstall_ledger()
        if executor is not None:
            executor.close()
    if ledger is not None:
        ledger.emit_events(telemetry.events)
        ledger.to_registry(telemetry.registry)
    telemetry.close()
    history_rows = []
    history = getattr(result, "history", None)
    if history is not None:
        for name in ("global_loss", "global_meta_loss"):
            values = history.series(name)
            if values:
                history_rows.append(
                    {"metric": name, "values": tuple(float(v) for v in values)}
                )
    fingerprint = RunFingerprint.from_records(
        sink.records,
        label=label,
        history=history_rows,
        final_params_fp=params_fingerprint(result.params),
    )
    return fingerprint, ledger, sink.records


def _without_ledger(fingerprint):
    """A copy of a fingerprint with ledger data removed (parallel compares)."""
    import copy

    stripped = copy.copy(fingerprint)
    stripped.ledger = {}
    return stripped


def _cmd_check_determinism(args: argparse.Namespace) -> int:
    from .analysis.divergence import compare_runs

    plant = None
    if args.plant_entropy:
        try:
            plant = _parse_plant_spec(args.plant_entropy)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    algorithms = (
        list(_ALL_ALGORITHMS) if args.algorithm == "all" else [args.algorithm]
    )
    modes = (
        ["serial", "parallel"] if args.compare == "both" else [args.compare]
    )
    results = []
    failures = 0
    ledger_records: List[dict] = []
    needs_serial_base = any(m in ("serial", "parallel") for m in modes)
    for algorithm in algorithms:
        base_fp = None
        if needs_serial_base:
            base_fp, base_ledger, _ = _determinism_run(
                args, algorithm, "serial", f"{algorithm}/serial#1", plant=plant
            )
            if base_ledger is not None:
                ledger_records.extend(
                    {"type": "rng_ledger", "algorithm": algorithm, **entry}
                    for entry in base_ledger.as_dicts()
                )
        for mode in modes:
            if mode == "vectorized":
                # Stacked fp math only promises tolerance-level equality
                # with serial, so the claim proven here is the stronger
                # one the executor does make: two vectorized runs are
                # bit-for-bit identical.
                first_fp, _, _ = _determinism_run(
                    args, algorithm, mode, f"{algorithm}/{mode}#1",
                    plant=plant,
                )
                rerun_fp, _, _ = _determinism_run(
                    args, algorithm, mode, f"{algorithm}/{mode}#2",
                    plant=plant,
                )
                point = compare_runs(
                    _without_ledger(first_fp), _without_ledger(rerun_fp)
                )
                results.append((algorithm, "vectorized-vs-vectorized", point))
                if point is not None:
                    failures += 1
                continue
            assert base_fp is not None
            rerun_fp, _, _ = _determinism_run(
                args, algorithm, mode, f"{algorithm}/{mode}#2", plant=plant
            )
            if mode == "parallel":
                point = compare_runs(
                    _without_ledger(base_fp), rerun_fp
                )
            else:
                point = compare_runs(base_fp, rerun_fp)
            results.append((algorithm, f"serial-vs-{mode}", point))
            if point is not None:
                failures += 1
    if args.ledger_out:
        with open(args.ledger_out, "w", encoding="utf-8") as handle:
            for record in ledger_records:
                handle.write(json.dumps(record) + "\n")
    if args.json:
        print(
            json.dumps(
                {
                    "ok": failures == 0,
                    "comparisons": [
                        {
                            "algorithm": algorithm,
                            "compare": compare_label,
                            "diverged": point is not None,
                            "divergence": None
                            if point is None
                            else {
                                "round": point.round,
                                "block": point.block,
                                "node": point.node,
                                "metric": point.metric,
                                "a": repr(point.value_a),
                                "b": repr(point.value_b),
                            },
                        }
                        for algorithm, compare_label, point in results
                    ],
                }
            )
        )
        return 1 if failures else 0
    for algorithm, compare_label, point in results:
        name = f"{algorithm} {compare_label}"
        if point is None:
            print(f"check-determinism: {name}: identical")
        else:
            print(f"check-determinism: {name}: {point.render()}")
    if args.ledger_out:
        print(f"rng ledger written to {args.ledger_out}")
    if failures:
        print(
            f"check-determinism: FAILED — {failures} diverging comparison(s)",
            file=sys.stderr,
        )
        return 1
    print("check-determinism: all comparisons identical")
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from .obs.regress import run_gate

    failures, lines = run_gate(
        args.bench, args.baseline, update=args.update
    )
    for line in lines:
        print(line)
    if failures:
        print(
            f"bench-check: {len(failures)} regression(s) against "
            f"{args.baseline}",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Federated meta-learning (ICDCS 2020) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dataset_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--dataset", choices=["synthetic", "mnist", "sent140"],
            default="synthetic",
        )
        p.add_argument("--nodes", type=int, default=30)
        p.add_argument("--data-seed", type=int, default=0)
        p.add_argument("--synthetic-alpha", type=float, default=0.5)
        p.add_argument("--synthetic-beta", type=float, default=0.5)
        p.add_argument("--json", action="store_true", help="emit JSON")

    stats = sub.add_parser("stats", help="print workload statistics (Table I)")
    add_dataset_args(stats)
    stats.set_defaults(func=_cmd_stats)

    def add_algorithm_args(
        p: argparse.ArgumentParser, extra_choices: Optional[List[str]] = None
    ) -> None:
        p.add_argument(
            "--algorithm",
            choices=[
                "fedml", "robust-fedml", "fedavg", "fedprox", "reptile",
                "meta-sgd", "adml", *(extra_choices or []),
            ],
            default="fedml",
        )
        p.add_argument("--alpha", type=float, default=0.05)
        p.add_argument("--beta", type=float, default=0.05)
        p.add_argument("--t0", type=int, default=5)
        p.add_argument("--iterations", type=int, default=200)
        p.add_argument("--k", type=int, default=5)
        p.add_argument("--eval-every", type=int, default=10)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--split-seed", type=int, default=0)
        p.add_argument("--source-fraction", type=float, default=0.8)
        p.add_argument("--first-order", action="store_true")
        # Robust FedML knobs.
        p.add_argument("--lam", type=float, default=1.0)
        p.add_argument("--nu", type=float, default=1.0)
        p.add_argument("--ta", type=int, default=10)
        p.add_argument("--n0", type=int, default=7)
        p.add_argument("--r-max", type=int, default=2)
        # FedProx knob.
        p.add_argument("--mu-prox", type=float, default=0.1)
        # ADML knob.
        p.add_argument("--epsilon", type=float, default=0.1)

    train = sub.add_parser("train", help="train an algorithm and evaluate")
    add_dataset_args(train)
    add_algorithm_args(train)
    train.add_argument("--adapt-steps", type=int, default=5)
    # Execution.
    train.add_argument(
        "--executor", choices=["serial", "parallel", "vectorized"],
        default="serial",
        help="run each node's local steps serially, in a process pool "
        "(bit-identical to serial), or as stacked batched tapes "
        "(tolerance-equal to serial, bit-reproducible run-to-run)",
    )
    train.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process count for --executor parallel (default: os.cpu_count())",
    )
    # Faults & resilience.
    train.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject a deterministic fault plan, e.g. "
        "'crash:rate=0.2;corrupt:rate=0.1,mode=nan;kill:block=3' "
        "(kinds: crash, drop, corrupt, delay, flaky, kill)",
    )
    train.add_argument(
        "--faults-seed", type=int, default=0,
        help="seed of the fault plan (same seed + spec = same faults)",
    )
    train.add_argument(
        "--round-timeout", type=float, default=None, metavar="SECONDS",
        help="simulated per-round deadline; slower updates are dropped as "
        "stragglers (requires --faults)",
    )
    train.add_argument(
        "--min-participants", type=int, default=1, metavar="N",
        help="never aggregate fewer than N updates (requires --faults)",
    )
    # Checkpoint / resume.
    train.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write a checkpoint at aggregation boundaries to PATH",
    )
    train.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="checkpoint every N aggregations (default: every one)",
    )
    train.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint instead of starting fresh "
        "(bit-identical to an uninterrupted run)",
    )
    # Observability.
    train.add_argument(
        "--telemetry-out", default=None, metavar="PATH",
        help="write telemetry JSONL to PATH ('-' for stdout); default off",
    )
    train.add_argument(
        "--profile-tape", action="store_true",
        help="profile autodiff op counts and per-op-type time during training",
    )
    train.add_argument(
        "--no-fastpath", action="store_true",
        help="disable the first-order autodiff fast path (raw-VJP backward "
        "with plan caching); results are bit-identical either way",
    )
    train.set_defaults(func=_cmd_train)

    fleet = sub.add_parser(
        "fleet-sim",
        help="event-driven fleet simulation: lazy node registry "
        "(O(sampled) memory), LinkModel-clocked completion events, "
        "synchronous or staleness-aware buffered aggregation",
    )
    fleet.add_argument("--fleet-size", type=int, default=100_000)
    fleet.add_argument(
        "--sampled", type=int, default=64,
        help="nodes sampled per round (default 64)",
    )
    fleet.add_argument("--rounds", type=int, default=10)
    fleet.add_argument("--local-steps", type=int, default=5)
    fleet.add_argument(
        "--algorithm", choices=["fedavg", "fedml"], default="fedavg"
    )
    fleet.add_argument("--alpha", type=float, default=0.05)
    fleet.add_argument("--beta", type=float, default=0.05)
    fleet.add_argument(
        "--buffer-size", type=int, default=None, metavar="N",
        help="flush the aggregation buffer every N delivered updates "
        "(FedBuff-style; default: synchronous, one flush per round)",
    )
    fleet.add_argument(
        "--staleness-alpha", type=float, default=0.5,
        help="staleness discount exponent d(tau) = (1+tau)^-alpha "
        "(0 disables discounting)",
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--round-timeout", type=float, default=None, metavar="SECONDS",
        help="simulated deadline per dispatch; slower nodes time out",
    )
    fleet.add_argument("--eval-every", type=int, default=1)
    fleet.add_argument(
        "--eval-sample", type=int, default=None, metavar="N",
        help="fixed seeded evaluation subset size (default min(32, sampled))",
    )
    fleet.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="deterministic fault plan (kinds: crash, drop, corrupt, "
        "delay, kill — flaky targets executor workers and is rejected)",
    )
    fleet.add_argument("--faults-seed", type=int, default=0)
    fleet.add_argument("--checkpoint", default=None, metavar="PATH")
    fleet.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="checkpoint every N rounds",
    )
    fleet.add_argument("--resume", action="store_true")
    fleet.add_argument(
        "--telemetry-out", default=None, metavar="PATH",
        help="write telemetry JSONL to PATH ('-' for stdout); default off",
    )
    fleet.add_argument("--json", action="store_true", help="emit JSON")
    fleet.set_defaults(func=_cmd_fleet_sim)

    report = sub.add_parser(
        "report", help="summarise a telemetry JSONL file into text tables"
    )
    report.add_argument("path", help="telemetry file written by --telemetry-out")
    report.add_argument("--json", action="store_true", help="emit JSON")
    report.add_argument(
        "--html", default=None, metavar="PATH",
        help="render a self-contained HTML dashboard to PATH instead of text",
    )
    report.set_defaults(func=_cmd_report)

    bench_check = sub.add_parser(
        "bench-check",
        help="gate benchmark JSON outputs against committed baselines "
        "(exits non-zero on regression; seeds missing baselines)",
    )
    bench_check.add_argument(
        "bench", nargs="+",
        help="benchmark result files (BENCH_engine.json, ...)",
    )
    bench_check.add_argument(
        "--baseline", default="benchmarks/baselines.json", metavar="PATH",
        help="committed baseline file (default: benchmarks/baselines.json)",
    )
    bench_check.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the current results (intentional "
        "performance changes)",
    )
    bench_check.set_defaults(func=_cmd_bench_check)

    lint = sub.add_parser(
        "lint",
        help="run the repo-specific linter (reprolint) over files/directories",
    )
    lint.add_argument(
        "paths", nargs="+", help="files or directories to lint"
    )
    lint.add_argument("--json", action="store_true", help="emit JSON")
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="accepted-findings file (analysis/baseline.json): matching "
        "findings are counted as 'baselined' instead of failing the gate",
    )
    lint.add_argument(
        "--telemetry-out", default=None, metavar="PATH",
        help="record lint runtime/finding metrics as telemetry JSONL",
    )
    lint.set_defaults(func=_cmd_lint)

    check_det = sub.add_parser(
        "check-determinism",
        help="run a config twice (serial vs serial / serial vs parallel) and "
        "bisect any mismatch to the first diverging (round, block, node)",
    )
    add_dataset_args(check_det)
    add_algorithm_args(check_det, extra_choices=["all"])
    check_det.add_argument(
        "--compare",
        choices=["serial", "parallel", "vectorized", "both"],
        default="both",
        help="what to compare (default both: baseline serial run vs a "
        "second serial run and a parallel run; 'vectorized' instead runs "
        "the vectorized executor twice and requires bit-identity)",
    )
    check_det.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process count for the parallel comparison run",
    )
    check_det.add_argument(
        "--ledger-out", default=None, metavar="PATH",
        help="write the baseline run's RNG-stream ledger as JSONL",
    )
    check_det.add_argument(
        "--plant-entropy", default=None, metavar="block=B,node=N",
        help="test hook: inject an unseeded draw into the strategy at "
        "(block, node) — the checker must fail and name that coordinate",
    )
    check_det.set_defaults(func=_cmd_check_determinism)

    check_graph = sub.add_parser(
        "check-graph",
        help="audit autodiff graphs: double-backward coverage, shape/dtype "
        "replay, retained-graph leaks",
    )
    check_graph.add_argument("--json", action="store_true", help="emit JSON")
    check_graph.add_argument(
        "--telemetry-out", default=None, metavar="PATH",
        help="record sanitizer runtime metrics as telemetry JSONL",
    )
    check_graph.set_defaults(func=_cmd_check_graph)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Reports piped into `head` close stdout early; exit quietly.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
