"""Engine-side resilience knobs.

A :class:`ResiliencePolicy` tells the :class:`~repro.engine.RoundEngine`
how to survive the faults a :class:`~repro.faults.plan.FaultPlan` (or a
genuinely failing strategy/executor) throws at it:

* **bounded retry with backoff** — a node block whose worker fails is
  restored from its pre-block snapshot and re-run, up to ``max_retries``
  times; each retry charges ``backoff_base_s * 2**attempt`` *simulated*
  seconds to the node's block time (never a real sleep — wall-clock
  decisions would break determinism);
* **round timeout / straggler drop** — each node's block is costed on the
  :class:`~repro.federated.network.LinkModel` clock
  (``steps * seconds_per_step + upload_time(payload) + delays + backoff``)
  and nodes exceeding ``round_timeout_s`` are excluded from aggregation
  and resynchronized, keeping at least the ``min_participants`` fastest;
* **NaN-update quarantine** — non-finite updates never reach the
  aggregator; the quarantined node is resynchronized from the healthy
  global model at broadcast;
* **minimum-participant floor** — if exclusions would leave fewer than
  ``min_participants`` updates, excluded-but-finite nodes are reinstated
  in a deterministic preference order (stragglers, then dropped updates,
  then stale crashed/failed nodes); quarantined updates are never
  reinstated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..federated.network import LinkModel

__all__ = ["ResiliencePolicy", "FaultToleranceError"]


class FaultToleranceError(RuntimeError):
    """Raised when a round cannot assemble a usable participant set."""


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the round engine degrades gracefully under faults."""

    #: simulated deadline for one block (compute + upload); ``None`` = none
    round_timeout_s: float | None = None
    #: bounded retry budget per node block before the block is failed
    max_retries: int = 2
    #: simulated backoff charged per retry: ``backoff_base_s * 2**attempt``
    backoff_base_s: float = 0.5
    #: aggregation floor: never aggregate fewer updates than this
    min_participants: int = 1
    #: exclude non-finite updates from aggregation
    quarantine_nonfinite: bool = True
    #: drop a node's block (instead of raising) when retries are exhausted
    #: by a *real* executor error; plan-injected flaky faults always drop
    drop_on_failure: bool = False
    #: simulated compute speed used to cost a block on the link clock
    seconds_per_step: float = 0.05
    #: link model whose upload time prices the update delivery
    link: LinkModel = field(default_factory=LinkModel)

    def __post_init__(self) -> None:
        if self.round_timeout_s is not None and self.round_timeout_s <= 0:
            raise ValueError("round_timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.min_participants < 1:
            raise ValueError("min_participants must be >= 1")
        if self.seconds_per_step <= 0:
            raise ValueError("seconds_per_step must be positive")

    def backoff_s(self, attempt: int) -> float:
        """Simulated backoff before retry ``attempt`` (0-indexed)."""
        return self.backoff_base_s * (2.0**attempt)

    def describe(self) -> dict:
        """JSON-ready summary for the run's ``run_start`` event."""
        return {
            "round_timeout_s": self.round_timeout_s,
            "max_retries": self.max_retries,
            "backoff_base_s": self.backoff_base_s,
            "min_participants": self.min_participants,
            "quarantine_nonfinite": self.quarantine_nonfinite,
            "drop_on_failure": self.drop_on_failure,
        }
