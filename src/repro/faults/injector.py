"""The engine's single integration point with the fault subsystem.

A :class:`FaultInjector` binds a compiled :class:`~repro.faults.plan.FaultPlan`
to a :class:`~repro.faults.policy.ResiliencePolicy` and a telemetry
collector.  The :class:`~repro.engine.round_engine.RoundEngine` consults it
at two points per block:

1. **before local steps** — which nodes are crashed (skip their block) and
   which workers fail flakily (charge bounded retries, or fail the block
   when the retry budget is exhausted);
2. **between local steps and aggregation** — which updates are dropped,
   corrupted, or delayed; which are straggler-dropped by the policy's
   round timeout on the :class:`~repro.federated.network.LinkModel` clock;
   which are quarantined for non-finite values; and how the
   minimum-participant floor backfills the survivor set.

Every decision is a pure function of ``(plan seed, block, node)`` — the
injector never looks at wall-clock time or execution order, which is what
keeps faulty runs bit-identical across serial and parallel executors and
across checkpoint/resume boundaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..autodiff import Tensor
from ..federated.node import EdgeNode
from ..nn.parameters import Params
from ..obs.telemetry import Telemetry, resolve
from ..utils.rng import RngFactory
from ..utils.serialization import payload_bytes
from .plan import CompiledPlan, FaultEvent, FaultPlan
from .policy import FaultToleranceError, ResiliencePolicy

__all__ = ["FaultInjector", "RunInterrupted"]


class RunInterrupted(RuntimeError):
    """A plan-scheduled kill: the run died at a block boundary.

    Carries the iteration the run died at; if the engine was checkpointing,
    ``fit(..., resume=True)`` restarts from the last saved boundary.
    """

    def __init__(self, t: int, block: int, checkpoint_path: Optional[str]):
        self.t = t
        self.block = block
        self.checkpoint_path = checkpoint_path
        where = f"killed at t={t} (block {block})"
        hint = (
            f"; resume from {checkpoint_path}"
            if checkpoint_path
            else "; no checkpoint configured"
        )
        super().__init__(where + hint)


class FaultInjector:
    """Applies one run's fault plan under one resilience policy."""

    def __init__(
        self,
        plan: Optional[FaultPlan],
        policy: Optional[ResiliencePolicy] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan.none()
        self.policy = policy if policy is not None else ResiliencePolicy()
        self._tel = resolve(telemetry)
        # empty until begin(); compiling the real plan here would reject
        # explicit events that target nodes we have not been told about yet
        self._compiled: CompiledPlan = FaultPlan.none().compile([], 0)
        self._rngs = RngFactory(self.plan.seed)
        #: simulated run clock (seconds) accumulated over blocks
        self.sim_clock_s = 0.0

    # -- lifecycle ------------------------------------------------------
    def begin(self, node_ids: Sequence[int], num_blocks: int) -> None:
        """Compile the plan for this run and pre-register the counters."""
        self._compiled = self.plan.compile(node_ids, num_blocks)
        for kind in ("crash", "drop", "corrupt", "delay", "flaky"):
            self._tel.counter("fl_faults_total", kind=kind)
        self._tel.counter("fl_retries_total")
        self._tel.counter("fl_quarantined_total")
        self._tel.counter("fl_stragglers_dropped_total")

    # -- counters (shared with the engine's real-failure path) ----------
    def record_fault(
        self,
        kind: str,
        amount: int = 1,
        *,
        block: Optional[int] = None,
        node: Optional[int] = None,
    ) -> None:
        """Count one fault; with block context, log it on the event stream."""
        self._tel.counter("fl_faults_total", kind=kind).inc(amount)
        if block is not None:
            self._tel.events.emit(
                "fault_injected", fault=kind, block=block, node=node,
                count=amount,
            )

    def record_retry(
        self,
        amount: int = 1,
        *,
        block: Optional[int] = None,
        node: Optional[int] = None,
    ) -> None:
        self._tel.counter("fl_retries_total").inc(amount)
        if block is not None:
            self._tel.events.emit(
                "retry", block=block, node=node, count=amount
            )

    # -- before local steps ---------------------------------------------
    def crashed(self, block: int) -> Set[int]:
        """Node ids down for this block (counted once per node-block)."""
        downed = self._compiled.crashed_nodes(block)
        for node_id in sorted(downed):
            self.record_fault("crash", block=block, node=node_id)
        return downed

    def simulate_flaky(
        self, block: int, node_ids: Iterable[int]
    ) -> Tuple[Set[int], Dict[int, float]]:
        """Resolve plan-injected worker flakiness for this block.

        Returns ``(failed, backoff_s)``: nodes whose retry budget the
        failure count exhausts (their block is lost), and the simulated
        backoff seconds charged to each flaky-but-recovered node.
        """
        failed: Set[int] = set()
        backoff: Dict[int, float] = {}
        for node_id in sorted(node_ids):
            fail_times = self._compiled.flaky.get((block, node_id), 0)
            if fail_times == 0:
                continue
            self.record_fault("flaky", block=block, node=node_id)
            retries = min(fail_times, self.policy.max_retries)
            if retries:
                self.record_retry(retries, block=block, node=node_id)
                backoff[node_id] = sum(
                    self.policy.backoff_s(a) for a in range(retries)
                )
            if fail_times > self.policy.max_retries:
                failed.add(node_id)
        return failed, backoff

    def kill_scheduled(self, block: int) -> bool:
        return block in self._compiled.kills

    # -- between local steps and aggregation ----------------------------
    def filter_updates(
        self,
        block: int,
        selected: Sequence[EdgeNode],
        stale_ids: Set[int],
        steps: int,
        extra_delay_s: Optional[Dict[int, float]] = None,
    ) -> List[EdgeNode]:
        """Decide which of the ``selected`` updates reach the aggregator.

        ``stale_ids`` are nodes that never computed this block (crashed, or
        their worker failed permanently) — they carry last round's params
        and are only used as a last resort by the participant floor.
        """
        delays = dict(extra_delay_s or {})
        available: List[EdgeNode] = []
        dropped: List[EdgeNode] = []
        stale = [n for n in selected if n.node_id in stale_ids]
        for node in selected:
            if node.node_id in stale_ids:
                continue
            key = (block, node.node_id)
            if key in self._compiled.drops:
                self.record_fault("drop", block=block, node=node.node_id)
                dropped.append(node)
                continue
            corrupt = self._compiled.corrupts.get(key)
            if corrupt is not None and node.params is not None:
                node.params = self._corrupt_params(
                    node.params, corrupt, block, node.node_id
                )
                self.record_fault("corrupt", block=block, node=node.node_id)
            plan_delay = self._compiled.delays.get(key, 0.0)
            if plan_delay:
                self.record_fault("delay", block=block, node=node.node_id)
                delays[node.node_id] = delays.get(node.node_id, 0.0) + plan_delay
            available.append(node)

        kept, stragglers = self._apply_timeout(available, delays, steps)
        events = self._tel.events
        for node in stragglers:
            events.emit("straggler_dropped", block=block, node=node.node_id)
        kept, quarantined = self._quarantine(kept)
        for node in quarantined:
            events.emit("quarantine", block=block, node=node.node_id)
        kept = self._enforce_floor(kept, stragglers, dropped, stale)
        if not kept:
            raise FaultToleranceError(
                f"block {block}: no usable updates remain "
                f"({len(quarantined)} quarantined, {len(stale)} stale)"
            )
        return kept

    # ------------------------------------------------------------------
    def _corrupt_params(
        self, params: Params, event: FaultEvent, block: int, node_id: int
    ) -> Params:
        """Return a corrupted copy of ``params`` (never mutated in place)."""
        rng = self._rngs.stream("corrupt", block, node_id)
        out: Params = {}
        for name in sorted(params):
            data = np.array(params[name].data, dtype=np.float64, copy=True)
            if event.mode == "scale":
                data *= event.scale
            elif event.fraction >= 1.0:
                data[...] = np.nan
            else:
                mask = rng.random(data.shape) < event.fraction
                data[mask] = np.nan
            out[name] = Tensor(data)
        return out

    def _block_time_s(
        self, node: EdgeNode, delays: Dict[int, float], steps: int
    ) -> float:
        """Cost one node's block on the policy's LinkModel clock."""
        policy = self.policy
        upload = 0.0
        if node.params is not None:
            upload = policy.link.upload_time(payload_bytes(node.params))
        return (
            steps * policy.seconds_per_step
            + upload
            + delays.get(node.node_id, 0.0)
        )

    def _apply_timeout(
        self,
        available: List[EdgeNode],
        delays: Dict[int, float],
        steps: int,
    ) -> Tuple[List[EdgeNode], List[EdgeNode]]:
        policy = self.policy
        if policy.round_timeout_s is None or not available:
            return available, []
        times = {
            n.node_id: self._block_time_s(n, delays, steps)
            for n in available
        }
        kept = [
            n for n in available if times[n.node_id] <= policy.round_timeout_s
        ]
        if len(kept) < policy.min_participants:
            # Keep the fastest nodes even past the deadline (ties broken by
            # node id, so the choice is deterministic).
            ordered = sorted(
                available, key=lambda n: (times[n.node_id], n.node_id)
            )
            kept = sorted(
                ordered[: policy.min_participants], key=lambda n: n.node_id
            )
        kept_ids = {n.node_id for n in kept}
        stragglers = [n for n in available if n.node_id not in kept_ids]
        if stragglers:
            self._tel.counter("fl_stragglers_dropped_total").inc(
                len(stragglers)
            )
        round_time = max(times[n.node_id] for n in kept)
        self.sim_clock_s += round_time
        self._tel.gauge("fl_sim_clock_seconds").set(self.sim_clock_s)
        return kept, stragglers

    def _quarantine(
        self, kept: List[EdgeNode]
    ) -> Tuple[List[EdgeNode], List[EdgeNode]]:
        if not self.policy.quarantine_nonfinite:
            return kept, []
        healthy: List[EdgeNode] = []
        quarantined: List[EdgeNode] = []
        for node in kept:
            params = node.params
            finite = params is not None and all(
                np.isfinite(t.data).all() for t in params.values()
            )
            (healthy if finite else quarantined).append(node)
        if quarantined:
            self._tel.counter("fl_quarantined_total").inc(len(quarantined))
        return healthy, quarantined

    def _enforce_floor(
        self,
        kept: List[EdgeNode],
        stragglers: List[EdgeNode],
        dropped: List[EdgeNode],
        stale: List[EdgeNode],
    ) -> List[EdgeNode]:
        """Backfill to ``min_participants`` from excluded-but-finite nodes.

        Preference order: straggler updates (computed, merely late), then
        dropped updates (computed, lost in transit — we pretend the
        retransmit succeeded), then stale nodes (last broadcast's params).
        Quarantined updates are never reinstated.
        """
        floor = self.policy.min_participants
        if len(kept) >= floor:
            return kept
        reinstated = list(kept)
        for pool in (stragglers, dropped, stale):
            for node in sorted(pool, key=lambda n: n.node_id):
                if len(reinstated) >= floor:
                    break
                params = node.params
                finite = params is not None and all(
                    np.isfinite(t.data).all() for t in params.values()
                )
                if finite:
                    reinstated.append(node)
        return reinstated
