"""Deterministic fault plans: *what* goes wrong, *when*, to *whom*.

A :class:`FaultPlan` composes schedules — each one a small generator of
:class:`FaultEvent` records keyed by ``(block, node)`` — and compiles them
against a concrete run (node ids + block count) into fast lookup tables the
:class:`~repro.faults.injector.FaultInjector` consults every block.

Everything is derived from the plan's seed through named
:mod:`repro.utils.rng` streams, so the same ``(seed, schedules)`` pair
always produces the same faults regardless of executor, worker count, or
whether the run was resumed from a checkpoint mid-way.  That determinism is
the subsystem's headline guarantee: a faulty run is as bit-reproducible as
a clean one.

Fault kinds
-----------
``crash``
    The node is down for ``duration`` blocks starting at ``block``: it runs
    no local steps and uploads nothing, then rejoins via the broadcast of
    the next aggregation it survives to see.
``drop``
    The node computes its block but the update is lost in transit — it is
    excluded from aggregation and resynchronized from the global model.
``corrupt``
    The update arrives damaged: ``mode="nan"`` poisons a ``fraction`` of
    entries with NaN (caught by the policy's quarantine), ``mode="scale"``
    silently multiplies the update by ``scale``.
``delay``
    Delivery is ``delay_s`` simulated seconds late.  Under a policy round
    timeout the node becomes a straggler and is dropped; without one the
    delay only shows up in the simulated round clock.
``flaky``
    The executor worker running the node's block fails ``fail_times``
    times before succeeding; the policy's bounded retry absorbs it (or the
    node misses the block when retries are exhausted).
``kill``
    The whole run dies at the end of ``block`` — after the checkpoint for
    that boundary is written — by raising
    :class:`~repro.faults.injector.RunInterrupted`.  Used to prove
    kill-and-resume bit-exactness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Set, Tuple

import numpy as np

from ..utils.rng import RngFactory

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "CrashSchedule",
    "DropSchedule",
    "CorruptSchedule",
    "DelaySchedule",
    "FlakyWorkerSchedule",
    "KillSchedule",
    "ExplicitSchedule",
    "CompiledPlan",
    "FaultPlan",
    "FAULT_KINDS",
]

FAULT_KINDS = ("crash", "drop", "corrupt", "delay", "flaky", "kill")


@dataclass(frozen=True)
class FaultEvent:
    """One concrete fault: ``kind`` hits ``node_id`` at ``block``."""

    kind: str
    block: int
    node_id: int = -1  # -1: not node-scoped (kill)
    duration: int = 1  # crash: blocks the node stays down
    mode: str = "nan"  # corrupt: "nan" | "scale"
    fraction: float = 1.0  # corrupt/nan: fraction of entries poisoned
    scale: float = 10.0  # corrupt/scale: multiplier
    delay_s: float = 0.0  # delay: extra simulated seconds
    fail_times: int = 1  # flaky: worker failures before success

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind '{self.kind}'")
        if self.block < 0:
            raise ValueError("block must be non-negative")
        if self.duration < 1:
            raise ValueError("duration must be >= 1")
        if self.mode not in ("nan", "scale"):
            raise ValueError(f"unknown corruption mode '{self.mode}'")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if self.fail_times < 1:
            raise ValueError("fail_times must be >= 1")


class FaultSchedule:
    """Base class: a deterministic generator of fault events."""

    kind: str = "?"

    def events(
        self,
        node_ids: Sequence[int],
        num_blocks: int,
        rng: np.random.Generator,
    ) -> List[FaultEvent]:
        raise NotImplementedError


def _bernoulli_cells(
    node_ids: Sequence[int],
    num_blocks: int,
    rate: float,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """i.i.d. ``(block, node_id)`` cells hit with probability ``rate``.

    Draws are made in a fixed (block-major, node-order) sequence so the hit
    set depends only on the stream, not on container ordering.
    """
    hits: List[Tuple[int, int]] = []
    for block in range(num_blocks):
        for node_id in node_ids:
            if rng.random() < rate:
                hits.append((block, node_id))
    return hits


def _check_rate(rate: float) -> float:
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    return rate


@dataclass(frozen=True)
class CrashSchedule(FaultSchedule):
    """Each (block, node) cell starts a crash with probability ``rate``."""

    rate: float
    duration: int = 1
    kind: str = field(default="crash", init=False)

    def events(
        self,
        node_ids: Sequence[int],
        num_blocks: int,
        rng: np.random.Generator,
    ) -> List[FaultEvent]:
        _check_rate(self.rate)
        return [
            FaultEvent("crash", block, node_id, duration=self.duration)
            for block, node_id in _bernoulli_cells(
                node_ids, num_blocks, self.rate, rng
            )
        ]


@dataclass(frozen=True)
class DropSchedule(FaultSchedule):
    """Each node's block update is lost with probability ``rate``."""

    rate: float
    kind: str = field(default="drop", init=False)

    def events(
        self,
        node_ids: Sequence[int],
        num_blocks: int,
        rng: np.random.Generator,
    ) -> List[FaultEvent]:
        _check_rate(self.rate)
        return [
            FaultEvent("drop", block, node_id)
            for block, node_id in _bernoulli_cells(
                node_ids, num_blocks, self.rate, rng
            )
        ]


@dataclass(frozen=True)
class CorruptSchedule(FaultSchedule):
    """Each node's block update is corrupted with probability ``rate``."""

    rate: float
    mode: str = "nan"
    fraction: float = 1.0
    scale: float = 10.0
    kind: str = field(default="corrupt", init=False)

    def events(
        self,
        node_ids: Sequence[int],
        num_blocks: int,
        rng: np.random.Generator,
    ) -> List[FaultEvent]:
        _check_rate(self.rate)
        return [
            FaultEvent(
                "corrupt",
                block,
                node_id,
                mode=self.mode,
                fraction=self.fraction,
                scale=self.scale,
            )
            for block, node_id in _bernoulli_cells(
                node_ids, num_blocks, self.rate, rng
            )
        ]


@dataclass(frozen=True)
class DelaySchedule(FaultSchedule):
    """Each node's delivery is ``delay_s`` late with probability ``rate``."""

    rate: float
    delay_s: float = 1.0
    kind: str = field(default="delay", init=False)

    def events(
        self,
        node_ids: Sequence[int],
        num_blocks: int,
        rng: np.random.Generator,
    ) -> List[FaultEvent]:
        _check_rate(self.rate)
        return [
            FaultEvent("delay", block, node_id, delay_s=self.delay_s)
            for block, node_id in _bernoulli_cells(
                node_ids, num_blocks, self.rate, rng
            )
        ]


@dataclass(frozen=True)
class FlakyWorkerSchedule(FaultSchedule):
    """A node's worker fails ``fail_times`` before success, prob ``rate``."""

    rate: float
    fail_times: int = 1
    kind: str = field(default="flaky", init=False)

    def events(
        self,
        node_ids: Sequence[int],
        num_blocks: int,
        rng: np.random.Generator,
    ) -> List[FaultEvent]:
        _check_rate(self.rate)
        return [
            FaultEvent("flaky", block, node_id, fail_times=self.fail_times)
            for block, node_id in _bernoulli_cells(
                node_ids, num_blocks, self.rate, rng
            )
        ]


@dataclass(frozen=True)
class KillSchedule(FaultSchedule):
    """Kill the run at the end of ``block`` (after its checkpoint)."""

    block: int
    kind: str = field(default="kill", init=False)

    def events(
        self,
        node_ids: Sequence[int],
        num_blocks: int,
        rng: np.random.Generator,
    ) -> List[FaultEvent]:
        if self.block < 0:
            raise ValueError("block must be non-negative")
        return [FaultEvent("kill", self.block)]


@dataclass(frozen=True)
class ExplicitSchedule(FaultSchedule):
    """A literal event list — the fixture-friendly schedule."""

    fault_events: Tuple[FaultEvent, ...]
    kind: str = field(default="explicit", init=False)

    def events(
        self,
        node_ids: Sequence[int],
        num_blocks: int,
        rng: np.random.Generator,
    ) -> List[FaultEvent]:
        return list(self.fault_events)


@dataclass(frozen=True)
class CompiledPlan:
    """A plan resolved against one run's node ids and block count."""

    crashes: Dict[int, Set[int]]  # node_id -> blocks the node is down
    drops: Set[Tuple[int, int]]  # (block, node_id)
    corrupts: Dict[Tuple[int, int], FaultEvent]
    delays: Dict[Tuple[int, int], float]
    flaky: Dict[Tuple[int, int], int]  # (block, node_id) -> fail count
    kills: Set[int]  # blocks after which the run dies

    @property
    def empty(self) -> bool:
        return not (
            self.crashes
            or self.drops
            or self.corrupts
            or self.delays
            or self.flaky
            or self.kills
        )

    def crashed_nodes(self, block: int) -> Set[int]:
        return {
            node_id
            for node_id, blocks in self.crashes.items()
            if block in blocks
        }


_EMPTY_COMPILED = CompiledPlan(
    crashes={}, drops=set(), corrupts={}, delays={}, flaky={}, kills=set()
)


class FaultPlan:
    """A seeded, composable collection of fault schedules."""

    def __init__(
        self, schedules: Sequence[FaultSchedule] = (), seed: int = 0
    ) -> None:
        self.schedules: Tuple[FaultSchedule, ...] = tuple(schedules)
        self.seed = int(seed)

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """The empty plan: the subsystem active, no faults injected."""
        return cls((), seed=seed)

    def compile(
        self, node_ids: Sequence[int], num_blocks: int
    ) -> CompiledPlan:
        """Resolve schedules into lookup tables for one concrete run.

        Each schedule draws from its own named stream
        ``(seed, "faults", index, kind)``, so adding a schedule never
        perturbs the events of the ones before it.
        """
        if not self.schedules:
            return _EMPTY_COMPILED
        factory = RngFactory(self.seed)
        crashes: Dict[int, Set[int]] = {}
        drops: Set[Tuple[int, int]] = set()
        corrupts: Dict[Tuple[int, int], FaultEvent] = {}
        delays: Dict[Tuple[int, int], float] = {}
        flaky: Dict[Tuple[int, int], int] = {}
        kills: Set[int] = set()
        node_order = sorted(node_ids)
        for index, schedule in enumerate(self.schedules):
            rng = factory.stream("faults", index, schedule.kind)
            for event in schedule.events(node_order, num_blocks, rng):
                if event.kind == "kill":
                    kills.add(event.block)
                    continue
                if event.node_id not in node_order:
                    raise ValueError(
                        f"fault event targets unknown node {event.node_id}"
                    )
                key = (event.block, event.node_id)
                if event.kind == "crash":
                    window = crashes.setdefault(event.node_id, set())
                    window.update(
                        range(event.block, event.block + event.duration)
                    )
                elif event.kind == "drop":
                    drops.add(key)
                elif event.kind == "corrupt":
                    corrupts[key] = event
                elif event.kind == "delay":
                    delays[key] = delays.get(key, 0.0) + event.delay_s
                elif event.kind == "flaky":
                    flaky[key] = max(flaky.get(key, 0), event.fail_times)
        return CompiledPlan(
            crashes=crashes,
            drops=drops,
            corrupts=corrupts,
            delays=delays,
            flaky=flaky,
            kills=kills,
        )

    # ------------------------------------------------------------------
    #: spec keys accepted per kind, mapped onto schedule constructor args
    _SPEC_KEYS: Dict[str, Dict[str, Callable[[str], Any]]] = {
        "crash": {"rate": float, "duration": int},
        "drop": {"rate": float},
        "corrupt": {
            "rate": float,
            "mode": str,
            "fraction": float,
            "scale": float,
        },
        "delay": {"rate": float, "delay_s": float},
        "flaky": {"rate": float, "fail_times": int},
        "kill": {"block": int},
    }

    #: typed as schedule factories so ``cls(**kwargs)`` checks statically
    _SPEC_CLASSES: Dict[str, Callable[..., FaultSchedule]] = {
        "crash": CrashSchedule,
        "drop": DropSchedule,
        "corrupt": CorruptSchedule,
        "delay": DelaySchedule,
        "flaky": FlakyWorkerSchedule,
        "kill": KillSchedule,
    }

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a compact CLI spec into a plan.

        Grammar: ``kind:key=value,key=value;kind:...`` — e.g.
        ``"crash:rate=0.2;corrupt:rate=0.1,mode=nan;kill:block=3"``.
        """
        schedules: List[FaultSchedule] = []
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            kind, _, arg_text = part.partition(":")
            kind = kind.strip()
            if kind not in cls._SPEC_CLASSES:
                raise ValueError(
                    f"unknown fault kind '{kind}' "
                    f"(expected one of {sorted(cls._SPEC_CLASSES)})"
                )
            allowed = cls._SPEC_KEYS[kind]
            kwargs: Dict[str, Any] = {}
            for pair in filter(None, (p.strip() for p in arg_text.split(","))):
                key, sep, value = pair.partition("=")
                key = key.strip()
                if not sep or key not in allowed:
                    raise ValueError(
                        f"bad '{kind}' option '{pair}' "
                        f"(expected {sorted(allowed)})"
                    )
                kwargs[key] = allowed[key](value.strip())
            schedules.append(cls._SPEC_CLASSES[kind](**kwargs))
        return cls(schedules, seed=seed)

    def with_seed(self, seed: int) -> "FaultPlan":
        return FaultPlan(self.schedules, seed=seed)

    def describe(self) -> str:
        if not self.schedules:
            return f"FaultPlan(seed={self.seed}, empty)"
        parts = ", ".join(type(s).__name__ for s in self.schedules)
        return f"FaultPlan(seed={self.seed}, [{parts}])"

    __repr__ = describe
