"""Deterministic fault injection and engine resilience.

The paper's operating regime is *edge* deployment — unreliable devices and
links are the norm, not the exception.  This package makes that regime
testable: a seeded :class:`FaultPlan` composes schedules of node crashes,
lost/corrupted/delayed updates and flaky executor workers; a
:class:`ResiliencePolicy` tells the round engine how to absorb them
(bounded retry, straggler timeout, NaN quarantine, participant floor); and
the :class:`FaultInjector` wires the two into
:class:`~repro.engine.RoundEngine` between local steps and aggregation.

The contract throughout: same seed + same plan ⇒ bit-identical results,
across executors and across checkpoint/resume boundaries.  See
``docs/ENGINE.md`` (integration) and ``docs/TESTING.md`` (chaos suite).
"""

from .injector import FaultInjector, RunInterrupted
from .plan import (
    FAULT_KINDS,
    CompiledPlan,
    CorruptSchedule,
    CrashSchedule,
    DelaySchedule,
    DropSchedule,
    ExplicitSchedule,
    FaultEvent,
    FaultPlan,
    FaultSchedule,
    FlakyWorkerSchedule,
    KillSchedule,
)
from .policy import FaultToleranceError, ResiliencePolicy

__all__ = [
    "FAULT_KINDS",
    "CompiledPlan",
    "CorruptSchedule",
    "CrashSchedule",
    "DelaySchedule",
    "DropSchedule",
    "ExplicitSchedule",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSchedule",
    "FaultToleranceError",
    "FlakyWorkerSchedule",
    "KillSchedule",
    "ResiliencePolicy",
    "RunInterrupted",
]
