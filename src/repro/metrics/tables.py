"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as an aligned monospace table (floats to 4 decimals)."""

    def render(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    rendered: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
