"""Evaluation protocols and result formatting."""

from .evaluation import (
    RobustnessReport,
    evaluate_robustness,
    few_shot_sweep,
    target_splits,
)
from .tables import format_table
from .wallclock import WallclockCurve, loss_vs_wallclock

__all__ = [
    "RobustnessReport",
    "evaluate_robustness",
    "few_shot_sweep",
    "target_splits",
    "format_table",
    "WallclockCurve",
    "loss_vs_wallclock",
]
