"""Experiment evaluation protocols.

Implements the paper's target-node testing pipelines:

* :func:`target_splits` — carve K-shot splits for held-out target nodes;
* :func:`few_shot_sweep` — adaptation performance as a function of K
  (Figures 3(c)–(e) vary the target's local dataset size);
* :func:`evaluate_robustness` — clean vs. adversarial performance of an
  initialization after clean-data adaptation (Figure 4 protocol).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..core.adaptation import AdaptationCurve, adapt, evaluate_adaptation
from ..data.dataset import Dataset, FederatedDataset, NodeSplit
from ..nn.losses import accuracy, cross_entropy
from ..nn.modules import Model
from ..nn.parameters import Params, detach

__all__ = [
    "target_splits",
    "few_shot_sweep",
    "RobustnessReport",
    "evaluate_robustness",
]

AttackFn = Callable[[Model, Params, np.ndarray, np.ndarray], np.ndarray]


def target_splits(
    federated: FederatedDataset, target_ids: Sequence[int], k: int
) -> List[NodeSplit]:
    """K-shot splits for the target nodes (skipping nodes with ≤ K samples)."""
    splits: List[NodeSplit] = []
    for idx in target_ids:
        node = federated.nodes[idx]
        if len(node) <= k:
            continue
        splits.append(federated.node_split(idx, k))
    if not splits:
        raise ValueError(
            f"no target node has more than k={k} samples; decrease k"
        )
    return splits


def few_shot_sweep(
    model: Model,
    params: Params,
    federated: FederatedDataset,
    target_ids: Sequence[int],
    ks: Sequence[int],
    alpha: float,
    max_steps: int = 10,
    loss_fn=cross_entropy,
) -> Dict[int, AdaptationCurve]:
    """Adaptation curves for each target-dataset size K."""
    results: Dict[int, AdaptationCurve] = {}
    for k in ks:
        splits = target_splits(federated, target_ids, k)
        results[k] = evaluate_adaptation(
            model, params, splits, alpha, max_steps=max_steps, loss_fn=loss_fn
        )
    return results


@dataclass(frozen=True)
class RobustnessReport:
    """Clean vs. adversarial performance after clean adaptation (Figure 4)."""

    clean_loss: float
    clean_accuracy: float
    adversarial_loss: float
    adversarial_accuracy: float

    @property
    def robustness_gap(self) -> float:
        """Accuracy lost to the attack (smaller is more robust)."""
        return self.clean_accuracy - self.adversarial_accuracy


def evaluate_robustness(
    model: Model,
    params: Params,
    targets: Sequence[NodeSplit],
    alpha: float,
    attack: AttackFn,
    adapt_steps: int = 1,
    loss_fn=cross_entropy,
) -> RobustnessReport:
    """The paper's Figure-4 protocol.

    For each target node: adapt the initialization with *clean* training
    data, then evaluate the adapted model on (a) the clean test set and
    (b) the test set perturbed by ``attack`` (e.g. FGSM at strength ξ).
    """
    if not targets:
        raise ValueError("need at least one target split")
    sums = np.zeros(4)
    for split in targets:
        adapted = adapt(
            model, detach(params), split.train, alpha, steps=adapt_steps,
            loss_fn=loss_fn,
        )
        clean_logits = model.apply(adapted, split.test.x)
        adv_x = attack(model, adapted, split.test.x, split.test.y)
        adv_logits = model.apply(adapted, adv_x)
        sums += np.array(
            [
                loss_fn(clean_logits, split.test.y).item(),
                accuracy(clean_logits, split.test.y),
                loss_fn(adv_logits, split.test.y).item(),
                accuracy(adv_logits, split.test.y),
            ]
        )
    sums /= len(targets)
    return RobustnessReport(
        clean_loss=float(sums[0]),
        clean_accuracy=float(sums[1]),
        adversarial_loss=float(sums[2]),
        adversarial_accuracy=float(sums[3]),
    )
