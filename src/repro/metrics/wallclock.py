"""Wall-clock costing of federated training runs.

Joins a trainer's per-aggregation loss history with the discrete-event
fleet simulator to produce *loss versus wall-clock time* curves — the
metric that actually decides the paper's T0 trade-off at the edge: larger
T0 means fewer (expensive) synchronous rounds per iteration, so early
progress per second is faster, until the client-drift error (Theorem 2)
catches up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..federated.simulation import DeviceProfile, simulate_synchronous_rounds
from ..utils.logging import RunLogger

__all__ = ["WallclockCurve", "loss_vs_wallclock"]


@dataclass(frozen=True)
class WallclockCurve:
    """(seconds, loss) samples of one training run."""

    times: List[float]
    losses: List[float]

    def loss_at(self, budget_s: float) -> Optional[float]:
        """Best loss achieved within a wall-clock budget (None if none)."""
        best: Optional[float] = None
        for t, loss in zip(self.times, self.losses):
            if t > budget_s:
                break
            best = loss if best is None else min(best, loss)
        return best

    def time_to_reach(self, loss_target: float) -> Optional[float]:
        """First time the loss drops to ``loss_target`` (None if never)."""
        for t, loss in zip(self.times, self.losses):
            if loss <= loss_target:
                return t
        return None


def loss_vs_wallclock(
    history: RunLogger,
    t0: int,
    fleet: Sequence[DeviceProfile],
    upload_bytes: int,
    loss_key: str = "global_meta_loss",
    deadline_s: Optional[float] = None,
) -> WallclockCurve:
    """Convert a per-aggregation loss history into a wall-clock curve.

    ``history`` must contain one loss record per aggregation (train with
    ``eval_every=1``); record 0 (the initial loss) is placed at time zero.
    Each aggregation costs one synchronous round of ``t0`` local steps plus
    a full-model upload, timed by the fleet simulator.
    """
    losses = history.series(loss_key)
    if not losses:
        raise ValueError(f"history has no '{loss_key}' records")
    num_rounds = len(losses) - 1
    if num_rounds == 0:
        return WallclockCurve(times=[0.0], losses=list(losses))
    timeline = simulate_synchronous_rounds(
        fleet,
        num_rounds=num_rounds,
        local_steps_per_round=t0,
        upload_bytes=upload_bytes,
        deadline_s=deadline_s,
    )
    times = [0.0] + [outcome.finished_at for outcome in timeline.rounds]
    return WallclockCurve(times=times, losses=list(losses))
