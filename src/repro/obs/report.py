"""Summarize a telemetry JSONL file into text tables.

Backs ``python -m repro.cli report run.jsonl``: reads the records a
:class:`~repro.obs.sink.JsonlFileSink` produced (one metadata header, span
records streamed during the run, metric snapshots from the final flush) and
renders where the time and the bytes went.

Deliberately dependency-free (it re-implements a tiny table formatter rather
than importing :mod:`repro.metrics`) so the reporting path never drags the
training stack into a monitoring context.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

__all__ = ["TelemetrySummary", "load_records", "summarize", "render_report"]


class TelemetrySummary:
    """Parsed + aggregated view of one telemetry file."""

    def __init__(self) -> None:
        self.meta: Optional[dict] = None
        #: span name -> {"count", "total", "max"}
        self.spans: "OrderedDict[str, dict]" = OrderedDict()
        self.counters: List[dict] = []
        self.gauges: List[dict] = []
        self.histograms: List[dict] = []
        self.series: List[dict] = []
        #: event kind -> occurrence count (from the unified event stream)
        self.events: "OrderedDict[str, int]" = OrderedDict()
        self.unknown: int = 0

    @property
    def spans_dropped(self) -> float:
        """Ring-buffer evictions the run exported (0.0 when none)."""
        return sum(
            float(r.get("value", 0.0))
            for r in self.counters
            if r.get("name") == "obs_spans_dropped_total"
        )

    def add(self, record: dict) -> None:
        kind = record.get("type")
        if kind == "meta":
            self.meta = record
        elif kind == "event":
            name = str(record.get("kind", "?"))
            self.events[name] = self.events.get(name, 0) + 1
        elif kind == "span":
            entry = self.spans.setdefault(
                record.get("name", "?"), {"count": 0, "total": 0.0, "max": 0.0}
            )
            duration = float(record.get("duration", 0.0))
            entry["count"] += 1
            entry["total"] += duration
            entry["max"] = max(entry["max"], duration)
        elif kind == "counter":
            self.counters.append(record)
        elif kind == "gauge":
            self.gauges.append(record)
        elif kind == "histogram":
            self.histograms.append(record)
        elif kind == "series":
            self.series.append(record)
        else:
            self.unknown += 1


def load_records(path: str) -> List[dict]:
    """Read a JSONL telemetry file; raises ``ValueError`` on a bad line."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON ({exc.msg})"
                ) from exc
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{line_number}: record is not an object")
            records.append(record)
    return records


def summarize(records: Sequence[dict]) -> TelemetrySummary:
    summary = TelemetrySummary()
    for record in records:
        summary.add(record)
    return summary


def _table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    def render(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.6g}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def _label_suffix(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def render_report(summary: TelemetrySummary) -> str:
    """Render the whole summary as sectioned text tables."""
    sections: List[str] = []

    if summary.meta is not None:
        meta = summary.meta
        lines = ["run metadata"]
        for key in ("timestamp_iso", "git_sha", "seed"):
            if meta.get(key) is not None:
                lines.append(f"  {key}: {meta[key]}")
        config = meta.get("config") or {}
        if config:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(config.items()))
            lines.append(f"  config: {rendered}")
        sections.append("\n".join(lines))

    dropped = summary.spans_dropped
    if dropped:
        sections.append(
            f"WARNING: {int(dropped)} spans dropped from the trace ring "
            "buffer (obs_spans_dropped_total) — the span table below is "
            "incomplete; raise Telemetry(span_ring_size=...)"
        )

    if summary.events:
        rows = list(summary.events.items())
        rows.sort(key=lambda r: r[1], reverse=True)
        sections.append("events\n" + _table(["kind", "count"], rows))

    if summary.spans:
        rows = [
            [name, s["count"], s["total"], s["total"] / s["count"], s["max"]]
            for name, s in summary.spans.items()
        ]
        rows.sort(key=lambda r: r[2], reverse=True)
        sections.append(
            "spans\n"
            + _table(["name", "count", "total_s", "mean_s", "max_s"], rows)
        )

    if summary.counters:
        rows = [
            [r["name"] + _label_suffix(r.get("labels", {})), r.get("value", 0.0)]
            for r in summary.counters
        ]
        sections.append("counters\n" + _table(["name", "value"], rows))

    if summary.gauges:
        rows = [
            [r["name"] + _label_suffix(r.get("labels", {})), r.get("value", 0.0)]
            for r in summary.gauges
        ]
        sections.append("gauges\n" + _table(["name", "value"], rows))

    if summary.histograms:
        rows = []
        for r in summary.histograms:
            count = r.get("count", 0)
            total = r.get("sum", 0.0)
            mean = total / count if count else 0.0
            rows.append(
                [r["name"] + _label_suffix(r.get("labels", {})), count, total, mean]
            )
        sections.append(
            "histograms\n" + _table(["name", "count", "sum", "mean"], rows)
        )

    if summary.series:
        rows = []
        for r in summary.series:
            values = r.get("values", [])
            rows.append(
                [
                    r["name"] + _label_suffix(r.get("labels", {})),
                    len(values),
                    values[0] if values else "-",
                    values[-1] if values else "-",
                ]
            )
        sections.append(
            "series\n" + _table(["name", "points", "first", "last"], rows)
        )

    if not sections:
        return "telemetry file contains no records"
    return "\n\n".join(sections)
