"""The unified run event log: one ordered stream per training run.

Before this module existed a run's story was scattered: loss curves in the
registry's series, timing in span records, fault counts in counters, and
checkpoint state on disk.  The event log merges the *causality* — what
happened, in what order, to which node — into a single versioned stream of
``{"type": "event", ...}`` records emitted through the same
:class:`~repro.obs.sink.TelemetrySink` as everything else, so a run's
JSONL file doubles as its ``events.jsonl``.

Schema (version :data:`EVENT_SCHEMA_VERSION`)::

    {"type": "event", "v": 2, "seq": 17, "kind": "round_end",
     "block": 3, "t": 20, "participants": 9}

``seq`` is a per-run monotone sequence number assigned at emission time, so
the stream is totally ordered even if records are later merged or sorted.
``kind`` must be one of :data:`EVENT_KINDS`; every other field is
kind-specific (catalogued in ``docs/OBSERVABILITY.md``).  Versioning
policy: additive field changes keep ``v``; renaming/removing a field,
changing a field's meaning, or extending the closed :data:`EVENT_KINDS`
set bumps :data:`EVENT_SCHEMA_VERSION` (an old reader must skip kinds it
has no semantics for, not misfile them), and readers must skip events with
a newer version than they understand.

Version history: v1 — the original engine/fault lifecycle kinds;
v2 — the ``fleet_*`` kinds emitted by the event-driven
:class:`~repro.federated.fleet.FleetSimulator`.

The engine and the fault subsystem treat :class:`EventLog` as their single
event bus: the :class:`~repro.engine.round_engine.RoundEngine` emits the
run/round lifecycle, executors emit per-node results and errors, and the
:class:`~repro.faults.injector.FaultInjector` emits every fault decision —
all through ``telemetry.events``, which is a shared no-op when telemetry
is off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

#: One telemetry record — JSON-shaped, keys are field names.
JsonDict = Dict[str, Any]

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_KINDS",
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "RunRecord",
    "read_events",
]

#: Bump on any non-additive change to event record fields or kinds.
EVENT_SCHEMA_VERSION = 2

#: Closed set of event kinds (typos fail loudly at the emission site).
EVENT_KINDS = frozenset(
    {
        "run_start",
        "run_end",
        "round_start",
        "round_end",
        "node_result",
        "node_error",
        "fault_injected",
        "retry",
        "quarantine",
        "straggler_dropped",
        "checkpoint",
        "resume",
        "cache_hit",
        "rng_ledger",
        "vectorized_block",
        # v2: the event-driven fleet simulator's round lifecycle
        "fleet_round_start",
        "fleet_dispatch",
        "fleet_completion",
        "fleet_timeout",
        "fleet_flush",
        "fleet_round_end",
    }
)


class EventLog:
    """Orders and emits event records through a sink's ``emit``."""

    def __init__(self, emit: Callable[[JsonDict], None]) -> None:
        self._emit = emit
        self._seq = 0

    def emit(self, kind: str, **fields: object) -> None:
        """Append one event to the run stream (raises on unknown kind)."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind '{kind}' (known: {sorted(EVENT_KINDS)})"
            )
        record: JsonDict = {
            "type": "event",
            "v": EVENT_SCHEMA_VERSION,
            "seq": self._seq,
            "kind": kind,
        }
        record.update(fields)
        self._seq += 1
        self._emit(record)


class NullEventLog:
    """Disabled event log: the hot-path twin when telemetry is off."""

    __slots__ = ()

    def emit(self, kind: str, **fields: object) -> None:
        return None


NULL_EVENT_LOG = NullEventLog()


def read_events(records: Sequence[JsonDict]) -> List[JsonDict]:
    """Extract this reader's understood event records, in ``seq`` order.

    Events carrying a newer schema version than this build understands are
    skipped (the versioning policy above), never misinterpreted.
    """
    events = [
        r
        for r in records
        if r.get("type") == "event"
        and int(r.get("v", 0)) <= EVENT_SCHEMA_VERSION
    ]
    events.sort(key=lambda r: int(r.get("seq", 0)))
    return events


@dataclass
class RunRecord:
    """One run's telemetry JSONL parsed into its constituent streams.

    The dashboard's (and any analysis tool's) single entry point: metadata
    header, ordered events, span records, and final metric snapshots, all
    from one file — no cross-referencing of separate outputs.
    """

    meta: Optional[JsonDict] = None
    events: List[JsonDict] = field(default_factory=list)
    spans: List[JsonDict] = field(default_factory=list)
    counters: List[JsonDict] = field(default_factory=list)
    gauges: List[JsonDict] = field(default_factory=list)
    histograms: List[JsonDict] = field(default_factory=list)
    series: List[JsonDict] = field(default_factory=list)

    @classmethod
    def from_records(cls, records: Sequence[JsonDict]) -> "RunRecord":
        run = cls()
        buckets: Dict[str, List[JsonDict]] = {
            "span": run.spans,
            "counter": run.counters,
            "gauge": run.gauges,
            "histogram": run.histograms,
            "series": run.series,
        }
        for record in records:
            kind = record.get("type")
            if kind == "meta":
                run.meta = record
            elif kind in buckets:
                buckets[kind].append(record)
        run.events = read_events(records)
        return run

    # -- convenience views used by the dashboard ------------------------
    def events_of(self, *kinds: str) -> List[JsonDict]:
        wanted = set(kinds)
        return [e for e in self.events if e.get("kind") in wanted]

    def counter_value(self, name: str, **labels: str) -> float:
        """Latest exported value of one counter (0.0 when absent)."""
        value = 0.0
        for record in self.counters:
            if record.get("name") != name:
                continue
            if labels and record.get("labels", {}) != labels:
                continue
            value = float(record.get("value", 0.0))
        return value

    def find_series(self, name: str) -> Optional[JsonDict]:
        for record in self.series:
            if record.get("name") == name:
                return record
        return None
