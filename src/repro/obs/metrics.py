"""Metric primitives and the registry.

The registry follows the Prometheus data model — :class:`Counter` (monotone),
:class:`Gauge` (last value), :class:`Histogram` (fixed cumulative buckets) —
plus a :class:`Series` type that keeps an explicit ``(step, value)`` history,
which Prometheus delegates to scraping but an offline training run needs to
retain itself (loss curves, per-round ratios).

Metrics are identified by ``(name, labels)``; asking the registry for the
same identity twice returns the same instance, so instrumentation sites can
call ``registry.counter("fl_rounds_total", algorithm="fedml").inc()`` without
caching handles.  The registry exports two ways:

* :meth:`MetricRegistry.snapshot` — a list of JSON-ready dicts, one per
  metric, suitable for a JSONL telemetry sink;
* :meth:`MetricRegistry.to_prometheus` — the text exposition format, which
  :func:`parse_prometheus` can read back (used by the round-trip tests and
  by anyone pointing a real scraper at a dumped file).

Arena metric family (exported by ``repro.autodiff.fastpath.to_registry``
and documented in OBSERVABILITY.md): ``autodiff_arena_slots`` /
``autodiff_arena_bytes`` / ``autodiff_arena_peak_bytes`` gauges track the
compiled backward's live buffer-arena footprint, and the
``autodiff_arena_reuse_total`` counter counts slot reuses by compiled
executions; ``autodiff_allocations_total`` (from
``TapeProfiler.to_registry``) counts hot-path backward allocations, which
a warmed compiled replay drives to zero.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricRegistry",
    "DEFAULT_BUCKETS",
    "parse_prometheus",
]

#: Default histogram bucket upper edges (seconds-scale, log-spaced).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(items: LabelItems, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(items) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Counter:
    """A monotonically increasing count (events, bytes, drops)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount

    def snapshot(self) -> dict:
        return {
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }

    def expose(self) -> List[str]:
        return [f"{self.name}{_render_labels(self.labels)} {_format(self.value)}"]


class Gauge:
    """A value that can go up and down (participants, queue depth)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }

    def expose(self) -> List[str]:
        return [f"{self.name}{_render_labels(self.labels)} {_format(self.value)}"]


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus ``le`` semantics).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; an implicit
    ``+Inf`` bucket equals ``count``.  Buckets are fixed at construction —
    no rebinning — so merging exports across runs stays well-defined.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.labels = labels
        self.buckets = edges
        self.bucket_counts = [0] * len(edges)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.bucket_counts[i] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }

    def expose(self) -> List[str]:
        lines = []
        for edge, cumulative in zip(self.buckets, self.bucket_counts):
            tag = _render_labels(self.labels, [("le", _format(edge))])
            lines.append(f"{self.name}_bucket{tag} {cumulative}")
        inf_tag = _render_labels(self.labels, [("le", "+Inf")])
        lines.append(f"{self.name}_bucket{inf_tag} {self.count}")
        lines.append(f"{self.name}_sum{_render_labels(self.labels)} {_format(self.sum)}")
        lines.append(f"{self.name}_count{_render_labels(self.labels)} {self.count}")
        return lines


class Series:
    """An explicit ``(step, value)`` time series (loss curves, ratios)."""

    kind = "series"
    __slots__ = ("name", "labels", "steps", "values")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.steps: List[float] = []
        self.values: List[float] = []

    def observe(self, step: float, value: float) -> None:
        self.steps.append(float(step))
        self.values.append(float(value))

    def last(self) -> float:
        if not self.values:
            raise KeyError(f"series '{self.name}' is empty")
        return self.values[-1]

    def snapshot(self) -> dict:
        return {
            "type": "series",
            "name": self.name,
            "labels": dict(self.labels),
            "steps": list(self.steps),
            "values": list(self.values),
        }

    def expose(self) -> List[str]:
        # Prometheus has no history type; expose the latest sample only.
        if not self.values:
            return []
        return [f"{self.name}{_render_labels(self.labels)} {_format(self.values[-1])}"]


class MetricRegistry:
    """Get-or-create home for every metric of one run."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}

    # -- accessors ------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_items(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(
                    f"metric '{name}' already registered as {existing.kind}"
                )
            return existing
        metric = Histogram(
            name, key[1], buckets=DEFAULT_BUCKETS if buckets is None else buckets
        )
        self._metrics[key] = metric
        return metric

    def series(self, name: str, **labels: str) -> Series:
        return self._get(Series, name, labels)

    def _get(self, cls, name: str, labels: Dict[str, str]):
        key = (name, _label_items(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric '{name}' already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, key[1])
        self._metrics[key] = metric
        return metric

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def get(self, name: str, **labels: str):
        """Return the metric if registered, else ``None`` (no creation)."""
        return self._metrics.get((name, _label_items(labels)))

    # -- export ---------------------------------------------------------
    def snapshot(self) -> List[dict]:
        """JSON-ready records for every metric, in registration order."""
        return [m.snapshot() for m in self._metrics.values()]

    def to_prometheus(self) -> str:
        """Text exposition format, grouped by metric name with TYPE lines."""
        lines: List[str] = []
        typed: set = set()
        for metric in self._metrics.values():
            if metric.name not in typed:
                kind = "gauge" if metric.kind == "series" else metric.kind
                lines.append(f"# TYPE {metric.name} {kind}")
                typed.add(metric.name)
            lines.extend(metric.expose())
        return "\n".join(lines) + ("\n" if lines else "")


def _format(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse text exposition back into ``{'name{k="v"}': value}``.

    Inverse of :meth:`MetricRegistry.to_prometheus` for the sample lines it
    emits (comments are skipped); used to verify the format round-trips.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, raw = line.rpartition(" ")
        value = float("inf") if raw == "+Inf" else float(raw)
        samples[series] = value
    return samples
