"""Telemetry sinks: where records go once produced.

A sink receives plain-dict records (spans as they close, metric snapshots on
flush, one metadata header per run) and is responsible for persistence.  The
protocol is two methods — ``emit(record)`` and ``close()`` — so adding a
network or database exporter later does not touch the instrumentation.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol
except ImportError:  # pragma: no cover - ancient interpreter fallback
    Protocol = object  # type: ignore[assignment]

__all__ = ["TelemetrySink", "JsonlFileSink", "StdoutSink", "MemorySink"]


class TelemetrySink(Protocol):
    """Anything that can accept telemetry records."""

    def emit(self, record: dict) -> None: ...

    def close(self) -> None: ...


class JsonlFileSink:
    """Appends one JSON object per line to a file (created/truncated)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")

    def emit(self, record: dict) -> None:
        if self._handle is None:
            raise RuntimeError(f"sink for '{self.path}' is closed")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class StdoutSink:
    """Prints each record as a JSON line — handy for piping into jq."""

    def emit(self, record: dict) -> None:
        print(json.dumps(record, sort_keys=True))

    def close(self) -> None:
        return None


class MemorySink:
    """Keeps records in a list; the test and notebook sink."""

    def __init__(self) -> None:
        self.records: List[dict] = []
        self.closed = False

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True

    def of_type(self, record_type: str) -> List[dict]:
        return [r for r in self.records if r.get("type") == record_type]
