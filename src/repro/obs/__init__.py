"""Observability: metric registry, tracing spans, telemetry sinks, reports.

Everything here defaults *off*: trainers, the platform, and the simulator
accept an optional :class:`Telemetry` and fall back to the shared no-op
implementation when none is given, so the public training APIs are unchanged
unless a collector is passed.  See ``docs/OBSERVABILITY.md`` for the metric
name/label schema and the JSONL record format.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Series,
    parse_prometheus,
)
from .dashboard import render_dashboard
from .events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    NULL_EVENT_LOG,
    EventLog,
    NullEventLog,
    RunRecord,
    read_events,
)
from .regress import Regression, run_gate
from .report import load_records, render_report, summarize
from .sink import JsonlFileSink, MemorySink, StdoutSink, TelemetrySink
from .telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    resolve,
    run_metadata,
)
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    TraceContext,
    Tracer,
    WorkerTrace,
    reparent,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricRegistry",
    "DEFAULT_BUCKETS",
    "parse_prometheus",
    "Span",
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceContext",
    "WorkerTrace",
    "reparent",
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "RunRecord",
    "read_events",
    "render_dashboard",
    "Regression",
    "run_gate",
    "TelemetrySink",
    "JsonlFileSink",
    "StdoutSink",
    "MemorySink",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "resolve",
    "run_metadata",
    "load_records",
    "summarize",
    "render_report",
]
