"""Perf-regression gate over the benchmark harness's JSON outputs.

The benchmarks (``benchmarks/bench_*.py``) write flat JSON result files
(``BENCH_engine.json``, ``BENCH_autodiff.json``) on every CI run, but until
this module nothing *read* them — a 3× slowdown would sail through review
as long as tests stayed green.  ``repro bench-check`` closes that gap:

* ``benchmarks/baselines.json`` (committed) records, per benchmark file,
  the expected value of each gated metric with a tolerance band;
* ``repro bench-check BENCH_engine.json ... --baseline benchmarks/baselines.json``
  compares fresh results against those bands and exits non-zero on any
  regression, which is what makes it a CI gate;
* a benchmark file with no baseline entry is *seeded* — its gated metrics
  are written into the baseline file and the run passes — so the gate
  bootstraps itself on first contact with a new benchmark;
* ``--update`` rewrites the baseline from the current results (the
  intentional-change escape hatch; the diff shows up in review).

What gets gated is deliberately machine-portable: **ratios** (``speedup``)
and **flags** (``deterministic``, ``bit_identical``), plus absolute
throughput with a wide band.  Tolerances are fractional: a ``higher``
metric fails below ``value * (1 - tolerance)``, a ``lower`` metric above
``value * (1 + tolerance)``, an ``exact`` metric on any change.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "BASELINE_VERSION",
    "Regression",
    "gated_metrics",
    "check_result",
    "load_baselines",
    "save_baselines",
    "run_gate",
]

#: bump on any non-additive change to the baselines.json layout
BASELINE_VERSION = 1

#: fractional tolerance for ratio metrics (speedup): fail below 50% of base
RATIO_TOLERANCE = 0.5
#: fractional tolerance for absolute throughput: CI machines vary a lot
THROUGHPUT_TOLERANCE = 0.6


@dataclass(frozen=True)
class Regression:
    """One gated metric outside its tolerance band."""

    bench: str
    metric: str
    message: str

    def __str__(self) -> str:
        return f"{self.bench}: {self.metric}: {self.message}"


def gated_metrics(result: dict) -> Dict[str, dict]:
    """Derive the gate spec for one benchmark result (used when seeding).

    Flags gate exactly, ``speedup`` (and any ``*_speedup`` ratio, e.g. the
    compiled-backward ``replay_speedup``) gates as a ratio, ``*_per_sec``
    throughput gates with the wide band.  Everything else (configuration
    echoes like ``nodes``/``cpus``, nested stats) is informational and
    stays ungated.
    """
    spec: Dict[str, dict] = {}
    for key, value in result.items():
        if isinstance(value, bool):
            spec[key] = {"value": value, "direction": "exact"}
        elif (
            key == "speedup" or key.endswith("_speedup")
        ) and isinstance(value, (int, float)):
            spec[key] = {
                "value": value,
                "direction": "higher",
                "tolerance": RATIO_TOLERANCE,
            }
        elif key.endswith("_per_sec") and isinstance(value, (int, float)):
            spec[key] = {
                "value": value,
                "direction": "higher",
                "tolerance": THROUGHPUT_TOLERANCE,
            }
    return spec


def check_result(
    bench: str, result: dict, entry: dict
) -> List[Regression]:
    """Compare one benchmark result against its baseline entry."""
    failures: List[Regression] = []
    for metric, spec in sorted(entry.get("metrics", {}).items()):
        if metric not in result:
            failures.append(
                Regression(
                    bench, metric, "metric missing from benchmark output"
                )
            )
            continue
        current = result[metric]
        base = spec["value"]
        direction = spec.get("direction", "higher")
        if direction == "exact":
            if current != base:
                failures.append(
                    Regression(
                        bench, metric, f"expected {base!r}, got {current!r}"
                    )
                )
            continue
        tolerance = float(spec.get("tolerance", RATIO_TOLERANCE))
        current_f, base_f = float(current), float(base)
        if direction == "higher":
            floor = base_f * (1.0 - tolerance)
            if current_f < floor:
                failures.append(
                    Regression(
                        bench,
                        metric,
                        f"{current_f:.4g} below floor {floor:.4g} "
                        f"(baseline {base_f:.4g}, tolerance "
                        f"{tolerance:.0%})",
                    )
                )
        elif direction == "lower":
            ceiling = base_f * (1.0 + tolerance)
            if current_f > ceiling:
                failures.append(
                    Regression(
                        bench,
                        metric,
                        f"{current_f:.4g} above ceiling {ceiling:.4g} "
                        f"(baseline {base_f:.4g}, tolerance "
                        f"{tolerance:.0%})",
                    )
                )
        else:
            failures.append(
                Regression(
                    bench, metric, f"unknown direction '{direction}'"
                )
            )
    return failures


def load_baselines(path: str) -> dict:
    """Read (or initialise) the committed baseline file."""
    if not os.path.exists(path):
        return {"version": BASELINE_VERSION, "benchmarks": {}}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    version = int(data.get("version", 0))
    if version > BASELINE_VERSION:
        raise ValueError(
            f"{path}: baseline version {version} is newer than this "
            f"build understands ({BASELINE_VERSION})"
        )
    data.setdefault("benchmarks", {})
    return data


def save_baselines(path: str, data: dict) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def run_gate(
    bench_paths: Sequence[str],
    baseline_path: str,
    update: bool = False,
) -> Tuple[List[Regression], List[str]]:
    """The ``repro bench-check`` core: compare, seed, optionally update.

    Returns ``(regressions, report_lines)``; the CLI exits non-zero when
    ``regressions`` is non-empty.  Seeding and ``--update`` both rewrite
    ``baseline_path`` so the change lands in the working tree for review.
    """
    baselines = load_baselines(baseline_path)
    entries: Dict[str, dict] = baselines["benchmarks"]
    failures: List[Regression] = []
    lines: List[str] = []
    dirty = False
    for path in bench_paths:
        bench = os.path.basename(path)
        if not os.path.exists(path):
            failures.append(
                Regression(bench, "-", f"benchmark output {path} not found")
            )
            continue
        with open(path, "r", encoding="utf-8") as handle:
            result = json.load(handle)
        if bench not in entries or update:
            entries[bench] = {"metrics": gated_metrics(result)}
            dirty = True
            verb = "updated" if bench in entries and update else "seeded"
            lines.append(
                f"{bench}: {verb} baseline "
                f"({len(entries[bench]['metrics'])} gated metrics)"
            )
            continue
        bench_failures = check_result(bench, result, entries[bench])
        failures.extend(bench_failures)
        gated = len(entries[bench].get("metrics", {}))
        if bench_failures:
            for failure in bench_failures:
                lines.append(f"REGRESSION {failure}")
        else:
            lines.append(f"{bench}: {gated} gated metrics within tolerance")
    if dirty:
        save_baselines(baseline_path, baselines)
        lines.append(f"baseline written to {baseline_path}")
    return failures, lines
