"""The telemetry facade the rest of the codebase talks to.

Instrumented code takes an optional ``telemetry`` argument and resolves it
with :func:`resolve`::

    tel = resolve(telemetry)          # Telemetry | None -> Telemetry-like
    with tel.span("round"):
        tel.counter("fl_rounds_total", algorithm="fedml").inc()

When no telemetry was passed, :data:`NULL_TELEMETRY` comes back: every call
is a no-op against shared singletons, so the disabled path costs a couple of
attribute lookups per instrumentation site (guarded by the overhead test in
``tests/obs``).  When a real :class:`Telemetry` is passed, spans stream to
its sink as they close and metric state is exported on :meth:`Telemetry.flush`.

The metric-name/label schema is documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import subprocess
import time
from typing import Optional

from .events import NULL_EVENT_LOG, EventLog
from .metrics import MetricRegistry
from .sink import MemorySink, TelemetrySink
from .tracing import NULL_TRACER, SpanRecord, TraceContext, Tracer

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "resolve",
    "run_metadata",
]


def git_sha() -> Optional[str]:
    """Best-effort current commit SHA; ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_metadata(
    config: Optional[dict] = None, seed: Optional[int] = None
) -> dict:
    """The reproducibility header written as the first record of a run."""
    return {
        "type": "meta",
        "timestamp": time.time(),
        "timestamp_iso": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        "git_sha": git_sha(),
        "seed": seed,
        "config": config or {},
    }


class Telemetry:
    """Bundles a metric registry, a tracer, and a sink for one run."""

    enabled = True

    def __init__(
        self,
        sink: Optional[TelemetrySink] = None,
        registry: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
        span_ring_size: int = 4096,
        node_fingerprints: bool = False,
    ) -> None:
        #: when set, executors attach a ``params_fp`` content hash to every
        #: ``node_result`` event (used by ``repro check-determinism`` to
        #: localize a divergence; off by default — hashing costs time).
        self.node_fingerprints = node_fingerprints
        self.sink = sink if sink is not None else MemorySink()
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(ring_size=span_ring_size, on_close=self._emit_span)
        )
        #: the run's ordered event stream (see :mod:`repro.obs.events`)
        self.events = EventLog(self.sink.emit)
        self._closed = False
        self._dropped_exported = 0

    # -- tracing --------------------------------------------------------
    def span(self, name: str, **attributes: object):
        return self.tracer.span(name, **attributes)

    def trace_context(self, profile_tape: bool = False) -> TraceContext:
        """Current trace position, picklable for executor workers."""
        return TraceContext.capture(self.tracer, profile_tape=profile_tape)

    def ingest_span(self, record: SpanRecord) -> None:
        """Adopt a re-parented worker span: ring buffer + sink stream."""
        self.tracer.ingest(record)

    def _emit_span(self, record: SpanRecord) -> None:
        self.sink.emit(record.to_dict())

    # -- metrics (delegate to the registry) -----------------------------
    def counter(self, name: str, **labels: str):
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: str):
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, buckets=None, **labels: str):
        return self.registry.histogram(name, buckets=buckets, **labels)

    def series(self, name: str, **labels: str):
        return self.registry.series(name, **labels)

    # -- lifecycle ------------------------------------------------------
    def emit_metadata(
        self, config: Optional[dict] = None, seed: Optional[int] = None
    ) -> None:
        self.sink.emit(run_metadata(config=config, seed=seed))

    def emit(self, record: dict) -> None:
        """Pass an arbitrary record straight through to the sink."""
        self.sink.emit(record)

    def flush(self) -> None:
        """Export the current metric state to the sink (one record each)."""
        # Surface ring-buffer eviction before snapshotting so the dropped
        # count rides along in the export.  Incremental (delta since the
        # last flush) so repeated flushes never double-count.
        dropped = self.tracer.spans_dropped
        if dropped > self._dropped_exported:
            self.registry.counter("obs_spans_dropped_total").inc(
                dropped - self._dropped_exported
            )
            self._dropped_exported = dropped
        for record in self.registry.snapshot():
            self.sink.emit(record)

    def close(self) -> None:
        """Flush and close the sink; safe to call more than once."""
        if self._closed:
            return
        self.flush()
        self.sink.close()
        self._closed = True


class _NullMetric:
    """Shared do-nothing counter/gauge/histogram/series."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def add(self, amount: float) -> None:
        return None

    def observe(self, *args: float) -> None:
        return None


class NullTelemetry:
    """Disabled telemetry: the default for every instrumented code path."""

    enabled = False
    node_fingerprints = False
    __slots__ = ()
    _metric = _NullMetric()
    tracer = NULL_TRACER
    events = NULL_EVENT_LOG

    def span(self, name: str, **attributes: object):
        return NULL_TRACER._span

    def trace_context(self, profile_tape: bool = False) -> None:
        """Disabled tracing propagates as ``None`` (workers skip capture)."""
        return None

    def ingest_span(self, record: SpanRecord) -> None:
        return None

    def counter(self, name: str, **labels: str) -> _NullMetric:
        return self._metric

    def gauge(self, name: str, **labels: str) -> _NullMetric:
        return self._metric

    def histogram(self, name: str, buckets=None, **labels: str) -> _NullMetric:
        return self._metric

    def series(self, name: str, **labels: str) -> _NullMetric:
        return self._metric

    def emit_metadata(self, config=None, seed=None) -> None:
        return None

    def emit(self, record: dict) -> None:
        return None

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None


NULL_TELEMETRY = NullTelemetry()


def resolve(telemetry: Optional[Telemetry]) -> "Telemetry | NullTelemetry":
    """Map ``None`` (telemetry off) to the shared no-op implementation."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
