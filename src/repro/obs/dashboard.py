"""Self-contained HTML dashboard for one training run.

``repro report --html`` feeds a run's telemetry JSONL (parsed into a
:class:`~repro.obs.events.RunRecord`) through :func:`render_dashboard` and
gets back a single HTML file with zero external assets: inline SVG charts,
inline CSS, system fonts.  It renders whatever streams the run actually
produced and skips sections whose data is absent, so a metrics-only run
still gets a useful page.

Sections (data permitting):

* a KPI row — rounds, rounds/sec, communication totals, fast-path hit
  rate, fault/retry totals, with a visible warning when spans were dropped
  from the trace ring buffer;
* loss / accuracy / uplink curves from the run's logged series;
* a node × block duration heatmap built from ``node_result`` events;
* a fault & lifecycle timeline (fault kinds, retries, quarantines,
  checkpoints) from the unified event stream;
* the full history table (also the accessibility fallback for every
  chart — values never live in color alone).

Design notes: single y-axis per chart, 2px lines, ≥8px end markers with a
surface ring, hairline gridlines, sequential one-hue ramp for magnitude,
categorical hues assigned in fixed slot order, text in ink tokens (never
series colors), dark mode via ``prefers-color-scheme`` with dedicated dark
color steps.
"""

from __future__ import annotations

import html as _html
import math
from typing import Dict, List, Sequence, Tuple

from .events import RunRecord

__all__ = ["render_dashboard"]

#: categorical slots, light / dark steps (fixed order — never cycled)
_CATEGORICAL = [
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
    ("#eda100", "#c98500"),  # yellow
    ("#e87ba4", "#d55181"),  # magenta
    ("#008300", "#008300"),  # green
    ("#4a3aa7", "#9085e9"),  # violet
    ("#e34948", "#e66767"),  # red
]

#: one-hue sequential ramp (blue 150→650), light→dark = low→high
_SEQ_RAMP = [
    "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
]

#: fixed row order (and categorical slot assignment) for the timeline
_TIMELINE_KINDS = [
    ("fault_injected", "faults"),
    ("retry", "retries"),
    ("node_error", "node errors"),
    ("straggler_dropped", "stragglers"),
    ("quarantine", "quarantines"),
    ("checkpoint", "checkpoints"),
    ("resume", "resumes"),
    # Fleet runs (dispatch/completion are too dense for a dot row; the
    # sparse lifecycle kinds carry the story)
    ("fleet_timeout", "fleet timeouts"),
    ("fleet_flush", "fleet flushes"),
]

_CSS = """
body { margin: 0; background: var(--page); }
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --good: #0ca30c; --warn: #fab219; --crit: #d03b3b;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7; --series-8: #e34948;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--ink); max-width: 1080px; margin: 0 auto; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --ring: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9; --series-8: #e66767;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
.subtitle { color: var(--ink-2); font-size: 13px; margin-bottom: 20px; }
.banner {
  background: var(--surface-1); border: 1px solid var(--crit);
  border-radius: 8px; padding: 10px 14px; margin: 0 0 16px;
  font-size: 13px; color: var(--ink);
}
.kpis { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 12px 16px; min-width: 120px;
}
.tile .label { font-size: 12px; color: var(--ink-2); }
.tile .value { font-size: 24px; font-weight: 600; margin-top: 2px; }
.tile .note { font-size: 11px; color: var(--muted); margin-top: 2px; }
.charts { display: flex; flex-wrap: wrap; gap: 16px; }
figure {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 12px 16px 8px; margin: 0;
}
figcaption { font-size: 13px; font-weight: 600; margin-bottom: 6px; }
figcaption .sub { font-weight: 400; color: var(--ink-2); }
svg text { font-family: inherit; font-size: 10px; fill: var(--muted);
           font-variant-numeric: tabular-nums; }
svg .endlabel { fill: var(--ink-2); font-weight: 600; }
svg .rowlabel { fill: var(--ink-2); }
details { margin-top: 20px; }
summary { cursor: pointer; font-size: 13px; color: var(--ink-2); }
table { border-collapse: collapse; font-size: 12px; margin-top: 8px;
        background: var(--surface-1); }
th, td { padding: 4px 10px; text-align: right; border-bottom: 1px solid
         var(--grid); font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
footer { margin-top: 24px; font-size: 11px; color: var(--muted); }
"""


def _esc(text: object) -> str:
    return _html.escape(str(text))


def _compact(value: float) -> str:
    """1,284 / 12.9K / 4.2M style auto-compact number rendering."""
    v = float(value)
    for cut, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(v) >= cut:
            return f"{v / cut:.1f}{suffix}"
    if v == int(v):
        return f"{int(v):,}"
    return f"{v:.4g}"


def _nice_ticks(lo: float, hi: float, n: int = 4) -> List[float]:
    """~n round-number ticks covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(n, 1)
    mag = 10.0 ** math.floor(math.log10(raw))
    step = next(
        s * mag for s in (1.0, 2.0, 2.5, 5.0, 10.0) if s * mag >= raw
    )
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-12 * span:
        ticks.append(round(t, 10))
        t += step
    return ticks


def _stat_tile(label: str, value: str, note: str = "") -> str:
    note_html = f'<div class="note">{_esc(note)}</div>' if note else ""
    return (
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{_esc(value)}</div>{note_html}</div>'
    )


def _line_chart(
    title: str,
    sub: str,
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    color: str = "var(--series-1)",
    width: int = 460,
    height: int = 200,
) -> str:
    """Single-series line chart: 2px line, ringed end marker, end label."""
    pad_l, pad_r, pad_t, pad_b = 46, 58, 10, 22
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi == y_lo:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
    x_span = (x_hi - x_lo) or 1.0

    def sx(x: float) -> float:
        return pad_l + (x - x_lo) / x_span * plot_w

    def sy(y: float) -> float:
        return pad_t + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="{_esc(title)}">'
    ]
    for tick in _nice_ticks(y_lo, y_hi):
        y = sy(tick)
        parts.append(
            f'<line x1="{pad_l}" y1="{y:.1f}" x2="{width - pad_r}" '
            f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{pad_l - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_compact(tick)}</text>'
        )
    base_y = pad_t + plot_h
    parts.append(
        f'<line x1="{pad_l}" y1="{base_y}" x2="{width - pad_r}" '
        f'y2="{base_y}" stroke="var(--axis)" stroke-width="1"/>'
    )
    for tick in _nice_ticks(x_lo, x_hi, 5):
        parts.append(
            f'<text x="{sx(tick):.1f}" y="{base_y + 14}" '
            f'text-anchor="middle">{_compact(tick)}</text>'
        )
    points = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys))
    parts.append(
        f'<polyline points="{points}" fill="none" stroke="{color}" '
        f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
    )
    # hover targets: an invisible widened dot per sample with a tooltip
    for x, y in zip(xs, ys):
        parts.append(
            f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="8" '
            f'fill="transparent"><title>t={_compact(x)}: '
            f"{_compact(y)}</title></circle>"
        )
    ex, ey = sx(xs[-1]), sy(ys[-1])
    parts.append(
        f'<circle cx="{ex:.1f}" cy="{ey:.1f}" r="4" fill="{color}" '
        f'stroke="var(--surface-1)" stroke-width="2"/>'
        f'<text class="endlabel" x="{ex + 8:.1f}" y="{ey + 3:.1f}">'
        f"{_compact(ys[-1])}</text></svg>"
    )
    return (
        f"<figure><figcaption>{_esc(title)} "
        f'<span class="sub">{_esc(sub)}</span></figcaption>'
        + "".join(parts)
        + "</figure>"
    )


def _heatmap(durations: Dict[Tuple[int, int], float]) -> str:
    """Node × block duration grid, one-hue sequential fill, 2px gaps."""
    nodes = sorted({n for n, _ in durations})
    blocks = sorted({b for _, b in durations})
    hi = max(durations.values()) or 1.0
    cell, gap = 22, 2
    pad_l, pad_t, pad_b = 46, 6, 20
    width = pad_l + len(blocks) * (cell + gap) + 12
    height = pad_t + len(nodes) * (cell + gap) + pad_b
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="per-node durations">'
    ]
    for i, node in enumerate(nodes):
        y = pad_t + i * (cell + gap)
        parts.append(
            f'<text class="rowlabel" x="{pad_l - 6}" '
            f'y="{y + cell / 2 + 3:.1f}" text-anchor="end">n{node}</text>'
        )
        for j, block in enumerate(blocks):
            value = durations.get((node, block))
            if value is None:
                continue
            shade = _SEQ_RAMP[
                min(
                    int(value / hi * (len(_SEQ_RAMP) - 1) + 0.5),
                    len(_SEQ_RAMP) - 1,
                )
            ]
            x = pad_l + j * (cell + gap)
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell}" height="{cell}" '
                f'rx="2" fill="{shade}"><title>node {node}, block '
                f"{block}: {value * 1e3:.1f} ms</title></rect>"
            )
    step = max(1, len(blocks) // 8)
    for j, block in enumerate(blocks):
        if j % step:
            continue
        x = pad_l + j * (cell + gap) + cell / 2
        parts.append(
            f'<text x="{x:.1f}" y="{height - 6}" '
            f'text-anchor="middle">{block}</text>'
        )
    parts.append("</svg>")
    return (
        "<figure><figcaption>Local-train duration "
        '<span class="sub">per node × block, darker = slower</span>'
        "</figcaption>" + "".join(parts) + "</figure>"
    )


def _timeline(run: RunRecord) -> str:
    """Lifecycle/fault events as one dot row per kind over blocks."""
    rows = [
        (kind, label, run.events_of(kind))
        for kind, label in _TIMELINE_KINDS
    ]
    rows = [r for r in rows if r[2]]
    if not rows:
        return ""
    blocks = [
        int(e.get("block", e.get("t", 0)))
        for _, _, events in rows
        for e in events
    ]
    b_lo, b_hi = min(blocks), max(blocks)
    span = (b_hi - b_lo) or 1
    row_h, pad_l, pad_t = 24, 104, 8
    width, plot_w = 620, 620 - pad_l - 24
    height = pad_t + row_h * len(rows) + 24
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="event timeline">'
    ]
    for i, (kind, label, events) in enumerate(rows):
        y = pad_t + i * row_h + row_h / 2
        color = f"var(--series-{(i % len(_CATEGORICAL)) + 1})"
        parts.append(
            f'<text class="rowlabel" x="{pad_l - 8}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_esc(label)} ({len(events)})</text>'
            f'<line x1="{pad_l}" y1="{y:.1f}" x2="{pad_l + plot_w}" '
            f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>'
        )
        for event in events:
            block = int(event.get("block", event.get("t", 0)))
            x = pad_l + (block - b_lo) / span * plot_w
            detail = ", ".join(
                f"{k}={event[k]}"
                for k in ("fault", "node", "count", "t")
                if k in event and event[k] is not None
            )
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4.5" '
                f'fill="{color}" stroke="var(--surface-1)" '
                f'stroke-width="2"><title>{_esc(kind)} @ block {block}'
                f"{': ' + _esc(detail) if detail else ''}</title></circle>"
            )
    base_y = pad_t + row_h * len(rows) + 4
    for tick in _nice_ticks(b_lo, b_hi, 6):
        if tick != int(tick):
            continue
        x = pad_l + (tick - b_lo) / span * plot_w
        parts.append(
            f'<text x="{x:.1f}" y="{base_y + 10}" '
            f'text-anchor="middle">{int(tick)}</text>'
        )
    parts.append("</svg>")
    return (
        "<figure><figcaption>Fault &amp; lifecycle timeline "
        '<span class="sub">by block</span></figcaption>'
        + "".join(parts)
        + "</figure>"
    )


def _history_table(run: RunRecord) -> str:
    """Every logged series as one table — the non-chart view of the run."""
    named = [
        s
        for s in run.series
        if s.get("steps") and not s["name"].startswith("obs_")
    ]
    if not named:
        return ""
    by_step: Dict[int, Dict[str, float]] = {}
    columns: List[str] = []
    for series in named:
        name = series["name"]
        if name not in columns:
            columns.append(name)
        for step, value in zip(series["steps"], series["values"]):
            by_step.setdefault(int(step), {})[name] = value
    head = "".join(f"<th>{_esc(c)}</th>" for c in columns)
    body = []
    for step in sorted(by_step):
        cells = "".join(
            f"<td>{_compact(by_step[step][c]) if c in by_step[step] else '–'}</td>"
            for c in columns
        )
        body.append(f"<tr><td>{step}</td>{cells}</tr>")
    return (
        "<details><summary>Run history table "
        f"({len(by_step)} steps)</summary><table><tr><th>step</th>"
        f"{head}</tr>{''.join(body)}</table></details>"
    )


def _sum_counter(run: RunRecord, name: str) -> float:
    return sum(
        float(r.get("value", 0.0))
        for r in run.counters
        if r.get("name") == name
    )


def _kpi_row(run: RunRecord) -> str:
    tiles: List[str] = []
    rounds = _sum_counter(run, "fl_rounds_total")
    fit_spans = [s for s in run.spans if s.get("name") == "fit"]
    if rounds:
        tiles.append(_stat_tile("Rounds", _compact(rounds)))
    if rounds and fit_spans:
        fit_s = float(fit_spans[-1]["end"]) - float(fit_spans[-1]["start"])
        if fit_s > 0:
            tiles.append(
                _stat_tile(
                    "Rounds / sec", f"{rounds / fit_s:.2f}",
                    f"fit took {fit_s:.2f}s",
                )
            )
    run_end = run.events_of("run_end")
    if run_end:
        tiles.append(
            _stat_tile(
                "Uplink", _compact(run_end[-1].get("uplink_bytes", 0)) + "B"
            )
        )
        tiles.append(
            _stat_tile(
                "Downlink",
                _compact(run_end[-1].get("downlink_bytes", 0)) + "B",
            )
        )
    hits = sum(e.get("plan_hits", 0) for e in run.events_of("cache_hit"))
    misses = sum(e.get("plan_misses", 0) for e in run.events_of("cache_hit"))
    if hits + misses:
        tiles.append(
            _stat_tile(
                "Fastpath hit rate",
                f"{hits / (hits + misses) * 100.0:.0f}%",
                f"{_compact(hits)} hits / {_compact(misses)} misses",
            )
        )
    faults = _sum_counter(run, "fl_faults_total")
    if faults:
        tiles.append(
            _stat_tile(
                "Faults injected", _compact(faults),
                f"{_compact(_sum_counter(run, 'fl_retries_total'))} retries",
            )
        )
    if not tiles:
        return ""
    return f'<div class="kpis">{"".join(tiles)}</div>'


def render_dashboard(run: RunRecord, title: str = "Federated run") -> str:
    """One run's telemetry as a self-contained HTML page."""
    meta = run.meta or {}
    run_start = run.events_of("run_start")
    sub_bits = []
    if run_start:
        first = run_start[0]
        sub_bits.append(f"algorithm {first.get('algorithm', '?')}")
        sub_bits.append(f"{first.get('nodes', '?')} nodes")
        sub_bits.append(f"executor {first.get('executor', '?')}")
    if meta.get("seed") is not None:
        sub_bits.append(f"seed {meta['seed']}")
    if meta.get("git_sha"):
        sub_bits.append(f"commit {str(meta['git_sha'])[:10]}")
    if meta.get("timestamp_iso"):
        sub_bits.append(str(meta["timestamp_iso"]))

    sections: List[str] = []
    dropped = _sum_counter(run, "obs_spans_dropped_total")
    if dropped:
        sections.append(
            f'<div class="banner">&#9888;&#65039; <b>{int(dropped)} spans '
            "dropped</b> from the trace ring buffer — raise "
            "<code>span_ring_size</code> to keep the full trace.</div>"
        )
    sections.append(_kpi_row(run))

    charts: List[str] = []
    for name, label in (
        ("loss", "Training loss"),
        ("global_loss", "Global loss"),
        ("global_meta_loss", "Global meta-loss"),
        ("accuracy", "Accuracy"),
        ("query_loss", "Query loss"),
        ("uplink_bytes", "Uplink volume"),
    ):
        series = run.find_series(name)
        if series and series.get("steps"):
            charts.append(
                _line_chart(
                    label,
                    "by iteration",
                    [float(s) for s in series["steps"]],
                    [float(v) for v in series["values"]],
                )
            )
    durations: Dict[Tuple[int, int], float] = {}
    for event in run.events_of("node_result"):
        if event.get("duration_s") is not None:
            key = (int(event["node"]), int(event["block"]))
            durations[key] = durations.get(key, 0.0) + float(
                event["duration_s"]
            )
    if durations:
        charts.append(_heatmap(durations))
    timeline = _timeline(run)
    if timeline:
        charts.append(timeline)
    if charts:
        sections.append(f'<div class="charts">{"".join(charts)}</div>')
    sections.append(_history_table(run))
    sections.append(
        f"<footer>{len(run.events)} events &middot; {len(run.spans)} spans "
        f"&middot; {len(run.counters)} counters &middot; generated by "
        "repro report --html</footer>"
    )

    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{_esc(title)}</title>"
        '<meta name="viewport" content="width=device-width,initial-scale=1">'
        f"<style>{_CSS}</style></head><body>"
        f'<div class="viz-root"><h1>{_esc(title)}</h1>'
        f'<div class="subtitle">{_esc(" · ".join(sub_bits))}</div>'
        + "".join(s for s in sections if s)
        + "</div></body></html>"
    )
