"""Nested wall-clock tracing spans.

A :class:`Tracer` produces :class:`Span` objects that time a region of code
and remember where they sit in the call structure::

    with tracer.span("round"):
        with tracer.span("local_steps"):
            ...
        with tracer.span("aggregate"):
            ...

Spans can also be managed manually (``s = tracer.span("round") ... s.end()``)
for regions that do not nest lexically, e.g. a "round" that covers several
loop iterations.  Finished spans land in an in-memory ring buffer (bounded,
oldest evicted) and are handed to an optional ``on_close`` callback, which is
how the telemetry layer streams them to a sink.

:data:`NULL_TRACER` is the disabled twin: ``span()`` returns a shared no-op
object whose enter/exit/end do nothing, so instrumented hot paths cost one
attribute lookup and one call when telemetry is off.

Cross-process propagation
-------------------------
Worker processes (the :class:`~repro.engine.executors.ParallelExecutor`)
cannot stream spans to the parent's sink.  Instead the parent captures its
current trace position as a :class:`TraceContext` (a small picklable value),
ships it with the task, and the worker runs a private child tracer whose
finished records come back in a :class:`WorkerTrace` bundle.  The parent
then re-parents them with :func:`reparent` — prefixing the parent path and
depth — and feeds them through :meth:`Tracer.ingest`, so serial and parallel
runs produce one coherent trace with the same span tree shape.  Trace
collection only reads clocks and appends records; it never touches model
state or RNG streams, which is what keeps traced runs bit-identical to
untraced ones (asserted against the golden traces).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "SpanRecord",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceContext",
    "WorkerTrace",
    "reparent",
]


@dataclass(frozen=True)
class SpanRecord:
    """Immutable summary of one finished span."""

    name: str
    path: str
    start: float
    end: float
    depth: int
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "path": self.path,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "depth": self.depth,
            "attributes": dict(self.attributes),
        }


class Span:
    """A live timed region.  Starts at creation; ends on ``end()``/``__exit__``."""

    __slots__ = ("_tracer", "name", "path", "depth", "attributes", "start", "_ended")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        parent = tracer._stack[-1] if tracer._stack else None
        self.path = f"{parent.path}/{name}" if parent is not None else name
        self.depth = parent.depth + 1 if parent is not None else 0
        self.start = tracer._clock()
        self._ended = False
        tracer._stack.append(self)

    def set(self, **attributes: object) -> "Span":
        self.attributes.update(attributes)
        return self

    def end(self) -> None:
        """Close the span (idempotent); closes any forgotten children first."""
        if self._ended:
            return
        tracer = self._tracer
        while tracer._stack and tracer._stack[-1] is not self:
            tracer._stack[-1].end()
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        self._ended = True
        tracer._finish(
            SpanRecord(
                name=self.name,
                path=self.path,
                start=self.start,
                end=tracer._clock(),
                depth=self.depth,
                attributes=self.attributes,
            )
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end()


class Tracer:
    """Produces nested spans and retains the most recent finished ones."""

    def __init__(
        self,
        ring_size: int = 4096,
        on_close: Optional[Callable[[SpanRecord], None]] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if ring_size < 0:
            raise ValueError("ring_size must be non-negative")
        self._clock = clock
        self._stack: List[Span] = []
        self._on_close = on_close
        #: ring buffer of finished spans (oldest evicted past ``ring_size``)
        self.finished: deque = deque(maxlen=ring_size or None)
        self._retain = ring_size > 0
        #: finished spans evicted from the ring before anyone read them;
        #: exported as ``obs_spans_dropped_total`` on telemetry flush so a
        #: truncated trace is visible instead of silently partial
        self.spans_dropped = 0

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    @property
    def current_path(self) -> str:
        """Slash-joined path of the innermost open span ('' at top level)."""
        return self._stack[-1].path if self._stack else ""

    @property
    def current_depth(self) -> int:
        """Depth the next child span would get."""
        return self._stack[-1].depth + 1 if self._stack else 0

    def span(self, name: str, **attributes: object) -> Span:
        return Span(self, name, attributes)

    def records(self, name: Optional[str] = None) -> List[SpanRecord]:
        if name is None:
            return list(self.finished)
        return [r for r in self.finished if r.name == name]

    def ingest(self, record: SpanRecord) -> None:
        """Adopt an externally produced record (e.g. a re-parented worker
        span) as if one of this tracer's own spans had just closed."""
        self._finish(record)

    def _finish(self, record: SpanRecord) -> None:
        if self._retain:
            if len(self.finished) == self.finished.maxlen:
                self.spans_dropped += 1
            self.finished.append(record)
        if self._on_close is not None:
            self._on_close(record)


class _NullSpan:
    """Shared do-nothing span; safe to enter/exit/end any number of times."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None

    def end(self) -> None:
        return None

    def set(self, **attributes: object) -> "_NullSpan":
        return self


class NullTracer:
    """Disabled tracer: no clock reads, no allocation, no retention."""

    __slots__ = ()
    _span = _NullSpan()
    spans_dropped = 0

    def span(self, name: str, **attributes: object) -> _NullSpan:
        return self._span

    def records(self, name: Optional[str] = None) -> List[SpanRecord]:
        return []

    def ingest(self, record: SpanRecord) -> None:
        return None

    @property
    def active_depth(self) -> int:
        return 0

    @property
    def current_path(self) -> str:
        return ""

    @property
    def current_depth(self) -> int:
        return 0


NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# Cross-process propagation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceContext:
    """Picklable snapshot of the parent's trace position.

    Shipped into executor workers so their spans can be re-parented under
    the span that was open when the work was submitted.  ``profile_tape``
    asks the worker to additionally collect autodiff tape-profiler deltas
    (only honoured when a profiler is active in the parent).
    """

    #: slash path of the parent span worker spans nest under
    path: str
    #: depth worker root spans are re-based to
    depth: int
    #: collect per-op tape profiler statistics in the worker
    profile_tape: bool = False

    @classmethod
    def capture(cls, tracer: "Tracer | NullTracer", profile_tape: bool = False) -> "TraceContext":
        return cls(
            path=tracer.current_path,
            depth=tracer.current_depth,
            profile_tape=profile_tape,
        )


@dataclass
class WorkerTrace:
    """What one worker task sends back besides its node result.

    All fields are plain data (picklable): the worker's finished spans in
    close order, the fast-path counter delta accumulated during the task,
    and — when requested — the tape profiler's per-op statistics.  Clock
    values in ``spans`` are the worker's ``perf_counter`` readings; on
    Linux that clock is system-wide monotonic, so worker and parent spans
    share a timeline.  Only durations are interpreted elsewhere.
    """

    spans: List[SpanRecord] = field(default_factory=list)
    fastpath_delta: Dict[str, int] = field(default_factory=dict)
    op_stats: Dict[str, List[float]] = field(default_factory=dict)
    graph_walks: int = 0
    walked_nodes: int = 0
    allocations: int = 0


def reparent(record: SpanRecord, context: TraceContext) -> SpanRecord:
    """Rebase one worker span under the parent position in ``context``."""
    path = f"{context.path}/{record.path}" if context.path else record.path
    return SpanRecord(
        name=record.name,
        path=path,
        start=record.start,
        end=record.end,
        depth=record.depth + context.depth,
        attributes=dict(record.attributes),
    )
