"""Data-corruption models for failure-injection experiments.

Federated fleets contain unreliable members: mislabeled data, sensor noise,
and outright poisoned nodes.  These helpers corrupt :class:`Dataset` /
:class:`FederatedDataset` instances deterministically so the test suite and
the robust-aggregation ablations can inject controlled faults.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .dataset import Dataset, FederatedDataset

__all__ = [
    "flip_labels",
    "add_feature_noise",
    "poison_node_labels",
    "corrupt_nodes",
]


def flip_labels(
    data: Dataset, fraction: float, num_classes: int, rng: np.random.Generator
) -> Dataset:
    """Uniformly relabel a fraction of samples to a *different* class."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    y = data.y.copy()
    count = int(round(fraction * len(data)))
    if count:
        chosen = rng.choice(len(data), size=count, replace=False)
        offsets = rng.integers(1, num_classes, size=count)
        y[chosen] = (y[chosen] + offsets) % num_classes
    return Dataset(x=data.x.copy(), y=y)


def add_feature_noise(
    data: Dataset, stddev: float, rng: np.random.Generator
) -> Dataset:
    """Add i.i.d. Gaussian noise to every feature."""
    if stddev < 0:
        raise ValueError("stddev must be non-negative")
    noisy = data.x + rng.normal(0.0, stddev, size=data.x.shape)
    return Dataset(x=noisy, y=data.y.copy())


def poison_node_labels(data: Dataset, target_class: int) -> Dataset:
    """Label-poisoning: relabel every sample to ``target_class``."""
    if target_class < 0:
        raise ValueError("target_class must be non-negative")
    return Dataset(
        x=data.x.copy(),
        y=np.full(len(data), target_class, dtype=data.y.dtype),
    )


def corrupt_nodes(
    federated: FederatedDataset,
    node_indices: Sequence[int],
    corruption,
) -> FederatedDataset:
    """Apply ``corruption(dataset) -> dataset`` to the selected nodes.

    Returns a new federation; untouched nodes are shared, not copied.
    """
    targets = set(node_indices)
    invalid = targets - set(range(len(federated.nodes)))
    if invalid:
        raise IndexError(f"node indices out of range: {sorted(invalid)}")
    nodes: List[Dataset] = [
        corruption(node) if i in targets else node
        for i, node in enumerate(federated.nodes)
    ]
    return FederatedDataset(
        name=f"{federated.name}+corrupted({len(targets)})",
        nodes=nodes,
        num_classes=federated.num_classes,
        metadata=dict(federated.metadata),
    )
