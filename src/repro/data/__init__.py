"""Federated workload generators and dataset containers."""

from .corruption import (
    add_feature_noise,
    corrupt_nodes,
    flip_labels,
    poison_node_labels,
)
from .dataset import Dataset, FederatedDataset, NodeSplit
from .mnist_like import MnistLikeConfig, digit_prototypes, generate_mnist_like
from .partition import power_law_sizes, shard_labels
from .sent140_like import Sent140LikeConfig, generate_sent140_like
from .synthetic import (
    SyntheticConfig,
    generate_interpolated_synthetic,
    generate_synthetic,
    make_target_node,
)

__all__ = [
    "add_feature_noise",
    "corrupt_nodes",
    "flip_labels",
    "poison_node_labels",
    "Dataset",
    "FederatedDataset",
    "NodeSplit",
    "MnistLikeConfig",
    "digit_prototypes",
    "generate_mnist_like",
    "power_law_sizes",
    "shard_labels",
    "Sent140LikeConfig",
    "generate_sent140_like",
    "SyntheticConfig",
    "generate_interpolated_synthetic",
    "generate_synthetic",
    "make_target_node",
]
