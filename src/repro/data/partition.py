"""Sample-count and label partitioning helpers.

The paper's workloads share two structural properties:

* the number of samples per node follows a power law, and
* (for MNIST) each node only holds samples of two digit classes.

These helpers implement both, deterministically under an explicit RNG.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["power_law_sizes", "shard_labels"]


def power_law_sizes(
    num_nodes: int,
    mean: float,
    rng: np.random.Generator,
    minimum: int = 4,
    exponent: float = 1.5,
) -> np.ndarray:
    """Draw per-node sample counts following a (Lomax-style) power law.

    Counts are rescaled so their empirical mean is close to ``mean`` and
    floored at ``minimum`` so every node can afford a K-shot split.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if mean <= minimum:
        raise ValueError(f"mean ({mean}) must exceed minimum ({minimum})")
    raw = rng.pareto(exponent, size=num_nodes) + 1.0
    scaled = raw * (mean - minimum) / np.mean(raw) + minimum
    sizes = np.maximum(minimum, np.round(scaled)).astype(int)
    return sizes


def shard_labels(
    num_nodes: int,
    num_classes: int,
    labels_per_node: int,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Assign ``labels_per_node`` classes to each node, covering all classes.

    Mirrors the McMahan et al. non-IID MNIST protocol the paper adopts
    ("every node has samples of only two digits").
    """
    if labels_per_node > num_classes:
        raise ValueError("labels_per_node cannot exceed num_classes")
    assignments: List[np.ndarray] = []
    # Round-robin over shuffled class lists keeps class coverage balanced.
    # The pool is extended on demand: skipping duplicate candidates can
    # consume more than labels_per_node entries per node.
    pool: List[int] = []
    cursor = 0
    for _ in range(num_nodes):
        chosen: List[int] = []
        while len(chosen) < labels_per_node:
            if cursor >= len(pool):
                pool.extend(rng.permutation(num_classes).tolist())
            candidate = pool[cursor]
            cursor += 1
            if candidate not in chosen:
                chosen.append(candidate)
        assignments.append(np.array(sorted(chosen)))
    return assignments
