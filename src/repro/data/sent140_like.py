"""Sent140-like synthetic text-sentiment workload.

Sent140 assigns one task per Twitter account: classify the sentiment of a
tweet, represented as a sequence of 25 characters embedded via a frozen
pretrained table.  Offline, we synthesize an equivalent population:

* a character vocabulary partitioned into *positive-leaning*,
  *negative-leaning* and *neutral* symbols;
* each node (account) has its own writing style — a Dirichlet-sampled
  preference over the vocabulary and a node-specific sentiment "strength" —
  so tasks are related but heterogeneous, exactly the structure federated
  meta-learning exploits;
* a sample is a length-25 id sequence whose class-conditional composition
  mixes the node style with the sentiment pools; the label is the binary
  sentiment.

The model consuming this data (:class:`repro.nn.EmbeddingClassifier`) is
non-convex (MLP with BN + ReLU on top of a frozen embedding), matching the
role Sent140 plays in the paper: demonstrating FedML beyond the convex
regime (Figures 3(a) and 3(e)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..utils.rng import RngFactory
from .dataset import Dataset, FederatedDataset
from .partition import power_law_sizes

__all__ = ["Sent140LikeConfig", "generate_sent140_like"]


@dataclass(frozen=True)
class Sent140LikeConfig:
    """Configuration mirroring the paper's Sent140 setup (Table I)."""

    num_nodes: int = 706
    seq_len: int = 25
    vocab_size: int = 64
    mean_samples: float = 42.0
    min_samples: int = 8
    #: how strongly class-conditional pools dominate over node style
    sentiment_strength: float = 0.55
    #: Dirichlet concentration of per-node style (lower = more heterogeneous)
    style_concentration: float = 0.3
    seed: int = 0


def generate_sent140_like(config: Sent140LikeConfig) -> FederatedDataset:
    """Generate the per-account sentiment dataset."""
    if config.vocab_size < 12:
        raise ValueError("vocab_size must be at least 12")
    factory = RngFactory(config.seed)

    third = config.vocab_size // 3
    positive_pool = np.arange(0, third)
    negative_pool = np.arange(third, 2 * third)

    pool_dist = np.zeros((2, config.vocab_size))
    pool_dist[1, positive_pool] = 1.0 / len(positive_pool)
    pool_dist[0, negative_pool] = 1.0 / len(negative_pool)

    sizes = power_law_sizes(
        config.num_nodes,
        config.mean_samples,
        factory.stream("sent140", "sizes"),
        minimum=config.min_samples,
    )

    nodes: List[Dataset] = []
    for i in range(config.num_nodes):
        rng = factory.stream("sent140", "node", i)
        count = int(sizes[i])
        style = rng.dirichlet(
            np.full(config.vocab_size, config.style_concentration)
        )
        strength = np.clip(
            rng.normal(config.sentiment_strength, 0.1), 0.2, 0.9
        )
        labels = rng.integers(0, 2, size=count)
        sequences = np.empty((count, config.seq_len), dtype=np.int64)
        for j, label in enumerate(labels):
            mixture = strength * pool_dist[label] + (1.0 - strength) * style
            mixture = mixture / mixture.sum()
            sequences[j] = rng.choice(
                config.vocab_size, size=config.seq_len, p=mixture
            )
        nodes.append(Dataset(x=sequences, y=labels.astype(np.int64)))

    return FederatedDataset(
        name="Sent140-like",
        nodes=nodes,
        num_classes=2,
        metadata={
            "config": config,
            "seq_len": config.seq_len,
            "vocab_size": config.vocab_size,
        },
    )
