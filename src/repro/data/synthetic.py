"""Synthetic(α̃, β̃) federated workload.

Follows the generator of Sahu et al. (FedProx), which the paper adopts for
its node-similarity experiments:

* node model:  ``y = argmax(softmax(W x + b))`` with
  ``W_i ~ N(u_i, 1)``, ``b_i ~ N(u_i, 1)``, ``u_i ~ N(0, α̃)``;
* node inputs: ``x_i^j ~ N(v_i, Σ)`` with diagonal ``Σ_kk = k^{-1.2}``,
  ``v_i ~ N(B_i, 1)``, ``B_i ~ N(0, β̃)``.

``α̃`` controls how much local *models* differ across nodes, ``β̃`` how much
local *feature distributions* differ.  Synthetic(0, 0) gives the most similar
nodes; Synthetic(1, 1) the least similar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..utils.rng import RngFactory
from .dataset import Dataset, FederatedDataset
from .partition import power_law_sizes

__all__ = [
    "SyntheticConfig",
    "generate_synthetic",
    "generate_interpolated_synthetic",
]


@dataclass(frozen=True)
class SyntheticConfig:
    """Configuration for the Synthetic(α̃, β̃) generator.

    Defaults mirror the paper: 50 nodes, 60-dimensional inputs, 10 classes,
    power-law sample counts with mean 17 (Table I).
    """

    alpha: float = 0.5
    beta: float = 0.5
    num_nodes: int = 50
    input_dim: int = 60
    num_classes: int = 10
    mean_samples: float = 17.0
    min_samples: int = 6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if self.num_nodes < 2:
            raise ValueError("need at least 2 nodes")


def generate_synthetic(config: SyntheticConfig) -> FederatedDataset:
    """Generate a Synthetic(α̃, β̃) federated dataset.

    The per-node ground-truth models ``(W_i, b_i)`` are stored in the
    dataset metadata — the theory module uses them to relate empirical node
    similarity to the generator knobs.
    """
    factory = RngFactory(config.seed)
    size_rng = factory.stream("synthetic", "sizes")
    sizes = power_law_sizes(
        config.num_nodes, config.mean_samples, size_rng, minimum=config.min_samples
    )

    # Diagonal covariance Σ_kk = k^{-1.2}.
    variances = np.arange(1, config.input_dim + 1, dtype=np.float64) ** (-1.2)
    std = np.sqrt(variances)

    nodes: List[Dataset] = []
    true_w: List[np.ndarray] = []
    true_b: List[np.ndarray] = []
    for i in range(config.num_nodes):
        rng = factory.stream("synthetic", "node", i)
        u_i = rng.normal(0.0, np.sqrt(config.alpha)) if config.alpha > 0 else 0.0
        w = rng.normal(u_i, 1.0, size=(config.num_classes, config.input_dim))
        b = rng.normal(u_i, 1.0, size=config.num_classes)
        big_b = rng.normal(0.0, np.sqrt(config.beta)) if config.beta > 0 else 0.0
        v_i = rng.normal(big_b, 1.0, size=config.input_dim)

        x = rng.normal(v_i, std, size=(int(sizes[i]), config.input_dim))
        logits = x @ w.T + b
        y = np.argmax(logits, axis=1)
        nodes.append(Dataset(x=x, y=y.astype(np.int64)))
        true_w.append(w)
        true_b.append(b)

    return FederatedDataset(
        name=f"Synthetic({config.alpha:g},{config.beta:g})",
        nodes=nodes,
        num_classes=config.num_classes,
        metadata={
            "config": config,
            "true_w": true_w,
            "true_b": true_b,
            "input_dim": config.input_dim,
        },
    )


def generate_interpolated_synthetic(
    heterogeneity: float,
    num_nodes: int = 50,
    input_dim: int = 60,
    num_classes: int = 10,
    mean_samples: float = 17.0,
    min_samples: int = 6,
    seed: int = 0,
) -> FederatedDataset:
    """Similarity-controlled synthetic workload with fixed conditioning.

    The FedProx-style ``Synthetic(α̃, β̃)`` knobs change node similarity *and*
    the marginal scale of the node models (larger α̃ widens the logit margins
    and makes each local problem easier), which confounds convergence-error
    comparisons.  This variant removes the confound: every node's true model
    is

        W_i = sqrt(1 − s²) · W_shared + s · W_i^private,

    with both components standard normal, so the marginal distribution of
    ``W_i`` is exactly N(0, 1) for *any* heterogeneity ``s ∈ [0, 1]`` while
    the expected pairwise model distance grows monotonically with ``s``.
    ``s = 0`` gives identical tasks; ``s = 1`` independent tasks.
    """
    if not 0.0 <= heterogeneity <= 1.0:
        raise ValueError("heterogeneity must lie in [0, 1]")
    factory = RngFactory(seed)
    sizes = power_law_sizes(
        num_nodes, mean_samples, factory.stream("interp", "sizes"),
        minimum=min_samples,
    )

    shared_rng = factory.stream("interp", "shared")
    w_shared = shared_rng.normal(size=(num_classes, input_dim))
    b_shared = shared_rng.normal(size=num_classes)

    variances = np.arange(1, input_dim + 1, dtype=np.float64) ** (-1.2)
    std = np.sqrt(variances)
    s = float(heterogeneity)
    mix = np.sqrt(max(0.0, 1.0 - s * s))

    nodes: List[Dataset] = []
    true_w: List[np.ndarray] = []
    true_b: List[np.ndarray] = []
    for i in range(num_nodes):
        rng = factory.stream("interp", "node", i)
        w = mix * w_shared + s * rng.normal(size=(num_classes, input_dim))
        b = mix * b_shared + s * rng.normal(size=num_classes)
        v_i = rng.normal(0.0, 1.0, size=input_dim)
        x = rng.normal(v_i, std, size=(int(sizes[i]), input_dim))
        y = np.argmax(x @ w.T + b, axis=1)
        nodes.append(Dataset(x=x, y=y.astype(np.int64)))
        true_w.append(w)
        true_b.append(b)

    return FederatedDataset(
        name=f"SyntheticInterp(s={s:g})",
        nodes=nodes,
        num_classes=num_classes,
        metadata={
            "heterogeneity": s,
            "true_w": true_w,
            "true_b": true_b,
            "w_shared": w_shared,
            "b_shared": b_shared,
            "input_dim": input_dim,
        },
    )


def make_target_node(
    federated: FederatedDataset,
    distance: float,
    num_samples: int,
    seed: int,
) -> Dataset:
    """Synthesize a target-node dataset at a controlled model distance.

    Given a federation produced by :func:`generate_interpolated_synthetic`,
    build a fresh node whose true model is

        W_t = sqrt(1 − d²) · W_shared + d · W_t^private,

    so ``d = distance`` directly controls the target–source similarity of
    Theorem 3 (surrogate difference ‖θ_t* − θ_c*‖ grows with d) while the
    marginal task scale — and hence task difficulty — stays fixed.
    """
    if not 0.0 <= distance <= 1.0:
        raise ValueError("distance must lie in [0, 1]")
    if "w_shared" not in federated.metadata:
        raise ValueError(
            "federation lacks a shared model; build it with "
            "generate_interpolated_synthetic"
        )
    w_shared = federated.metadata["w_shared"]
    b_shared = federated.metadata["b_shared"]
    input_dim = federated.metadata["input_dim"]
    num_classes = w_shared.shape[0]
    rng = np.random.default_rng(seed)
    mix = np.sqrt(max(0.0, 1.0 - distance * distance))
    w = mix * w_shared + distance * rng.normal(size=w_shared.shape)
    b = mix * b_shared + distance * rng.normal(size=num_classes)
    variances = np.arange(1, input_dim + 1, dtype=np.float64) ** (-1.2)
    v = rng.normal(0.0, 1.0, size=input_dim)
    x = rng.normal(v, np.sqrt(variances), size=(num_samples, input_dim))
    y = np.argmax(x @ w.T + b, axis=1)
    return Dataset(x=x, y=y.astype(np.int64))
