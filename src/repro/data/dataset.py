"""Dataset containers for federated workloads.

``Dataset`` is a thin immutable wrapper over ``(x, y)`` arrays.  A
``FederatedDataset`` is an ordered collection of per-node datasets plus the
metadata the paper's Table I reports (number of nodes, mean/std samples per
node), with helpers to carve out source vs. target nodes and to apply the
paper's train/test protocol (|D_train| = K per node, remainder is the local
test set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Dataset", "NodeSplit", "FederatedDataset"]


@dataclass(frozen=True)
class Dataset:
    """An in-memory supervised dataset."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"x has {len(self.x)} rows but y has {len(self.y)} labels"
            )

    def __len__(self) -> int:
        return len(self.y)

    @property
    def num_features(self) -> int:
        return int(np.prod(self.x.shape[1:]))

    def subset(self, indices: Sequence[int]) -> "Dataset":
        indices = np.asarray(indices)
        return Dataset(self.x[indices], self.y[indices])

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        order = rng.permutation(len(self))
        return self.subset(order)

    def split(self, k: int) -> Tuple["Dataset", "Dataset"]:
        """Split into the first ``k`` samples and the remainder.

        Mirrors the paper's protocol: ``D_i^train`` holds ``K`` samples for
        the inner one-step update, ``D_i^test`` the rest for the meta loss.
        """
        if not 0 < k < len(self):
            raise ValueError(
                f"k must be in (0, {len(self)}) to leave a non-empty test "
                f"set, got {k}"
            )
        return self.subset(range(k)), self.subset(range(k, len(self)))

    def batches(
        self, batch_size: int, rng: Optional[np.random.Generator] = None
    ):
        """Yield mini-batches, optionally shuffled."""
        order = np.arange(len(self))
        if rng is not None:
            order = rng.permutation(len(self))
        for start in range(0, len(self), batch_size):
            yield self.subset(order[start : start + batch_size])

    def concat(self, other: "Dataset") -> "Dataset":
        return Dataset(
            np.concatenate([self.x, other.x], axis=0),
            np.concatenate([self.y, other.y], axis=0),
        )


@dataclass(frozen=True)
class NodeSplit:
    """A node's data under the paper's K-shot protocol."""

    train: Dataset  # |train| == K, used for the inner / adaptation step
    test: Dataset  # used for the meta loss / final evaluation


@dataclass
class FederatedDataset:
    """Per-node datasets plus workload metadata."""

    name: str
    nodes: List[Dataset]
    num_classes: int
    metadata: Dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.nodes)

    def sizes(self) -> np.ndarray:
        return np.array([len(node) for node in self.nodes])

    def statistics(self) -> Dict[str, float]:
        """The columns of the paper's Table I."""
        sizes = self.sizes()
        return {
            "nodes": float(len(self.nodes)),
            "samples_mean": float(np.mean(sizes)),
            "samples_std": float(np.std(sizes)),
            "samples_total": float(np.sum(sizes)),
        }

    def split_sources_targets(
        self, source_fraction: float, rng: np.random.Generator
    ) -> Tuple[List[int], List[int]]:
        """Randomly designate source vs. target node indices.

        The paper selects 80% of nodes as sources for federated
        meta-training and evaluates fast adaptation on the remaining 20%.
        """
        if not 0.0 < source_fraction < 1.0:
            raise ValueError("source_fraction must be in (0, 1)")
        order = rng.permutation(len(self.nodes))
        cut = max(1, int(round(source_fraction * len(self.nodes))))
        cut = min(cut, len(self.nodes) - 1)
        return sorted(order[:cut].tolist()), sorted(order[cut:].tolist())

    def node_split(self, index: int, k: int) -> NodeSplit:
        """Apply the K-shot train/test protocol to one node."""
        train, test = self.nodes[index].split(k)
        return NodeSplit(train=train, test=test)
