"""MNIST-like synthetic digit workload.

MNIST itself cannot be downloaded in this offline reproduction, so we build a
deterministic stand-in that preserves everything the paper's MNIST experiment
actually exercises:

* 10 visually distinct digit classes rendered as 8×8 glyph prototypes
  (values in [0, 1]), flattened to 64 features;
* per-sample pixel noise and small spatial jitter;
* per-node "style" heterogeneity (brightness/contrast shift), so nodes are
  similar-but-not-identical like real handwriting populations;
* the McMahan non-IID sharding — **each node holds only two digit classes**
  with power-law sample counts (mean 34, Table I).

Multinomial logistic regression separates these classes the same way it
separates MNIST digits, so the FedAvg-vs-FedML adaptation gap (Figure 3(d))
and the adversarial-robustness experiments (Figure 4) exercise identical
code paths and exhibit the same qualitative behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..utils.rng import RngFactory
from .dataset import Dataset, FederatedDataset
from .partition import power_law_sizes, shard_labels

__all__ = ["MnistLikeConfig", "generate_mnist_like", "digit_prototypes"]

# 8x8 glyphs for digits 0-9 ('#' = ink). Hand-drawn pixel-font style.
_GLYPHS = {
    0: [
        "..####..",
        ".##..##.",
        ".#....#.",
        ".#....#.",
        ".#....#.",
        ".#....#.",
        ".##..##.",
        "..####..",
    ],
    1: [
        "...##...",
        "..###...",
        ".####...",
        "...##...",
        "...##...",
        "...##...",
        "...##...",
        ".######.",
    ],
    2: [
        "..####..",
        ".##..##.",
        ".....##.",
        "....##..",
        "...##...",
        "..##....",
        ".##.....",
        ".######.",
    ],
    3: [
        ".#####..",
        ".....##.",
        ".....##.",
        "..####..",
        ".....##.",
        ".....##.",
        ".....##.",
        ".#####..",
    ],
    4: [
        "....##..",
        "...###..",
        "..#.##..",
        ".#..##..",
        ".######.",
        "....##..",
        "....##..",
        "....##..",
    ],
    5: [
        ".######.",
        ".##.....",
        ".##.....",
        ".#####..",
        ".....##.",
        ".....##.",
        ".##..##.",
        "..####..",
    ],
    6: [
        "..####..",
        ".##.....",
        ".##.....",
        ".#####..",
        ".##..##.",
        ".##..##.",
        ".##..##.",
        "..####..",
    ],
    7: [
        ".######.",
        ".....##.",
        "....##..",
        "....##..",
        "...##...",
        "...##...",
        "..##....",
        "..##....",
    ],
    8: [
        "..####..",
        ".##..##.",
        ".##..##.",
        "..####..",
        ".##..##.",
        ".##..##.",
        ".##..##.",
        "..####..",
    ],
    9: [
        "..####..",
        ".##..##.",
        ".##..##.",
        ".##..##.",
        "..#####.",
        ".....##.",
        ".....##.",
        "..####..",
    ],
}

_IMAGE_SIDE = 8
NUM_PIXELS = _IMAGE_SIDE * _IMAGE_SIDE


def digit_prototypes() -> np.ndarray:
    """The ten clean glyphs as a ``(10, 64)`` array with values in {0, 1}."""
    protos = np.zeros((10, _IMAGE_SIDE, _IMAGE_SIDE))
    for digit, rows in _GLYPHS.items():
        for r, row in enumerate(rows):
            for c, ch in enumerate(row):
                protos[digit, r, c] = 1.0 if ch == "#" else 0.0
    return protos.reshape(10, NUM_PIXELS)


@dataclass(frozen=True)
class MnistLikeConfig:
    """Configuration mirroring the paper's MNIST setup (Table I)."""

    num_nodes: int = 100
    labels_per_node: int = 2
    mean_samples: float = 34.0
    min_samples: int = 8
    pixel_noise: float = 0.18
    style_noise: float = 0.12
    jitter: bool = True
    seed: int = 0


def _shift(image: np.ndarray, dr: int, dc: int) -> np.ndarray:
    """Shift an 8x8 image by (dr, dc), zero-filling the border."""
    grid = image.reshape(_IMAGE_SIDE, _IMAGE_SIDE)
    out = np.zeros_like(grid)
    src_r = slice(max(0, -dr), _IMAGE_SIDE - max(0, dr))
    dst_r = slice(max(0, dr), _IMAGE_SIDE - max(0, -dr))
    src_c = slice(max(0, -dc), _IMAGE_SIDE - max(0, dc))
    dst_c = slice(max(0, dc), _IMAGE_SIDE - max(0, -dc))
    out[dst_r, dst_c] = grid[src_r, src_c]
    return out.reshape(-1)


def generate_mnist_like(config: MnistLikeConfig) -> FederatedDataset:
    """Generate the sharded MNIST-like federated dataset."""
    factory = RngFactory(config.seed)
    protos = digit_prototypes()

    sizes = power_law_sizes(
        config.num_nodes,
        config.mean_samples,
        factory.stream("mnist", "sizes"),
        minimum=config.min_samples,
    )
    shards = shard_labels(
        config.num_nodes, 10, config.labels_per_node, factory.stream("mnist", "shards")
    )

    nodes: List[Dataset] = []
    for i in range(config.num_nodes):
        rng = factory.stream("mnist", "node", i)
        count = int(sizes[i])
        labels = rng.choice(shards[i], size=count)
        # Per-node style: brightness offset and contrast scale.
        brightness = rng.normal(0.0, config.style_noise)
        contrast = 1.0 + rng.normal(0.0, config.style_noise)
        images = np.empty((count, NUM_PIXELS))
        for j, label in enumerate(labels):
            image = protos[label]
            if config.jitter:
                dr, dc = rng.integers(-1, 2, size=2)
                image = _shift(image, int(dr), int(dc))
            image = contrast * image + brightness
            image = image + rng.normal(0.0, config.pixel_noise, size=NUM_PIXELS)
            images[j] = np.clip(image, 0.0, 1.0)
        nodes.append(Dataset(x=images, y=labels.astype(np.int64)))

    return FederatedDataset(
        name="MNIST-like",
        nodes=nodes,
        num_classes=10,
        metadata={"config": config, "input_dim": NUM_PIXELS, "shards": shards},
    )
