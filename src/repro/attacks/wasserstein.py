"""Wasserstein-DRO adversarial sample construction (Algorithm 2, lines 15–21).

Robust FedML approximately solves the inner supremum of the robust surrogate
loss (Lemma 2)

    x* = argmax_x  l(phi, (x, y0)) − λ · c((x, y0), (x0, y0))

by ``Ta`` steps of gradient ascent with step size ν, using the transportation
cost  c = ‖x − x0‖²  (label transport is forbidden: the paper's cost assigns
infinite mass to label changes, so y is held fixed).

λ is the Lagrangian penalty: *small* λ ⇒ large uncertainty set ⇒ stronger
perturbations ⇒ more robustness, at some clean-accuracy cost (Figure 4).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, grad, ops
from ..nn.losses import cross_entropy
from ..nn.modules import Model
from ..nn.parameters import Params
from .common import embed_inputs

__all__ = ["wasserstein_ascent", "surrogate_objective"]


def surrogate_objective(
    model: Model,
    params: Params,
    x: Tensor,
    y: np.ndarray,
    anchor: np.ndarray,
    lam: float,
    loss_fn=cross_entropy,
) -> Tensor:
    """``l(phi, (x, y)) − λ‖x − x0‖²`` averaged over the batch."""
    loss = loss_fn(model.apply(params, x), y)
    diff = x - Tensor(anchor)
    transport = ops.mean(ops.sum_(diff * diff, axis=tuple(range(1, x.ndim))))
    return loss - lam * transport


def wasserstein_ascent(
    model: Model,
    params: Params,
    x: np.ndarray,
    y: np.ndarray,
    lam: float,
    nu: float,
    steps: int,
    loss_fn=cross_entropy,
) -> np.ndarray:
    """Run ``steps`` ascent iterations of the robust surrogate; return x*.

    The anchor ``x0`` is the clean input; ascent starts from it and climbs
    the penalized loss surface.  Labels are returned unchanged by design.
    """
    if lam < 0:
        raise ValueError("lam must be non-negative")
    if nu <= 0:
        raise ValueError("ascent step size nu must be positive")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    anchor = embed_inputs(model, x)
    current = anchor.copy()
    for _ in range(steps):
        x_tensor = Tensor(current, requires_grad=True)
        objective = surrogate_objective(
            model, params, x_tensor, y, anchor, lam, loss_fn=loss_fn
        )
        (g,) = grad(objective, [x_tensor], allow_unused=True)
        if g is None:
            break
        current = current + nu * g.data
    return current
