"""Projected Gradient Descent attack (Madry et al., 2018).

Not used by the paper's figures directly, but a standard stronger attack the
ablation benches use to stress-test Robust FedML beyond FGSM.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn.losses import cross_entropy
from ..nn.modules import Model
from ..nn.parameters import Params
from .common import embed_inputs, input_gradient

__all__ = ["pgd"]


def pgd(
    model: Model,
    params: Params,
    x: np.ndarray,
    y: np.ndarray,
    epsilon: float,
    step_size: float,
    steps: int,
    clip_range: Optional[Tuple[float, float]] = None,
    loss_fn=cross_entropy,
) -> np.ndarray:
    """L∞ PGD: iterated signed steps projected back to the ε-ball around x."""
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    anchor = embed_inputs(model, x)
    current = anchor.copy()
    for _ in range(steps):
        g = input_gradient(model, params, current, y, loss_fn=loss_fn)
        current = current + step_size * np.sign(g)
        current = np.clip(current, anchor - epsilon, anchor + epsilon)
        if clip_range is not None:
            current = np.clip(current, clip_range[0], clip_range[1])
    return current
