"""Shared attack utilities."""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, grad
from ..nn.losses import cross_entropy
from ..nn.modules import EmbeddingClassifier, Model
from ..nn.parameters import Params

__all__ = ["input_gradient", "embed_inputs"]


def embed_inputs(model: Model, x: np.ndarray) -> np.ndarray:
    """Map raw inputs to the continuous space attacks operate in.

    For an :class:`EmbeddingClassifier` fed integer token ids, perturbations
    live in the embedded feature space (ids are discrete); for all other
    models the input space is already continuous.
    """
    if isinstance(model, EmbeddingClassifier) and np.asarray(x).dtype.kind in "iu":
        return model.embed(np.asarray(x)).data
    return np.asarray(x, dtype=np.float64)


def input_gradient(
    model: Model,
    params: Params,
    x: np.ndarray,
    y: np.ndarray,
    loss_fn=cross_entropy,
) -> np.ndarray:
    """``∇_x loss(model(params, x), y)`` as a NumPy array."""
    features = embed_inputs(model, x)
    x_tensor = Tensor(features, requires_grad=True)
    loss = loss_fn(model.apply(params, x_tensor), y)
    (g,) = grad(loss, [x_tensor], allow_unused=True)
    if g is None:
        return np.zeros_like(features)
    return g.data
