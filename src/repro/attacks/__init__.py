"""Adversarial perturbations: FGSM, PGD and the Wasserstein-DRO ascent."""

from .common import embed_inputs, input_gradient
from .fgsm import fgsm
from .pgd import pgd
from .wasserstein import surrogate_objective, wasserstein_ascent

__all__ = [
    "embed_inputs",
    "input_gradient",
    "fgsm",
    "pgd",
    "surrogate_objective",
    "wasserstein_ascent",
]
