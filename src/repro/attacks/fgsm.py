"""Fast Gradient Sign Method (Goodfellow et al., 2015).

The paper evaluates robustness by perturbing the *target node's test data*
with FGSM at strength ξ (Section VI-C): ``x_adv = x + ξ · sign(∇_x l)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn.losses import cross_entropy
from ..nn.modules import Model
from ..nn.parameters import Params
from .common import input_gradient

__all__ = ["fgsm"]


def fgsm(
    model: Model,
    params: Params,
    x: np.ndarray,
    y: np.ndarray,
    xi: float,
    clip_range: Optional[Tuple[float, float]] = None,
    loss_fn=cross_entropy,
) -> np.ndarray:
    """Return FGSM-perturbed inputs at strength ``xi``.

    ``clip_range`` optionally clamps the result to a valid feature range
    (e.g. ``(0, 1)`` for images).
    """
    if xi < 0:
        raise ValueError("xi must be non-negative")
    g = input_gradient(model, params, x, y, loss_fn=loss_fn)
    adv = np.asarray(x, dtype=np.float64) + xi * np.sign(g)
    if clip_range is not None:
        adv = np.clip(adv, clip_range[0], clip_range[1])
    return adv
