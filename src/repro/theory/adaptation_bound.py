"""Theorem 3 — fast-adaptation performance at the target node.

Theorem 3 bounds the gap between the optimal local loss and the loss of the
fast-adapted model by three terms:

    ‖L_t*(φ_t) − L_t*(φ_t*)‖ ≤ αHε + H(1+αH)ε_c + H(1+αH)‖θ_t* − θ_c*‖

* ``αHε`` — sample-average error of the K-shot gradient (shrinks with K,
  with probability ≥ 1 − C_t e^{−Kη});
* ``H(1+αH)ε_c`` — federated meta-training convergence error;
* ``H(1+αH)‖θ_t* − θ_c*‖`` — the *surrogate difference*: how far the
  target's optimal initialization is from the federation's.

This module evaluates the bound and empirically estimates its ingredients,
so experiments can relate measured adaptation quality to the theory
(benchmark ``bench_fig3b_target_similarity``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import Dataset
from ..nn.losses import cross_entropy
from ..nn.modules import Model
from ..nn.parameters import Params, l2_distance
from .estimation import loss_gradient_vector

__all__ = [
    "theorem3_bound",
    "AdaptationGapEstimate",
    "estimate_gradient_sample_error",
    "surrogate_difference",
]


def theorem3_bound(
    alpha: float,
    smoothness: float,
    epsilon_sample: float,
    epsilon_convergence: float,
    surrogate_diff: float,
) -> float:
    """Evaluate the Theorem 3 upper bound."""
    for name, value in (
        ("alpha", alpha),
        ("smoothness", smoothness),
        ("epsilon_sample", epsilon_sample),
        ("epsilon_convergence", epsilon_convergence),
        ("surrogate_diff", surrogate_diff),
    ):
        if value < 0:
            raise ValueError(f"{name} must be non-negative, got {value}")
    amplification = smoothness * (1.0 + alpha * smoothness)
    return (
        alpha * smoothness * epsilon_sample
        + amplification * epsilon_convergence
        + amplification * surrogate_diff
    )


@dataclass(frozen=True)
class AdaptationGapEstimate:
    """Empirical estimate of ε: ‖∇L_t(θ) − ∇L_t*(θ)‖ from K samples."""

    epsilon_mean: float
    epsilon_max: float
    k: int


def estimate_gradient_sample_error(
    model: Model,
    params: Params,
    population: Dataset,
    k: int,
    rng: np.random.Generator,
    num_draws: int = 10,
    loss_fn=cross_entropy,
) -> AdaptationGapEstimate:
    """Estimate the K-sample gradient error at a parameter point.

    Treats ``population`` as (a large sample of) the target distribution
    P_t; draws ``num_draws`` K-subsets and measures the deviation of the
    subset gradient from the population gradient.  Theorem 3's ε shrinks
    with K — :mod:`tests.theory` verifies this monotonicity.
    """
    if k < 1 or k > len(population):
        raise ValueError(f"k must be in [1, {len(population)}]")
    reference = loss_gradient_vector(model, params, population, loss_fn)
    errors = []
    for _ in range(num_draws):
        chosen = rng.choice(len(population), size=k, replace=False)
        subset = population.subset(chosen)
        g = loss_gradient_vector(model, params, subset, loss_fn)
        errors.append(float(np.linalg.norm(g - reference)))
    return AdaptationGapEstimate(
        epsilon_mean=float(np.mean(errors)),
        epsilon_max=float(np.max(errors)),
        k=k,
    )


def surrogate_difference(theta_target: Params, theta_collaborative: Params) -> float:
    """‖θ_t* − θ_c*‖ — the target–federation similarity of Theorem 3."""
    return l2_distance(theta_target, theta_collaborative)
