"""Empirical estimation of the constants in Assumptions 1–4.

The paper's convergence theory is phrased in terms of per-node loss
constants — strong convexity μ, smoothness H, gradient bound B, Hessian
Lipschitz constant ρ — and node-similarity constants δ_i, σ_i bounding
‖∇L_i − ∇L_w‖ and ‖∇²L_i − ∇²L_w‖.  None of these are observable in closed
form for real models, so this module estimates them by sampling parameter
points and probing Hessians with Hessian-vector products (computed exactly
via double backward — no finite differencing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..autodiff import grad
from ..data.dataset import Dataset
from ..nn.losses import cross_entropy
from ..nn.modules import Model
from ..nn.parameters import Params, from_vector, require_grad, to_vector

__all__ = [
    "loss_gradient_vector",
    "hessian_vector_product",
    "SmoothnessEstimate",
    "estimate_smoothness",
    "NodeSimilarity",
    "estimate_similarity",
]


def _loss_at(
    model: Model, params: Params, data: Dataset, loss_fn=cross_entropy
):
    return loss_fn(model.apply(params, data.x), data.y)


def loss_gradient_vector(
    model: Model,
    params: Params,
    data: Dataset,
    loss_fn=cross_entropy,
) -> np.ndarray:
    """``∇L(θ, D)`` flattened to a vector (sorted-key order)."""
    theta = require_grad(params)
    loss = _loss_at(model, theta, data, loss_fn)
    names = sorted(theta)
    grads = grad(loss, [theta[n] for n in names], allow_unused=True)
    pieces = []
    for name, g in zip(names, grads):
        if g is None:
            pieces.append(np.zeros(theta[name].size))
        else:
            pieces.append(g.data.reshape(-1))
    return np.concatenate(pieces)


def hessian_vector_product(
    model: Model,
    params: Params,
    data: Dataset,
    vector: np.ndarray,
    loss_fn=cross_entropy,
) -> np.ndarray:
    """Exact ``∇²L(θ, D) · v`` via reverse-over-reverse autodiff."""
    theta = require_grad(params)
    names = sorted(theta)
    loss = _loss_at(model, theta, data, loss_fn)
    grads = grad(loss, [theta[n] for n in names], create_graph=True, allow_unused=True)
    v_tree = from_vector(np.asarray(vector, dtype=np.float64), params)
    inner = None
    for name, g in zip(names, grads):
        if g is None:
            continue
        term = (g * v_tree[name]).sum()
        inner = term if inner is None else inner + term
    if inner is None:
        return np.zeros_like(np.asarray(vector, dtype=np.float64))
    hv = grad(inner, [theta[n] for n in names], allow_unused=True)
    pieces = []
    for name, h in zip(names, hv):
        if h is None:
            pieces.append(np.zeros(theta[name].size))
        else:
            pieces.append(h.data.reshape(-1))
    return np.concatenate(pieces)


@dataclass(frozen=True)
class SmoothnessEstimate:
    """Empirical (μ, H, B, ρ) for one loss landscape."""

    mu: float
    smoothness: float
    gradient_bound: float
    hessian_lipschitz: float


def estimate_smoothness(
    model: Model,
    data: Dataset,
    rng: np.random.Generator,
    num_points: int = 8,
    num_probes: int = 4,
    radius: float = 1.0,
    loss_fn=cross_entropy,
) -> SmoothnessEstimate:
    """Estimate Assumption 1–3 constants by random sampling.

    Samples parameter pairs in a ball of ``radius`` around a fresh
    initialization, then takes the extremal observed ratios.  Estimates are
    (probabilistic) lower bounds on H, ρ, B and an upper bound on μ — enough
    to sanity-check learning-rate conditions and relative orderings.
    """
    base = model.init(rng)
    dim = to_vector(base).size
    points: List[np.ndarray] = [
        to_vector(base) + rng.normal(0.0, radius / np.sqrt(dim), size=dim)
        for _ in range(num_points)
    ]
    grads = [
        loss_gradient_vector(model, from_vector(p, base), data, loss_fn)
        for p in points
    ]

    mu = np.inf
    smoothness = 0.0
    gradient_bound = max(float(np.linalg.norm(g)) for g in grads)
    for i in range(num_points):
        for j in range(i + 1, num_points):
            dp = points[i] - points[j]
            dg = grads[i] - grads[j]
            dist_sq = float(dp @ dp)
            if dist_sq < 1e-18:
                continue
            smoothness = max(
                smoothness, float(np.linalg.norm(dg)) / np.sqrt(dist_sq)
            )
            mu = min(mu, float(dg @ dp) / dist_sq)

    hessian_lipschitz = 0.0
    for i in range(min(num_points - 1, 4)):
        p, q = points[i], points[i + 1]
        dist = float(np.linalg.norm(p - q))
        if dist < 1e-12:
            continue
        for _ in range(num_probes):
            v = rng.normal(size=dim)
            v /= np.linalg.norm(v)
            hv_p = hessian_vector_product(
                model, from_vector(p, base), data, v, loss_fn
            )
            hv_q = hessian_vector_product(
                model, from_vector(q, base), data, v, loss_fn
            )
            hessian_lipschitz = max(
                hessian_lipschitz, float(np.linalg.norm(hv_p - hv_q)) / dist
            )

    return SmoothnessEstimate(
        mu=float(max(mu, 0.0)),
        smoothness=float(smoothness),
        gradient_bound=gradient_bound,
        hessian_lipschitz=float(hessian_lipschitz),
    )


@dataclass(frozen=True)
class NodeSimilarity:
    """Empirical Assumption-4 constants across a node population."""

    delta: np.ndarray  # per-node ‖∇L_i − ∇L_w‖
    sigma: np.ndarray  # per-node ‖(∇²L_i − ∇²L_w) v‖ (probed operator norm)

    @property
    def delta_mean(self) -> float:
        return float(np.mean(self.delta))

    @property
    def sigma_mean(self) -> float:
        return float(np.mean(self.sigma))

    def weighted(self, weights: Sequence[float]) -> tuple:
        """(δ, σ, τ) = (Σωδ_i, Σωσ_i, Σωδ_iσ_i) as used by Theorems 1–2."""
        w = np.asarray(weights, dtype=np.float64)
        w = w / w.sum()
        delta = float(w @ self.delta)
        sigma = float(w @ self.sigma)
        tau = float(w @ (self.delta * self.sigma))
        return delta, sigma, tau


def estimate_similarity(
    model: Model,
    params: Params,
    node_datasets: Sequence[Dataset],
    weights: Sequence[float],
    rng: np.random.Generator,
    num_probes: int = 4,
    loss_fn=cross_entropy,
) -> NodeSimilarity:
    """Estimate δ_i and σ_i at a parameter point θ.

    ``∇L_w`` / ``∇²L_w`` are the ω-weighted averages over the node
    population (eq. 2); the Hessian dissimilarity is probed with random unit
    vectors, giving a lower bound on the operator norm.
    """
    w = np.asarray(weights, dtype=np.float64)
    w = w / w.sum()

    node_grads = [
        loss_gradient_vector(model, params, data, loss_fn) for data in node_datasets
    ]
    mean_grad = np.sum([wi * g for wi, g in zip(w, node_grads)], axis=0)
    delta = np.array([np.linalg.norm(g - mean_grad) for g in node_grads])

    dim = mean_grad.size
    probes = [rng.normal(size=dim) for _ in range(num_probes)]
    probes = [v / np.linalg.norm(v) for v in probes]
    sigma = np.zeros(len(node_datasets))
    for v in probes:
        node_hvs = [
            hessian_vector_product(model, params, data, v, loss_fn)
            for data in node_datasets
        ]
        mean_hv = np.sum([wi * h for wi, h in zip(w, node_hvs)], axis=0)
        for i, h in enumerate(node_hvs):
            sigma[i] = max(sigma[i], float(np.linalg.norm(h - mean_hv)))

    return NodeSimilarity(delta=delta, sigma=sigma)
