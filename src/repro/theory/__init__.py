"""Convergence theory toolkit: constant estimation and the paper's bounds."""

from .adaptation_bound import (
    AdaptationGapEstimate,
    estimate_gradient_sample_error,
    surrogate_difference,
    theorem3_bound,
)
from .bounds import (
    MetaObjectiveConstants,
    contraction_factor,
    h_error_term,
    lemma1_constants,
    max_inner_learning_rate,
    max_meta_learning_rate,
    theorem1_dissimilarity_bound,
    theorem2_bound,
    theorem4_lambda_threshold,
)
from .estimation import (
    NodeSimilarity,
    SmoothnessEstimate,
    estimate_similarity,
    estimate_smoothness,
    hessian_vector_product,
    loss_gradient_vector,
)

__all__ = [
    "AdaptationGapEstimate",
    "estimate_gradient_sample_error",
    "surrogate_difference",
    "theorem3_bound",
    "MetaObjectiveConstants",
    "contraction_factor",
    "h_error_term",
    "lemma1_constants",
    "max_inner_learning_rate",
    "max_meta_learning_rate",
    "theorem1_dissimilarity_bound",
    "theorem2_bound",
    "theorem4_lambda_threshold",
    "NodeSimilarity",
    "SmoothnessEstimate",
    "estimate_similarity",
    "estimate_smoothness",
    "hessian_vector_product",
    "loss_gradient_vector",
]
