"""The paper's convergence bounds (Lemma 1, Theorems 1–4) as callable code.

These functions let experiments juxtapose *measured* convergence with the
*predicted* behaviour — e.g. the benches verify that the Theorem-2 error
term h(T0) is increasing in T0 and in the dissimilarity constants, matching
Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MetaObjectiveConstants",
    "lemma1_constants",
    "max_inner_learning_rate",
    "max_meta_learning_rate",
    "theorem1_dissimilarity_bound",
    "contraction_factor",
    "h_error_term",
    "theorem2_bound",
    "theorem4_lambda_threshold",
]


@dataclass(frozen=True)
class MetaObjectiveConstants:
    """(μ′, H′) of the meta objective G(θ) from Lemma 1."""

    mu_prime: float
    h_prime: float

    @property
    def is_strongly_convex(self) -> bool:
        return self.mu_prime > 0


def max_inner_learning_rate(mu: float, smoothness: float, rho: float, b: float) -> float:
    """Lemma 1 / Theorem 2 condition: α ≤ min{μ/(2μH + ρB), 1/μ}."""
    _validate_positive(mu=mu, smoothness=smoothness)
    _validate_nonnegative(rho=rho, b=b)
    return min(mu / (2.0 * mu * smoothness + rho * b), 1.0 / mu)


def lemma1_constants(
    alpha: float, mu: float, smoothness: float, rho: float, b: float
) -> MetaObjectiveConstants:
    """μ′ = μ(1 − αH)² − αρB and H′ = H(1 − αμ)² + αρB."""
    _validate_positive(alpha=alpha, mu=mu, smoothness=smoothness)
    _validate_nonnegative(rho=rho, b=b)
    mu_prime = mu * (1.0 - alpha * smoothness) ** 2 - alpha * rho * b
    h_prime = smoothness * (1.0 - alpha * mu) ** 2 + alpha * rho * b
    return MetaObjectiveConstants(mu_prime=mu_prime, h_prime=h_prime)


def max_meta_learning_rate(constants: MetaObjectiveConstants) -> float:
    """Theorem 2 condition: β < min{1/(2μ′), 2/H′}."""
    if not constants.is_strongly_convex:
        raise ValueError(
            "meta objective is not strongly convex (μ' <= 0); decrease alpha"
        )
    return min(1.0 / (2.0 * constants.mu_prime), 2.0 / constants.h_prime)


def theorem1_dissimilarity_bound(
    alpha: float,
    smoothness: float,
    b: float,
    delta_i: float,
    sigma_i: float,
    tau: float,
    c: float = 2.0,
) -> float:
    """‖∇G_i − ∇G‖ ≤ δ_i + αC(Hδ_i + Bσ_i + τ).

    ``c`` is the constant C from Theorem 1 (the proof exhibits C ≈ 2 for
    small α; it is exposed so sensitivity can be explored).
    """
    _validate_nonnegative(
        alpha=alpha, smoothness=smoothness, b=b, delta_i=delta_i,
        sigma_i=sigma_i, tau=tau,
    )
    return delta_i + alpha * c * (smoothness * delta_i + b * sigma_i + tau)


def contraction_factor(beta: float, constants: MetaObjectiveConstants) -> float:
    """ξ = 1 − 2βμ′(1 − H′β/2); convergence requires ξ ∈ (0, 1)."""
    _validate_positive(beta=beta)
    xi = 1.0 - 2.0 * beta * constants.mu_prime * (1.0 - constants.h_prime * beta / 2.0)
    return xi


def h_error_term(
    t0: int,
    alpha: float,
    beta: float,
    constants: MetaObjectiveConstants,
    smoothness: float,
    b: float,
    delta: float,
    sigma: float,
    tau: float,
    c: float = 2.0,
) -> float:
    """h(T0) of Theorem 2 — the local-update / dissimilarity error term.

    h(x) = (α′ / βH′)[(1 + βH′)^x − 1] − α′x with
    α′ = β[δ + αC(Hδ + Bσ + τ)].  Note h(1) = 0: with one local step per
    round the extra error vanishes (Corollary 1).
    """
    if t0 < 1:
        raise ValueError("t0 must be >= 1")
    alpha_prime = beta * (
        delta + alpha * c * (smoothness * delta + b * sigma + tau)
    )
    bh = beta * constants.h_prime
    return (alpha_prime / bh) * ((1.0 + bh) ** t0 - 1.0) - alpha_prime * t0


def theorem2_bound(
    total_iterations: int,
    t0: int,
    initial_gap: float,
    alpha: float,
    beta: float,
    mu: float,
    constants: MetaObjectiveConstants,
    smoothness: float,
    b: float,
    delta: float,
    sigma: float,
    tau: float,
    c: float = 2.0,
) -> float:
    """G(θ^T) − G(θ*) ≤ ξ^T [G(θ⁰) − G(θ*)] + B(1 − αμ)/(1 − ξ^T0) · h(T0)."""
    if total_iterations < 1:
        raise ValueError("total_iterations must be >= 1")
    xi = contraction_factor(beta, constants)
    if not 0.0 < xi < 1.0:
        raise ValueError(f"contraction factor ξ={xi:.4f} outside (0, 1)")
    h = h_error_term(
        t0, alpha, beta, constants, smoothness, b, delta, sigma, tau, c=c
    )
    transient = xi**total_iterations * initial_gap
    if t0 == 1:
        return transient  # Corollary 1
    steady = b * (1.0 - alpha * mu) / (1.0 - xi**t0) * h
    return transient + steady


def theorem4_lambda_threshold(
    h_xx: float, h_theta_x: float, h_x_theta: float, mu: float
) -> float:
    """Theorem 4: λ ≥ H_xx + H_θx·H_xθ/μ makes the robust objective well posed."""
    _validate_positive(mu=mu)
    _validate_nonnegative(h_xx=h_xx, h_theta_x=h_theta_x, h_x_theta=h_x_theta)
    return h_xx + h_theta_x * h_x_theta / mu


def _validate_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


def _validate_nonnegative(**values: float) -> None:
    for name, value in values.items():
        if value < 0:
            raise ValueError(f"{name} must be non-negative, got {value}")
