"""First-order backward fast path: raw VJP execution with cached plans.

``grad(..., create_graph=False)`` — every inner-loop gradient, every
``meta_gradient`` outer derivative, every evaluation — does not need
differentiable cotangents, yet the reference backward in
:mod:`repro.autodiff.tensor` builds a full graph of cotangent tensors and
closures only to detach it at the end.  On top of that, the federated engine
replays the *same* graph structure thousands of times per run (one per local
step), re-deriving the toposort, the on-path set, and every intermediate
allocation from scratch each time.

This module removes both costs while staying **bit-identical** to the
reference backward:

* **Non-graph execution** — graph recording is switched off
  (:func:`repro.autodiff.ops._set_grad_enabled`) while VJP closures run, so
  the same numpy arithmetic executes but no ``_Context``/closure objects are
  built for cotangents.  Fused ops additionally provide raw ndarray VJPs
  (``_Context.raw_vjps``) that skip Tensor construction entirely.
* **Structure-keyed plan cache** — the backward *plan* (topological node
  positions, the on-path filter, per-node edge lists, and cotangent
  accumulation counts) depends only on graph structure: op names, shapes,
  parent wiring, pruned-VJP mask, and input positions.  Plans are cached in
  an LRU keyed by that signature and reused across structurally identical
  steps.  Per-op parameters (reduction axes, slice indices, captured
  constants) are *not* cached — the executor always calls the VJPs recorded
  on the live graph — so a cache hit can never apply the wrong arithmetic.
* **Buffer reuse** — positions that accumulate two or more cotangent
  contributions get a persistent per-plan buffer; accumulation runs
  ``np.add(buf, c, out=buf)`` (bit-equal to ``buf + c``) instead of
  allocating a fresh array per contribution.  Input gradients are copied
  out, so returned arrays never alias plan state.

Bit-exactness: the executor replays exactly the float operations of the
reference backward, in exactly the same accumulation order (reverse
topological, parents in recorded order, ``existing + contribution``).
This is proven by ``tests/autodiff/test_fastpath.py`` (including a
hypothesis property over random graphs) and by the seven golden
seed-equivalence traces running with the fast path on.

The fast path is bypassed when ``create_graph=True`` (MAML inner steps that
need double backward) or after :func:`disable` / inside :func:`disabled`.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import ops
from .tensor import GradientError, Tensor

__all__ = [
    "FastpathStats",
    "backward",
    "clear_cache",
    "disable",
    "disabled",
    "enable",
    "enabled",
    "merge_stats",
    "plan_cache_size",
    "reset_stats",
    "stats",
    "to_registry",
]

_ENABLED = True

#: LRU capacity of the plan cache.  A federated run exercises a handful of
#: distinct graph structures (inner step, outer step, eval — per batch
#: shape), so a small cache captures the entire working set.
_MAX_PLANS = 64


def enabled() -> bool:
    """Whether ``grad(..., create_graph=False)`` uses the fast path."""
    return _ENABLED


def enable() -> None:
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


@contextmanager
def disabled() -> Iterator[None]:
    """Temporarily force the reference backward (e.g. for A/B testing)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
@dataclass
class FastpathStats:
    """Process-wide fast path activity counters."""

    backwards: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_evictions: int = 0
    raw_vjp_calls: int = 0
    closure_vjp_calls: int = 0
    fused_dispatches: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "backwards": self.backwards,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_evictions": self.plan_evictions,
            "raw_vjp_calls": self.raw_vjp_calls,
            "closure_vjp_calls": self.closure_vjp_calls,
            "fused_dispatches": self.fused_dispatches,
        }

    def delta_since(self, baseline: Dict[str, int]) -> Dict[str, int]:
        """Counter increments since a previous :meth:`as_dict` snapshot."""
        current = self.as_dict()
        return {k: current[k] - baseline.get(k, 0) for k in current}


_STATS = FastpathStats()


def stats() -> FastpathStats:
    return _STATS


def reset_stats() -> None:
    global _STATS
    _STATS = FastpathStats()


def note_fused_dispatch() -> None:
    """Record that a call site dispatched to a fused composite op."""
    _STATS.fused_dispatches += 1


def merge_stats(delta: Dict[str, int]) -> None:
    """Fold a worker process's counter delta into this process's stats.

    The :class:`~repro.engine.executors.ParallelExecutor` runs backward
    passes in worker processes whose module-global counters die with the
    worker; merging their per-task deltas here keeps the exported
    ``autodiff_fastpath_*`` totals identical between serial and parallel
    executions of the same workload.
    """
    _STATS.backwards += delta.get("backwards", 0)
    _STATS.plan_hits += delta.get("plan_hits", 0)
    _STATS.plan_misses += delta.get("plan_misses", 0)
    _STATS.plan_evictions += delta.get("plan_evictions", 0)
    _STATS.raw_vjp_calls += delta.get("raw_vjp_calls", 0)
    _STATS.closure_vjp_calls += delta.get("closure_vjp_calls", 0)
    _STATS.fused_dispatches += delta.get("fused_dispatches", 0)


def to_registry(registry: Any, prefix: str = "autodiff_fastpath_") -> None:
    """Export counters into a :class:`repro.obs.MetricRegistry`."""
    for key, value in _STATS.as_dict().items():
        registry.counter(f"{prefix}{key}_total").inc(value)
    registry.gauge(f"{prefix}cached_plans").set(float(len(_PLANS)))


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
#: One hashable entry per graph node: ``(None, shape)`` for leaves, else
#: ``(op_name, shape, parent_positions, pruned_vjp_mask)``.
Signature = Tuple[Tuple[Tuple[Any, ...], ...], Tuple[int, ...]]


@dataclass
class _Plan:
    """Structure-derived backward schedule, reusable across identical graphs.

    ``node_edges`` lists, root-first, each node that propagates a cotangent
    together with its surviving ``(vjp_index, parent_position)`` edges —
    exactly the pairs the reference backward would execute.  ``buffers``
    holds a persistent accumulation array for every position receiving two
    or more contributions.
    """

    node_edges: List[Tuple[int, List[Tuple[int, int]]]]
    input_positions: Tuple[int, ...]
    buffers: Dict[int, np.ndarray] = field(default_factory=dict)


_PLANS: "OrderedDict[Signature, _Plan]" = OrderedDict()


def plan_cache_size() -> int:
    return len(_PLANS)


def clear_cache() -> None:
    _PLANS.clear()


def _signature(
    order: Sequence[Tensor],
    inputs: Sequence[Tensor],
    pos_map: Dict[int, int],
) -> Signature:
    nodes: List[Tuple[Any, ...]] = []
    for node in order:
        ctx = node._ctx
        if ctx is None:
            nodes.append((None, node.data.shape))
        else:
            nodes.append(
                (
                    ctx.op_name,
                    node.data.shape,
                    tuple(pos_map[id(p)] for p in ctx.parents),
                    tuple(v is not None for v in ctx.vjps),
                )
            )
    input_positions = tuple(pos_map.get(id(t), -1) for t in inputs)
    return (tuple(nodes), input_positions)


def _build_plan(sig: Signature) -> _Plan:
    nodes_sig, input_positions = sig
    n = len(nodes_sig)
    input_set = {p for p in input_positions if p >= 0}

    # On-path filter, positionally identical to tensor._requires_path.
    needed = [False] * n
    for i, entry in enumerate(nodes_sig):
        if i in input_set:
            needed[i] = True
        elif entry[0] is not None and any(needed[p] for p in entry[2]):
            needed[i] = True

    # Walk root-first exactly like the reference backward, recording which
    # edges fire and how many contributions each position receives.
    has_cot = [False] * n
    contributions = [0] * n
    if n:
        has_cot[n - 1] = True
        contributions[n - 1] = 1  # the seed
    node_edges: List[Tuple[int, List[Tuple[int, int]]]] = []
    for i in range(n - 1, -1, -1):
        entry = nodes_sig[i]
        if not has_cot[i] or entry[0] is None:
            continue
        edges: List[Tuple[int, int]] = []
        for j, parent_pos in enumerate(entry[2]):
            if not entry[3][j] or not needed[parent_pos]:
                continue
            edges.append((j, parent_pos))
            contributions[parent_pos] += 1
            has_cot[parent_pos] = True
        if edges:
            node_edges.append((i, edges))

    buffers = {
        i: np.empty(nodes_sig[i][1], dtype=np.float64)
        for i in range(n)
        if contributions[i] >= 2
    }
    return _Plan(
        node_edges=node_edges,
        input_positions=input_positions,
        buffers=buffers,
    )


def _get_plan(sig: Signature) -> _Plan:
    plan = _PLANS.get(sig)
    if plan is not None:
        _PLANS.move_to_end(sig)
        _STATS.plan_hits += 1
        return plan
    plan = _build_plan(sig)
    _PLANS[sig] = plan
    _STATS.plan_misses += 1
    if len(_PLANS) > _MAX_PLANS:
        _PLANS.popitem(last=False)
        _STATS.plan_evictions += 1
    return plan


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def backward(
    output: Tensor,
    inputs: Sequence[Tensor],
    order: Sequence[Tensor],
    seed: np.ndarray,
) -> List[Optional[np.ndarray]]:
    """Execute a first-order backward pass over ``order`` on raw ndarrays.

    ``order`` must be the topological order of ``output``'s graph (inputs
    first, ``output`` last) as produced by :func:`repro.autodiff.toposort`.
    Returns one gradient array per input (``None`` for unreachable inputs);
    results are fresh arrays that never alias graph or plan state.
    """
    _STATS.backwards += 1
    ops._BACKWARD_EPOCH += 1  # invalidates per-node raw-VJP memos

    pos_map = {id(node): i for i, node in enumerate(order)}
    plan = _get_plan(_signature(order, inputs, pos_map))

    cots: List[Optional[np.ndarray]] = [None] * len(order)
    if order:
        cots[len(order) - 1] = seed

    raw_calls = 0
    closure_calls = 0
    previous = ops._set_grad_enabled(False)
    try:
        for node_pos, edges in plan.node_edges:
            node = order[node_pos]
            ctx = node._ctx
            assert ctx is not None  # structural: plan only lists ctx nodes
            cot = cots[node_pos]
            assert cot is not None  # structural: plan only lists seeded nodes
            cot_tensor: Optional[Tensor] = None
            for vjp_index, parent_pos in edges:
                raw_vjp = (
                    None if ctx.raw_vjps is None else ctx.raw_vjps[vjp_index]
                )
                if raw_vjp is not None:
                    contribution = raw_vjp(cot)
                    raw_calls += 1
                else:
                    if cot_tensor is None:
                        cot_tensor = Tensor(cot)
                    vjp = ctx.vjps[vjp_index]
                    assert vjp is not None  # structural: pruned mask in sig
                    contribution = vjp(cot_tensor).data
                    closure_calls += 1
                parent = order[parent_pos]
                if contribution.shape != parent.shape:
                    raise GradientError(
                        f"vjp of op '{ctx.op_name}' produced shape "
                        f"{contribution.shape}, expected {parent.shape}"
                    )
                existing = cots[parent_pos]
                buffer = plan.buffers.get(parent_pos)
                if existing is None:
                    if buffer is None:
                        cots[parent_pos] = contribution
                    else:
                        np.copyto(buffer, contribution)
                        cots[parent_pos] = buffer
                else:
                    # existing is this position's buffer; np.add(a, b, out=a)
                    # is bit-equal to the reference's `existing + c`.
                    np.add(existing, contribution, out=existing)
    finally:
        ops._set_grad_enabled(previous)
    _STATS.raw_vjp_calls += raw_calls
    _STATS.closure_vjp_calls += closure_calls

    results: List[Optional[np.ndarray]] = []
    for pos in plan.input_positions:
        value = None if pos < 0 else cots[pos]
        if value is None:
            results.append(None)
        else:
            results.append(np.array(value, copy=True))
    return results
