"""First-order backward fast path: cached plans compiled to arena kernels.

``grad(..., create_graph=False)`` — every inner-loop gradient, every
``meta_gradient`` outer derivative, every evaluation — does not need
differentiable cotangents, yet the reference backward in
:mod:`repro.autodiff.tensor` builds a full graph of cotangent tensors and
closures only to detach it at the end.  On top of that, the federated engine
replays the *same* graph structure thousands of times per run (one per local
step), re-deriving the toposort, the on-path set, and every intermediate
allocation from scratch each time.

This module removes those costs in two tiers while staying **bit-identical**
to the reference backward:

* **Cached tier** (the PR-5 fast path, ``set_mode("cached")``) — graph
  recording is switched off while VJP closures run, raw ndarray VJPs skip
  Tensor construction, and a structure-keyed LRU plan cache reuses the
  backward schedule across structurally identical steps.  Per-op parameters
  (reduction axes, slice indices, captured constants) are *not* cached — the
  executor always calls the VJPs recorded on the live graph — so a cache hit
  can never apply the wrong arithmetic.
* **Compiled tier** (``set_mode("compiled")``, the default) — when the *same
  live graph* is replayed, the plan is lowered to a flat list of bound kernel
  steps through a :class:`~repro.autodiff.backend.PlanBackend`:

  - every intermediate cotangent gets a pre-sized **arena slot** owned by the
    plan (one arena per signature group), so steady-state ``backward()``
    performs zero ndarray allocations for kernelized tapes;
  - a **peephole pass** elides pure move edges (identity passthrough,
    reshape, transpose become slot aliases) and coalesces adjacent
    single-use elementwise kernels into composite steps;
  - edges the backend cannot kernelize fall back to the op's raw/closure
    VJP — allocating, and counted in ``hot_allocations``.

  Compilation triggers on the *second* sighting of a live graph (keyed by
  object identity, validated through weakrefs), so fresh-graph training
  loops keep cached-tier performance and never pay bind cost.

Bit-exactness: both tiers replay exactly the float operations of the
reference backward, in exactly the same accumulation order (reverse
topological, parents in recorded order, ``existing + contribution``);
kernels mirror each raw VJP's ufunc sequence with ``out=`` writes (see
:mod:`repro.autodiff.backend`).  Raw-VJP memos are epoch-guarded
(``ops._BACKWARD_EPOCH``) so reused arena buffers can never satisfy a
stale cotangent-identity memo.  This is proven by
``tests/autodiff/test_fastpath.py`` (including hypothesis properties over
random graphs and warm-buffer replays) and by the seven golden
seed-equivalence traces running with the fast path on.

The fast path is bypassed when ``create_graph=True`` (MAML inner steps that
need double backward) or after :func:`disable` / inside :func:`disabled`.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from . import ops
from .backend import PlanBackend, Step, numpy_backend
from .tensor import GradientError, Tensor

__all__ = [
    "FastpathStats",
    "arena_stats",
    "backward",
    "clear_cache",
    "disable",
    "disabled",
    "enable",
    "enabled",
    "exec_cache_size",
    "get_backend",
    "get_mode",
    "merge_stats",
    "plan_cache_size",
    "reset_stats",
    "set_alloc_hook",
    "set_backend",
    "set_mode",
    "stats",
    "to_registry",
]

_ENABLED = True

#: "compiled" lowers replayed graphs to arena kernels; "cached" forces the
#: PR-5 allocating executor (the A/B baseline for the compile layer).
_MODE = "compiled"

#: LRU capacity of the plan cache.  A federated run exercises a handful of
#: distinct graph structures (inner step, outer step, eval — per batch
#: shape), so a small cache captures the entire working set.
_MAX_PLANS = 64
#: LRU capacity of the compiled-executable cache (live-graph keyed).
_MAX_EXECS = 128
#: Capacity of the first-sighting table that arms compilation.
_MAX_SEEN = 256

_BACKEND: PlanBackend = numpy_backend

#: Installed by :mod:`repro.autodiff.profile` to feed hot-path allocation
#: counts into the active tape profiler.
_ALLOC_HOOK: Optional[Callable[[int], None]] = None


def enabled() -> bool:
    """Whether ``grad(..., create_graph=False)`` uses the fast path."""
    return _ENABLED


def enable() -> None:
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


@contextmanager
def disabled() -> Iterator[None]:
    """Temporarily force the reference backward (e.g. for A/B testing)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def get_mode() -> str:
    return _MODE


def set_mode(mode: str) -> str:
    """Select ``"compiled"`` (default) or ``"cached"``; returns the old mode."""
    global _MODE
    if mode not in ("compiled", "cached"):
        raise ValueError(f"unknown fastpath mode: {mode!r}")
    previous = _MODE
    _MODE = mode
    return previous


def get_backend() -> PlanBackend:
    return _BACKEND


def set_backend(backend: PlanBackend) -> PlanBackend:
    """Swap the kernel backend; drops compiled executables, returns the old one."""
    global _BACKEND
    previous = _BACKEND
    _BACKEND = backend
    _drop_executables()
    return previous


def set_alloc_hook(
    hook: Optional[Callable[[int], None]]
) -> Optional[Callable[[int], None]]:
    """Install a hot-path allocation observer; returns the previous hook."""
    global _ALLOC_HOOK
    previous = _ALLOC_HOOK
    _ALLOC_HOOK = hook
    return previous


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
@dataclass
class FastpathStats:
    """Process-wide fast path activity counters."""

    backwards: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_evictions: int = 0
    raw_vjp_calls: int = 0
    closure_vjp_calls: int = 0
    fused_dispatches: int = 0
    compiled_runs: int = 0
    compiled_graphs: int = 0
    kernel_vjp_calls: int = 0
    coalesced_steps: int = 0
    arena_reuse_hits: int = 0
    hot_allocations: int = 0
    result_copies: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta_since(self, baseline: Dict[str, int]) -> Dict[str, int]:
        """Counter increments since a previous :meth:`as_dict` snapshot."""
        current = self.as_dict()
        return {k: current[k] - baseline.get(k, 0) for k in current}


_STATS = FastpathStats()
_STAT_NAMES = frozenset(f.name for f in fields(FastpathStats))


def stats() -> FastpathStats:
    return _STATS


def reset_stats() -> None:
    global _STATS
    _STATS = FastpathStats()


def note_fused_dispatch() -> None:
    """Record that a call site dispatched to a fused composite op."""
    _STATS.fused_dispatches += 1


def merge_stats(delta: Dict[str, int]) -> None:
    """Fold a worker process's counter delta into this process's stats.

    The :class:`~repro.engine.executors.ParallelExecutor` runs backward
    passes in worker processes whose module-global counters die with the
    worker; merging their per-task deltas here keeps the exported
    ``autodiff_fastpath_*`` totals identical between serial and parallel
    executions of the same workload.
    """
    for key, value in delta.items():
        if key in _STAT_NAMES:
            setattr(_STATS, key, getattr(_STATS, key) + int(value))


def to_registry(registry: Any, prefix: str = "autodiff_fastpath_") -> None:
    """Export counters and arena gauges into a :class:`repro.obs.MetricRegistry`."""
    for key, value in _STATS.as_dict().items():
        if key == "arena_reuse_hits":
            # Canonical arena-family name used by dashboards and docs.
            registry.counter("autodiff_arena_reuse_total").inc(value)
        else:
            registry.counter(f"{prefix}{key}_total").inc(value)
    registry.gauge(f"{prefix}cached_plans").set(float(len(_PLANS)))
    registry.gauge(f"{prefix}compiled_execs").set(float(len(_EXECS)))
    registry.gauge("autodiff_arena_slots").set(float(_ARENA_SLOTS))
    registry.gauge("autodiff_arena_bytes").set(float(_ARENA_BYTES))
    registry.gauge("autodiff_arena_peak_bytes").set(float(_ARENA_PEAK_BYTES))


# ----------------------------------------------------------------------
# Arena accounting
# ----------------------------------------------------------------------
_ARENA_BYTES = 0
_ARENA_SLOTS = 0
_ARENA_PEAK_BYTES = 0


def arena_stats() -> Dict[str, int]:
    """Live arena footprint: ``{"slots", "bytes", "peak_bytes"}``."""
    return {
        "slots": _ARENA_SLOTS,
        "bytes": _ARENA_BYTES,
        "peak_bytes": _ARENA_PEAK_BYTES,
    }


def _arena_register(nbytes: int) -> None:
    global _ARENA_BYTES, _ARENA_SLOTS, _ARENA_PEAK_BYTES
    _ARENA_BYTES += nbytes
    _ARENA_SLOTS += 1
    if _ARENA_BYTES > _ARENA_PEAK_BYTES:
        _ARENA_PEAK_BYTES = _ARENA_BYTES


def _arena_unregister(nbytes: int, slots: int) -> None:
    global _ARENA_BYTES, _ARENA_SLOTS
    _ARENA_BYTES -= nbytes
    _ARENA_SLOTS -= slots


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
#: One hashable entry per graph node: ``(None, shape)`` for leaves, else
#: ``(op_name, shape, parent_positions, pruned_vjp_mask)``.
Signature = Tuple[Tuple[Tuple[Any, ...], ...], Tuple[int, ...]]

_ExecKey = Tuple[int, ...]


@dataclass
class _Plan:
    """Structure-derived backward schedule, reusable across identical graphs.

    ``node_edges`` lists, root-first, each node that propagates a cotangent
    together with its surviving ``(vjp_index, parent_position)`` edges —
    exactly the pairs the reference backward would execute.  ``buffers``
    holds a persistent accumulation array for every position receiving two
    or more contributions (used by the cached tier).  The compiled tier owns
    ``arena`` (one pre-sized cotangent slot per on-path position) and
    ``scratches`` (per-edge kernel temporaries); both are released on
    plan-cache eviction so arena bytes can never leak across the LRU.
    """

    node_edges: List[Tuple[int, List[Tuple[int, int]]]]
    input_positions: Tuple[int, ...]
    contributions: Tuple[int, ...]
    sig: Optional[Signature] = None
    buffers: Dict[int, np.ndarray] = field(default_factory=dict)
    arena: Dict[int, np.ndarray] = field(default_factory=dict)
    scratches: Dict[Tuple[int, int, int], np.ndarray] = field(
        default_factory=dict
    )
    arena_bytes: int = 0
    exec_keys: Set[_ExecKey] = field(default_factory=set)
    released: bool = False


_PLANS: "OrderedDict[Signature, _Plan]" = OrderedDict()
_EXECS: "OrderedDict[_ExecKey, _Executable]" = OrderedDict()
_SEEN: "OrderedDict[_ExecKey, weakref.ref[Tensor]]" = OrderedDict()


def plan_cache_size() -> int:
    return len(_PLANS)


def exec_cache_size() -> int:
    return len(_EXECS)


def _release_plan(plan: _Plan) -> None:
    """Free a plan's arena and drop its compiled executables."""
    slots = len(plan.arena) + len(plan.scratches)
    _arena_unregister(plan.arena_bytes, slots)
    plan.arena.clear()
    plan.scratches.clear()
    plan.arena_bytes = 0
    plan.released = True
    for key in plan.exec_keys:
        _EXECS.pop(key, None)
    plan.exec_keys.clear()


def _drop_executables() -> None:
    for plan in _PLANS.values():
        _release_plan(plan)
        plan.released = False  # plan structure itself stays reusable
    _EXECS.clear()
    _SEEN.clear()


def clear_cache() -> None:
    global _ARENA_PEAK_BYTES
    for plan in _PLANS.values():
        _release_plan(plan)
    _PLANS.clear()
    _EXECS.clear()
    _SEEN.clear()
    _ARENA_PEAK_BYTES = _ARENA_BYTES


def _signature(
    order: Sequence[Tensor],
    inputs: Sequence[Tensor],
    pos_map: Dict[int, int],
) -> Signature:
    nodes: List[Tuple[Any, ...]] = []
    for node in order:
        ctx = node._ctx
        if ctx is None:
            nodes.append((None, node.data.shape))
        else:
            nodes.append(
                (
                    ctx.op_name,
                    node.data.shape,
                    tuple(pos_map[id(p)] for p in ctx.parents),
                    tuple(v is not None for v in ctx.vjps),
                )
            )
    input_positions = tuple(pos_map.get(id(t), -1) for t in inputs)
    return (tuple(nodes), input_positions)


def _build_plan(sig: Signature) -> _Plan:
    nodes_sig, input_positions = sig
    n = len(nodes_sig)
    input_set = {p for p in input_positions if p >= 0}

    # On-path filter, positionally identical to tensor._requires_path.
    needed = [False] * n
    for i, entry in enumerate(nodes_sig):
        if i in input_set:
            needed[i] = True
        elif entry[0] is not None and any(needed[p] for p in entry[2]):
            needed[i] = True

    # Walk root-first exactly like the reference backward, recording which
    # edges fire and how many contributions each position receives.
    has_cot = [False] * n
    contributions = [0] * n
    if n:
        has_cot[n - 1] = True
        contributions[n - 1] = 1  # the seed
    node_edges: List[Tuple[int, List[Tuple[int, int]]]] = []
    for i in range(n - 1, -1, -1):
        entry = nodes_sig[i]
        if not has_cot[i] or entry[0] is None:
            continue
        edges: List[Tuple[int, int]] = []
        for j, parent_pos in enumerate(entry[2]):
            if not entry[3][j] or not needed[parent_pos]:
                continue
            edges.append((j, parent_pos))
            contributions[parent_pos] += 1
            has_cot[parent_pos] = True
        if edges:
            node_edges.append((i, edges))

    buffers = {
        i: np.empty(nodes_sig[i][1], dtype=np.float64)
        for i in range(n)
        if contributions[i] >= 2
    }
    return _Plan(
        node_edges=node_edges,
        input_positions=input_positions,
        contributions=tuple(contributions),
        buffers=buffers,
    )


def _get_plan(sig: Signature) -> _Plan:
    plan = _PLANS.get(sig)
    if plan is not None:
        _PLANS.move_to_end(sig)
        _STATS.plan_hits += 1
        return plan
    plan = _build_plan(sig)
    plan.sig = sig
    _PLANS[sig] = plan
    _STATS.plan_misses += 1
    if len(_PLANS) > _MAX_PLANS:
        _, evicted = _PLANS.popitem(last=False)
        _release_plan(evicted)
        _STATS.plan_evictions += 1
    return plan


def _plan_slot(plan: _Plan, pos: int, shape: Tuple[int, ...]) -> np.ndarray:
    """The plan-owned cotangent slot for ``pos``, allocating on first use."""
    slot = plan.arena.get(pos)
    if slot is None or slot.shape != shape:
        if slot is not None:
            _arena_unregister(slot.nbytes, 1)
        slot = np.empty(shape, dtype=np.float64)
        plan.arena[pos] = slot
        plan.arena_bytes += slot.nbytes
        _arena_register(slot.nbytes)
    return slot


def _scratch_fn(
    plan: _Plan, node_pos: int, vjp_index: int
) -> Callable[[Tuple[int, ...]], np.ndarray]:
    """Per-edge scratch allocator; scratches persist on the plan and are
    shared across executables compiled from it (same structure, same
    shapes, same request order)."""
    counter = [0]

    def scratch(shape: Tuple[int, ...]) -> np.ndarray:
        key = (node_pos, vjp_index, counter[0])
        counter[0] += 1
        buf = plan.scratches.get(key)
        if buf is None or buf.shape != tuple(shape):
            if buf is not None:
                _arena_unregister(buf.nbytes, 1)
                plan.arena_bytes -= buf.nbytes
            buf = np.empty(shape, dtype=np.float64)
            plan.scratches[key] = buf
            plan.arena_bytes += buf.nbytes
            _arena_register(buf.nbytes)
        return buf

    return scratch


# ----------------------------------------------------------------------
# Compiled executables
# ----------------------------------------------------------------------
class _Executable:
    """A backward pass lowered to bound kernel steps over one plan arena.

    Bound to one *live* graph: operands (parent data arrays, masks,
    indices) are captured from the graph at compile time, and validity is
    checked through weakrefs so a recycled ``id()`` can never resurrect a
    stale executable.
    """

    __slots__ = (
        "plan",
        "key",
        "steps",
        "root_slot",
        "result_slots",
        "out_ref",
        "input_refs",
        "n_kernel",
        "n_fallback_raw",
        "n_fallback_closure",
        "n_slots",
        "needs_nograd",
    )

    def __init__(
        self,
        plan: _Plan,
        key: _ExecKey,
        steps: Tuple[Step, ...],
        root_slot: np.ndarray,
        result_slots: Tuple[Optional[np.ndarray], ...],
        output: Tensor,
        inputs: Sequence[Tensor],
        n_kernel: int,
        n_fallback_raw: int,
        n_fallback_closure: int,
        n_slots: int,
    ) -> None:
        self.plan = plan
        self.key = key
        self.steps = steps
        self.root_slot = root_slot
        self.result_slots = result_slots
        self.out_ref = weakref.ref(output)
        self.input_refs = tuple(weakref.ref(t) for t in inputs)
        self.n_kernel = n_kernel
        self.n_fallback_raw = n_fallback_raw
        self.n_fallback_closure = n_fallback_closure
        self.n_slots = n_slots
        self.needs_nograd = n_fallback_closure > 0

    def matches(self, output: Tensor, inputs: Sequence[Tensor]) -> bool:
        if self.plan.released or self.out_ref() is not output:
            return False
        refs = self.input_refs
        if len(refs) != len(inputs):
            return False
        for ref, tensor in zip(refs, inputs):
            if ref() is not tensor:
                return False
        return True

    def run(
        self,
        seed: np.ndarray,
        out: Optional[Sequence[Optional[np.ndarray]]],
    ) -> List[Optional[np.ndarray]]:
        np.copyto(self.root_slot, seed)
        if self.needs_nograd:
            previous = ops._set_grad_enabled(False)
            try:
                for step in self.steps:
                    step()
            finally:
                ops._set_grad_enabled(previous)
        else:
            for step in self.steps:
                step()
        st = _STATS
        st.compiled_runs += 1
        st.kernel_vjp_calls += self.n_kernel
        st.raw_vjp_calls += self.n_fallback_raw
        st.closure_vjp_calls += self.n_fallback_closure
        st.arena_reuse_hits += self.n_slots
        fallbacks = self.n_fallback_raw + self.n_fallback_closure
        if fallbacks:
            st.hot_allocations += fallbacks
            if _ALLOC_HOOK is not None:
                _ALLOC_HOOK(fallbacks)
        results: List[Optional[np.ndarray]] = []
        if out is None:
            copies = 0
            for slot in self.result_slots:
                if slot is None:
                    results.append(None)
                else:
                    results.append(np.array(slot, copy=True))
                    copies += 1
            st.result_copies += copies
            st.hot_allocations += copies
            if copies and _ALLOC_HOOK is not None:
                _ALLOC_HOOK(copies)
        else:
            for slot, buf in zip(self.result_slots, out):
                if slot is None or buf is None:
                    results.append(None)
                else:
                    np.copyto(buf, slot)
                    results.append(buf)
        return results


def _fallback_step(
    ctx: Any,
    vjp_index: int,
    g: np.ndarray,
    dst: np.ndarray,
    mode: str,
) -> Tuple[Step, bool]:
    """Allocating step for edges the backend can't kernelize.

    Calls the live graph's raw (or closure) VJP exactly as the cached tier
    does, then copies/accumulates the fresh contribution into the arena
    slot.  Returns ``(step, is_raw)``.
    """
    expected = dst.shape
    op_name = ctx.op_name
    raw = None if ctx.raw_vjps is None else ctx.raw_vjps[vjp_index]
    acc = mode != "init"
    if raw is not None:
        raw_fn = raw

        def run_raw() -> None:
            contribution = raw_fn(g)
            if contribution.shape != expected:
                raise GradientError(
                    f"vjp of op '{op_name}' produced shape "
                    f"{contribution.shape}, expected {expected}"
                )
            if acc:
                np.add(dst, contribution, out=dst)
            else:
                np.copyto(dst, contribution)

        return run_raw, True
    vjp = ctx.vjps[vjp_index]
    assert vjp is not None  # structural: pruned mask is part of the signature

    def run_closure() -> None:
        contribution = vjp(Tensor(g)).data
        if contribution.shape != expected:
            raise GradientError(
                f"vjp of op '{op_name}' produced shape "
                f"{contribution.shape}, expected {expected}"
            )
        if acc:
            np.add(dst, contribution, out=dst)
        else:
            np.copyto(dst, contribution)

    return run_closure, False


#: (run, src_pos, dst_pos, mode, fusable) — one bound backward step.
_Record = Tuple[Step, int, int, str, bool]


def _fuse_records(
    records: List[_Record],
    contributions: Tuple[int, ...],
    edge_count: Dict[int, int],
    input_set: Dict[int, None],
) -> Tuple[List[Step], int]:
    """Peephole pass: coalesce adjacent single-use elementwise steps.

    Two adjacent records merge into one composite step when the first fully
    initializes an intermediate slot (its position's only contribution) and
    the second is that slot's only consumer edge — i.e. a linear
    ``src → tmp → dst`` chain such as ``mul → add → relu-mask``.  Merging
    only chains the bound closures (every arena write still happens), so it
    can never change float behavior.
    """
    steps: List[Step] = []
    merged = 0
    i = 0
    n = len(records)
    while i < n:
        run, _src, dst, mode, fusable = records[i]
        runs = [run]
        while i + 1 < n:
            nrun, nsrc, ndst, nmode, nfusable = records[i + 1]
            if (
                fusable
                and nfusable
                and nsrc == dst
                and mode == "init"
                and contributions[dst] == 1
                and edge_count.get(dst, 0) == 1
                and dst not in input_set
            ):
                runs.append(nrun)
                merged += 1
                dst, mode, fusable = ndst, nmode, nfusable
                i += 1
            else:
                break
        if len(runs) == 1:
            steps.append(runs[0])
        else:
            bound = tuple(runs)

            def composite(chain: Tuple[Step, ...] = bound) -> None:
                for piece in chain:
                    piece()

            steps.append(composite)
        i += 1
    return steps, merged


def _compile(
    key: _ExecKey,
    output: Tensor,
    inputs: Sequence[Tensor],
    order: Sequence[Tensor],
    plan: _Plan,
) -> _Executable:
    """Lower ``plan`` for this live graph into bound arena-kernel steps."""
    backend = _BACKEND
    kernelized = backend.kernelized_ops()
    n = len(order)
    root = n - 1
    contributions = plan.contributions
    edge_count = {pos: len(edges) for pos, edges in plan.node_edges}
    # Dict-as-set: membership only, insertion-ordered so the dataflow lint
    # can prove nothing downstream depends on set iteration order.
    input_set = {p: None for p in plan.input_positions if p >= 0}

    # slot_of maps position -> the array holding its cotangent: either an
    # arena slot or (for elided move edges) a view aliasing the child's.
    slot_of: Dict[int, np.ndarray] = {}
    slots_used = 0

    def slot(pos: int) -> np.ndarray:
        nonlocal slots_used
        arr = slot_of.get(pos)
        if arr is None:
            arr = _plan_slot(plan, pos, order[pos].data.shape)
            slot_of[pos] = arr
            slots_used += 1
        return arr

    root_slot = slot(root)
    records: List[_Record] = []
    written: Set[int] = {root}
    n_kernel = 0
    n_fallback_raw = 0
    n_fallback_closure = 0
    elided = 0

    for node_pos, edges in plan.node_edges:
        node = order[node_pos]
        ctx = node._ctx
        assert ctx is not None  # structural: plan only lists ctx nodes
        g = slot_of[node_pos]  # written earlier in the root-first walk
        for vjp_index, parent_pos in edges:
            mode = "acc" if parent_pos in written else "init"
            written.add(parent_pos)
            if (
                mode == "init"
                and contributions[parent_pos] == 1
                and ctx.op_name in kernelized
            ):
                view = backend.move_view(ctx, node, vjp_index, g)
                if view is not None:
                    # Pure move: alias the parent's slot to the child's.
                    # Safe because all writes to `g` happened in earlier
                    # steps and this is the parent's only contribution.
                    slot_of[parent_pos] = view
                    elided += 1
                    continue
            dst = slot(parent_pos)
            built = None
            if ctx.op_name in kernelized:
                built = backend.build_edge(
                    ctx,
                    node,
                    vjp_index,
                    g,
                    dst,
                    mode,
                    _scratch_fn(plan, node_pos, vjp_index),
                )
            if built is not None:
                run, fusable = built
                records.append((run, node_pos, parent_pos, mode, fusable))
                n_kernel += 1
            else:
                run, is_raw = _fallback_step(ctx, vjp_index, g, dst, mode)
                records.append((run, node_pos, parent_pos, mode, False))
                if is_raw:
                    n_fallback_raw += 1
                else:
                    n_fallback_closure += 1

    steps, merged = _fuse_records(records, contributions, edge_count, input_set)
    _STATS.compiled_graphs += 1
    _STATS.coalesced_steps += elided + merged

    result_slots = tuple(
        slot_of.get(pos) if pos >= 0 else None
        for pos in plan.input_positions
    )
    return _Executable(
        plan=plan,
        key=key,
        steps=tuple(steps),
        root_slot=root_slot,
        result_slots=result_slots,
        output=output,
        inputs=inputs,
        n_kernel=n_kernel,
        n_fallback_raw=n_fallback_raw,
        n_fallback_closure=n_fallback_closure,
        n_slots=slots_used,
    )


def _maybe_compile(
    key: _ExecKey,
    output: Tensor,
    inputs: Sequence[Tensor],
    order: Sequence[Tensor],
    plan: _Plan,
) -> None:
    """Arm on first sighting of a live graph, compile on the second."""
    seen = _SEEN.get(key)
    if seen is not None and seen() is output:
        del _SEEN[key]
        executable = _compile(key, output, inputs, order, plan)
        _EXECS[key] = executable
        plan.exec_keys.add(key)
        if len(_EXECS) > _MAX_EXECS:
            old_key, old_exec = _EXECS.popitem(last=False)
            old_exec.plan.exec_keys.discard(old_key)
    else:
        _SEEN[key] = weakref.ref(output)
        while len(_SEEN) > _MAX_SEEN:
            _SEEN.popitem(last=False)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def backward(
    output: Tensor,
    inputs: Sequence[Tensor],
    order: Sequence[Tensor],
    seed: np.ndarray,
    out: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> List[Optional[np.ndarray]]:
    """Execute a first-order backward pass over ``order`` on raw ndarrays.

    ``order`` must be the topological order of ``output``'s graph (inputs
    first, ``output`` last) as produced by :func:`repro.autodiff.toposort`.
    Returns one gradient array per input (``None`` for unreachable inputs).
    Without ``out``, results are fresh arrays that never alias graph or
    plan state.  With ``out`` (a sequence of pre-sized float64 arrays, one
    per input), gradients are written in place — the zero-copy contract
    steady-state replay relies on; entries for unreachable inputs are left
    untouched and reported as ``None``.
    """
    _STATS.backwards += 1
    ops._BACKWARD_EPOCH += 1  # invalidates per-node raw-VJP memos

    key: Optional[_ExecKey] = None
    if _MODE == "compiled":
        key = (id(output),) + tuple(map(id, inputs))
        executable = _EXECS.get(key)
        if executable is not None:
            if executable.matches(output, inputs):
                _EXECS.move_to_end(key)
                sig = executable.plan.sig
                if sig is not None and sig in _PLANS:
                    _PLANS.move_to_end(sig)
                _STATS.plan_hits += 1
                return executable.run(seed, out)
            del _EXECS[key]

    pos_map = {id(node): i for i, node in enumerate(order)}
    plan = _get_plan(_signature(order, inputs, pos_map))
    results = _execute_cached(plan, order, seed, out)
    if key is not None:
        _maybe_compile(key, output, inputs, order, plan)
    return results


def _execute_cached(
    plan: _Plan,
    order: Sequence[Tensor],
    seed: np.ndarray,
    out: Optional[Sequence[Optional[np.ndarray]]],
) -> List[Optional[np.ndarray]]:
    """The PR-5 allocating executor (also the compiled tier's warm-up path)."""
    cots: List[Optional[np.ndarray]] = [None] * len(order)
    if order:
        cots[len(order) - 1] = seed

    raw_calls = 0
    closure_calls = 0
    previous = ops._set_grad_enabled(False)
    try:
        for node_pos, edges in plan.node_edges:
            node = order[node_pos]
            ctx = node._ctx
            assert ctx is not None  # structural: plan only lists ctx nodes
            cot = cots[node_pos]
            assert cot is not None  # structural: plan only lists seeded nodes
            cot_tensor: Optional[Tensor] = None
            for vjp_index, parent_pos in edges:
                raw_vjp = (
                    None if ctx.raw_vjps is None else ctx.raw_vjps[vjp_index]
                )
                if raw_vjp is not None:
                    contribution = raw_vjp(cot)
                    raw_calls += 1
                else:
                    if cot_tensor is None:
                        cot_tensor = Tensor(cot)
                    vjp = ctx.vjps[vjp_index]
                    assert vjp is not None  # structural: pruned mask in sig
                    contribution = vjp(cot_tensor).data
                    closure_calls += 1
                parent = order[parent_pos]
                if contribution.shape != parent.shape:
                    raise GradientError(
                        f"vjp of op '{ctx.op_name}' produced shape "
                        f"{contribution.shape}, expected {parent.shape}"
                    )
                existing = cots[parent_pos]
                buffer = plan.buffers.get(parent_pos)
                if existing is None:
                    if buffer is None:
                        cots[parent_pos] = contribution
                    else:
                        np.copyto(buffer, contribution)
                        cots[parent_pos] = buffer
                else:
                    # existing is this position's buffer; np.add(a, b, out=a)
                    # is bit-equal to the reference's `existing + c`.
                    np.add(existing, contribution, out=existing)
    finally:
        ops._set_grad_enabled(previous)
    _STATS.raw_vjp_calls += raw_calls
    _STATS.closure_vjp_calls += closure_calls

    results: List[Optional[np.ndarray]] = []
    copies = 0
    for i, pos in enumerate(plan.input_positions):
        value = None if pos < 0 else cots[pos]
        if value is None:
            results.append(None)
        elif out is not None and out[i] is not None:
            buf = out[i]
            assert buf is not None
            np.copyto(buf, value)
            results.append(buf)
        else:
            results.append(np.array(value, copy=True))
            copies += 1
    _STATS.result_copies += copies
    allocations = raw_calls + closure_calls + copies
    _STATS.hot_allocations += allocations
    if allocations and _ALLOC_HOOK is not None:
        _ALLOC_HOOK(allocations)
    return results
