"""Differentiable operations for the autodiff engine.

Every operation returns a new :class:`~repro.autodiff.tensor.Tensor` whose
context records one VJP closure per differentiable parent.  VJP closures are
themselves written with the operations in this module, which is what makes
second-order differentiation (``create_graph=True``) work without any special
casing.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from .tensor import Tensor, _Context

Axis = Union[None, int, Tuple[int, ...]]
Vjp = Callable[[Tensor], Tensor]

__all__ = [
    "as_tensor",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "power",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "relu",
    "abs_",
    "clip",
    "matmul",
    "max_",
    "min_",
    "where",
    "stack",
    "sum_",
    "mean",
    "reshape",
    "transpose",
    "broadcast_to",
    "getitem",
    "concatenate",
    "log_softmax",
    "softmax",
    "logsumexp",
    "norm_sq",
    "zeros_like",
    "ones_like",
]


def as_tensor(value: object) -> Tensor:
    """Coerce scalars / arrays to constant tensors; pass tensors through."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64))


# Profiling hook installed by repro.autodiff.profile.profile_ops(); called as
# hook(op_name, num_elements, requires_grad) for every op output.  Kept as a
# single module-level slot so the disabled path costs one None check.
_PROFILE_HOOK: Optional[Callable[[str, int, bool], None]] = None


def _make(
    data: np.ndarray,
    parents: Sequence[Tensor],
    vjps: Sequence[Optional[Vjp]],
    op_name: str,
) -> Tensor:
    """Build an op output, pruning the graph when no parent requires grad."""
    requires = any(p.requires_grad for p in parents)
    if _PROFILE_HOOK is not None:
        _PROFILE_HOOK(op_name, data.size, requires)
    if not requires:
        return Tensor(data)
    pruned = [v if p.requires_grad else None for p, v in zip(parents, vjps)]
    return Tensor(data, requires_grad=True, _ctx=_Context(parents, pruned, op_name))


def _normalize_axis(axis: Axis, ndim: int) -> Optional[Tuple[int, ...]]:
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


def _unbroadcast(g: Tensor, target_shape: tuple) -> Tensor:
    """Reduce a broadcasted cotangent back to ``target_shape`` (differentiably)."""
    if g.shape == target_shape:
        return g
    # Sum away leading axes added by broadcasting.
    extra = g.ndim - len(target_shape)
    if extra > 0:
        g = sum_(g, axis=tuple(range(extra)))
    # Sum (keepdims) over axes where the target had size 1.
    axes = tuple(
        i for i, dim in enumerate(target_shape) if dim == 1 and g.shape[i] != 1
    )
    if axes:
        g = sum_(g, axis=axes, keepdims=True)
    if g.shape != target_shape:
        g = reshape(g, target_shape)
    return g


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    return _make(
        a.data + b.data,
        (a, b),
        (
            lambda g: _unbroadcast(g, a.shape),
            lambda g: _unbroadcast(g, b.shape),
        ),
        "add",
    )


def sub(a: Tensor, b: Tensor) -> Tensor:
    return _make(
        a.data - b.data,
        (a, b),
        (
            lambda g: _unbroadcast(g, a.shape),
            lambda g: _unbroadcast(neg(g), b.shape),
        ),
        "sub",
    )


def mul(a: Tensor, b: Tensor) -> Tensor:
    return _make(
        a.data * b.data,
        (a, b),
        (
            lambda g: _unbroadcast(mul(g, b), a.shape),
            lambda g: _unbroadcast(mul(g, a), b.shape),
        ),
        "mul",
    )


def div(a: Tensor, b: Tensor) -> Tensor:
    return _make(
        a.data / b.data,
        (a, b),
        (
            lambda g: _unbroadcast(div(g, b), a.shape),
            lambda g: _unbroadcast(neg(div(mul(g, a), mul(b, b))), b.shape),
        ),
        "div",
    )


def neg(a: Tensor) -> Tensor:
    return _make(-a.data, (a,), (lambda g: neg(g),), "neg")


def power(a: Tensor, exponent: float) -> Tensor:
    """Elementwise ``a ** exponent`` for a constant (non-tensor) exponent."""
    exponent = float(exponent)
    return _make(
        a.data**exponent,
        (a,),
        (lambda g: mul(g, mul(as_tensor(exponent), power(a, exponent - 1.0))),),
        "power",
    )


def exp(a: Tensor) -> Tensor:
    out_data = np.exp(a.data)
    out = _make(out_data, (a,), (None,), "exp")
    if out._ctx is not None:
        out._ctx = _Context((a,), (lambda g: mul(g, out),), "exp")
    return out


def log(a: Tensor) -> Tensor:
    return _make(np.log(a.data), (a,), (lambda g: div(g, a),), "log")


def sqrt(a: Tensor) -> Tensor:
    return power(a, 0.5)


def tanh(a: Tensor) -> Tensor:
    out_data = np.tanh(a.data)
    out = _make(out_data, (a,), (None,), "tanh")
    if out._ctx is not None:
        one = Tensor(np.array(1.0))
        out._ctx = _Context(
            (a,), (lambda g: mul(g, sub(one, mul(out, out))),), "tanh"
        )
    return out


def sigmoid(a: Tensor) -> Tensor:
    out_data = 1.0 / (1.0 + np.exp(-a.data))
    out = _make(out_data, (a,), (None,), "sigmoid")
    if out._ctx is not None:
        one = Tensor(np.array(1.0))
        out._ctx = _Context(
            (a,), (lambda g: mul(g, mul(out, sub(one, out))),), "sigmoid"
        )
    return out


def relu(a: Tensor) -> Tensor:
    mask = Tensor((a.data > 0).astype(np.float64))
    return _make(a.data * mask.data, (a,), (lambda g: mul(g, mask),), "relu")


def abs_(a: Tensor) -> Tensor:
    sign = Tensor(np.sign(a.data))
    return _make(np.abs(a.data), (a,), (lambda g: mul(g, sign),), "abs")


def clip(a: Tensor, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]``; gradient is zero outside the range."""
    mask = Tensor(((a.data >= low) & (a.data <= high)).astype(np.float64))
    return _make(
        np.clip(a.data, low, high), (a,), (lambda g: mul(g, mask),), "clip"
    )


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------
def matmul(a: Tensor, b: Tensor) -> Tensor:
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"matmul expects 2-D operands, got {a.shape} @ {b.shape}; "
            "reshape batched inputs first"
        )
    return _make(
        a.data @ b.data,
        (a, b),
        (
            lambda g: matmul(g, transpose(b)),
            lambda g: matmul(transpose(a), g),
        ),
        "matmul",
    )


# ----------------------------------------------------------------------
# Reductions and shape manipulation
# ----------------------------------------------------------------------
def sum_(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    norm_axis = _normalize_axis(axis, a.ndim)
    out_data = np.sum(a.data, axis=norm_axis, keepdims=keepdims)

    def vjp(g: Tensor) -> Tensor:
        if norm_axis is not None and not keepdims:
            kept = list(a.shape)
            for ax in norm_axis:
                kept[ax] = 1
            g = reshape(g, tuple(kept))
        return broadcast_to(g, a.shape)

    return _make(out_data, (a,), (vjp,), "sum")


def mean(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    norm_axis = _normalize_axis(axis, a.ndim)
    if norm_axis is None:
        count = a.size
    else:
        count = int(np.prod([a.shape[ax] for ax in norm_axis]))
    return mul(sum_(a, axis=axis, keepdims=keepdims), as_tensor(1.0 / count))


def reshape(a: Tensor, shape: Tuple[int, ...]) -> Tensor:
    original = a.shape
    return _make(
        a.data.reshape(shape), (a,), (lambda g: reshape(g, original),), "reshape"
    )


def transpose(a: Tensor, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    if axes is None:
        inverse = None
    else:
        inverse = tuple(np.argsort(axes))
    return _make(
        np.transpose(a.data, axes),
        (a,),
        (lambda g: transpose(g, inverse),),
        "transpose",
    )


def broadcast_to(a: Tensor, shape: Tuple[int, ...]) -> Tensor:
    return _make(
        np.broadcast_to(a.data, shape).copy(),
        (a,),
        (lambda g: _unbroadcast(g, a.shape),),
        "broadcast_to",
    )


def getitem(a: Tensor, index: object) -> Tensor:
    """Differentiable indexing (slices, ints, or integer arrays).

    The backward pass scatter-adds the cotangent into the indexed positions,
    correctly accumulating duplicates (needed for embedding lookups).
    """
    return _make(
        a.data[index], (a,), (lambda g: _scatter(g, index, a.shape),), "getitem"
    )


def _scatter(g: Tensor, index: object, shape: Tuple[int, ...]) -> Tensor:
    out_data = np.zeros(shape, dtype=np.float64)
    np.add.at(out_data, index, g.data)
    return _make(out_data, (g,), (lambda cot: getitem(cot, index),), "scatter")


def max_(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Maximum reduction; gradient flows to the (first) argmax entries.

    Ties split the cotangent equally among all maximal entries, matching
    NumPy's subgradient convention used by JAX.
    """
    norm_axis = _normalize_axis(axis, a.ndim)
    out_data = np.max(a.data, axis=norm_axis, keepdims=keepdims)

    expanded = np.max(a.data, axis=norm_axis, keepdims=True)
    hits = (a.data == expanded).astype(np.float64)
    hits /= np.sum(hits, axis=norm_axis, keepdims=True)
    mask = Tensor(hits)

    def vjp(g: Tensor) -> Tensor:
        if norm_axis is not None and not keepdims:
            kept = list(a.shape)
            for ax in norm_axis:
                kept[ax] = 1
            g = reshape(g, tuple(kept))
        return mul(broadcast_to(g, a.shape), mask)

    return _make(out_data, (a,), (vjp,), "max")


def min_(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Minimum reduction (see :func:`max_` for the tie convention)."""
    return neg(max_(neg(a), axis=axis, keepdims=keepdims))


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select: ``condition ? a : b`` for a constant condition."""
    cond = np.asarray(condition, dtype=bool)
    mask = Tensor(cond.astype(np.float64))
    inverse = Tensor((~cond).astype(np.float64))
    return _make(
        np.where(cond, a.data, b.data),
        (a, b),
        (
            lambda g: _unbroadcast(mul(g, mask), a.shape),
            lambda g: _unbroadcast(mul(g, inverse), b.shape),
        ),
        "where",
    )


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    norm_axis = axis % out_data.ndim

    def make_vjp(i: int) -> Vjp:
        slicer = tuple(
            i if ax == norm_axis else slice(None) for ax in range(out_data.ndim)
        )
        return lambda g: getitem(g, slicer)

    return _make(
        out_data,
        tuple(tensors),
        tuple(make_vjp(i) for i in range(len(tensors))),
        "stack",
    )


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    offsets = np.cumsum([0] + [t.shape[axis] for t in tensors])

    def make_vjp(i: int) -> Vjp:
        start, stop = offsets[i], offsets[i + 1]
        slicer = tuple(
            slice(start, stop) if ax == axis % out_data.ndim else slice(None)
            for ax in range(out_data.ndim)
        )
        return lambda g: getitem(g, slicer)

    return _make(
        out_data,
        tuple(tensors),
        tuple(make_vjp(i) for i in range(len(tensors))),
        "concatenate",
    )


# ----------------------------------------------------------------------
# Numerically stable composites
# ----------------------------------------------------------------------
def logsumexp(a: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    shift = Tensor(np.max(a.data, axis=axis, keepdims=True))
    out = add(
        log(sum_(exp(sub(a, shift)), axis=axis, keepdims=True)), shift
    )
    if not keepdims:
        squeezed = tuple(d for i, d in enumerate(out.shape) if i != axis % a.ndim)
        out = reshape(out, squeezed)
    return out


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    return sub(a, logsumexp(a, axis=axis, keepdims=True))


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    return exp(log_softmax(a, axis=axis))


def norm_sq(a: Tensor) -> Tensor:
    """Squared Euclidean norm of all elements (a scalar tensor)."""
    return sum_(mul(a, a))


def zeros_like(a: Tensor) -> Tensor:
    return Tensor(np.zeros_like(a.data))


def ones_like(a: Tensor) -> Tensor:
    return Tensor(np.ones_like(a.data))
