"""Differentiable operations for the autodiff engine.

Every operation returns a new :class:`~repro.autodiff.tensor.Tensor` whose
context records one VJP closure per differentiable parent.  VJP closures are
themselves written with the operations in this module, which is what makes
second-order differentiation (``create_graph=True``) work without any special
casing.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from .tensor import Tensor, _Context

Axis = Union[None, int, Tuple[int, ...]]
Vjp = Callable[[Tensor], Tensor]
RawVjp = Callable[[np.ndarray], np.ndarray]

__all__ = [
    "as_tensor",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "power",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "relu",
    "abs_",
    "clip",
    "matmul",
    "max_",
    "min_",
    "where",
    "stack",
    "sum_",
    "mean",
    "reshape",
    "transpose",
    "broadcast_to",
    "getitem",
    "concatenate",
    "log_softmax",
    "softmax",
    "logsumexp",
    "softmax_xent",
    "linear_softmax_xent",
    "norm_sq",
    "zeros_like",
    "ones_like",
]


def as_tensor(value: object) -> Tensor:
    """Coerce scalars / arrays to constant tensors; pass tensors through."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64))


# Profiling hook installed by repro.autodiff.profile.profile_ops(); called as
# hook(op_name, num_elements, requires_grad) for every op output.  Kept as a
# single module-level slot so the disabled path costs one None check.
_PROFILE_HOOK: Optional[Callable[[str, int, bool], None]] = None

# Graph recording switch.  The first-order fast path flips this off while it
# executes VJP closures, so the exact same numpy arithmetic runs but no
# contexts, closures, or tape nodes are constructed for the cotangents.
_GRAD_ENABLED = True


# Monotonic backward-pass counter, bumped by fastpath.backward() before each
# run.  Raw-VJP memos (which share one cotangent-of-logits computation across
# a fused op's parents) key on (cotangent identity, epoch): the fast path
# reuses accumulation buffers across calls, so object identity alone could
# confuse a fresh cotangent with a stale one from the previous backward.
_BACKWARD_EPOCH = 0


def _set_grad_enabled(value: bool) -> bool:
    """Toggle graph recording; returns the previous setting."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = value
    return previous


def _make(
    data: np.ndarray,
    parents: Sequence[Tensor],
    vjps: Sequence[Optional[Vjp]],
    op_name: str,
    raw_vjps: Optional[Sequence[Optional[RawVjp]]] = None,
    op_params: object = None,
) -> Tensor:
    """Build an op output, pruning the graph when no parent requires grad."""
    requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
    if _PROFILE_HOOK is not None:
        _PROFILE_HOOK(op_name, data.size, requires)
    if not requires:
        return Tensor(data)
    pruned = [v if p.requires_grad else None for p, v in zip(parents, vjps)]
    pruned_raw = None
    if raw_vjps is not None:
        pruned_raw = [
            v if p.requires_grad else None
            for p, v in zip(parents, raw_vjps)
        ]
    return Tensor(
        data,
        requires_grad=True,
        _ctx=_Context(
            parents, pruned, op_name, raw_vjps=pruned_raw,
            op_params=op_params,
        ),
    )


def _normalize_axis(axis: Axis, ndim: int) -> Optional[Tuple[int, ...]]:
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


def _unbroadcast(g: Tensor, target_shape: tuple) -> Tensor:
    """Reduce a broadcasted cotangent back to ``target_shape`` (differentiably)."""
    if g.shape == target_shape:
        return g
    # Sum away leading axes added by broadcasting.
    extra = g.ndim - len(target_shape)
    if extra > 0:
        g = sum_(g, axis=tuple(range(extra)))
    # Sum (keepdims) over axes where the target had size 1.
    axes = tuple(
        i for i, dim in enumerate(target_shape) if dim == 1 and g.shape[i] != 1
    )
    if axes:
        g = sum_(g, axis=axes, keepdims=True)
    if g.shape != target_shape:
        g = reshape(g, target_shape)
    return g


def _unbroadcast_raw(g: np.ndarray, target_shape: tuple) -> np.ndarray:
    """Raw-ndarray twin of :func:`_unbroadcast`.

    Performs the identical float-op sequence (same reductions in the same
    order) so the fast path stays bit-identical to the closure path.
    """
    if g.shape == target_shape:
        return g
    extra = g.ndim - len(target_shape)
    if extra > 0:
        g = np.sum(g, axis=tuple(range(extra)))
    axes = tuple(
        i for i, dim in enumerate(target_shape) if dim == 1 and g.shape[i] != 1
    )
    if axes:
        g = np.sum(g, axis=axes, keepdims=True)
    if g.shape != target_shape:
        g = g.reshape(target_shape)
    return g


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    def _raw_a(g: np.ndarray) -> np.ndarray:
        return _unbroadcast_raw(g, a.shape)

    def _raw_b(g: np.ndarray) -> np.ndarray:
        return _unbroadcast_raw(g, b.shape)

    raws = (_raw_a, _raw_b)
    return _make(
        a.data + b.data,
        (a, b),
        (
            lambda g: _unbroadcast(g, a.shape),
            lambda g: _unbroadcast(g, b.shape),
        ),
        "add",
        raw_vjps=raws,
    )


def sub(a: Tensor, b: Tensor) -> Tensor:
    def _raw_a(g: np.ndarray) -> np.ndarray:
        return _unbroadcast_raw(g, a.shape)

    def _raw_b(g: np.ndarray) -> np.ndarray:
        return _unbroadcast_raw(-g, b.shape)

    raws = (_raw_a, _raw_b)
    return _make(
        a.data - b.data,
        (a, b),
        (
            lambda g: _unbroadcast(g, a.shape),
            lambda g: _unbroadcast(neg(g), b.shape),
        ),
        "sub",
        raw_vjps=raws,
    )


def mul(a: Tensor, b: Tensor) -> Tensor:
    def _raw_a(g: np.ndarray) -> np.ndarray:
        return _unbroadcast_raw(g * b.data, a.shape)

    def _raw_b(g: np.ndarray) -> np.ndarray:
        return _unbroadcast_raw(g * a.data, b.shape)

    raws = (_raw_a, _raw_b)
    return _make(
        a.data * b.data,
        (a, b),
        (
            lambda g: _unbroadcast(mul(g, b), a.shape),
            lambda g: _unbroadcast(mul(g, a), b.shape),
        ),
        "mul",
        raw_vjps=raws,
    )


def div(a: Tensor, b: Tensor) -> Tensor:
    def _raw_a(g: np.ndarray) -> np.ndarray:
        return _unbroadcast_raw(g / b.data, a.shape)

    def _raw_b(g: np.ndarray) -> np.ndarray:
        return _unbroadcast_raw(-((g * a.data) / (b.data * b.data)), b.shape)

    raws = (_raw_a, _raw_b)
    return _make(
        a.data / b.data,
        (a, b),
        (
            lambda g: _unbroadcast(div(g, b), a.shape),
            lambda g: _unbroadcast(neg(div(mul(g, a), mul(b, b))), b.shape),
        ),
        "div",
        raw_vjps=raws,
    )


def neg(a: Tensor) -> Tensor:
    def _raw(g: np.ndarray) -> np.ndarray:
        return -g

    raws = (_raw,)
    return _make(-a.data, (a,), (lambda g: neg(g),), "neg", raw_vjps=raws)


def power(a: Tensor, exponent: float) -> Tensor:
    """Elementwise ``a ** exponent`` for a constant (non-tensor) exponent."""
    exponent = float(exponent)

    def _raw(g: np.ndarray) -> np.ndarray:
        # Same float sequence as the closure: a**(e-1), scale by e, then g.
        return g * (
            np.asarray(exponent, dtype=np.float64)
            * a.data ** (exponent - 1.0)
        )

    raws = (_raw,)
    return _make(
        a.data**exponent,
        (a,),
        (lambda g: mul(g, mul(as_tensor(exponent), power(a, exponent - 1.0))),),
        "power",
        raw_vjps=raws,
        op_params=exponent,
    )


def exp(a: Tensor) -> Tensor:
    out_data = np.exp(a.data)
    out = _make(out_data, (a,), (None,), "exp")
    if out._ctx is not None:

        def _raw(g: np.ndarray) -> np.ndarray:
            return g * out_data

        raws = (_raw,)
        out._ctx = _Context(
            (a,), (lambda g: mul(g, out),), "exp", raw_vjps=raws
        )
    return out


def log(a: Tensor) -> Tensor:
    def _raw(g: np.ndarray) -> np.ndarray:
        return g / a.data

    raws = (_raw,)
    return _make(
        np.log(a.data), (a,), (lambda g: div(g, a),), "log", raw_vjps=raws
    )


def sqrt(a: Tensor) -> Tensor:
    return power(a, 0.5)


def tanh(a: Tensor) -> Tensor:
    out_data = np.tanh(a.data)
    out = _make(out_data, (a,), (None,), "tanh")
    if out._ctx is not None:
        one = Tensor(np.array(1.0))

        def _raw(g: np.ndarray) -> np.ndarray:
            # Mirrors mul(g, sub(one, mul(out, out))) float-op for float-op.
            return g * (np.array(1.0) - out_data * out_data)

        out._ctx = _Context(
            (a,), (lambda g: mul(g, sub(one, mul(out, out))),), "tanh",
            raw_vjps=(_raw,),
        )
    return out


def sigmoid(a: Tensor) -> Tensor:
    out_data = 1.0 / (1.0 + np.exp(-a.data))
    out = _make(out_data, (a,), (None,), "sigmoid")
    if out._ctx is not None:
        one = Tensor(np.array(1.0))

        def _raw(g: np.ndarray) -> np.ndarray:
            # Mirrors mul(g, mul(out, sub(one, out))) float-op for float-op.
            return g * (out_data * (np.array(1.0) - out_data))

        out._ctx = _Context(
            (a,), (lambda g: mul(g, mul(out, sub(one, out))),), "sigmoid",
            raw_vjps=(_raw,),
        )
    return out


def relu(a: Tensor) -> Tensor:
    mask = Tensor((a.data > 0).astype(np.float64))
    mask_data = mask.data

    def _raw(g: np.ndarray) -> np.ndarray:
        return g * mask_data

    raws = (_raw,)
    return _make(
        a.data * mask.data, (a,), (lambda g: mul(g, mask),), "relu",
        raw_vjps=raws, op_params=mask_data,
    )


def abs_(a: Tensor) -> Tensor:
    sign = Tensor(np.sign(a.data))
    return _make(np.abs(a.data), (a,), (lambda g: mul(g, sign),), "abs")


def clip(a: Tensor, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]``; gradient is zero outside the range."""
    mask = Tensor(((a.data >= low) & (a.data <= high)).astype(np.float64))
    mask_data = mask.data

    def _raw(g: np.ndarray) -> np.ndarray:
        return g * mask_data

    raws = (_raw,)
    return _make(
        np.clip(a.data, low, high), (a,), (lambda g: mul(g, mask),), "clip",
        raw_vjps=raws, op_params=mask_data,
    )


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------
def matmul(a: Tensor, b: Tensor) -> Tensor:
    if a.ndim == 3 and b.ndim == 3:
        if a.shape[0] != b.shape[0]:
            raise ValueError(
                f"batched matmul needs matching leading (node) dims, got "
                f"{a.shape} @ {b.shape}"
            )

        def _raw_a3(g: np.ndarray) -> np.ndarray:
            return np.matmul(g, b.data.transpose(0, 2, 1))

        def _raw_b3(g: np.ndarray) -> np.ndarray:
            return np.matmul(a.data.transpose(0, 2, 1), g)

        raws3 = (_raw_a3, _raw_b3)
        return _make(
            np.matmul(a.data, b.data),
            (a, b),
            (
                lambda g: matmul(g, transpose(b, (0, 2, 1))),
                lambda g: matmul(transpose(a, (0, 2, 1)), g),
            ),
            "matmul",
            raw_vjps=raws3,
        )
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"matmul expects 2-D (or matching 3-D batched) operands, got "
            f"{a.shape} @ {b.shape}; reshape other inputs first"
        )
    def _raw_a(g: np.ndarray) -> np.ndarray:
        return g @ np.transpose(b.data)

    def _raw_b(g: np.ndarray) -> np.ndarray:
        return np.transpose(a.data) @ g

    raws = (_raw_a, _raw_b)
    return _make(
        a.data @ b.data,
        (a, b),
        (
            lambda g: matmul(g, transpose(b)),
            lambda g: matmul(transpose(a), g),
        ),
        "matmul",
        raw_vjps=raws,
    )


# ----------------------------------------------------------------------
# Reductions and shape manipulation
# ----------------------------------------------------------------------
def sum_(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    norm_axis = _normalize_axis(axis, a.ndim)
    out_data = np.sum(a.data, axis=norm_axis, keepdims=keepdims)

    kept_shape: Optional[Tuple[int, ...]] = None
    if norm_axis is not None and not keepdims:
        kept = list(a.shape)
        for ax in norm_axis:
            kept[ax] = 1
        kept_shape = tuple(kept)

    def vjp(g: Tensor) -> Tensor:
        if kept_shape is not None:
            g = reshape(g, kept_shape)
        return broadcast_to(g, a.shape)

    def _raw(g: np.ndarray) -> np.ndarray:
        if kept_shape is not None:
            g = g.reshape(kept_shape)
        # .copy() mirrors broadcast_to's forward: same bits, and the
        # contiguous buffer keeps downstream matmuls off the slow path.
        return np.broadcast_to(g, a.shape).copy()

    raws = (_raw,)
    return _make(
        out_data, (a,), (vjp,), "sum", raw_vjps=raws, op_params=kept_shape
    )


def mean(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    norm_axis = _normalize_axis(axis, a.ndim)
    if norm_axis is None:
        count = a.size
    else:
        count = int(np.prod([a.shape[ax] for ax in norm_axis]))
    return mul(sum_(a, axis=axis, keepdims=keepdims), as_tensor(1.0 / count))


def reshape(a: Tensor, shape: Tuple[int, ...]) -> Tensor:
    original = a.shape

    def _raw(g: np.ndarray) -> np.ndarray:
        return g.reshape(original)

    raws = (_raw,)
    return _make(
        a.data.reshape(shape), (a,), (lambda g: reshape(g, original),),
        "reshape", raw_vjps=raws,
    )


def transpose(a: Tensor, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    if axes is None:
        inverse = None
    else:
        inverse = tuple(np.argsort(axes))

    def _raw(g: np.ndarray) -> np.ndarray:
        return np.transpose(g, inverse)

    raws = (_raw,)
    return _make(
        np.transpose(a.data, axes),
        (a,),
        (lambda g: transpose(g, inverse),),
        "transpose",
        raw_vjps=raws,
        op_params=inverse,
    )


def broadcast_to(a: Tensor, shape: Tuple[int, ...]) -> Tensor:
    def _raw(g: np.ndarray) -> np.ndarray:
        return _unbroadcast_raw(g, a.shape)

    raws = (_raw,)
    return _make(
        np.broadcast_to(a.data, shape).copy(),
        (a,),
        (lambda g: _unbroadcast(g, a.shape),),
        "broadcast_to",
        raw_vjps=raws,
    )


def getitem(a: Tensor, index: object) -> Tensor:
    """Differentiable indexing (slices, ints, or integer arrays).

    The backward pass scatter-adds the cotangent into the indexed positions,
    correctly accumulating duplicates (needed for embedding lookups).
    """

    def _raw(g: np.ndarray) -> np.ndarray:
        out = np.zeros(a.shape, dtype=np.float64)
        np.add.at(out, index, g)
        return out

    raws = (_raw,)
    return _make(
        a.data[index], (a,), (lambda g: _scatter(g, index, a.shape),),
        "getitem", raw_vjps=raws, op_params=index,
    )


def _scatter(g: Tensor, index: object, shape: Tuple[int, ...]) -> Tensor:
    out_data = np.zeros(shape, dtype=np.float64)
    np.add.at(out_data, index, g.data)
    return _make(out_data, (g,), (lambda cot: getitem(cot, index),), "scatter")


def max_(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Maximum reduction; gradient flows to the (first) argmax entries.

    Ties split the cotangent equally among all maximal entries, matching
    NumPy's subgradient convention used by JAX.
    """
    norm_axis = _normalize_axis(axis, a.ndim)
    out_data = np.max(a.data, axis=norm_axis, keepdims=keepdims)

    expanded = np.max(a.data, axis=norm_axis, keepdims=True)
    hits = (a.data == expanded).astype(np.float64)
    hits /= np.sum(hits, axis=norm_axis, keepdims=True)
    mask = Tensor(hits)

    def vjp(g: Tensor) -> Tensor:
        if norm_axis is not None and not keepdims:
            kept = list(a.shape)
            for ax in norm_axis:
                kept[ax] = 1
            g = reshape(g, tuple(kept))
        return mul(broadcast_to(g, a.shape), mask)

    return _make(out_data, (a,), (vjp,), "max")


def min_(a: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Minimum reduction (see :func:`max_` for the tie convention)."""
    return neg(max_(neg(a), axis=axis, keepdims=keepdims))


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select: ``condition ? a : b`` for a constant condition."""
    cond = np.asarray(condition, dtype=bool)
    mask = Tensor(cond.astype(np.float64))
    inverse = Tensor((~cond).astype(np.float64))
    return _make(
        np.where(cond, a.data, b.data),
        (a, b),
        (
            lambda g: _unbroadcast(mul(g, mask), a.shape),
            lambda g: _unbroadcast(mul(g, inverse), b.shape),
        ),
        "where",
    )


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    norm_axis = axis % out_data.ndim

    def make_vjp(i: int) -> Vjp:
        slicer = tuple(
            i if ax == norm_axis else slice(None) for ax in range(out_data.ndim)
        )
        return lambda g: getitem(g, slicer)

    return _make(
        out_data,
        tuple(tensors),
        tuple(make_vjp(i) for i in range(len(tensors))),
        "stack",
    )


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    offsets = np.cumsum([0] + [t.shape[axis] for t in tensors])

    def make_vjp(i: int) -> Vjp:
        start, stop = offsets[i], offsets[i + 1]
        slicer = tuple(
            slice(start, stop) if ax == axis % out_data.ndim else slice(None)
            for ax in range(out_data.ndim)
        )
        return lambda g: getitem(g, slicer)

    return _make(
        out_data,
        tuple(tensors),
        tuple(make_vjp(i) for i in range(len(tensors))),
        "concatenate",
    )


# ----------------------------------------------------------------------
# Numerically stable composites
# ----------------------------------------------------------------------
def logsumexp(a: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    shift = Tensor(np.max(a.data, axis=axis, keepdims=True))
    out = add(
        log(sum_(exp(sub(a, shift)), axis=axis, keepdims=True)), shift
    )
    if not keepdims:
        squeezed = tuple(d for i, d in enumerate(out.shape) if i != axis % a.ndim)
        out = reshape(out, squeezed)
    return out


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    return sub(a, logsumexp(a, axis=axis, keepdims=True))


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    return exp(log_softmax(a, axis=axis))


# -- fused cross-entropy composites ------------------------------------
#
# The logistic-regression hot path (linear -> log_softmax -> nll) dominates
# every FedML meta-step.  These fused ops compute the identical float
# operation sequence the unfused composite would (forward AND backward), so
# values and gradients are bit-for-bit equal, while recording a single tape
# node instead of ~15.  They carry two backward forms:
#
# * differentiable ``vjp_*`` closures (pure ops primitives, so
#   ``create_graph=True`` double backward works and the AD210-212 audit
#   passes), and
# * raw ndarray ``_raw_*`` VJPs consumed by the ``create_graph=False`` fast
#   path in :mod:`repro.autodiff.fastpath`, which skips cotangent graph
#   construction entirely.


def _xent_forward(
    logits_data: np.ndarray, targets_data: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]:
    """Shared fused forward; mirrors the composite's arithmetic exactly."""
    shift = np.max(logits_data, axis=1, keepdims=True)
    e = np.exp(logits_data - shift)
    s = np.sum(e, axis=(1,), keepdims=True)
    logp = logits_data - (np.log(s) + shift)
    inv_n = 1.0 / logits_data.shape[0]
    per = np.sum(logp * targets_data, axis=(1,))
    out = np.asarray(-(np.sum(per, axis=None) * np.asarray(inv_n)))
    return out, shift, e, s, inv_n


def _xent_outer_raw(
    g: np.ndarray, n: int, inv_n: float, shape: Tuple[int, ...]
) -> np.ndarray:
    """Cotangent of the per-example nll vector: neg -> mean -> sum chain."""
    g3 = np.broadcast_to(-g * np.asarray(inv_n), (n,)).copy()
    return np.broadcast_to(g3.reshape((n, 1)), shape).copy()


def _xent_dlogits_raw(
    g: np.ndarray,
    e: np.ndarray,
    s: np.ndarray,
    targets_data: np.ndarray,
    inv_n: float,
) -> np.ndarray:
    """Raw cotangent of the logits; step-for-step the composite's backward."""
    shape = e.shape
    g5 = _xent_outer_raw(g, shape[0], inv_n, shape) * targets_data
    g6 = np.sum(-g5, axis=(1,), keepdims=True)
    g8 = np.broadcast_to(g6 / s, shape).copy()
    return g5 + g8 * e


def _xent_outer(
    g: Tensor, n: int, inv_t: Tensor, shape: Tuple[int, ...]
) -> Tensor:
    """Differentiable twin of :func:`_xent_outer_raw`."""
    g3 = broadcast_to(mul(neg(g), inv_t), (n,))
    return broadcast_to(reshape(g3, (n, 1)), shape)


def _xent_dlogits(
    g: Tensor, logits_t: Tensor, targets: Tensor, shift_t: Tensor, inv_t: Tensor
) -> Tensor:
    """Differentiable twin of :func:`_xent_dlogits_raw` (recomputes e, s)."""
    shape = logits_t.shape
    e_t = exp(sub(logits_t, shift_t))
    s_t = sum_(e_t, axis=1, keepdims=True)
    g5 = mul(_xent_outer(g, shape[0], inv_t, shape), targets)
    g6 = sum_(neg(g5), axis=1, keepdims=True)
    g8 = broadcast_to(div(g6, s_t), shape)
    return add(g5, mul(g8, e_t))


def _xent_logp(logits_t: Tensor, shift_t: Tensor) -> Tensor:
    """Differentiable log-probabilities with the captured constant shift."""
    e_t = exp(sub(logits_t, shift_t))
    lse = add(log(sum_(e_t, axis=1, keepdims=True)), shift_t)
    return sub(logits_t, lse)


# -- node-axis twins ----------------------------------------------------
#
# The ``*_nodes`` variants carry a leading node axis: logits are
# ``(nodes, batch, classes)`` and the loss is a ``(nodes,)`` vector of
# per-node means.  Each node slice runs the same float-op sequence as the
# 2-D path (reductions shift from axis 1 to axis 2, the mean stays over
# the batch axis), so per-slice results match the per-node tapes up to fp
# accumulation order — see docs/AUTODIFF.md for the tolerance policy.


def _xent_forward_nodes(
    logits_data: np.ndarray, targets_data: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]:
    """Node-axis fused forward: per-node losses in one pass."""
    shift = np.max(logits_data, axis=2, keepdims=True)
    e = np.exp(logits_data - shift)
    s = np.sum(e, axis=(2,), keepdims=True)
    logp = logits_data - (np.log(s) + shift)
    inv_n = 1.0 / logits_data.shape[1]
    per = np.sum(logp * targets_data, axis=(2,))
    out = np.asarray(-(np.sum(per, axis=(1,)) * np.asarray(inv_n)))
    return out, shift, e, s, inv_n


def _xent_outer_nodes_raw(
    g: np.ndarray, inv_n: float, shape: Tuple[int, ...]
) -> np.ndarray:
    """Node-axis cotangent of the per-example nll: ``g`` is ``(nodes,)``."""
    g3 = (-g * np.asarray(inv_n)).reshape((shape[0], 1, 1))
    return np.broadcast_to(g3, shape).copy()


def _xent_dlogits_nodes_raw(
    g: np.ndarray,
    e: np.ndarray,
    s: np.ndarray,
    targets_data: np.ndarray,
    inv_n: float,
) -> np.ndarray:
    """Raw logits cotangent with reductions shifted to the class axis."""
    shape = e.shape
    g5 = _xent_outer_nodes_raw(g, inv_n, shape) * targets_data
    g6 = np.sum(-g5, axis=(2,), keepdims=True)
    g8 = np.broadcast_to(g6 / s, shape).copy()
    return g5 + g8 * e


def _xent_outer_nodes(
    g: Tensor, inv_t: Tensor, shape: Tuple[int, ...]
) -> Tensor:
    """Differentiable twin of :func:`_xent_outer_nodes_raw`."""
    g3 = reshape(mul(neg(g), inv_t), (shape[0], 1, 1))
    return broadcast_to(g3, shape)


def _xent_dlogits_nodes(
    g: Tensor, logits_t: Tensor, targets: Tensor, shift_t: Tensor, inv_t: Tensor
) -> Tensor:
    """Differentiable twin of :func:`_xent_dlogits_nodes_raw`."""
    shape = logits_t.shape
    e_t = exp(sub(logits_t, shift_t))
    s_t = sum_(e_t, axis=2, keepdims=True)
    g5 = mul(_xent_outer_nodes(g, inv_t, shape), targets)
    g6 = sum_(neg(g5), axis=2, keepdims=True)
    g8 = broadcast_to(div(g6, s_t), shape)
    return add(g5, mul(g8, e_t))


def _xent_logp_nodes(logits_t: Tensor, shift_t: Tensor) -> Tensor:
    """Differentiable node-axis log-probabilities."""
    e_t = exp(sub(logits_t, shift_t))
    lse = add(log(sum_(e_t, axis=2, keepdims=True)), shift_t)
    return sub(logits_t, lse)


def _softmax_xent_nodes(logits: Tensor, targets: Tensor) -> Tensor:
    """Node-axis fused xent: ``(nodes, batch, classes)`` -> ``(nodes,)``."""
    t_data = targets.data
    out, shift, e, s, inv_n = _xent_forward_nodes(logits.data, t_data)
    shift_t = Tensor(shift)
    inv_t = Tensor(np.asarray(inv_n))
    shape = logits.shape

    def vjp_logits(g: Tensor) -> Tensor:
        return _xent_dlogits_nodes(g, logits, targets, shift_t, inv_t)

    def vjp_targets(g: Tensor) -> Tensor:
        return mul(
            _xent_outer_nodes(g, inv_t, shape), _xent_logp_nodes(logits, shift_t)
        )

    def _raw_logits(g: np.ndarray) -> np.ndarray:
        return _xent_dlogits_nodes_raw(g, e, s, t_data, inv_n)

    def _raw_targets(g: np.ndarray) -> np.ndarray:
        logp = logits.data - (np.log(s) + shift)
        return _xent_outer_nodes_raw(g, inv_n, shape) * logp

    vjps: Tuple[Optional[Vjp], ...] = (vjp_logits, vjp_targets)
    raws: Tuple[Optional[RawVjp], ...] = (_raw_logits, _raw_targets)
    return _make(
        out, (logits, targets), vjps, "softmax_xent_nodes", raw_vjps=raws
    )


def _linear_softmax_xent_nodes(
    x: Tensor, w: Tensor, b: Tensor, targets: Tensor
) -> Tensor:
    """Node-axis fused linear+xent: one batched matmul for all nodes."""
    num_nodes = x.shape[0]
    classes = w.shape[2]
    logits_data = np.matmul(x.data, w.data) + b.data[:, None, :]
    if targets.shape != logits_data.shape:
        raise ValueError(
            f"targets shape {targets.shape} does not match logits "
            f"{logits_data.shape}"
        )
    t_data = targets.data
    out, shift, e, s, inv_n = _xent_forward_nodes(logits_data, t_data)
    shift_t = Tensor(shift)
    inv_t = Tensor(np.asarray(inv_n))
    shape = logits_data.shape

    def logits_t() -> Tensor:
        return add(matmul(x, w), reshape(b, (num_nodes, 1, classes)))

    def vjp_x(g: Tensor) -> Tensor:
        return matmul(
            _xent_dlogits_nodes(g, logits_t(), targets, shift_t, inv_t),
            transpose(w, (0, 2, 1)),
        )

    def vjp_w(g: Tensor) -> Tensor:
        return matmul(
            transpose(x, (0, 2, 1)),
            _xent_dlogits_nodes(g, logits_t(), targets, shift_t, inv_t),
        )

    def vjp_b(g: Tensor) -> Tensor:
        return sum_(
            _xent_dlogits_nodes(g, logits_t(), targets, shift_t, inv_t),
            axis=1,
        )

    def vjp_targets(g: Tensor) -> Tensor:
        return mul(
            _xent_outer_nodes(g, inv_t, shape),
            _xent_logp_nodes(logits_t(), shift_t),
        )

    seen: Tuple[Optional[np.ndarray], int] = (None, -1)
    cached: Optional[np.ndarray] = None

    def _dl(g: np.ndarray) -> np.ndarray:
        nonlocal seen, cached
        if seen[0] is not g or seen[1] != _BACKWARD_EPOCH:
            seen = (g, _BACKWARD_EPOCH)
            cached = _xent_dlogits_nodes_raw(g, e, s, t_data, inv_n)
        assert cached is not None
        return cached

    def _raw_x(g: np.ndarray) -> np.ndarray:
        return np.matmul(_dl(g), w.data.transpose(0, 2, 1))

    def _raw_w(g: np.ndarray) -> np.ndarray:
        return np.matmul(x.data.transpose(0, 2, 1), _dl(g))

    def _raw_b(g: np.ndarray) -> np.ndarray:
        return np.sum(_dl(g), axis=(1,))

    def _raw_targets(g: np.ndarray) -> np.ndarray:
        logp = logits_data - (np.log(s) + shift)
        return _xent_outer_nodes_raw(g, inv_n, shape) * logp

    vjps: Tuple[Optional[Vjp], ...] = (vjp_x, vjp_w, vjp_b, vjp_targets)
    raws: Tuple[Optional[RawVjp], ...] = (_raw_x, _raw_w, _raw_b, _raw_targets)
    return _make(
        out, (x, w, b, targets), vjps, "linear_softmax_xent_nodes",
        raw_vjps=raws,
    )


def softmax_xent(logits: Tensor, targets: Tensor) -> Tensor:
    """Fused ``neg(mean(sum(log_softmax(logits, 1) * targets, axis=1)))``.

    ``targets`` is usually a constant one-hot tensor (the cross-entropy hot
    path), but any ``(batch, classes)`` weighting differentiates correctly.

    A 3-D ``(nodes, batch, classes)`` input takes the node-axis path and
    returns a ``(nodes,)`` vector of per-node losses.
    """
    if logits.ndim == 3:
        if targets.shape != logits.shape:
            raise ValueError(
                f"targets shape {targets.shape} does not match logits "
                f"{logits.shape}"
            )
        return _softmax_xent_nodes(logits, targets)
    if logits.ndim != 2:
        raise ValueError(
            f"softmax_xent expects (batch, classes) logits, got {logits.shape}"
        )
    if targets.shape != logits.shape:
        raise ValueError(
            f"targets shape {targets.shape} does not match logits "
            f"{logits.shape}"
        )
    t_data = targets.data
    out, shift, e, s, inv_n = _xent_forward(logits.data, t_data)
    shift_t = Tensor(shift)
    inv_t = Tensor(np.asarray(inv_n))
    shape = logits.shape

    def vjp_logits(g: Tensor) -> Tensor:
        return _xent_dlogits(g, logits, targets, shift_t, inv_t)

    def vjp_targets(g: Tensor) -> Tensor:
        return mul(
            _xent_outer(g, shape[0], inv_t, shape), _xent_logp(logits, shift_t)
        )

    def _raw_logits(g: np.ndarray) -> np.ndarray:
        return _xent_dlogits_raw(g, e, s, t_data, inv_n)

    def _raw_targets(g: np.ndarray) -> np.ndarray:
        logp = logits.data - (np.log(s) + shift)
        return _xent_outer_raw(g, shape[0], inv_n, shape) * logp

    vjps: Tuple[Optional[Vjp], ...] = (vjp_logits, vjp_targets)
    raws: Tuple[Optional[RawVjp], ...] = (_raw_logits, _raw_targets)
    return _make(out, (logits, targets), vjps, "softmax_xent", raw_vjps=raws)


def linear_softmax_xent(
    x: Tensor, w: Tensor, b: Tensor, targets: Tensor
) -> Tensor:
    """Fused ``softmax_xent(x @ w + b, targets)`` — the full FedML hot path.

    The backward shares one cotangent-of-logits computation across the
    ``x``/``w``/``b`` VJPs (memoized per seed on the raw path).

    A 3-D ``x:(nodes,batch,features) w:(nodes,features,classes)
    b:(nodes,classes)`` input takes the node-axis path and returns a
    ``(nodes,)`` vector of per-node losses.
    """
    if x.ndim == 3 and w.ndim == 3 and b.ndim == 2:
        if not (x.shape[0] == w.shape[0] == b.shape[0]):
            raise ValueError(
                "node-axis linear_softmax_xent needs matching leading dims, "
                f"got x:{x.shape} w:{w.shape} b:{b.shape}"
            )
        return _linear_softmax_xent_nodes(x, w, b, targets)
    if x.ndim != 2 or w.ndim != 2 or b.ndim != 1:
        raise ValueError(
            "linear_softmax_xent expects x:(batch,features) w:(features,"
            f"classes) b:(classes,), got {x.shape} {w.shape} {b.shape}"
        )
    logits_data = x.data @ w.data + b.data
    if targets.shape != logits_data.shape:
        raise ValueError(
            f"targets shape {targets.shape} does not match logits "
            f"{logits_data.shape}"
        )
    t_data = targets.data
    out, shift, e, s, inv_n = _xent_forward(logits_data, t_data)
    shift_t = Tensor(shift)
    inv_t = Tensor(np.asarray(inv_n))
    shape = logits_data.shape

    def logits_t() -> Tensor:
        return add(matmul(x, w), b)

    def vjp_x(g: Tensor) -> Tensor:
        return matmul(_xent_dlogits(g, logits_t(), targets, shift_t, inv_t),
                      transpose(w))

    def vjp_w(g: Tensor) -> Tensor:
        return matmul(transpose(x),
                      _xent_dlogits(g, logits_t(), targets, shift_t, inv_t))

    def vjp_b(g: Tensor) -> Tensor:
        return sum_(_xent_dlogits(g, logits_t(), targets, shift_t, inv_t),
                    axis=0)

    def vjp_targets(g: Tensor) -> Tensor:
        return mul(
            _xent_outer(g, shape[0], inv_t, shape),
            _xent_logp(logits_t(), shift_t),
        )

    seen: Tuple[Optional[np.ndarray], int] = (None, -1)
    cached: Optional[np.ndarray] = None

    def _dl(g: np.ndarray) -> np.ndarray:
        nonlocal seen, cached
        if seen[0] is not g or seen[1] != _BACKWARD_EPOCH:
            seen = (g, _BACKWARD_EPOCH)
            cached = _xent_dlogits_raw(g, e, s, t_data, inv_n)
        assert cached is not None
        return cached

    def _raw_x(g: np.ndarray) -> np.ndarray:
        return _dl(g) @ np.transpose(w.data)

    def _raw_w(g: np.ndarray) -> np.ndarray:
        return np.transpose(x.data) @ _dl(g)

    def _raw_b(g: np.ndarray) -> np.ndarray:
        return np.sum(_dl(g), axis=(0,))

    def _raw_targets(g: np.ndarray) -> np.ndarray:
        logp = logits_data - (np.log(s) + shift)
        return _xent_outer_raw(g, shape[0], inv_n, shape) * logp

    vjps: Tuple[Optional[Vjp], ...] = (vjp_x, vjp_w, vjp_b, vjp_targets)
    raws: Tuple[Optional[RawVjp], ...] = (_raw_x, _raw_w, _raw_b, _raw_targets)
    return _make(
        out, (x, w, b, targets), vjps, "linear_softmax_xent", raw_vjps=raws
    )


def norm_sq(a: Tensor) -> Tensor:
    """Squared Euclidean norm of all elements (a scalar tensor)."""
    return sum_(mul(a, a))


def zeros_like(a: Tensor) -> Tensor:
    return Tensor(np.zeros_like(a.data))


def ones_like(a: Tensor) -> Tensor:
    return Tensor(np.ones_like(a.data))
