"""Tape profiler for the autodiff engine.

MAML-style double backward makes the computation graph the hot data
structure of this codebase: every meta-gradient builds a tape whose length
scales with the inner-step count, and aggregate wall-time is dominated by a
handful of op types (``matmul``, the softmax composites).  This module
measures that, without touching the engine when disabled:

* **op counts / tape length** — :func:`profile_ops` installs a hook on the
  op-construction path (``ops._make``), so every produced tensor is counted,
  split into grad-tracked (tape nodes) and constant outputs;
* **per-op-type wall time** — the public functions in :mod:`repro.autodiff.ops`
  are temporarily wrapped with timers.  Times are *inclusive*: a composite op
  (``log_softmax``) includes the primitives it calls internally.

Usage::

    with profile_ops() as prof:
        loss = model_loss(params)
        grads = grad(loss, leaves)
    print(prof.summary())
    prof.to_registry(telemetry.registry)   # export as telemetry counters

The hook slot is module-global, so profiling is process-wide and not
re-entrant; nested ``profile_ops`` raises.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from . import fastpath
from . import ops
from . import tensor as tensor_mod

__all__ = ["OpStats", "TapeProfiler", "profile_ops", "worker_profile"]

#: Public op functions that get timing wrappers while profiling is active.
_TIMED_OPS = tuple(
    name
    for name in ops.__all__
    if name not in ("as_tensor", "zeros_like", "ones_like")
)


@dataclass
class OpStats:
    """Accumulated statistics for one op type."""

    calls: int = 0
    elements: int = 0
    grad_calls: int = 0
    seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0


@dataclass
class TapeProfiler:
    """Collects per-op-type counts, element volume, and wall time."""

    op_stats: Dict[str, OpStats] = field(default_factory=dict)
    #: Full graph traversals (toposorts) observed while profiling; a backward
    #: pass should contribute exactly one.
    graph_walks: int = 0
    #: Total nodes visited across those traversals.
    walked_nodes: int = 0
    #: Hot-path ndarray allocations reported by the backward fast path:
    #: per-edge VJP allocations plus result copies.  Compiled arena replay
    #: with ``out=`` buffers reports zero here after warm-up — the
    #: zero-allocation contract the benchmarks gate on.
    allocations: int = 0

    # -- recording (called from the ops hook / timing wrappers) ---------
    def record_creation(self, op_name: str, elements: int, requires: bool) -> None:
        stats = self.op_stats.get(op_name)
        if stats is None:
            stats = self.op_stats[op_name] = OpStats()
        stats.calls += 1
        stats.elements += elements
        if requires:
            stats.grad_calls += 1

    def record_walk(self, num_nodes: int) -> None:
        self.graph_walks += 1
        self.walked_nodes += num_nodes

    def record_allocations(self, count: int) -> None:
        self.allocations += count

    def record_time(self, op_name: str, seconds: float) -> None:
        stats = self.op_stats.get(op_name)
        if stats is None:
            stats = self.op_stats[op_name] = OpStats()
        stats.seconds += seconds

    # -- aggregate views ------------------------------------------------
    @property
    def total_ops(self) -> int:
        """Tensors produced by ops (graph nodes + constant outputs)."""
        return sum(s.calls for s in self.op_stats.values())

    @property
    def tape_length(self) -> int:
        """Grad-tracked tensors produced — the autodiff tape's node count."""
        return sum(s.grad_calls for s in self.op_stats.values())

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.op_stats.values())

    def summary(self, top: Optional[int] = None) -> str:
        """Aligned text table of op types, slowest first."""
        items = sorted(
            self.op_stats.items(), key=lambda kv: kv[1].seconds, reverse=True
        )
        if top is not None:
            items = items[:top]
        header = f"{'op':>12}  {'calls':>8}  {'tape':>8}  {'elements':>12}  {'seconds':>10}"
        lines = [header, "-" * len(header)]
        for name, s in items:
            lines.append(
                f"{name:>12}  {s.calls:>8d}  {s.grad_calls:>8d}  "
                f"{s.elements:>12d}  {s.seconds:>10.6f}"
            )
        lines.append(
            f"{'total':>12}  {self.total_ops:>8d}  {self.tape_length:>8d}  "
            f"{sum(s.elements for s in self.op_stats.values()):>12d}  "
            f"{self.total_seconds:>10.6f}"
        )
        return "\n".join(lines)

    def as_portable(self) -> Dict[str, List[float]]:
        """Op stats as plain picklable lists (``[calls, elements,
        grad_calls, seconds]`` per op) for cross-process transport."""
        return {
            name: [float(s.calls), float(s.elements), float(s.grad_calls), s.seconds]
            for name, s in self.op_stats.items()
        }

    def merge_portable(
        self,
        op_stats: Dict[str, List[float]],
        graph_walks: int = 0,
        walked_nodes: int = 0,
        allocations: int = 0,
    ) -> None:
        """Fold a worker profiler's :meth:`as_portable` export into this one.

        Used by the parallel executor: workers profile their own block and
        ship the numbers home, so ``--profile-tape`` sees the same op
        counts whether the block ran in-process or in a pool.
        """
        for name, values in op_stats.items():
            calls, elements, grad_calls, seconds = values
            stats = self.op_stats.get(name)
            if stats is None:
                stats = self.op_stats[name] = OpStats()
            stats.calls += int(calls)
            stats.elements += int(elements)
            stats.grad_calls += int(grad_calls)
            stats.seconds += seconds
        self.graph_walks += graph_walks
        self.walked_nodes += walked_nodes
        self.allocations += allocations

    def to_registry(self, registry: Any, prefix: str = "autodiff_") -> None:
        """Export into a :class:`repro.obs.MetricRegistry` as counters."""
        for name, s in self.op_stats.items():
            registry.counter(f"{prefix}op_calls_total", op=name).inc(s.calls)
            registry.counter(f"{prefix}op_elements_total", op=name).inc(s.elements)
            # Emit seconds unconditionally: a zero-time op (too fast for the
            # timer's resolution) must still produce the metric, otherwise
            # the exported series appear and vanish run-to-run.
            registry.counter(f"{prefix}op_seconds_total", op=name).inc(s.seconds)
        registry.counter(f"{prefix}tape_nodes_total").inc(self.tape_length)
        registry.counter(f"{prefix}graph_walks_total").inc(self.graph_walks)
        registry.counter(f"{prefix}allocations_total").inc(self.allocations)


def _timed(
    name: str, fn: Callable[..., Any], profiler: TapeProfiler
) -> Callable[..., Any]:
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        start = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            profiler.record_time(name, time.perf_counter() - start)

    wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
    return wrapper


@contextmanager
def profile_ops(
    profiler: Optional[TapeProfiler] = None,
) -> Iterator[TapeProfiler]:
    """Profile every autodiff op executed inside the ``with`` block."""
    if ops._PROFILE_HOOK is not None:
        raise RuntimeError("profile_ops() is already active")
    prof = profiler if profiler is not None else TapeProfiler()
    originals: List[Tuple[str, Callable[..., Any]]] = [
        (name, getattr(ops, name)) for name in _TIMED_OPS
    ]
    ops._PROFILE_HOOK = prof.record_creation
    tensor_mod._WALK_HOOK = prof.record_walk
    previous_alloc = fastpath.set_alloc_hook(prof.record_allocations)
    for name, fn in originals:
        # ops use trailing-underscore function names for builtins shadowing
        # (sum_, max_, ...) but plain names on the tape; key stats by the
        # tape name so counts and times land in the same bucket.
        setattr(ops, name, _timed(name.rstrip("_"), fn, prof))
    try:
        yield prof
    finally:
        ops._PROFILE_HOOK = None
        tensor_mod._WALK_HOOK = None
        fastpath.set_alloc_hook(previous_alloc)
        for name, fn in originals:
            setattr(ops, name, fn)


@contextmanager
def worker_profile() -> Iterator[TapeProfiler]:
    """Fresh profiler for one executor-worker task.

    A forked worker can inherit the parent's active profiling state — a
    hook bound to a *copy* of the parent's profiler that can never be read
    back.  Unlike :func:`profile_ops` this does not reject that state: it
    shadows whatever is installed with a private profiler for the duration
    of the task and restores the inherited state afterwards.  The caller
    ships ``prof.as_portable()`` home, where the parent merges it with
    :meth:`TapeProfiler.merge_portable`.
    """
    prof = TapeProfiler()
    previous_hook = ops._PROFILE_HOOK
    previous_walk = tensor_mod._WALK_HOOK
    originals: List[Tuple[str, Callable[..., Any]]] = [
        (name, getattr(ops, name)) for name in _TIMED_OPS
    ]
    ops._PROFILE_HOOK = prof.record_creation
    tensor_mod._WALK_HOOK = prof.record_walk
    previous_alloc = fastpath.set_alloc_hook(prof.record_allocations)
    for name, fn in originals:
        setattr(ops, name, _timed(name.rstrip("_"), fn, prof))
    try:
        yield prof
    finally:
        ops._PROFILE_HOOK = previous_hook
        tensor_mod._WALK_HOOK = previous_walk
        fastpath.set_alloc_hook(previous_alloc)
        for name, fn in originals:
            setattr(ops, name, fn)
