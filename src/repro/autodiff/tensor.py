"""Reverse-mode automatic differentiation over NumPy arrays.

The engine is tape-free: every operation records its parents and, for each
parent, a vector-Jacobian-product (VJP) closure.  Crucially, VJP closures are
written *in terms of differentiable operations*, so the cotangents produced
during a backward pass are themselves graph nodes.  Calling :func:`grad` with
``create_graph=True`` therefore yields gradients that can be differentiated
again — exactly what MAML-style meta-learning needs to propagate through an
inner gradient-descent step.

Design notes
------------
* ``Tensor`` wraps a ``numpy.ndarray`` (always ``float64`` for numerical
  robustness of second-order gradient checks).
* Leaf tensors are created with :func:`tensor`; intermediate tensors carry a
  ``_ctx`` describing how they were produced.
* Gradients are accumulated functionally (no ``.grad`` mutation) by
  :func:`grad`; a convenience ``backward()`` that populates ``.grad`` is also
  provided for familiarity.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]
#: Anything the operator sugar accepts on the other side of a Tensor.
TensorOperand = Union["Tensor", np.ndarray, float, int, Sequence]

__all__ = ["Tensor", "tensor", "grad", "is_tensor", "toposort", "GradientError"]


class GradientError(RuntimeError):
    """Raised when a gradient request cannot be satisfied."""


class _Context:
    """Records how a tensor was produced.

    Attributes
    ----------
    parents:
        The input tensors of the producing operation.
    vjps:
        One callable per parent mapping the output cotangent (a ``Tensor``)
        to the parent cotangent (a ``Tensor``), or ``None`` for parents that
        do not require grad.
    op_name:
        Human-readable operation name, used in error messages.
    raw_vjps:
        Optional ndarray-level VJPs (one per parent, or ``None``) used by the
        first-order fast path in :mod:`repro.autodiff.fastpath`.  Fused ops
        provide these so ``create_graph=False`` backward never has to build
        cotangent graph nodes for them.
    op_params:
        Optional per-op constants (a reduction's kept shape, a relu mask, a
        slice index, ...) that the compiled backward's kernel builders need
        but that closures would otherwise keep private.  Always read from
        the *live* graph — plan caches never store these — so structurally
        identical graphs with different parameters cannot be confused.
    """

    __slots__ = ("parents", "vjps", "op_name", "raw_vjps", "op_params")

    def __init__(
        self,
        parents: Sequence["Tensor"],
        vjps: Sequence[Optional[Callable[["Tensor"], "Tensor"]]],
        op_name: str,
        raw_vjps: Optional[
            Sequence[Optional[Callable[[np.ndarray], np.ndarray]]]
        ] = None,
        op_params: object = None,
    ) -> None:
        self.parents = tuple(parents)
        self.vjps = tuple(vjps)
        self.op_name = op_name
        self.raw_vjps = None if raw_vjps is None else tuple(raw_vjps)
        self.op_params = op_params


class Tensor:
    """A NumPy-backed tensor participating in a differentiable graph."""

    # __weakref__ lets the compiled fast path key per-graph executables on
    # weak references (a dead referent can never be confused with a new
    # tensor that reuses its id).
    __slots__ = ("data", "requires_grad", "grad", "_ctx", "__weakref__")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _ctx: Optional[_Context] = None,
    ) -> None:
        if isinstance(data, Tensor):
            raise TypeError("wrap raw array data, not another Tensor")
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[Tensor] = None
        self._ctx = _ctx

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """Return a read-only view of the underlying array.

        The view shares storage with this tensor, so it is free — but the
        graph records *references*, and a caller writing through the result
        would silently invalidate every VJP that captured the buffer.  The
        view is therefore marked non-writeable; copy it to mutate.
        """
        view = self.data.view()
        view.setflags(write=False)
        return view

    def is_leaf(self) -> bool:
        return self._ctx is None

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing this tensor's data (read-only).

        The detached tensor wraps a non-writeable view so the shared buffer
        cannot be mutated through the detached handle (the same hazard
        :meth:`numpy` guards against).
        """
        view = self.data.view()
        view.setflags(write=False)
        return Tensor(view)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_tag})\n{self.data!r}"

    # ------------------------------------------------------------------
    # Operator sugar (implementations live in repro.autodiff.ops)
    # ------------------------------------------------------------------
    def __add__(self, other: TensorOperand) -> "Tensor":
        from . import ops

        return ops.add(self, ops.as_tensor(other))

    __radd__ = __add__

    def __sub__(self, other: TensorOperand) -> "Tensor":
        from . import ops

        return ops.sub(self, ops.as_tensor(other))

    def __rsub__(self, other: TensorOperand) -> "Tensor":
        from . import ops

        return ops.sub(ops.as_tensor(other), self)

    def __mul__(self, other: TensorOperand) -> "Tensor":
        from . import ops

        return ops.mul(self, ops.as_tensor(other))

    __rmul__ = __mul__

    def __truediv__(self, other: TensorOperand) -> "Tensor":
        from . import ops

        return ops.div(self, ops.as_tensor(other))

    def __rtruediv__(self, other: TensorOperand) -> "Tensor":
        from . import ops

        return ops.div(ops.as_tensor(other), self)

    def __neg__(self) -> "Tensor":
        from . import ops

        return ops.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from . import ops

        return ops.power(self, exponent)

    def __matmul__(self, other: TensorOperand) -> "Tensor":
        from . import ops

        return ops.matmul(self, ops.as_tensor(other))

    def __getitem__(self, index: object) -> "Tensor":
        from . import ops

        return ops.getitem(self, index)

    # Convenience method forms -----------------------------------------
    def sum(
        self,
        axis: Union[None, int, Tuple[int, ...]] = None,
        keepdims: bool = False,
    ) -> "Tensor":
        from . import ops

        return ops.sum_(self, axis=axis, keepdims=keepdims)

    def mean(
        self,
        axis: Union[None, int, Tuple[int, ...]] = None,
        keepdims: bool = False,
    ) -> "Tensor":
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: Union[int, Tuple[int, ...], List[int]]) -> "Tensor":
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            return ops.reshape(self, tuple(shape[0]))
        return ops.reshape(self, tuple(int(s) for s in shape))  # type: ignore[arg-type]

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        from . import ops

        return ops.transpose(self, axes)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def backward(self, grad_output: Optional["Tensor"] = None) -> None:
        """Populate ``.grad`` on every reachable leaf requiring grad."""
        # One graph walk: collect the leaves from the same topological order
        # grad() consumes, instead of toposorting once here and again inside
        # grad().
        order = toposort(self)
        leaves = [t for t in order if t.is_leaf() and t.requires_grad]
        grads = grad(
            self, leaves, grad_output=grad_output, allow_unused=True,
            _order=order,
        )
        for leaf, g in zip(leaves, grads):
            if g is None:
                continue
            if leaf.grad is None:
                leaf.grad = g
            else:
                leaf.grad = Tensor(leaf.grad.data + g.data)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a leaf tensor from array-like data."""
    return Tensor(data, requires_grad=requires_grad)


def is_tensor(value: object) -> bool:
    return isinstance(value, Tensor)


# Walk hook installed by repro.autodiff.profile.profile_ops(); called as
# hook(num_nodes) after every full graph traversal.  Lets the profiler count
# traversals so regressions that re-walk the same graph are observable.
_WALK_HOOK: Optional[Callable[[int], None]] = None


def toposort(root: Tensor) -> List[Tensor]:
    """Return tensors reachable from ``root`` in topological order (inputs first).

    Public so graph tooling (the sanitizer in :mod:`repro.analysis`) can walk
    recorded graphs without reaching into engine internals.
    """
    order: List[Tensor] = []
    visited: Set[int] = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        if node._ctx is not None:
            for parent in node._ctx.parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
    if _WALK_HOOK is not None:
        _WALK_HOOK(len(order))
    return order


def _requires_path(order: Iterable[Tensor], targets: Sequence[Tensor]) -> Set[int]:
    """IDs of tensors on a differentiable path from any target to the root."""
    target_ids = {id(t) for t in targets}
    needed: Set[int] = set()
    for node in order:  # inputs first
        if id(node) in target_ids:
            needed.add(id(node))
        elif node._ctx is not None and any(
            id(p) in needed for p in node._ctx.parents
        ):
            needed.add(id(node))
    return needed


def grad(
    output: Tensor,
    inputs: Sequence[Tensor],
    grad_output: Optional[Tensor] = None,
    create_graph: bool = False,
    allow_unused: bool = False,
    _order: Optional[List[Tensor]] = None,
) -> List[Optional[Tensor]]:
    """Compute ``d output / d inputs`` via reverse-mode differentiation.

    Parameters
    ----------
    output:
        Tensor to differentiate.  If non-scalar, ``grad_output`` must be
        supplied (the cotangent to seed the backward pass with).
    inputs:
        Tensors with respect to which gradients are requested.
    grad_output:
        Seed cotangent; defaults to ``1`` for scalar outputs.
    create_graph:
        If ``True`` the returned gradients are themselves differentiable
        graph nodes (enables second-order gradients).  If ``False`` the
        gradients are detached leaves, and the backward pass runs on the
        raw-ndarray fast path of :mod:`repro.autodiff.fastpath` (when
        enabled; bit-identical to the reference path).
    allow_unused:
        If ``True``, inputs not reachable from ``output`` yield ``None``;
        otherwise a :class:`GradientError` is raised.
    _order:
        Internal: a topological order of ``output``'s graph obtained from
        :func:`toposort`, to avoid a second walk when the caller already
        has one (``Tensor.backward``).

    Returns
    -------
    list of Tensor (or None for unused inputs when ``allow_unused``).
    """
    if not isinstance(output, Tensor):
        raise TypeError("output must be a Tensor")
    if grad_output is None:
        if output.size != 1:
            raise GradientError(
                "grad_output must be provided for non-scalar outputs"
            )
        grad_output = Tensor(np.ones_like(output.data))
    elif grad_output.shape != output.shape:
        raise GradientError(
            f"grad_output shape {grad_output.shape} does not match "
            f"output shape {output.shape}"
        )

    order = toposort(output) if _order is None else _order

    if not create_graph:
        from . import fastpath

        if fastpath.enabled():
            raw = fastpath.backward(output, inputs, order, grad_output.data)
            fast_results: List[Optional[Tensor]] = []
            for arr in raw:
                if arr is None:
                    if not allow_unused:
                        raise GradientError(
                            "an input is unused in the graph; pass "
                            "allow_unused=True to receive None for it"
                        )
                    fast_results.append(None)
                else:
                    fast_results.append(Tensor(arr))
            return fast_results

    on_path = _requires_path(order, inputs)

    input_ids = {id(t) for t in inputs}
    cotangents: dict[int, Tensor] = {id(output): grad_output}
    for node in reversed(order):  # root first
        cot = cotangents.get(id(node))
        if cot is None:
            continue
        if node._ctx is not None:
            ctx = node._ctx
            for parent, vjp in zip(ctx.parents, ctx.vjps):
                if vjp is None or id(parent) not in on_path:
                    continue
                contribution = vjp(cot)
                if contribution.shape != parent.shape:
                    raise GradientError(
                        f"vjp of op '{ctx.op_name}' produced shape "
                        f"{contribution.shape}, expected {parent.shape}"
                    )
                existing = cotangents.get(id(parent))
                if existing is None:
                    cotangents[id(parent)] = contribution
                else:
                    cotangents[id(parent)] = existing + contribution
        if id(node) not in input_ids:
            del cotangents[id(node)]  # free memory; final value not needed

    results: List[Optional[Tensor]] = []
    for inp in inputs:
        g = cotangents.get(id(inp))
        if g is None:
            if not allow_unused:
                raise GradientError(
                    "an input is unused in the graph; pass allow_unused=True "
                    "to receive None for it"
                )
            results.append(None)
        else:
            results.append(g if create_graph else g.detach())
    return results
