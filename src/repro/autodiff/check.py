"""Numerical gradient checking utilities.

Used by the test suite to validate the autodiff engine (first and second
order) against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor, grad

__all__ = [
    "numerical_gradient",
    "check_gradients",
    "check_second_order",
    "check_double_backward",
]


def numerical_gradient(
    fn: Callable[..., Tensor],
    args: Sequence[np.ndarray],
    wrt: int = 0,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*args)`` w.r.t. ``args[wrt]``."""
    base = [np.asarray(a, dtype=np.float64).copy() for a in args]
    target = base[wrt]
    result = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = target[idx]
        target[idx] = original + epsilon
        plus = fn(*[Tensor(a) for a in base]).item()
        target[idx] = original - epsilon
        minus = fn(*[Tensor(a) for a in base]).item()
        target[idx] = original
        result[idx] = (plus - minus) / (2.0 * epsilon)
        it.iternext()
    return result


def check_gradients(
    fn: Callable[..., Tensor],
    args: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert that autodiff gradients of scalar ``fn`` match finite differences."""
    tensors = [Tensor(np.asarray(a, dtype=np.float64), requires_grad=True) for a in args]
    out = fn(*tensors)
    analytic = grad(out, tensors, allow_unused=True)
    for i, g in enumerate(analytic):
        numeric = numerical_gradient(fn, args, wrt=i)
        got = np.zeros_like(numeric) if g is None else g.data
        np.testing.assert_allclose(
            got,
            numeric,
            atol=atol,
            rtol=rtol,
            err_msg=f"gradient mismatch for argument {i}",
        )


def check_second_order(
    fn: Callable[[Tensor], Tensor],
    x: np.ndarray,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> None:
    """Assert grad-of-grad of scalar ``fn`` matches a finite-difference Hessian.

    ``fn`` must take a single tensor argument.  The full Hessian is built
    column by column from reverse-over-reverse autodiff and compared against
    differentiating the numerical gradient.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.size

    def grad_fn(values: np.ndarray) -> np.ndarray:
        t = Tensor(values.reshape(x.shape), requires_grad=True)
        (g,) = grad(fn(t), [t])
        assert g is not None
        return g.data.reshape(-1)

    # Numerical Hessian via central differences of the analytic gradient.
    epsilon = 1e-5
    numeric = np.zeros((n, n))
    flat = x.reshape(-1).copy()
    for j in range(n):
        bumped = flat.copy()
        bumped[j] += epsilon
        plus = grad_fn(bumped)
        bumped[j] -= 2 * epsilon
        minus = grad_fn(bumped)
        numeric[:, j] = (plus - minus) / (2.0 * epsilon)

    # Analytic Hessian via double backward.
    t = Tensor(x, requires_grad=True)
    (g,) = grad(fn(t), [t], create_graph=True)
    assert g is not None
    analytic = np.zeros((n, n))
    for i in range(n):
        seed = np.zeros(g.shape)
        seed.reshape(-1)[i] = 1.0
        (row,) = grad(g, [t], grad_output=Tensor(seed), allow_unused=True)
        analytic[i, :] = 0.0 if row is None else row.data.reshape(-1)

    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


def check_double_backward(
    fn: Callable[..., Tensor], args: Sequence[np.ndarray]
) -> None:
    """Assert that ``fn``'s VJPs keep the cotangent graph differentiable.

    Seeds the backward pass of ``fn(*args)`` with a cotangent that itself
    requires grad and asserts every produced gradient still depends on that
    seed.  A VJP that detaches (raw ``np.*`` call, ``.data`` access, constant
    cotangent) severs the dependence and fails here — the same invariant the
    ``repro check-graph`` double-backward audit enforces engine-wide.
    """
    tensors = [
        Tensor(np.asarray(a, dtype=np.float64), requires_grad=True)
        for a in args
    ]
    out = fn(*tensors)
    seed = Tensor(np.ones_like(out.data), requires_grad=True)
    grads = grad(
        out, tensors, grad_output=seed, create_graph=True, allow_unused=True
    )
    produced = [g for g in grads if g is not None]
    if not produced:
        raise AssertionError("fn produced no gradient for any input")
    for index, g in enumerate(produced):
        (d_seed,) = grad(g.sum(), [seed], allow_unused=True)
        if d_seed is None:
            raise AssertionError(
                f"gradient {index} does not depend on the output cotangent: "
                "a VJP in fn's graph is detached (breaks create_graph=True)"
            )
