"""NumPy-backed reverse-mode autodiff with second-order (double-backward) support.

This package is the computational substrate for the whole reproduction: the
MAML-style meta-gradient in :mod:`repro.core` differentiates *through* an
inner gradient-descent step, which requires gradients that are themselves
differentiable graph nodes (``grad(..., create_graph=True)``).

Public surface
--------------
``Tensor`` / ``tensor``
    The array type and its constructor.
``grad``
    Functional reverse-mode differentiation (torch-``autograd.grad``-like).
``ops``
    Differentiable primitive operations (also exposed as methods/operators).
``fastpath``
    First-order backward accelerator: raw-ndarray VJP execution with a
    structure-keyed plan cache (see docs/AUTODIFF.md).  Enabled by default;
    ``fastpath.disabled()`` restores the reference backward.
"""

from . import fastpath, ops
from .check import check_gradients, check_second_order, numerical_gradient
from .profile import TapeProfiler, profile_ops
from .ops import (
    abs_,
    add,
    as_tensor,
    broadcast_to,
    clip,
    concatenate,
    div,
    exp,
    getitem,
    linear_softmax_xent,
    log,
    log_softmax,
    logsumexp,
    matmul,
    max_,
    mean,
    min_,
    mul,
    neg,
    norm_sq,
    ones_like,
    power,
    relu,
    reshape,
    sigmoid,
    softmax,
    softmax_xent,
    sqrt,
    stack,
    sub,
    sum_,
    tanh,
    transpose,
    where,
    zeros_like,
)
from .tensor import GradientError, Tensor, grad, is_tensor, tensor, toposort

__all__ = [
    "Tensor",
    "tensor",
    "grad",
    "is_tensor",
    "toposort",
    "GradientError",
    "ops",
    "fastpath",
    "check_gradients",
    "check_second_order",
    "numerical_gradient",
    "TapeProfiler",
    "profile_ops",
    "abs_",
    "add",
    "as_tensor",
    "broadcast_to",
    "clip",
    "concatenate",
    "div",
    "exp",
    "getitem",
    "linear_softmax_xent",
    "log",
    "log_softmax",
    "logsumexp",
    "matmul",
    "max_",
    "mean",
    "min_",
    "mul",
    "neg",
    "norm_sq",
    "ones_like",
    "power",
    "relu",
    "reshape",
    "sigmoid",
    "softmax",
    "softmax_xent",
    "sqrt",
    "stack",
    "sub",
    "sum_",
    "tanh",
    "transpose",
    "where",
    "zeros_like",
]
