"""Kernel backends for compiled backward plans.

The compiled fast path (:mod:`repro.autodiff.fastpath`) lowers a cached
backward plan into a flat list of *bound steps*: closures that compute one
edge's cotangent contribution with ``out=`` writes into pre-allocated arena
slots.  This module is the seam those steps are built through: a
:class:`PlanBackend` turns ``(op, live graph node, source slot, destination
slot)`` into a step, and :class:`NumpyPlanBackend` is the reference
implementation.  Keeping the builders behind one protocol means an
accelerator backend only has to reimplement kernel construction — plan
building, arenas, caching, and eviction are backend-agnostic.

Bit-exactness contract
----------------------
Every kernel replicates the float-op sequence of the op's *raw VJP* in
:mod:`repro.autodiff.ops` — same ufuncs, same order, same broadcasting —
only redirected through ``out=`` into arena storage.  ``np.multiply(g, m,
out=buf)`` produces the same bits as ``g * m``; ``np.sum(x, axis=a,
out=buf)`` the same bits as ``np.sum(x, axis=a)``; ``np.copyto(dst, v)``
with broadcasting the same bits as ``np.broadcast_to(v, shape).copy()``.
A builder that cannot replicate the reference sequence exactly must return
``None`` so the edge falls back to the allocating raw/closure VJP.

Per-op parameters (masks, reduction shapes, indices) are read from the
live graph's ``_Context.op_params`` at *bind* time, never from the plan
cache, preserving the fast path's "structure only is cached" guarantee.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional, Tuple

import numpy as np

from .tensor import Tensor, _Context

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

__all__ = ["PlanBackend", "NumpyPlanBackend", "numpy_backend"]

#: A fully bound edge step: no arguments, no return, no allocation.
Step = Callable[[], None]
#: Allocator handed to builders: ``scratch(shape)`` returns a persistent
#: per-edge scratch array (arena-accounted, reused across executions).
ScratchFn = Callable[[Tuple[int, ...]], np.ndarray]
#: ``(run, elementwise)`` — the bound step plus a flag marking pure
#: elementwise source→destination chains the coalescer may fuse.
BuiltEdge = Tuple[Step, bool]


class PlanBackend(Protocol):
    """Builds bound kernel steps for compiled backward plans."""

    name: str

    def kernelized_ops(self) -> FrozenSet[str]:
        """Op names this backend can lower to zero-allocation kernels."""
        ...

    def move_view(
        self, ctx: _Context, node: Tensor, vjp_index: int, g: np.ndarray
    ) -> Optional[np.ndarray]:
        """A view of ``g`` equal to this edge's contribution, or ``None``.

        Pure *move* edges (identity passthrough, reshape, transpose) don't
        need a step at all: the parent's slot can alias the child's.  Only
        called for single-contribution parents.
        """
        ...

    def build_edge(
        self,
        ctx: _Context,
        node: Tensor,
        vjp_index: int,
        g: np.ndarray,
        dst: np.ndarray,
        mode: str,
        scratch: ScratchFn,
    ) -> Optional[BuiltEdge]:
        """Bound step computing edge ``vjp_index`` of ``node`` from slot
        ``g`` into slot ``dst`` (``mode`` is ``"init"`` or ``"acc"``), or
        ``None`` when the op cannot be kernelized."""
        ...


# ----------------------------------------------------------------------
# Shared step factories (separate functions so loop-built closures bind
# their own operands, not the loop variable)
# ----------------------------------------------------------------------
def _chain(steps: List[Step]) -> Step:
    if len(steps) == 1:
        return steps[0]
    bound = tuple(steps)

    def run() -> None:
        for step in bound:
            step()

    return run


def _copy_step(src: np.ndarray, dst: np.ndarray) -> Step:
    # np.copyto broadcasts src: bit-equal to np.broadcast_to(src, ...).copy()
    def run() -> None:
        np.copyto(dst, src)

    return run


def _add_step(src: np.ndarray, dst: np.ndarray) -> Step:
    # np.add(dst, src, dst) is bit-equal to `dst + src` (the reference
    # accumulation), including broadcasting of src.
    def run() -> None:
        np.add(dst, src, dst)

    return run


def _sum_step(
    src: np.ndarray, axes: Tuple[int, ...], keepdims: bool, out: np.ndarray
) -> Step:
    def run() -> None:
        np.sum(src, axis=axes, keepdims=keepdims, out=out)

    return run


def _unbroadcast_plan(
    shape: Tuple[int, ...], target: Tuple[int, ...]
) -> Optional[List[Tuple[Tuple[int, ...], bool, Tuple[int, ...]]]]:
    """Reduction schedule replicating ``ops._unbroadcast_raw``.

    Returns ``[(axes, keepdims, result_shape), ...]`` (at most two entries,
    mirroring the reference's two ``np.sum`` calls), or ``None`` when the
    reference would need its defensive final reshape — that path never
    fires for genuine broadcast results, so it stays on the fallback.
    """
    if shape == target:
        return []
    reduces: List[Tuple[Tuple[int, ...], bool, Tuple[int, ...]]] = []
    cur = tuple(shape)
    extra = len(cur) - len(target)
    if extra < 0:
        return None
    if extra > 0:
        cur = cur[extra:]
        reduces.append((tuple(range(extra)), False, cur))
    axes = tuple(
        i for i, dim in enumerate(target) if dim == 1 and cur[i] != 1
    )
    if axes:
        cur = tuple(1 if i in axes else d for i, d in enumerate(cur))
        reduces.append((axes, True, cur))
    if cur != tuple(target):
        return None
    return reduces


class NumpyPlanBackend:
    """NumPy implementation of :class:`PlanBackend`.

    Covers the elementwise/linear-algebra/shape core the training tapes
    are built from; fused composites and set-ops (``where``, ``stack``,
    ``max``) deliberately stay on the raw-VJP fallback, which the fast
    path counts as hot-path allocations.
    """

    name = "numpy"

    _KERNELIZED = frozenset(
        {
            "add", "sub", "mul", "div", "neg", "power", "exp", "log",
            "tanh", "sigmoid", "relu", "clip", "matmul", "sum", "reshape",
            "transpose", "broadcast_to", "getitem",
        }
    )

    def kernelized_ops(self) -> FrozenSet[str]:
        return self._KERNELIZED

    # ------------------------------------------------------------------
    # Move elision
    # ------------------------------------------------------------------
    def move_view(
        self, ctx: _Context, node: Tensor, vjp_index: int, g: np.ndarray
    ) -> Optional[np.ndarray]:
        op = ctx.op_name
        target = ctx.parents[vjp_index].data.shape
        if op in ("add", "broadcast_to") or (op == "sub" and vjp_index == 0):
            # Contribution is `g` itself when no unbroadcast is needed —
            # the reference stores the very same array in its cotangent
            # map, so aliasing is exact.
            return g if g.shape == target else None
        if op == "reshape":
            view = g.reshape(target)
            # reshape of a non-contiguous slot silently copies; a copy
            # would freeze this execution's values into the alias.
            return view if np.shares_memory(view, g) else None
        if op == "transpose":
            inverse = ctx.op_params
            if inverse is not None and not isinstance(inverse, tuple):
                return None
            return np.transpose(g, inverse)
        return None

    # ------------------------------------------------------------------
    # Edge kernels
    # ------------------------------------------------------------------
    def build_edge(
        self,
        ctx: _Context,
        node: Tensor,
        vjp_index: int,
        g: np.ndarray,
        dst: np.ndarray,
        mode: str,
        scratch: ScratchFn,
    ) -> Optional[BuiltEdge]:
        op = ctx.op_name
        j = vjp_index
        target = ctx.parents[j].data.shape
        if op == "matmul":
            return self._matmul_edge(ctx, j, g, dst, mode, scratch)
        if op == "getitem":
            return self._getitem_edge(ctx, g, dst, mode, scratch, target)
        if op in ("sum", "reshape", "transpose"):
            return self._view_edge(ctx, op, g, dst, mode, target)
        if op in ("add", "broadcast_to") or (op == "sub" and j == 0):
            return self._finish(None, g, g.shape, target, dst, mode, scratch)
        core = self._elementwise_core(ctx, node, j, g, scratch)
        if core is None:
            return None
        core_fn, core_shape = core
        return self._finish(
            core_fn, None, core_shape, target, dst, mode, scratch
        )

    # -- elementwise cores ---------------------------------------------
    def _elementwise_core(
        self,
        ctx: _Context,
        node: Tensor,
        j: int,
        g: np.ndarray,
        scratch: ScratchFn,
    ) -> Optional[Tuple[Callable[[np.ndarray], None], Tuple[int, ...]]]:
        """``(core(out), core_shape)`` computing the pre-unbroadcast
        contribution; each core mirrors the op's raw VJP float sequence."""
        op = ctx.op_name
        if op == "neg":

            def core_neg(out: np.ndarray) -> None:
                np.negative(g, out)

            return core_neg, g.shape
        if op == "sub":  # j == 1 (j == 0 handled as a pure move/unbroadcast)

            def core_subb(out: np.ndarray) -> None:
                np.negative(g, out)

            return core_subb, g.shape
        if op == "mul":
            other = ctx.parents[1 - j].data
            shape = np.broadcast_shapes(g.shape, other.shape)

            def core_mul(out: np.ndarray) -> None:
                np.multiply(g, other, out)

            return core_mul, shape
        if op == "div":
            a = ctx.parents[0].data
            b = ctx.parents[1].data
            if j == 0:
                shape = np.broadcast_shapes(g.shape, b.shape)

                def core_diva(out: np.ndarray) -> None:
                    np.divide(g, b, out)

                return core_diva, shape
            # j == 1: -((g * a) / (b * b)), exactly the raw VJP's sequence
            ga_shape = np.broadcast_shapes(g.shape, a.shape)
            bb_shape = b.shape
            shape = np.broadcast_shapes(ga_shape, bb_shape)
            t_ga = scratch(ga_shape)
            t_bb = scratch(bb_shape)
            t_q = t_ga if shape == ga_shape else scratch(shape)

            def core_divb(out: np.ndarray) -> None:
                np.multiply(g, a, t_ga)
                np.multiply(b, b, t_bb)
                np.divide(t_ga, t_bb, t_q)
                np.negative(t_q, out)

            return core_divb, shape
        if op == "power":
            exponent = ctx.op_params
            if not isinstance(exponent, float):
                return None
            a = ctx.parents[0].data
            t = scratch(a.shape)

            def core_pow(out: np.ndarray) -> None:
                # g * (e * a ** (e - 1.0)) — the raw VJP's exact sequence.
                np.power(a, exponent - 1.0, t)
                np.multiply(np.asarray(exponent, dtype=np.float64), t, t)
                np.multiply(g, t, out)

            return core_pow, np.broadcast_shapes(g.shape, a.shape)
        if op == "exp":
            y = node.data

            def core_exp(out: np.ndarray) -> None:
                np.multiply(g, y, out)

            return core_exp, np.broadcast_shapes(g.shape, y.shape)
        if op == "log":
            a = ctx.parents[0].data

            def core_log(out: np.ndarray) -> None:
                np.divide(g, a, out)

            return core_log, np.broadcast_shapes(g.shape, a.shape)
        if op == "tanh":
            y = node.data
            t = scratch(y.shape)

            def core_tanh(out: np.ndarray) -> None:
                # g * (1.0 - y * y), mirroring the raw VJP step for step.
                np.multiply(y, y, t)
                np.subtract(np.array(1.0), t, t)
                np.multiply(g, t, out)

            return core_tanh, np.broadcast_shapes(g.shape, y.shape)
        if op == "sigmoid":
            y = node.data
            t = scratch(y.shape)

            def core_sig(out: np.ndarray) -> None:
                # g * (y * (1.0 - y)), mirroring the raw VJP step for step.
                np.subtract(np.array(1.0), y, t)
                np.multiply(y, t, t)
                np.multiply(g, t, out)

            return core_sig, np.broadcast_shapes(g.shape, y.shape)
        if op in ("relu", "clip"):
            mask = ctx.op_params
            if not isinstance(mask, np.ndarray):
                return None

            def core_mask(out: np.ndarray) -> None:
                np.multiply(g, mask, out)

            return core_mask, np.broadcast_shapes(g.shape, mask.shape)
        return None

    # -- structured edges ----------------------------------------------
    def _matmul_edge(
        self,
        ctx: _Context,
        j: int,
        g: np.ndarray,
        dst: np.ndarray,
        mode: str,
        scratch: ScratchFn,
    ) -> Optional[BuiltEdge]:
        a = ctx.parents[0].data
        b = ctx.parents[1].data
        batched = a.ndim == 3
        if j == 0:
            # g @ b.T (2-D) / g @ b.transpose(0, 2, 1) (batched)
            rhs = b.transpose(0, 2, 1) if batched else np.transpose(b)

            def compute(out: np.ndarray) -> None:
                np.matmul(g, rhs, out)

        else:
            lhs = a.transpose(0, 2, 1) if batched else np.transpose(a)

            def compute(out: np.ndarray) -> None:
                np.matmul(lhs, g, out)

        target = ctx.parents[j].data.shape
        if mode == "init":

            def run_init() -> None:
                compute(dst)

            return run_init, False
        tmp = scratch(target)

        def run_acc() -> None:
            compute(tmp)
            np.add(dst, tmp, dst)

        return run_acc, False

    def _getitem_edge(
        self,
        ctx: _Context,
        g: np.ndarray,
        dst: np.ndarray,
        mode: str,
        scratch: ScratchFn,
        target: Tuple[int, ...],
    ) -> Optional[BuiltEdge]:
        index = ctx.op_params
        if mode == "init":
            # fill(0) + add.at is bit-equal to np.zeros + add.at.
            def run_init() -> None:
                dst.fill(0.0)
                np.add.at(dst, index, g)

            return run_init, False
        tmp = scratch(target)

        def run_acc() -> None:
            tmp.fill(0.0)
            np.add.at(tmp, index, g)
            np.add(dst, tmp, dst)

        return run_acc, False

    def _view_edge(
        self,
        ctx: _Context,
        op: str,
        g: np.ndarray,
        dst: np.ndarray,
        mode: str,
        target: Tuple[int, ...],
    ) -> Optional[BuiltEdge]:
        """sum / reshape / transpose: contribution is a view of ``g``."""
        src: Optional[np.ndarray]
        if op == "sum":
            kept = ctx.op_params
            if kept is None:
                src = g
            else:
                if not isinstance(kept, tuple):
                    return None
                src = g.reshape(kept)
                if not np.shares_memory(src, g):
                    return None
            # copyto/add broadcast src over dst: bit-equal to the raw
            # VJP's np.broadcast_to(...).copy() contribution.
        elif op == "reshape":
            src = g.reshape(target)
            if not np.shares_memory(src, g):
                return None
        else:  # transpose
            inverse = ctx.op_params
            if inverse is not None and not isinstance(inverse, tuple):
                return None
            src = np.transpose(g, inverse)
        step = _copy_step(src, dst) if mode == "init" else _add_step(src, dst)
        return step, True

    # -- unbroadcast / accumulate wrapper ------------------------------
    def _finish(
        self,
        core: Optional[Callable[[np.ndarray], None]],
        src: Optional[np.ndarray],
        core_shape: Tuple[int, ...],
        target: Tuple[int, ...],
        dst: np.ndarray,
        mode: str,
        scratch: ScratchFn,
    ) -> Optional[BuiltEdge]:
        """Wrap a core (or a plain source array) with the unbroadcast
        reductions and the init/acc write into ``dst``."""
        if core_shape == target:
            if core is None:
                assert src is not None
                step = (
                    _copy_step(src, dst)
                    if mode == "init"
                    else _add_step(src, dst)
                )
                return step, True
            if mode == "init":

                def run_direct() -> None:
                    assert core is not None
                    core(dst)

                return run_direct, True
            tmp = scratch(core_shape)

            def run_acc() -> None:
                assert core is not None
                core(tmp)
                np.add(dst, tmp, dst)

            return run_acc, True
        reduces = _unbroadcast_plan(core_shape, target)
        if reduces is None:
            return None
        steps: List[Step] = []
        if core is not None:
            buf = scratch(core_shape)

            def run_core(out: np.ndarray = buf) -> None:
                assert core is not None
                core(out)

            steps.append(run_core)
            cur: np.ndarray = buf
        else:
            assert src is not None
            cur = src
        for i, (axes, keepdims, shape) in enumerate(reduces):
            last = i == len(reduces) - 1
            out_arr = dst if (last and mode == "init") else scratch(shape)
            steps.append(_sum_step(cur, axes, keepdims, out_arr))
            cur = out_arr
        if mode != "init":
            steps.append(_add_step(cur, dst))
        return _chain(steps), False


#: Shared default backend instance.
numpy_backend = NumpyPlanBackend()
