"""Parameter-tree utilities.

Model parameters are plain ``dict[str, Tensor]`` objects ("params").  Keeping
parameters external to the model (functional style) is what lets MAML-style
algorithms evaluate a model at *updated* parameters ``phi = theta - alpha * g``
while retaining the graph connection back to ``theta``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

import numpy as np

from ..autodiff import Tensor

Params = Dict[str, Tensor]

__all__ = [
    "Params",
    "tree_map",
    "tree_binary_map",
    "detach",
    "clone",
    "require_grad",
    "to_vector",
    "from_vector",
    "num_parameters",
    "num_bytes",
    "l2_distance",
    "l2_norm",
    "weighted_average",
    "add_scaled",
    "zeros_like_params",
]


def tree_map(fn: Callable[[Tensor], Tensor], params: Params) -> Params:
    """Apply ``fn`` to every tensor in the tree, preserving keys."""
    return {name: fn(value) for name, value in params.items()}


def tree_binary_map(
    fn: Callable[[Tensor, Tensor], Tensor], left: Params, right: Params
) -> Params:
    """Apply a binary ``fn`` over two trees with identical keys."""
    if left.keys() != right.keys():
        raise KeyError(
            f"parameter trees differ: {sorted(left)} vs {sorted(right)}"
        )
    return {name: fn(left[name], right[name]) for name in left}


def detach(params: Params) -> Params:
    """Detach every tensor from its graph (new leaves sharing data)."""
    return tree_map(lambda t: t.detach(), params)


def clone(params: Params, requires_grad: bool = False) -> Params:
    """Deep-copy parameter data into fresh leaf tensors."""
    return {
        name: Tensor(value.data.copy(), requires_grad=requires_grad)
        for name, value in params.items()
    }


def require_grad(params: Params) -> Params:
    """Fresh leaves sharing data, marked as requiring grad."""
    return {
        name: Tensor(value.data, requires_grad=True)
        for name, value in params.items()
    }


def _sorted_names(params: Params) -> List[str]:
    return sorted(params)


def to_vector(params: Params) -> np.ndarray:
    """Flatten a parameter tree to a single 1-D array (keys sorted)."""
    return np.concatenate(
        [params[name].data.reshape(-1) for name in _sorted_names(params)]
    )


def from_vector(vector: np.ndarray, template: Params) -> Params:
    """Inverse of :func:`to_vector` given a shape template."""
    vector = np.asarray(vector, dtype=np.float64)
    out: Params = {}
    offset = 0
    for name in _sorted_names(template):
        shape = template[name].shape
        count = int(np.prod(shape)) if shape else 1
        out[name] = Tensor(vector[offset : offset + count].reshape(shape))
        offset += count
    if offset != vector.size:
        raise ValueError(
            f"vector has {vector.size} entries, template needs {offset}"
        )
    return out


def num_parameters(params: Params) -> int:
    return int(sum(t.size for t in params.values()))


def num_bytes(params: Params) -> int:
    """Serialized size of the tree — what a node uploads per aggregation."""
    return int(sum(t.data.nbytes for t in params.values()))


def l2_distance(left: Params, right: Params) -> float:
    return float(np.linalg.norm(to_vector(left) - to_vector(right)))


def l2_norm(params: Params) -> float:
    return float(np.linalg.norm(to_vector(params)))


def weighted_average(trees: Sequence[Params], weights: Iterable[float]) -> Params:
    """Weighted average of parameter trees (eq. 5 of the paper)."""
    weights = list(weights)
    if len(trees) != len(weights):
        raise ValueError("one weight per parameter tree is required")
    if not trees:
        raise ValueError("cannot average zero trees")
    total = float(sum(weights))
    if not np.isclose(total, 1.0):
        raise ValueError(f"aggregation weights must sum to 1, got {total}")
    names = _sorted_names(trees[0])
    out: Params = {}
    for name in names:
        acc = np.zeros_like(trees[0][name].data)
        for tree, w in zip(trees, weights):
            acc = acc + w * tree[name].data
        out[name] = Tensor(acc)
    return out


def add_scaled(params: Params, update: Params, scale: float) -> Params:
    """Return ``params + scale * update`` as detached leaves."""
    return tree_binary_map(
        lambda p, u: Tensor(p.data + scale * u.data), params, update
    )


def zeros_like_params(params: Params) -> Params:
    return {name: Tensor(np.zeros_like(t.data)) for name, t in params.items()}
