"""Optimizers over parameter trees.

Optimizers are stateful objects with a functional ``step`` API::

    params = optimizer.step(params, grads)

``params`` and ``grads`` are ``dict[str, Tensor]`` trees; returned parameters
are fresh detached leaves.  The local meta-update of FedML (eq. 4) and the
FedAvg local SGD both use these.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..autodiff import Tensor
from .parameters import Params

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class for parameter-tree optimizers."""

    def step(self, params: Params, grads: Params) -> Params:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any accumulated state (momentum buffers etc.)."""

    @staticmethod
    def _validate(params: Params, grads: Params) -> None:
        if params.keys() != grads.keys():
            raise KeyError(
                f"gradient tree keys {sorted(grads)} do not match parameter "
                f"tree keys {sorted(params)}"
            )


class SGD(Optimizer):
    """Vanilla / momentum SGD with optional decoupled weight decay."""

    def __init__(
        self,
        learning_rate: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Optional[Dict[str, np.ndarray]] = None

    def step(self, params: Params, grads: Params) -> Params:
        self._validate(params, grads)
        decay = self.learning_rate * self.weight_decay
        if self.momentum == 0.0:
            return {
                name: Tensor(
                    (1.0 - decay) * params[name].data
                    - self.learning_rate * grads[name].data
                )
                for name in params
            }
        if self._velocity is None:
            self._velocity = {
                name: np.zeros_like(t.data) for name, t in params.items()
            }
        out: Params = {}
        for name in params:
            v = self.momentum * self._velocity[name] + grads[name].data
            self._velocity[name] = v
            out[name] = Tensor(
                (1.0 - decay) * params[name].data - self.learning_rate * v
            )
        return out

    def reset(self) -> None:
        self._velocity = None


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: Optional[Dict[str, np.ndarray]] = None
        self._v: Optional[Dict[str, np.ndarray]] = None
        self._t = 0

    def step(self, params: Params, grads: Params) -> Params:
        self._validate(params, grads)
        if self._m is None:
            self._m = {name: np.zeros_like(t.data) for name, t in params.items()}
            self._v = {name: np.zeros_like(t.data) for name, t in params.items()}
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        out: Params = {}
        for name in params:
            g = grads[name].data
            self._m[name] = self.beta1 * self._m[name] + (1 - self.beta1) * g
            self._v[name] = self.beta2 * self._v[name] + (1 - self.beta2) * g * g
            m_hat = self._m[name] / bias1
            v_hat = self._v[name] / bias2
            update = m_hat / (np.sqrt(v_hat) + self.epsilon)
            out[name] = Tensor(params[name].data - self.learning_rate * update)
        return out

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0
