"""Node-axis (batched) model evaluation for the vectorized executor.

The serial engine runs one autodiff tape per node per local step.  This
module stacks N nodes' parameter trees and minibatches into ``(N, ...)``
arrays and evaluates them as **one** tape using the node-axis op variants
of :mod:`repro.autodiff.ops` (batched ``matmul``, ``softmax_xent`` /
``linear_softmax_xent`` on 3-D logits) — a 100-node local-training block
becomes a handful of large ndarray ops instead of 100 small tapes.

Semantics: nodes are independent, so the stacked computation is block
diagonal — gradient slice ``i`` of the stacked loss-sum equals node
``i``'s own gradient exactly in real arithmetic, and matches it bit-for-
bit per slice for the ops whose reductions keep per-row accumulation
order (see docs/AUTODIFF.md for the fp-reordering tolerance policy; the
engine only *claims* bitwise equality for vectorized-vs-vectorized runs).

``stack_params`` / ``unstack_params`` convert between a list of per-node
parameter trees and one stacked tree; ``batched_model_loss`` is the
node-axis twin of :func:`repro.nn.fused.fused_model_loss` returning a
``(N,)`` per-node loss vector; ``supports_batched_loss`` is the
capability probe strategies use before opting in.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from ..autodiff import Tensor, fastpath, ops
from .losses import cross_entropy
from .modules import EmbeddingClassifier, LogisticRegression, MLP, Model
from .parameters import Params

__all__ = [
    "stack_params",
    "unstack_params",
    "batched_one_hot",
    "batched_model_loss",
    "supports_batched_loss",
]

LossFn = Callable[[Tensor, np.ndarray], Tensor]


def stack_params(params_list: Sequence[Params]) -> Params:
    """Stack per-node parameter trees into one ``(N, ...)`` tree.

    Key order is sorted for determinism; every tree must share the same
    names and per-name shapes.
    """
    if not params_list:
        raise ValueError("stack_params needs at least one parameter tree")
    names = sorted(params_list[0])
    for tree in params_list[1:]:
        if sorted(tree) != names:
            raise ValueError(
                f"parameter trees disagree on names: {sorted(tree)} vs {names}"
            )
    return {
        name: Tensor(np.stack([tree[name].data for tree in params_list]))
        for name in names
    }


def unstack_params(stacked: Params, num_nodes: int) -> List[Params]:
    """Split a stacked tree back into ``num_nodes`` independent trees.

    Slices are copied so each node owns a contiguous buffer with no view
    aliasing into the stacked array.
    """
    return [
        {name: Tensor(t.data[i].copy()) for name, t in stacked.items()}
        for i in range(num_nodes)
    ]


def batched_one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode ``(nodes, batch)`` integer labels to ``(N, B, C)``."""
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise ValueError(f"expected (nodes, batch) labels, got {labels.shape}")
    if labels.dtype.kind not in "iu":
        raise TypeError("labels must be integers")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for one-hot encoding")
    n, b = labels.shape
    out = np.zeros((n, b, num_classes), dtype=np.float64)
    out[np.arange(n)[:, None], np.arange(b)[None, :], labels] = 1.0
    return out


def _batch_norm_nodes(
    h: Tensor, gamma: Tensor, beta: Tensor, epsilon: float = 1e-5
) -> Tensor:
    """Node-axis twin of ``modules._batch_norm``: stats over the batch axis."""
    n, _, f = h.shape
    g3 = ops.reshape(gamma, (n, 1, f))
    b3 = ops.reshape(beta, (n, 1, f))
    mu = ops.mean(h, axis=1, keepdims=True)
    centered = h - mu
    var = ops.mean(centered * centered, axis=1, keepdims=True)
    inv_std = ops.power(var + ops.as_tensor(epsilon), -0.5)
    return centered * inv_std * g3 + b3


def _mlp_logits_nodes(mlp: MLP, stacked: Params, h: Tensor) -> Tensor:
    """Batched MLP forward: ``(N, B, in)`` features to ``(N, B, C)`` logits."""
    act = MLP._ACTIVATIONS[mlp.activation]
    n = h.shape[0]
    num_layers = len(mlp.hidden_dims) + 1
    for layer in range(num_layers):
        w = stacked[f"W{layer}"]
        b = stacked[f"b{layer}"]
        h = ops.matmul(h, w) + ops.reshape(b, (n, 1, w.shape[2]))
        if layer < len(mlp.hidden_dims):
            if mlp.batch_norm:
                h = _batch_norm_nodes(
                    h, stacked[f"gamma{layer}"], stacked[f"beta{layer}"]
                )
            h = act(h)
    return h


def _embed_nodes(model: EmbeddingClassifier, ids: np.ndarray) -> Tensor:
    """Frozen-table lookup for ``(N, B, seq)`` ids -> ``(N, B, seq*emb)``."""
    ids = np.asarray(ids)
    if ids.ndim != 3 or ids.shape[2] != model.seq_len:
        raise ValueError(
            f"expected ids of shape (nodes, batch, {model.seq_len}), "
            f"got {ids.shape}"
        )
    if ids.dtype.kind not in "iu":
        raise TypeError("token ids must be integers")
    embedded = ops.getitem(model.embedding, ids)  # (N, B, seq, emb)
    n, b = ids.shape[0], ids.shape[1]
    return ops.reshape(embedded, (n, b, model.seq_len * model.embed_dim))


def supports_batched_loss(model: Model, loss_fn: LossFn) -> bool:
    """Whether :func:`batched_model_loss` can evaluate this model/loss."""
    if loss_fn is not cross_entropy:
        return False
    return isinstance(model, (LogisticRegression, MLP, EmbeddingClassifier))


def batched_model_loss(
    model: Model, stacked: Params, x: np.ndarray, y: np.ndarray
) -> Tensor:
    """Per-node cross-entropy losses for stacked params/data, as one tape.

    ``x`` is ``(nodes, batch, ...)`` features (or integer token ids for
    :class:`EmbeddingClassifier`), ``y`` is ``(nodes, batch)`` integer
    labels; returns a ``(nodes,)`` loss vector.  Sum it to backprop all
    nodes at once — independence makes the stacked gradient block
    diagonal, so slice ``i`` is node ``i``'s gradient.
    """
    y = np.asarray(y)
    targets = Tensor(batched_one_hot(y, model.output_dim))
    if isinstance(model, LogisticRegression):
        xt = x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float64))
        fastpath.note_fused_dispatch()
        return ops.linear_softmax_xent(
            xt, stacked["W"], stacked["b"], targets
        )
    if isinstance(model, EmbeddingClassifier):
        h = _embed_nodes(model, x)
        logits = _mlp_logits_nodes(model.head, stacked, h)
    elif isinstance(model, MLP):
        xt = x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float64))
        logits = _mlp_logits_nodes(model, stacked, xt)
    else:
        raise TypeError(
            f"batched_model_loss does not support {type(model).__name__}; "
            "gate call sites on supports_batched_loss()"
        )
    fastpath.note_fused_dispatch()
    return ops.softmax_xent(logits, targets)
