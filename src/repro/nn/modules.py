"""Functional neural-network modules.

A :class:`Model` is a stateless description of an architecture with two
methods:

* ``init(rng) -> Params`` — create a fresh parameter tree;
* ``apply(params, x) -> Tensor`` — run the forward pass *at the given
  parameters*.

Keeping parameters external is essential for meta-learning: the MAML inner
step evaluates the same model at ``phi = theta - alpha * grad`` while the
graph stays connected to ``theta``.

Models
------
``LogisticRegression``
    Multinomial logistic regression (the paper's MNIST model and the
    Synthetic-data model ``y = argmax softmax(Wx + b)``).
``MLP``
    Fully connected network with ReLU/tanh nonlinearities and optional batch
    normalization (the paper's Sent140 head: 3 hidden layers with BN + ReLU).
``EmbeddingClassifier``
    Frozen embedding lookup (the GloVe substitute) feeding an MLP head; input
    is an integer array of token ids shaped ``(batch, seq_len)``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..autodiff import Tensor, ops
from . import init as initializers
from .parameters import Params

__all__ = ["Model", "LogisticRegression", "MLP", "EmbeddingClassifier"]

InputArray = Union[np.ndarray, Tensor]


def _as_input_tensor(x: InputArray) -> Tensor:
    if isinstance(x, Tensor):
        return x
    return Tensor(np.asarray(x, dtype=np.float64))


class Model:
    """Base class for functional models."""

    #: number of output classes / units
    output_dim: int

    def init(self, rng: np.random.Generator) -> Params:
        raise NotImplementedError

    def apply(self, params: Params, x: InputArray) -> Tensor:
        raise NotImplementedError

    def predict(self, params: Params, x: InputArray) -> np.ndarray:
        """Hard class predictions (argmax over logits)."""
        logits = self.apply(params, x)
        return np.argmax(logits.data, axis=-1)


class LogisticRegression(Model):
    """Multinomial logistic regression: ``logits = x @ W + b``."""

    def __init__(self, input_dim: int, num_classes: int) -> None:
        if input_dim <= 0 or num_classes <= 1:
            raise ValueError("input_dim must be >= 1 and num_classes >= 2")
        self.input_dim = input_dim
        self.num_classes = num_classes
        self.output_dim = num_classes

    def init(self, rng: np.random.Generator) -> Params:
        return {
            "W": initializers.glorot_uniform(rng, self.input_dim, self.num_classes),
            "b": initializers.zeros((self.num_classes,)),
        }

    def apply(self, params: Params, x: InputArray) -> Tensor:
        x = _as_input_tensor(x)
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(
                f"expected input of shape (batch, {self.input_dim}), got {x.shape}"
            )
        return x @ params["W"] + params["b"]


def _batch_norm(
    h: Tensor, gamma: Tensor, beta: Tensor, epsilon: float = 1e-5
) -> Tensor:
    """Batch normalization using batch statistics.

    Batch statistics are used at both train and evaluation time (transductive
    BN), the standard practice in few-shot meta-learning where adaptation and
    evaluation batches are tiny.
    """
    mu = ops.mean(h, axis=0, keepdims=True)
    centered = h - mu
    var = ops.mean(centered * centered, axis=0, keepdims=True)
    inv_std = ops.power(var + ops.as_tensor(epsilon), -0.5)
    return centered * inv_std * gamma + beta


class MLP(Model):
    """Fully connected network with configurable hidden layers.

    Parameters
    ----------
    input_dim, hidden_dims, num_classes:
        Architecture sizes, e.g. ``MLP(60, (32,), 10)``.
    activation:
        ``"relu"`` or ``"tanh"``.
    batch_norm:
        Insert batch normalization before each hidden activation (the paper's
        Sent140 architecture uses BN + ReLU per hidden layer).
    """

    _ACTIVATIONS = {"relu": ops.relu, "tanh": ops.tanh}

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int],
        num_classes: int,
        activation: str = "relu",
        batch_norm: bool = False,
    ) -> None:
        if activation not in self._ACTIVATIONS:
            raise ValueError(f"unknown activation '{activation}'")
        self.input_dim = input_dim
        self.hidden_dims = tuple(int(h) for h in hidden_dims)
        self.num_classes = num_classes
        self.output_dim = num_classes
        self.activation = activation
        self.batch_norm = batch_norm

    def init(self, rng: np.random.Generator) -> Params:
        params: Params = {}
        sizes = (self.input_dim, *self.hidden_dims, self.num_classes)
        for layer, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            params[f"W{layer}"] = initializers.glorot_uniform(rng, fan_in, fan_out)
            params[f"b{layer}"] = initializers.zeros((fan_out,))
            is_hidden = layer < len(self.hidden_dims)
            if self.batch_norm and is_hidden:
                params[f"gamma{layer}"] = Tensor(np.ones(fan_out))
                params[f"beta{layer}"] = initializers.zeros((fan_out,))
        return params

    def apply(self, params: Params, x: InputArray) -> Tensor:
        h = _as_input_tensor(x)
        if h.ndim != 2 or h.shape[1] != self.input_dim:
            raise ValueError(
                f"expected input of shape (batch, {self.input_dim}), got {h.shape}"
            )
        act = self._ACTIVATIONS[self.activation]
        num_layers = len(self.hidden_dims) + 1
        for layer in range(num_layers):
            h = h @ params[f"W{layer}"] + params[f"b{layer}"]
            if layer < len(self.hidden_dims):
                if self.batch_norm:
                    h = _batch_norm(h, params[f"gamma{layer}"], params[f"beta{layer}"])
                h = act(h)
        return h


class EmbeddingClassifier(Model):
    """Frozen embedding lookup followed by an MLP head.

    This is the reproduction's Sent140 model: the paper embeds each of 25
    characters into a pretrained 300-D GloVe space (frozen) and feeds the
    result through dense layers with BN + ReLU.  Without network access we
    freeze a *random* embedding table instead — the semantics (fixed,
    non-trainable lookup) are identical.

    Inputs are integer id arrays of shape ``(batch, seq_len)``.
    """

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int,
        seq_len: int,
        hidden_dims: Sequence[int],
        num_classes: int,
        batch_norm: bool = True,
        embedding: Optional[np.ndarray] = None,
        embedding_seed: int = 0,
    ) -> None:
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.seq_len = seq_len
        self.num_classes = num_classes
        self.output_dim = num_classes
        if embedding is None:
            emb_rng = np.random.default_rng(embedding_seed)
            embedding = emb_rng.normal(0.0, 1.0, size=(vocab_size, embed_dim))
            embedding /= np.sqrt(embed_dim)
        if embedding.shape != (vocab_size, embed_dim):
            raise ValueError(
                f"embedding must have shape {(vocab_size, embed_dim)}, "
                f"got {embedding.shape}"
            )
        #: frozen table; not part of the trainable parameter tree
        self.embedding = Tensor(np.asarray(embedding, dtype=np.float64))
        self.head = MLP(
            input_dim=seq_len * embed_dim,
            hidden_dims=hidden_dims,
            num_classes=num_classes,
            activation="relu",
            batch_norm=batch_norm,
        )

    def init(self, rng: np.random.Generator) -> Params:
        return self.head.init(rng)

    def embed(self, token_ids: np.ndarray) -> Tensor:
        """Look up and flatten token embeddings to ``(batch, seq_len*embed_dim)``."""
        ids = np.asarray(token_ids)
        if ids.ndim != 2 or ids.shape[1] != self.seq_len:
            raise ValueError(
                f"expected ids of shape (batch, {self.seq_len}), got {ids.shape}"
            )
        if ids.dtype.kind not in "iu":
            raise TypeError("token ids must be integers")
        embedded = ops.getitem(self.embedding, ids)  # (batch, seq, embed)
        return embedded.reshape((ids.shape[0], self.seq_len * self.embed_dim))

    def apply(self, params: Params, x: InputArray) -> Tensor:
        if isinstance(x, Tensor):
            # Already-embedded (continuous) features, e.g. adversarial inputs.
            return self.head.apply(params, x)
        x = np.asarray(x)
        if x.dtype.kind in "iu":
            return self.head.apply(params, self.embed(x))
        return self.head.apply(params, x)
