"""Functional neural-network library on top of :mod:`repro.autodiff`."""

from . import init, parameters
from .fused import fused_model_loss
from .losses import accuracy, cross_entropy, mse, one_hot
from .modules import MLP, EmbeddingClassifier, LogisticRegression, Model
from .optim import SGD, Adam, Optimizer
from .schedules import ConstantSchedule, CosineSchedule, StepDecaySchedule
from .parameters import (
    Params,
    add_scaled,
    clone,
    detach,
    from_vector,
    l2_distance,
    l2_norm,
    num_bytes,
    num_parameters,
    require_grad,
    to_vector,
    tree_binary_map,
    tree_map,
    weighted_average,
    zeros_like_params,
)

__all__ = [
    "init",
    "parameters",
    "accuracy",
    "cross_entropy",
    "fused_model_loss",
    "mse",
    "one_hot",
    "Model",
    "LogisticRegression",
    "MLP",
    "EmbeddingClassifier",
    "Optimizer",
    "SGD",
    "Adam",
    "ConstantSchedule",
    "CosineSchedule",
    "StepDecaySchedule",
    "Params",
    "add_scaled",
    "clone",
    "detach",
    "from_vector",
    "l2_distance",
    "l2_norm",
    "num_bytes",
    "num_parameters",
    "require_grad",
    "to_vector",
    "tree_binary_map",
    "tree_map",
    "weighted_average",
    "zeros_like_params",
]
