"""Loss functions and evaluation metrics.

The paper uses the cross-entropy loss for all experiments (eq. 1 defines the
empirical loss as the sample mean of a per-example loss).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..autodiff import Tensor, ops

__all__ = ["cross_entropy", "mse", "accuracy", "one_hot"]


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Dense one-hot encoding of integer labels."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.size, num_classes))
    encoded[np.arange(labels.size), labels] = 1.0
    return encoded


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``softmax(logits)`` and integer ``labels``."""
    if logits.ndim != 2:
        raise ValueError(f"logits must be (batch, classes), got {logits.shape}")
    num_classes = logits.shape[1]
    targets = Tensor(one_hot(labels, num_classes))
    log_probs = ops.log_softmax(logits, axis=1)
    return ops.neg(ops.mean(ops.sum_(log_probs * targets, axis=1)))


def mse(predictions: Tensor, targets: Union[np.ndarray, Tensor]) -> Tensor:
    """Mean squared error."""
    targets = ops.as_tensor(targets)
    diff = predictions - targets
    return ops.mean(diff * diff)


def accuracy(logits_or_preds: Union[Tensor, np.ndarray], labels: np.ndarray) -> float:
    """Fraction of correct argmax predictions."""
    values = (
        logits_or_preds.data
        if isinstance(logits_or_preds, Tensor)
        else np.asarray(logits_or_preds)
    )
    if values.ndim == 2:
        predictions = np.argmax(values, axis=1)
    else:
        predictions = values
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"predictions shape {predictions.shape} does not match labels "
            f"shape {labels.shape}"
        )
    return float(np.mean(predictions == labels))
