"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so experiments
are reproducible end to end (see :mod:`repro.utils.rng`).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor

__all__ = ["glorot_uniform", "normal", "zeros"]


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> Tensor:
    """Glorot/Xavier uniform initialization for a ``(fan_in, fan_out)`` matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-limit, limit, size=(fan_in, fan_out)))


def normal(rng: np.random.Generator, shape: tuple, stddev: float = 0.01) -> Tensor:
    return Tensor(rng.normal(0.0, stddev, size=shape))


def zeros(shape: tuple) -> Tensor:
    return Tensor(np.zeros(shape))
