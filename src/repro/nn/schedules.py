"""Learning-rate schedules.

The paper uses constant rates; schedules are provided for the extension
experiments (annealed meta-rates stabilize late training when nodes are
dissimilar).  A schedule is a callable ``step -> learning_rate`` that can be
polled each iteration and assigned to an optimizer's ``learning_rate``.
"""

from __future__ import annotations

import math

__all__ = ["ConstantSchedule", "StepDecaySchedule", "CosineSchedule"]


class ConstantSchedule:
    """Always returns the base rate."""

    def __init__(self, base: float) -> None:
        if base <= 0:
            raise ValueError("base learning rate must be positive")
        self.base = base

    def __call__(self, step: int) -> float:
        return self.base


class StepDecaySchedule:
    """Multiply the rate by ``factor`` every ``every`` steps."""

    def __init__(self, base: float, factor: float, every: int) -> None:
        if base <= 0:
            raise ValueError("base learning rate must be positive")
        if not 0.0 < factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        if every < 1:
            raise ValueError("every must be >= 1")
        self.base = base
        self.factor = factor
        self.every = every

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ValueError("step must be non-negative")
        return self.base * self.factor ** (step // self.every)


class CosineSchedule:
    """Cosine annealing from ``base`` to ``floor`` over ``horizon`` steps."""

    def __init__(self, base: float, horizon: int, floor: float = 0.0) -> None:
        if base <= 0:
            raise ValueError("base learning rate must be positive")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if not 0.0 <= floor < base:
            raise ValueError("floor must be in [0, base)")
        self.base = base
        self.horizon = horizon
        self.floor = floor

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ValueError("step must be non-negative")
        progress = min(1.0, step / self.horizon)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.floor + (self.base - self.floor) * cosine
