"""Fused model+loss dispatch for the cross-entropy hot path.

Every FedML local step evaluates ``cross_entropy(model.apply(params, x), y)``
— a ~15-node autodiff subgraph (linear, log-softmax, nll) rebuilt thousands
of times per run.  :func:`fused_model_loss` routes that exact composition to
the fused ops of :mod:`repro.autodiff.ops` (``linear_softmax_xent`` for
logistic regression, ``softmax_xent`` for any 2-D-logits model), which
record a single tape node carrying raw-ndarray VJPs for the first-order
fast path.

The fusion is **semantics-preserving by construction**: forward values and
gradients are bit-identical to the unfused composite (same float operation
sequence; see docs/AUTODIFF.md), and the dispatch falls back to the plain
``loss_fn(model.apply(...))`` path whenever the shapes, the loss function,
or the fast-path switch say it does not apply — so custom losses, odd
models, and ``fastpath.disabled()`` A/B runs behave exactly as before.

Call sites that need ``create_graph=True`` *through this loss* (the exact
MAML inner step) must keep using the unfused path; see
``repro.core.maml.inner_adapt``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..autodiff import Tensor, fastpath, ops
from .losses import cross_entropy, one_hot
from .modules import InputArray, LogisticRegression, Model, _as_input_tensor
from .parameters import Params

__all__ = ["fused_model_loss"]

LossFn = Callable[[Tensor, np.ndarray], Tensor]


def fused_model_loss(
    model: Model,
    params: Params,
    x: InputArray,
    y: np.ndarray,
    loss_fn: LossFn = cross_entropy,
) -> Tensor:
    """``loss_fn(model.apply(params, x), y)``, fused when profitable.

    Bit-identical to the unfused expression in values and gradients.  Only
    ``cross_entropy`` is fusable; any other ``loss_fn`` (or a disabled fast
    path) takes the reference route unchanged.
    """
    if loss_fn is not cross_entropy or not fastpath.enabled():
        return loss_fn(model.apply(params, x), y)
    if isinstance(model, LogisticRegression):
        xt = _as_input_tensor(x)
        if xt.ndim != 2 or xt.shape[1] != model.input_dim:
            # Let model.apply raise its own (identical) shape error.
            return loss_fn(model.apply(params, x), y)
        targets = Tensor(one_hot(np.asarray(y), model.num_classes))
        fastpath.note_fused_dispatch()
        return ops.linear_softmax_xent(xt, params["W"], params["b"], targets)
    logits = model.apply(params, x)
    if logits.ndim != 2:
        return loss_fn(logits, y)
    targets = Tensor(one_hot(np.asarray(y), logits.shape[1]))
    fastpath.note_fused_dispatch()
    return ops.softmax_xent(logits, targets)
