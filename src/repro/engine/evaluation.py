"""Shared evaluation and gradient helpers used by every local strategy.

Before the engine existed, each algorithm in :mod:`repro.core` carried its
own copy of the ω-weighted global objective (eq. 2 / Section IV of the
paper) and its own "forward, backward, fill missing grads with zeros" local
gradient assembly.  They live here once, so a new strategy gets both for
free and a fix lands everywhere at once.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..autodiff import Tensor, grad
from ..data.dataset import Dataset
from ..federated.node import EdgeNode
from ..nn.fused import fused_model_loss
from ..nn.modules import Model
from ..nn.parameters import Params, require_grad

__all__ = ["weighted_node_average", "loss_gradient", "node_training_data"]


def weighted_node_average(
    nodes: Sequence[EdgeNode], value_fn: Callable[[EdgeNode], float]
) -> float:
    """``Σ_i (ω_i / Σω) · value_fn(node_i)`` — the paper's weighted reduce.

    Weights are renormalized over the given nodes so the reduction stays a
    convex combination even when evaluating a subset of the federation.
    """
    total = 0.0
    weight_sum = sum(node.weight for node in nodes)
    for node in nodes:
        total += node.weight / weight_sum * value_fn(node)
    return total


def loss_gradient(
    model: Model,
    params: Params,
    data: Dataset,
    loss_fn: Callable[[Tensor, np.ndarray], Tensor],
) -> Params:
    """``∇_θ L(θ, data)`` with unused parameters mapped to zero gradients."""
    theta = require_grad(params)
    loss = fused_model_loss(model, theta, data.x, data.y, loss_fn)
    names = sorted(theta)
    grads = grad(loss, [theta[n] for n in names], allow_unused=True)
    out: Params = {}
    for name, g in zip(names, grads):
        out[name] = g if g is not None else Tensor(np.zeros_like(theta[name].data))
    return out


def node_training_data(node: EdgeNode) -> Dataset:
    """The node's full local dataset ``D_i = D_i^train ∪ D_i^test``.

    FedAvg-style consensus algorithms train on all local data (the paper:
    "the entire dataset is used for training in Fedavg") rather than the
    K-shot split meta-learners use.
    """
    return node.split.train.concat(node.split.test)
