"""The one federated round driver every algorithm runs on.

Algorithm 1 of the paper is a *communication pattern* — T0 local steps,
weighted aggregate (eq. 5), broadcast — and it is the same pattern for
FedAvg, FedProx, Reptile, Meta-SGD, ADML and Robust FedML.  The
:class:`RoundEngine` owns that pattern exactly once: node construction,
block scheduling through an :class:`~repro.engine.executors.Executor`,
``t % T0`` aggregation through the :class:`~repro.federated.platform.Platform`,
participation sampling with non-participant resynchronization, the
``eval_every`` cadence, history logging, and the telemetry spans/counters
from the observability layer.  Algorithms contribute only a
:class:`~repro.engine.strategies.LocalStrategy`.

The loop advances in *blocks* (the run of iterations between two
aggregations) rather than single iterations: each node's T0 consecutive
steps commute with other nodes' because nodes are independent between
aggregations, so block execution is bit-identical to the textbook
iteration-major loop — and it is the unit an executor can parallelize.

Faults and resilience
---------------------
With :class:`EngineOptions` the engine additionally survives injected and
real failures.  A seeded :class:`~repro.faults.plan.FaultPlan` decides —
as a pure function of ``(plan seed, block, node)`` — which nodes crash,
which updates are dropped/corrupted/delayed, and which executor workers
fail flakily; a :class:`~repro.faults.policy.ResiliencePolicy` decides how
the engine degrades (bounded retry with simulated backoff, round timeout
on the link clock, NaN quarantine, a minimum-participant floor).  Because
no decision reads wall-clock time or execution order, a faulty run is as
bit-reproducible as a clean one, serial or parallel.

Checkpoints are written at aggregation boundaries — the only points where
every node holds the broadcast global model, so one parameter tree plus a
JSON header (round counters, engine RNG state, comm totals, history)
captures the whole run.  ``fit(..., resume=True)`` restarts from the last
saved boundary and finishes bit-identically to an uninterrupted run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..data.dataset import FederatedDataset
from ..faults.injector import FaultInjector, RunInterrupted
from ..faults.plan import FaultPlan
from ..faults.policy import ResiliencePolicy
from ..federated.node import EdgeNode
from ..federated.platform import Platform
from ..federated.sampling import FullParticipation
from ..nn.parameters import Params, detach
from ..obs.telemetry import Telemetry, resolve
from ..utils.checkpoint import load_checkpoint, save_checkpoint
from ..utils.logging import RunLogger
from .executors import Executor, ExecutorError, SerialExecutor

__all__ = ["RoundEngine", "EngineResult", "EngineOptions"]

#: reserved key prefix separating strategy extras from θ in a checkpoint
_EXTRA_PREFIX = "::ckpt::"
_CKPT_VERSION = 1


@dataclass
class EngineResult:
    """Everything a run produces: final model, nodes, platform, history."""

    params: Params
    nodes: List[EdgeNode]
    platform: Platform
    history: RunLogger


@dataclass(frozen=True)
class EngineOptions:
    """Fault, resilience, and checkpoint configuration for one engine.

    All fields default to "off": a default-constructed options object is
    behaviourally identical to passing no options at all.
    """

    #: injected faults; ``None`` ≡ :meth:`FaultPlan.none` (no faults)
    faults: Optional[FaultPlan] = None
    #: how the engine degrades under faults; ``None`` = policy defaults
    resilience: Optional[ResiliencePolicy] = None
    #: where to write checkpoints (and read them back on resume)
    checkpoint_path: Optional[str] = None
    #: checkpoint every this many aggregations (1 = every boundary)
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


def _pack_checkpoint_tree(global_params: Params, extras: Params) -> Params:
    merged = dict(global_params)
    for name, tensor in extras.items():
        merged[_EXTRA_PREFIX + name] = tensor
    return merged


def _unpack_checkpoint_tree(tree: Params) -> Tuple[Params, Params]:
    params: Params = {}
    extras: Params = {}
    for name, tensor in tree.items():
        if name.startswith(_EXTRA_PREFIX):
            extras[name[len(_EXTRA_PREFIX):]] = tensor
        else:
            params[name] = tensor
    return params, extras


class RoundEngine:
    """Drives ``strategy`` through the canonical federated round loop."""

    def __init__(
        self,
        strategy: Any,
        platform: Optional[Platform] = None,
        participation: Any = None,
        telemetry: Optional[Telemetry] = None,
        executor: Optional[Executor] = None,
        options: Optional[EngineOptions] = None,
    ) -> None:
        self.strategy = strategy
        self.platform = platform if platform is not None else Platform()
        self.participation = (
            participation if participation is not None else FullParticipation()
        )
        self.telemetry = telemetry
        if telemetry is not None and self.platform.telemetry is None:
            self.platform.telemetry = telemetry
        self.executor = executor if executor is not None else SerialExecutor()
        self.options = options

    # ------------------------------------------------------------------
    def fit(
        self,
        federated: FederatedDataset,
        source_ids: Sequence[int],
        init_params: Optional[Params] = None,
        verbose: bool = False,
        resume: bool = False,
    ) -> EngineResult:
        """Run the strategy's algorithm and return the learned model.

        With ``resume=True`` (requires ``options.checkpoint_path``), the
        run restarts from the last saved aggregation boundary instead of
        θ⁰ and produces a result bit-identical to an uninterrupted run.
        """
        strategy = self.strategy
        cfg = strategy.config
        name = strategy.name
        opts = self.options
        tel = resolve(self.telemetry)

        injector: Optional[FaultInjector] = None
        resilient = opts is not None and (
            opts.faults is not None or opts.resilience is not None
        )
        if resilient:
            assert opts is not None
            injector = FaultInjector(
                opts.faults, opts.resilience, self.telemetry
            )
        checkpoint_path = opts.checkpoint_path if opts is not None else None
        if resume and checkpoint_path is None:
            raise ValueError(
                "resume=True requires EngineOptions.checkpoint_path"
            )

        rng = np.random.default_rng(cfg.seed)
        nodes = strategy.build_nodes(federated, source_ids)
        for node in nodes:
            strategy.init_node_state(node)

        total = cfg.total_iterations
        num_blocks = (total + cfg.t0 - 1) // cfg.t0
        if injector is not None:
            injector.begin([n.node_id for n in nodes], num_blocks)

        history = RunLogger(
            name=name,
            verbose=verbose,
            registry=self.telemetry.registry if self.telemetry else None,
        )

        events = tel.events
        events.emit(
            "run_start",
            algorithm=name,
            seed=int(cfg.seed),
            nodes=len(nodes),
            t0=int(cfg.t0),
            total_iterations=int(total),
            blocks=int(num_blocks),
            executor=type(self.executor).__name__,
            resumed=bool(resume),
            policy=(
                injector.policy.describe() if injector is not None else None
            ),
        )

        if resume:
            assert checkpoint_path is not None
            t, aggregations = self._restore(
                checkpoint_path, strategy, nodes, rng, history, injector
            )
        else:
            params = strategy.initial_params(rng, init_params)
            self.platform.initialize(params, nodes)
            strategy.begin_fit(self.platform.global_params, nodes)
            t, aggregations = 0, 0
            if strategy.log_initial:
                initial = strategy.evaluate(self.platform.global_params, nodes)
                if strategy.log_uplink:
                    initial["uplink_bytes"] = 0
                history.log(0, **initial)

        rounds_total = tel.counter("fl_rounds_total", algorithm=name)
        steps_total = tel.counter("fl_local_steps_total", algorithm=name)
        fit_span = tel.span("fit", algorithm=name)
        round_span = tel.span("round")
        while t < total:
            block = t // cfg.t0
            # One block: every node runs up to the next aggregation point
            # (or to T, when T is not a multiple of T0).
            boundary = min(total, (block + 1) * cfg.t0)
            steps = boundary - t
            events.emit("round_start", block=block, t=t, steps=steps)

            stale_ids: Set[int] = set()
            backoff: Dict[int, float] = {}
            runnable: List[EdgeNode] = list(nodes)
            if injector is not None:
                crashed = injector.crashed(block)
                runnable = [n for n in nodes if n.node_id not in crashed]
                flaky_failed, backoff = injector.simulate_flaky(
                    block, [n.node_id for n in runnable]
                )
                runnable = [
                    n for n in runnable if n.node_id not in flaky_failed
                ]
                stale_ids = crashed | flaky_failed

            with tel.span("local_steps"):
                if runnable:
                    failed_ids = self._run_local_block(
                        strategy, runnable, steps, block, cfg.seed,
                        injector, backoff,
                    )
                    stale_ids |= failed_ids
                steps_total.inc(
                    sum(1 for n in runnable if n.node_id not in stale_ids)
                    * steps
                )
            t = boundary
            if t % cfg.t0 == 0:
                with tel.span("aggregate"):
                    participating = self.participation.select(
                        nodes, t // cfg.t0
                    )
                    if injector is not None:
                        participating = injector.filter_updates(
                            block,
                            participating,
                            stale_ids,
                            steps,
                            extra_delay_s=backoff,
                        )
                    # Keyed by node_id (stable across processes), never id().
                    participating_ids = {
                        node.node_id for node in participating
                    }
                    aggregated = self.platform.aggregate(participating)  # reprolint: disable=ENG001
                    # Nodes outside the participating set resynchronize too —
                    # the paper broadcasts theta^{t+1} to all of S.
                    for node in nodes:
                        if node.node_id not in participating_ids:
                            node.params = detach(aggregated)
                strategy.on_aggregate(aggregated, nodes)
                aggregations += 1
                rounds_total.inc()
                if aggregations % cfg.eval_every == 0:
                    with tel.span("evaluate"):
                        metrics: Dict[str, float] = strategy.evaluate(
                            aggregated, nodes
                        )
                        if strategy.log_uplink:
                            metrics["uplink_bytes"] = (
                                self.platform.comm_log.uplink_bytes
                            )
                        history.log(t, **metrics)
                events.emit(
                    "round_end", block=block, t=t,
                    participants=len(participating),
                )
                round_span.end()
                if t < total:
                    round_span = tel.span("round")
            strategy.on_block_end(t, nodes, rng, tel)
            # Checkpoint after on_block_end: the saved RNG state must
            # include the draws made at this boundary (e.g. adversarial
            # generation) or the resumed run would replay them.
            if (
                checkpoint_path is not None
                and opts is not None
                and t % cfg.t0 == 0
                and aggregations % opts.checkpoint_every == 0
            ):
                self._save(
                    checkpoint_path, strategy, nodes, rng, history,
                    injector, t, aggregations,
                )
            if injector is not None and injector.kill_scheduled(block):
                raise RunInterrupted(t, block, checkpoint_path)
        # The loop only evaluates on the eval_every cadence, so when the run
        # ends between evaluation points (rounds % eval_every != 0) the last
        # aggregation's metrics would never reach the history.  Always log
        # the final state — unless it is already logged (divisible cadence,
        # or a completed run re-entered through resume).
        if aggregations and aggregations % cfg.eval_every != 0:
            final_step = aggregations * cfg.t0
            logged = history.steps()
            if not logged or logged[-1] != final_step:
                with tel.span("evaluate"):
                    final_params = self.platform.global_params
                    assert final_params is not None
                    final_metrics: Dict[str, float] = strategy.evaluate(
                        final_params, nodes
                    )
                    if strategy.log_uplink:
                        final_metrics["uplink_bytes"] = (
                            self.platform.comm_log.uplink_bytes
                        )
                    history.log(final_step, **final_metrics)
        round_span.end()
        fit_span.end()
        events.emit(
            "run_end",
            t=int(t),
            aggregations=int(aggregations),
            uplink_bytes=int(self.platform.comm_log.uplink_bytes),
            downlink_bytes=int(self.platform.comm_log.downlink_bytes),
        )

        final = self.platform.global_params
        if final is None:  # T < T0: no aggregation happened; average manually
            final = self.platform.aggregate(nodes)  # reprolint: disable=ENG001
        return EngineResult(
            params=detach(final),
            nodes=nodes,
            platform=self.platform,
            history=history,
        )

    # ------------------------------------------------------------------
    def _run_local_block(
        self,
        strategy: Any,
        runnable: List[EdgeNode],
        steps: int,
        block: int,
        base_seed: int,
        injector: Optional[FaultInjector],
        backoff: Dict[int, float],
    ) -> Set[int]:
        """Run one block, retrying real executor failures when resilient.

        Returns node ids whose block was permanently lost (retries
        exhausted under ``drop_on_failure``); they are treated as stale.
        A failed attempt restores *every* pending node from its pre-block
        snapshot and re-runs the whole set — re-execution is bit-identical
        because the executors re-bind the same per-node RNG streams.
        """
        if injector is None:
            self.executor.run_block(
                strategy, runnable, steps,
                block_index=block, base_seed=base_seed,
                telemetry=self.telemetry,
            )
            return set()

        policy = injector.policy
        snapshot = {
            n.node_id: (
                detach(n.params) if n.params is not None else None,
                n.local_steps,
                n.gradient_evaluations,
            )
            for n in runnable
        }
        pending = list(runnable)
        failed_ids: Set[int] = set()
        attempt = 0
        while pending:
            try:
                self.executor.run_block(
                    strategy, pending, steps,
                    block_index=block, base_seed=base_seed,
                    telemetry=self.telemetry,
                )
                return failed_ids
            except ExecutorError as exc:
                for node in pending:
                    saved_params, local_steps, gradient_evals = snapshot[
                        node.node_id
                    ]
                    node.params = (
                        detach(saved_params)
                        if saved_params is not None
                        else None
                    )
                    node.local_steps = local_steps
                    node.gradient_evaluations = gradient_evals
                if attempt < policy.max_retries:
                    injector.record_retry(block=block, node=exc.node_id)
                    # Backoff is simulated on the link clock, charged to
                    # the failing node's delivery time — never a sleep.
                    backoff[exc.node_id] = (
                        backoff.get(exc.node_id, 0.0)
                        + policy.backoff_s(attempt)
                    )
                    attempt += 1
                    continue
                if not policy.drop_on_failure:
                    raise
                failed_ids.add(exc.node_id)
                pending = [
                    n for n in pending if n.node_id != exc.node_id
                ]
                attempt = 0
        return failed_ids

    # ------------------------------------------------------------------
    def _save(
        self,
        path: str,
        strategy: Any,
        nodes: Sequence[EdgeNode],
        rng: np.random.Generator,
        history: RunLogger,
        injector: Optional[FaultInjector],
        t: int,
        aggregations: int,
    ) -> None:
        global_params = self.platform.global_params
        assert global_params is not None  # only called after an aggregation
        tree = _pack_checkpoint_tree(
            detach(global_params), strategy.checkpoint_extras(nodes)
        )
        state = {
            "version": _CKPT_VERSION,
            "algorithm": strategy.name,
            "seed": int(strategy.config.seed),
            "t": int(t),
            "iteration": int(t),
            "aggregations": int(aggregations),
            "rounds_completed": int(self.platform.rounds_completed),
            "uplink_bytes": int(self.platform.comm_log.uplink_bytes),
            "downlink_bytes": int(self.platform.comm_log.downlink_bytes),
            "sim_clock_s": injector.sim_clock_s if injector else 0.0,
            "rng_state": rng.bit_generator.state,
            "node_counters": {
                str(n.node_id): [n.local_steps, n.gradient_evaluations]
                for n in nodes
            },
            "history": history.records,
            "strategy": strategy.checkpoint_state(nodes),
        }
        save_checkpoint(path, tree, state)
        saver = resolve(self.telemetry)
        saver.counter("fl_checkpoints_total").inc()
        saver.events.emit(
            "checkpoint", t=int(t), aggregations=int(aggregations), path=path
        )

    def _restore(
        self,
        path: str,
        strategy: Any,
        nodes: Sequence[EdgeNode],
        rng: np.random.Generator,
        history: RunLogger,
        injector: Optional[FaultInjector],
    ) -> Tuple[int, int]:
        checkpoint = load_checkpoint(path)
        state = checkpoint.state
        if state.get("algorithm") != strategy.name:
            raise ValueError(
                f"checkpoint is for algorithm '{state.get('algorithm')}', "
                f"not '{strategy.name}'"
            )
        if int(state.get("seed", -1)) != int(strategy.config.seed):
            raise ValueError(
                f"checkpoint seed {state.get('seed')} does not match "
                f"config seed {strategy.config.seed}"
            )
        global_params, extras = _unpack_checkpoint_tree(checkpoint.params)
        rng.bit_generator.state = state["rng_state"]
        self.platform.restore(
            global_params,
            nodes,
            rounds_completed=int(state["rounds_completed"]),
            uplink_bytes=int(state["uplink_bytes"]),
            downlink_bytes=int(state["downlink_bytes"]),
        )
        # begin_fit rebuilds anchor-style state from the restored global
        # model (exactly what the uninterrupted run's last aggregation
        # left behind); restore_state/extras reinstate the rest.
        strategy.begin_fit(self.platform.global_params, nodes)
        strategy.restore_state(state.get("strategy", {}), nodes)
        strategy.restore_extras(extras, nodes)
        counters = state.get("node_counters", {})
        for node in nodes:
            local_steps, gradient_evals = counters.get(
                str(node.node_id), [0, 0]
            )
            node.local_steps = int(local_steps)
            node.gradient_evaluations = int(gradient_evals)
        history.load_records(state.get("history", []))
        if injector is not None:
            injector.sim_clock_s = float(state.get("sim_clock_s", 0.0))
        restorer = resolve(self.telemetry)
        restorer.counter("fl_resumes_total").inc()
        restorer.events.emit(
            "resume",
            t=int(state["t"]),
            aggregations=int(state["aggregations"]),
            path=path,
        )
        return int(state["t"]), int(state["aggregations"])
