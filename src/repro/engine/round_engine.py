"""The one federated round driver every algorithm runs on.

Algorithm 1 of the paper is a *communication pattern* — T0 local steps,
weighted aggregate (eq. 5), broadcast — and it is the same pattern for
FedAvg, FedProx, Reptile, Meta-SGD, ADML and Robust FedML.  The
:class:`RoundEngine` owns that pattern exactly once: node construction,
block scheduling through an :class:`~repro.engine.executors.Executor`,
``t % T0`` aggregation through the :class:`~repro.federated.platform.Platform`,
participation sampling with non-participant resynchronization, the
``eval_every`` cadence, history logging, and the telemetry spans/counters
from the observability layer.  Algorithms contribute only a
:class:`~repro.engine.strategies.LocalStrategy`.

The loop advances in *blocks* (the run of iterations between two
aggregations) rather than single iterations: each node's T0 consecutive
steps commute with other nodes' because nodes are independent between
aggregations, so block execution is bit-identical to the textbook
iteration-major loop — and it is the unit an executor can parallelize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..data.dataset import FederatedDataset
from ..federated.node import EdgeNode
from ..federated.platform import Platform
from ..federated.sampling import FullParticipation
from ..nn.parameters import Params, detach
from ..obs.telemetry import Telemetry, resolve
from ..utils.logging import RunLogger
from .executors import Executor, SerialExecutor

__all__ = ["RoundEngine", "EngineResult"]


@dataclass
class EngineResult:
    """Everything a run produces: final model, nodes, platform, history."""

    params: Params
    nodes: List[EdgeNode]
    platform: Platform
    history: RunLogger


class RoundEngine:
    """Drives ``strategy`` through the canonical federated round loop."""

    def __init__(
        self,
        strategy: Any,
        platform: Optional[Platform] = None,
        participation: Any = None,
        telemetry: Optional[Telemetry] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        self.strategy = strategy
        self.platform = platform if platform is not None else Platform()
        self.participation = (
            participation if participation is not None else FullParticipation()
        )
        self.telemetry = telemetry
        if telemetry is not None and self.platform.telemetry is None:
            self.platform.telemetry = telemetry
        self.executor = executor if executor is not None else SerialExecutor()

    # ------------------------------------------------------------------
    def fit(
        self,
        federated: FederatedDataset,
        source_ids: Sequence[int],
        init_params: Optional[Params] = None,
        verbose: bool = False,
    ) -> EngineResult:
        """Run the strategy's algorithm and return the learned model."""
        strategy = self.strategy
        cfg = strategy.config
        name = strategy.name
        rng = np.random.default_rng(cfg.seed)
        tel = resolve(self.telemetry)

        nodes = strategy.build_nodes(federated, source_ids)
        for node in nodes:
            strategy.init_node_state(node)

        params = strategy.initial_params(rng, init_params)
        self.platform.initialize(params, nodes)
        strategy.begin_fit(self.platform.global_params, nodes)

        history = RunLogger(
            name=name,
            verbose=verbose,
            registry=self.telemetry.registry if self.telemetry else None,
        )
        if strategy.log_initial:
            initial = strategy.evaluate(self.platform.global_params, nodes)
            if strategy.log_uplink:
                initial["uplink_bytes"] = 0
            history.log(0, **initial)

        rounds_total = tel.counter("fl_rounds_total", algorithm=name)
        steps_total = tel.counter("fl_local_steps_total", algorithm=name)
        fit_span = tel.span("fit", algorithm=name)
        round_span = tel.span("round")
        aggregations = 0
        total = cfg.total_iterations
        t = 0
        while t < total:
            # One block: every node runs up to the next aggregation point
            # (or to T, when T is not a multiple of T0).
            boundary = min(total, (t // cfg.t0 + 1) * cfg.t0)
            steps = boundary - t
            with tel.span("local_steps"):
                self.executor.run_block(
                    strategy,
                    nodes,
                    steps,
                    block_index=t // cfg.t0,
                    base_seed=cfg.seed,
                )
                steps_total.inc(len(nodes) * steps)
            t = boundary
            if t % cfg.t0 == 0:
                with tel.span("aggregate"):
                    participating = self.participation.select(nodes, t // cfg.t0)
                    participating_ids = {id(node) for node in participating}
                    aggregated = self.platform.aggregate(participating)  # reprolint: disable=ENG001
                    # Nodes outside the participating set resynchronize too —
                    # the paper broadcasts theta^{t+1} to all of S.
                    for node in nodes:
                        if id(node) not in participating_ids:
                            node.params = detach(aggregated)
                strategy.on_aggregate(aggregated, nodes)
                aggregations += 1
                rounds_total.inc()
                if aggregations % cfg.eval_every == 0:
                    with tel.span("evaluate"):
                        metrics: Dict[str, float] = strategy.evaluate(
                            aggregated, nodes
                        )
                        if strategy.log_uplink:
                            metrics["uplink_bytes"] = (
                                self.platform.comm_log.uplink_bytes
                            )
                        history.log(t, **metrics)
                round_span.end()
                if t < total:
                    round_span = tel.span("round")
            strategy.on_block_end(t, nodes, rng, tel)
        round_span.end()
        fit_span.end()

        final = self.platform.global_params
        if final is None:  # T < T0: no aggregation happened; average manually
            final = self.platform.aggregate(nodes)  # reprolint: disable=ENG001
        return EngineResult(
            params=detach(final),
            nodes=nodes,
            platform=self.platform,
            history=history,
        )
