"""Pluggable local strategies — the *algorithm* half of the round engine.

A :class:`LocalStrategy` answers three questions the driver
(:class:`~repro.engine.round_engine.RoundEngine`) does not want to know
about: how a node's state is prepared (``build_nodes`` /
``init_node_state``), what one local iteration does (``local_step``), and
how the global objective is measured (``evaluate``).  Everything else —
``t % T0`` aggregation, participation sampling, resynchronization,
telemetry, history — is the engine's job and identical for every algorithm.

Strategies are deliberately *plain data + functions*: they hold the model,
a frozen config, and the loss function, and they are picklable so the
:class:`~repro.engine.executors.ParallelExecutor` can ship them to worker
processes.  Mutable per-fit state (the FedProx anchor, Robust FedML's
generation counters) is rebuilt by ``begin_fit`` each run; transient caches
are dropped on pickling.

The concrete strategies map onto the paper and its baselines:

=====================  ==============================================
Strategy               Algorithm
=====================  ==============================================
``SgdStrategy``        FedAvg (McMahan et al., 2016)
``ProxStrategy``       FedProx (Sahu et al., 2018)
``MetaStrategy``       FedML / Algorithm 1 (exact or first-order MAML)
``MetaSgdStrategy``    Federated Meta-SGD (Li et al., 2017)
``ReptileStrategy``    Federated Reptile (Nichol et al., 2018)
``AdmlStrategy``       ADML-style adversarial meta-learning
``AdversarialStrategy``  Robust FedML / Algorithm 2 (Wasserstein DRO)
=====================  ==============================================
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..attacks.fgsm import fgsm
from ..autodiff import Tensor, grad, ops
from ..attacks.wasserstein import wasserstein_ascent
from ..data.dataset import Dataset, FederatedDataset, NodeSplit
from ..federated.node import EdgeNode, build_nodes
from ..nn.batched import (
    batched_model_loss,
    stack_params,
    supports_batched_loss,
    unstack_params,
)
from ..nn.fused import fused_model_loss
from ..nn.losses import cross_entropy
from ..nn.modules import Model
from ..nn.parameters import Params, add_scaled, detach, require_grad
from ..core.maml import LossFn, inner_adapt, meta_gradient, meta_loss
from .evaluation import loss_gradient, node_training_data, weighted_node_average

__all__ = [
    "LocalStrategy",
    "RunnerStepAdapter",
    "SgdStrategy",
    "ProxStrategy",
    "MetaStrategy",
    "MetaSgdStrategy",
    "ReptileStrategy",
    "AdmlStrategy",
    "AdversarialStrategy",
    "merge_meta_sgd_trees",
    "split_meta_sgd_trees",
]


class LocalStrategy:
    """Protocol + shared plumbing for one algorithm's local behaviour.

    Subclasses must implement :meth:`local_step` and :meth:`evaluate`; the
    remaining hooks have sensible defaults.  ``config`` must expose ``t0``,
    ``total_iterations``, ``eval_every`` and ``seed`` — the knobs the engine
    drives the round loop with.
    """

    #: algorithm label used for the run logger and telemetry dimensions
    name: str = "strategy"
    #: log an iteration-0 history record before training starts
    log_initial: bool = True
    #: include platform uplink bytes in the history records
    log_uplink: bool = False
    #: capability flag: this strategy implements
    #: :meth:`local_block_vectorized` and may be run by the
    #: ``VectorizedExecutor`` as one stacked tape per block.  Stacked fp
    #: math reorders accumulations, so only strategies that opt in here
    #: are ever vectorized; everything else falls back to serial per-node
    #: execution inside the same block.
    supports_vectorized: bool = False

    def __init__(
        self, model: Model, config: Any, loss_fn: LossFn = cross_entropy
    ) -> None:
        self.model = model
        self.config = config
        self.loss_fn = loss_fn
        #: deterministic per-node generator bound by the executor before
        #: each node's block of local steps (see ``Executor.run_block``)
        self._node_rng: Optional[np.random.Generator] = None

    # -- node construction ---------------------------------------------
    def build_nodes(
        self, federated: FederatedDataset, source_ids: Sequence[int]
    ) -> List[EdgeNode]:
        """K-shot node construction (the meta-learning default)."""
        datasets = [federated.nodes[i] for i in source_ids]
        return build_nodes(datasets, self.config.k, node_ids=list(source_ids))

    def init_node_state(self, node: EdgeNode) -> None:
        """Per-node setup before θ⁰ is broadcast (default: nothing)."""

    def initial_params(
        self, rng: np.random.Generator, init_params: Optional[Params]
    ) -> Params:
        """The tree installed as θ⁰ (drawing from ``rng`` when not given)."""
        if init_params is not None:
            return detach(init_params)
        return self.model.init(rng)

    def begin_fit(self, params: Params, nodes: Sequence[EdgeNode]) -> None:
        """Reset per-fit strategy state after the initial broadcast."""

    # -- the local update ----------------------------------------------
    def local_step(self, node: EdgeNode) -> float:
        """One local iteration on ``node``; returns the local loss value."""
        raise NotImplementedError

    # -- vectorized (stacked) execution ---------------------------------
    def vectorized_signature(self, node: EdgeNode) -> Optional[Tuple]:
        """Grouping key for stacked execution, or ``None`` to fall back.

        Nodes with equal signatures share one stacked tape; the key must
        capture everything that makes their buffers stackable (data
        shapes, dtypes).  The base implementation opts every node out.
        """
        return None

    def local_block_vectorized(
        self,
        nodes: Sequence[EdgeNode],
        steps: int,
        rngs: Sequence[np.random.Generator],
    ) -> None:
        """Run ``steps`` local iterations for all ``nodes`` as one tape.

        Only called by the ``VectorizedExecutor``, only when
        ``supports_vectorized`` is set, and only on groups with equal
        :meth:`vectorized_signature`.  ``rngs[i]`` is node ``i``'s
        deterministic ``[seed, block, node]`` generator — the same stream
        the serial executor would bind.
        """
        raise NotImplementedError

    def evaluate(
        self, params: Params, nodes: Sequence[EdgeNode]
    ) -> Dict[str, float]:
        """Global objective metrics logged on the evaluation cadence."""
        raise NotImplementedError

    # -- engine hooks ---------------------------------------------------
    def on_aggregate(
        self, aggregated: Params, nodes: Sequence[EdgeNode]
    ) -> None:
        """Called after every global aggregation (default: nothing)."""

    def on_block_end(
        self,
        t: int,
        nodes: Sequence[EdgeNode],
        rng: np.random.Generator,
        telemetry: Any,
    ) -> None:
        """Called at every block boundary ``t`` (multiples of T0 and T)."""

    # -- checkpoint hooks -----------------------------------------------
    # Checkpoints are written at aggregation boundaries, where every node
    # already holds the broadcast global model — so the engine persists the
    # global tree itself, and a strategy only contributes (a) extra tensors
    # that live outside that tree and (b) JSON-serializable per-fit state.
    def checkpoint_extras(self, nodes: Sequence[EdgeNode]) -> Params:
        """Extra named tensors to persist beside θ (default: none)."""
        return {}

    def restore_extras(
        self, extras: Params, nodes: Sequence[EdgeNode]
    ) -> None:
        """Reinstate tensors from :meth:`checkpoint_extras` (default: no-op)."""

    def checkpoint_state(self, nodes: Sequence[EdgeNode]) -> Dict[str, Any]:
        """JSON-serializable per-fit state to persist (default: none).

        Called after ``begin_fit`` state exists; anything ``begin_fit``
        rebuilds from the restored global model (e.g. the FedProx anchor)
        need not be saved here.
        """
        return {}

    def restore_state(
        self, state: Dict[str, Any], nodes: Sequence[EdgeNode]
    ) -> None:
        """Reinstate state from :meth:`checkpoint_state` (default: no-op)."""

    def bind_node_rng(self, rng: np.random.Generator) -> None:
        """Install the executor's deterministic per-node generator."""
        self._node_rng = rng

    def release_node(self, node: EdgeNode) -> None:
        """Drop any per-node caches when ``node`` is evicted.

        The fleet registry materializes nodes transiently and calls this on
        eviction; a strategy that memoizes per-``node_id`` state (see
        :class:`SgdStrategy`) must release it here or the cache grows with
        every node ever sampled — exactly the O(fleet) residency the lazy
        registry exists to avoid.  Default: nothing to release.
        """

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_node_rng"] = None  # rebound by the executor in the worker
        for key in getattr(self, "_transient", ()):
            state.pop(key, None)
        return state


class RunnerStepAdapter:
    """Routes ``local_step`` through a runner that overrides it.

    Benchmarks subclass the facade runners (e.g. ``FedML``) and override
    ``local_step`` to inject faults or noise.  The facades detect the
    override and hand the engine this adapter so the subclass behaviour
    still applies.  The adapter holds the runner (telemetry, platform and
    all), so it is not picklable — overridden steps run serially.
    """

    #: never vectorize through the adapter: the runner's overridden
    #: ``local_step`` is the whole point, and a stacked block would skip it
    #: (class attribute, so ``__getattr__`` cannot forward the strategy's)
    supports_vectorized = False

    def __init__(self, strategy: LocalStrategy, runner: Any) -> None:
        self._strategy = strategy
        self._runner = runner

    def local_step(self, node: EdgeNode) -> float:
        return self._runner.local_step(node)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._strategy, name)


# ----------------------------------------------------------------------
# Consensus baselines: FedAvg and FedProx
# ----------------------------------------------------------------------
def _consensus_nodes(
    federated: FederatedDataset, source_ids: Sequence[int]
) -> List[EdgeNode]:
    """Node construction shared by FedAvg/FedProx.

    Consensus algorithms ignore the K-split for training (they use all
    local data) but keep the same node/weight construction as the
    meta-learners for comparability.
    """
    datasets = [federated.nodes[i] for i in source_ids]
    min_size = min(len(d) for d in datasets)
    return build_nodes(
        datasets, max(1, min(2, min_size - 1)), node_ids=list(source_ids)
    )


class SgdStrategy(LocalStrategy):
    """FedAvg: plain SGD on the node's entire local dataset."""

    name = "fedavg"
    log_uplink = True
    _transient = ("_data_cache",)

    def build_nodes(
        self, federated: FederatedDataset, source_ids: Sequence[int]
    ) -> List[EdgeNode]:
        return _consensus_nodes(federated, source_ids)

    def _full_data(self, node: EdgeNode) -> Dataset:
        cache: Dict[int, Dataset] = self.__dict__.setdefault("_data_cache", {})
        data = cache.get(node.node_id)
        if data is None:
            data = node_training_data(node)
            cache[node.node_id] = data
        return data

    def local_step(self, node: EdgeNode) -> float:
        assert node.params is not None
        cfg = self.config
        gradient = loss_gradient(
            self.model, node.params, self._full_data(node), self.loss_fn
        )
        node.params = add_scaled(node.params, gradient, -cfg.learning_rate)
        node.record_local_step(gradient_evals=1)
        return 0.0

    def release_node(self, node: EdgeNode) -> None:
        cache = self.__dict__.get("_data_cache")
        if cache is not None:
            cache.pop(node.node_id, None)

    supports_vectorized = True

    def vectorized_signature(self, node: EdgeNode) -> Optional[Tuple]:
        if not supports_batched_loss(self.model, self.loss_fn):
            return None
        data = self._full_data(node)
        x = np.asarray(data.x)
        return (x.shape, x.dtype.kind, np.asarray(data.y).shape)

    def _stacked_block_inputs(
        self, nodes: Sequence[EdgeNode]
    ) -> Tuple[np.ndarray, np.ndarray, Params, List[str]]:
        datasets = [self._full_data(node) for node in nodes]
        xs = np.stack([np.asarray(d.x) for d in datasets])
        ys = np.stack([np.asarray(d.y) for d in datasets])
        stacked = stack_params([node.params for node in nodes])
        return xs, ys, stacked, sorted(stacked)

    def _apply_stacked(
        self, nodes: Sequence[EdgeNode], stacked: Params, steps: int,
        gradient_evals: int,
    ) -> None:
        for node, tree in zip(nodes, unstack_params(stacked, len(nodes))):
            # Intentional per-node loop: state fan-out and step accounting,
            # not compute (the compute ran as one stacked tape above).
            node.params = tree
            for _ in range(steps):
                node.record_local_step(gradient_evals=gradient_evals)

    def local_block_vectorized(
        self,
        nodes: Sequence[EdgeNode],
        steps: int,
        rngs: Sequence[np.random.Generator],
    ) -> None:
        cfg = self.config
        xs, ys, stacked, names = self._stacked_block_inputs(nodes)
        for _ in range(steps):
            theta = require_grad(stacked)
            loss_vec = batched_model_loss(self.model, theta, xs, ys)
            grads = grad(
                ops.sum_(loss_vec), [theta[n] for n in names],
                allow_unused=True,
            )
            stacked = {
                name: Tensor(
                    theta[name].data
                    + (-cfg.learning_rate)
                    * (
                        np.zeros_like(theta[name].data)
                        if g is None
                        else g.data
                    )
                )
                for name, g in zip(names, grads)
            }
        self._apply_stacked(nodes, stacked, steps, gradient_evals=1)

    def global_loss(self, params: Params, nodes: Sequence[EdgeNode]) -> float:
        """Weighted empirical loss ``L_w(theta)`` (eq. 2)."""

        def value(node: EdgeNode) -> float:
            data = self._full_data(node)
            return fused_model_loss(
                self.model, params, data.x, data.y, self.loss_fn
            ).item()

        return weighted_node_average(nodes, value)

    def evaluate(
        self, params: Params, nodes: Sequence[EdgeNode]
    ) -> Dict[str, float]:
        return {"global_loss": self.global_loss(params, nodes)}


class ProxStrategy(SgdStrategy):
    """FedProx: SGD on a proximally-regularized local loss.

    Each node minimizes ``L_i(θ) + (μ/2)‖θ − θ_anchor‖²`` where the anchor
    is the last aggregated global model — updated via :meth:`on_aggregate`.
    """

    name = "fedprox"
    log_uplink = False

    def begin_fit(self, params: Params, nodes: Sequence[EdgeNode]) -> None:
        self._anchor = detach(params)

    def on_aggregate(
        self, aggregated: Params, nodes: Sequence[EdgeNode]
    ) -> None:
        self._anchor = detach(aggregated)

    def local_step(self, node: EdgeNode) -> float:
        assert node.params is not None
        cfg = self.config
        anchor = self._anchor
        gradient = loss_gradient(
            self.model, node.params, self._full_data(node), self.loss_fn
        )
        node.params = {
            name: Tensor(
                node.params[name].data
                - cfg.learning_rate
                * (
                    gradient[name].data
                    + cfg.mu_prox * (node.params[name].data - anchor[name].data)
                )
            )
            for name in node.params
        }
        node.record_local_step(gradient_evals=1)
        return 0.0

    def local_block_vectorized(
        self,
        nodes: Sequence[EdgeNode],
        steps: int,
        rngs: Sequence[np.random.Generator],
    ) -> None:
        cfg = self.config
        anchor = self._anchor
        xs, ys, stacked, names = self._stacked_block_inputs(nodes)
        for _ in range(steps):
            theta = require_grad(stacked)
            loss_vec = batched_model_loss(self.model, theta, xs, ys)
            grads = grad(
                ops.sum_(loss_vec), [theta[n] for n in names],
                allow_unused=True,
            )
            updated: Params = {}
            for name, g in zip(names, grads):
                gd = (
                    np.zeros_like(theta[name].data) if g is None else g.data
                )
                # The shared anchor broadcasts over the leading node axis;
                # per-slice arithmetic mirrors the serial local_step.
                updated[name] = Tensor(
                    theta[name].data
                    - cfg.learning_rate
                    * (
                        gd
                        + cfg.mu_prox
                        * (theta[name].data - anchor[name].data[None])
                    )
                )
            stacked = updated
        self._apply_stacked(nodes, stacked, steps, gradient_evals=1)


# ----------------------------------------------------------------------
# Meta-learning strategies
# ----------------------------------------------------------------------
class MetaStrategy(LocalStrategy):
    """FedML / Algorithm 1: one MAML meta-step per local iteration."""

    name = "fedml"
    log_uplink = True

    def local_step(self, node: EdgeNode) -> float:
        """One local meta-update (eq. 3 + eq. 4) on ``node``."""
        assert node.params is not None
        cfg = self.config
        gradient, value = meta_gradient(
            self.model,
            node.params,
            node.split,
            cfg.alpha,
            inner_steps=cfg.inner_steps,
            loss_fn=self.loss_fn,
            first_order=cfg.first_order,
        )
        node.params = add_scaled(node.params, gradient, -cfg.beta)
        node.record_local_step()
        return value

    supports_vectorized = True

    def vectorized_signature(self, node: EdgeNode) -> Optional[Tuple]:
        if not supports_batched_loss(self.model, self.loss_fn):
            return None
        train, test = node.split.train, node.split.test
        x = np.asarray(train.x)
        return (
            x.shape,
            x.dtype.kind,
            np.asarray(train.y).shape,
            np.asarray(test.x).shape,
            np.asarray(test.y).shape,
        )

    def local_block_vectorized(
        self,
        nodes: Sequence[EdgeNode],
        steps: int,
        rngs: Sequence[np.random.Generator],
    ) -> None:
        cfg = self.config
        train_x = np.stack([np.asarray(n.split.train.x) for n in nodes])
        train_y = np.stack([np.asarray(n.split.train.y) for n in nodes])
        test_x = np.stack([np.asarray(n.split.test.x) for n in nodes])
        test_y = np.stack([np.asarray(n.split.test.y) for n in nodes])
        stacked = stack_params([node.params for node in nodes])
        names = sorted(stacked)
        create_graph = not cfg.first_order
        for _ in range(steps):
            theta = require_grad(stacked)
            tensors = [theta[n] for n in names]
            # Inner adaptation (eq. 3): the node-axis fused loss carries
            # differentiable closure VJPs (AD210-212 audited), so the
            # exact second-order graph survives the stacked tape.
            current: Params = theta
            for _ in range(cfg.inner_steps):
                inner_vec = batched_model_loss(
                    self.model, current, train_x, train_y
                )
                inner_grads = grad(
                    ops.sum_(inner_vec),
                    [current[n] for n in names],
                    create_graph=create_graph,
                    allow_unused=True,
                )
                current = {
                    name: (
                        current[name]
                        if g is None
                        else current[name] - cfg.alpha * g
                    )
                    for name, g in zip(names, inner_grads)
                }
            outer_vec = batched_model_loss(self.model, current, test_x, test_y)
            outer_grads = grad(
                ops.sum_(outer_vec), tensors, allow_unused=True
            )
            stacked = {
                name: Tensor(
                    theta[name].data
                    + (-cfg.beta)
                    * (
                        np.zeros_like(theta[name].data)
                        if g is None
                        else g.data
                    )
                )
                for name, g in zip(names, outer_grads)
            }
        for node, tree in zip(nodes, unstack_params(stacked, len(nodes))):
            # Intentional per-node loop: state fan-out and step accounting.
            node.params = tree
            for _ in range(steps):
                node.record_local_step()

    def global_meta_loss(
        self, params: Params, nodes: Sequence[EdgeNode]
    ) -> float:
        """``G(theta) = Σ ω_i G_i(theta)`` over the given nodes."""
        cfg = self.config
        return weighted_node_average(
            nodes,
            lambda node: meta_loss(
                self.model,
                params,
                node.split,
                cfg.alpha,
                inner_steps=getattr(cfg, "inner_steps", 1),
                loss_fn=self.loss_fn,
            ),
        )

    def evaluate(
        self, params: Params, nodes: Sequence[EdgeNode]
    ) -> Dict[str, float]:
        return {"global_meta_loss": self.global_meta_loss(params, nodes)}


def merge_meta_sgd_trees(params: Params, log_alpha: Params) -> Params:
    """Pack (θ, log α) into one tree so the platform aggregates both."""
    merged = {f"theta::{n}": t for n, t in params.items()}
    merged.update({f"logalpha::{n}": t for n, t in log_alpha.items()})
    return merged


def split_meta_sgd_trees(merged: Params) -> Tuple[Params, Params]:
    """Inverse of :func:`merge_meta_sgd_trees`."""
    params = {
        n[len("theta::"):]: t for n, t in merged.items() if n.startswith("theta::")
    }
    log_alpha = {
        n[len("logalpha::"):]: t
        for n, t in merged.items()
        if n.startswith("logalpha::")
    }
    return params, log_alpha


class MetaSgdStrategy(LocalStrategy):
    """Meta-SGD: learnable per-parameter inner rates, trained federatedly.

    Node parameter trees hold both θ and the log-rates; aggregation
    averages both (the platform is agnostic to what the tree contains).
    """

    name = "meta-sgd"

    def initial_params(
        self, rng: np.random.Generator, init_params: Optional[Params]
    ) -> Params:
        cfg = self.config
        params = super().initial_params(rng, init_params)
        log_alpha = {
            name: Tensor(np.full(t.shape, np.log(cfg.alpha_init)))
            for name, t in params.items()
        }
        return merge_meta_sgd_trees(params, log_alpha)

    def adapt(
        self, params: Params, log_alpha: Params, split: NodeSplit
    ) -> Params:
        """One learned-rate inner step (detached, for evaluation)."""
        theta = require_grad(params)
        loss = fused_model_loss(
            self.model, theta, split.train.x, split.train.y, self.loss_fn
        )
        names = sorted(theta)
        grads = grad(loss, [theta[n] for n in names], allow_unused=True)
        phi: Params = {}
        for name, g in zip(names, grads):
            rate = np.exp(log_alpha[name].data)
            if g is None:
                phi[name] = Tensor(theta[name].data.copy())
            else:
                phi[name] = Tensor(theta[name].data - rate * g.data)
        return phi

    def meta_loss(
        self, params: Params, log_alpha: Params, split: NodeSplit
    ) -> float:
        phi = self.adapt(params, log_alpha, split)
        return fused_model_loss(
            self.model, phi, split.test.x, split.test.y, self.loss_fn
        ).item()

    def local_step(self, node: EdgeNode) -> float:
        assert node.params is not None
        cfg = self.config
        params, log_alpha = split_meta_sgd_trees(node.params)
        theta = {
            n: Tensor(t.data, requires_grad=True) for n, t in params.items()
        }
        log_a = {
            n: Tensor(t.data, requires_grad=True) for n, t in log_alpha.items()
        }

        inner = self.loss_fn(
            self.model.apply(theta, node.split.train.x), node.split.train.y
        )
        names = sorted(theta)
        inner_grads = grad(
            inner, [theta[n] for n in names], create_graph=True, allow_unused=True
        )
        phi: Params = {}
        for name, g in zip(names, inner_grads):
            if g is None:
                phi[name] = theta[name]
            else:
                phi[name] = theta[name] - ops.exp(log_a[name]) * g
        # The meta derivative below is create_graph=False, so the fused
        # composite applies (the inner loss above must stay unfused: it is
        # differentiated with create_graph=True).
        outer = fused_model_loss(
            self.model, phi, node.split.test.x, node.split.test.y, self.loss_fn
        )

        leaves = [theta[n] for n in names] + [log_a[n] for n in names]
        meta_grads = grad(outer, leaves, allow_unused=True)
        updated: Params = {}
        for i, name in enumerate(names):
            g_theta = meta_grads[i]
            g_alpha = meta_grads[len(names) + i]
            updated[f"theta::{name}"] = Tensor(
                theta[name].data
                - (0.0 if g_theta is None else cfg.beta * g_theta.data)
            )
            updated[f"logalpha::{name}"] = Tensor(
                log_a[name].data
                - (0.0 if g_alpha is None else cfg.beta * g_alpha.data)
            )
        node.params = updated
        node.record_local_step()
        return outer.item()

    def global_meta_loss(
        self, merged: Params, nodes: Sequence[EdgeNode]
    ) -> float:
        params, log_alpha = split_meta_sgd_trees(merged)
        return weighted_node_average(
            nodes,
            lambda node: self.meta_loss(params, log_alpha, node.split),
        )

    def evaluate(
        self, params: Params, nodes: Sequence[EdgeNode]
    ) -> Dict[str, float]:
        return {"global_meta_loss": self.global_meta_loss(params, nodes)}


class ReptileStrategy(LocalStrategy):
    """Federated Reptile: move θ toward multi-step SGD solutions."""

    name = "reptile"
    log_initial = False

    def _sgd_steps(
        self, params: Params, data: Dataset, steps: int
    ) -> Params:
        cfg = self.config
        current = detach(params)
        for _ in range(steps):
            gradient = loss_gradient(self.model, current, data, self.loss_fn)
            current = {
                name: Tensor(
                    current[name].data - cfg.inner_lr * gradient[name].data
                )
                for name in current
            }
        return current

    def local_step(self, node: EdgeNode) -> float:
        assert node.params is not None
        cfg = self.config
        data = node_training_data(node)
        phi = self._sgd_steps(node.params, data, cfg.inner_steps)
        node.params = {
            name: Tensor(
                node.params[name].data
                + cfg.outer_lr * (phi[name].data - node.params[name].data)
            )
            for name in node.params
        }
        node.record_local_step(gradient_evals=cfg.inner_steps)
        return 0.0

    def global_meta_loss(
        self, params: Params, nodes: Sequence[EdgeNode]
    ) -> float:
        cfg = self.config
        return weighted_node_average(
            nodes,
            lambda node: meta_loss(
                self.model, params, node.split, cfg.inner_lr,
                loss_fn=self.loss_fn,
            ),
        )

    def evaluate(
        self, params: Params, nodes: Sequence[EdgeNode]
    ) -> Dict[str, float]:
        return {"global_meta_loss": self.global_meta_loss(params, nodes)}


# ----------------------------------------------------------------------
# Adversarial strategies
# ----------------------------------------------------------------------
class AdmlStrategy(MetaStrategy):
    """ADML: FGSM-perturbed inner update, clean + perturbed outer loss.

    Perturbations are regenerated against the current model every local
    step — contrast :class:`AdversarialStrategy`, which amortizes them over
    a growing DRO dataset.
    """

    name = "adml"
    log_uplink = False
    # Adversarial perturbations are regenerated per node per step; the
    # plain stacked meta-step inherited from MetaStrategy would silently
    # drop them, so this strategy runs serial (executor falls back).
    supports_vectorized = False

    def vectorized_signature(self, node: EdgeNode) -> Optional[Tuple]:
        return None

    def _perturbed_split(self, node: EdgeNode) -> NodeSplit:
        """FGSM-corrupt the node's inner training set against its model."""
        assert node.params is not None
        cfg = self.config
        adv_x = fgsm(
            self.model,
            node.params,
            node.split.train.x,
            node.split.train.y,
            xi=cfg.epsilon,
            loss_fn=self.loss_fn,
        )
        adv_train = Dataset(x=adv_x, y=node.split.train.y.copy())
        return NodeSplit(train=adv_train, test=node.split.test)

    def local_step(self, node: EdgeNode) -> float:
        assert node.params is not None
        cfg = self.config
        adversarial_split = self._perturbed_split(node)
        adv_test_x = fgsm(
            self.model,
            node.params,
            node.split.test.x,
            node.split.test.y,
            xi=cfg.epsilon,
            loss_fn=self.loss_fn,
        )
        extra = [Dataset(x=adv_test_x, y=node.split.test.y.copy())]
        gradient, value = meta_gradient(
            self.model,
            node.params,
            adversarial_split,
            cfg.alpha,
            loss_fn=self.loss_fn,
            first_order=cfg.first_order,
            extra_test_sets=extra,
        )
        node.params = add_scaled(node.params, gradient, -cfg.beta)
        node.record_local_step(gradient_evals=4)  # 2 attacks + inner + outer
        return value


class AdversarialStrategy(MetaStrategy):
    """Robust FedML / Algorithm 2: DRO outer loss over a grown ``D^adv``.

    The local step is a MAML meta-step whose outer loss adds the node's
    adversarial dataset (eq. 14); :meth:`on_block_end` implements the
    generation schedule (every ``N0·T0`` iterations, at most ``R`` times)
    by solving the Wasserstein inner supremum with ``Ta`` ascent steps.
    The attack machinery is shared with :class:`AdmlStrategy` — both
    perturb in the model's continuous feature space.
    """

    name = "robust-fedml"
    log_uplink = False
    # The DRO outer loss depends on each node's grown (ragged) D^adv; the
    # inherited stacked meta-step would drop it, so run serial.
    supports_vectorized = False

    def vectorized_signature(self, node: EdgeNode) -> Optional[Tuple]:
        return None

    def init_node_state(self, node: EdgeNode) -> None:
        # Token models: embed the node's data once so clean and adversarial
        # samples share one continuous feature space.
        if np.asarray(node.split.train.x).dtype.kind in "iu":
            node.split = NodeSplit(
                train=self._as_continuous(node.split.train),
                test=self._as_continuous(node.split.test),
            )

    def _as_continuous(self, data: Dataset) -> Dataset:
        """Map integer-token inputs into the (frozen) embedding space."""
        from ..attacks.common import embed_inputs

        features = embed_inputs(self.model, data.x)
        return Dataset(x=features, y=data.y)

    def begin_fit(self, params: Params, nodes: Sequence[EdgeNode]) -> None:
        self._generation_rounds = {node.node_id: 0 for node in nodes}

    def local_step(self, node: EdgeNode) -> float:
        """Local robust meta-update (eq. 13 + eq. 14)."""
        assert node.params is not None
        cfg = self.config
        extra = []
        if node.adversarial is not None and len(node.adversarial) > 0:
            extra.append(node.adversarial)
        gradient, value = meta_gradient(
            self.model,
            node.params,
            node.split,
            cfg.alpha,
            inner_steps=cfg.inner_steps,
            loss_fn=self.loss_fn,
            first_order=cfg.first_order,
            extra_test_sets=extra,
        )
        node.params = add_scaled(node.params, gradient, -cfg.beta)
        node.record_local_step(gradient_evals=2 + len(extra))
        return value

    def generate_adversarial(
        self, node: EdgeNode, rng: np.random.Generator
    ) -> None:
        """Algorithm 2, lines 15–21: grow ``D_i^adv`` by |D_i^test| samples."""
        assert node.params is not None
        cfg = self.config
        combined = node.combined_test_set()
        count = len(node.split.test)
        chosen = rng.integers(0, len(combined), size=count)
        base = combined.subset(chosen)

        # Perturbations are constructed against the *adapted* model phi_i^t
        # (eq. 12 evaluates the loss at phi_i, not theta_i).
        phi = inner_adapt(
            self.model,
            node.params,
            node.split.train,
            cfg.alpha,
            steps=cfg.inner_steps,
            loss_fn=self.loss_fn,
            create_graph=False,
        )
        perturbed = wasserstein_ascent(
            self.model,
            phi,
            base.x,
            base.y,
            lam=cfg.lam,
            nu=cfg.nu,
            steps=cfg.ta,
            loss_fn=self.loss_fn,
        )
        fresh = Dataset(x=perturbed, y=base.y.copy())
        if node.adversarial is None or len(node.adversarial) == 0:
            node.adversarial = fresh
        else:
            node.adversarial = node.adversarial.concat(fresh)

    def on_block_end(
        self,
        t: int,
        nodes: Sequence[EdgeNode],
        rng: np.random.Generator,
        telemetry: Any,
    ) -> None:
        cfg = self.config
        if t % (cfg.n0 * cfg.t0) != 0:
            return
        adv_total = telemetry.counter(
            "fl_adversarial_samples_total", algorithm=self.name
        )
        with telemetry.span("generate_adversarial"):
            for node in nodes:
                if self._generation_rounds[node.node_id] < cfg.r_max:
                    before = (
                        0 if node.adversarial is None else len(node.adversarial)
                    )
                    self.generate_adversarial(node, rng)
                    self._generation_rounds[node.node_id] += 1
                    assert node.adversarial is not None
                    adv_total.inc(len(node.adversarial) - before)

    def checkpoint_extras(self, nodes: Sequence[EdgeNode]) -> Params:
        """Persist each node's grown ``D_i^adv`` beside the global tree."""
        extras: Params = {}
        for node in nodes:
            if node.adversarial is not None and len(node.adversarial) > 0:
                extras[f"adv::{node.node_id}::x"] = Tensor(
                    np.asarray(node.adversarial.x, dtype=np.float64)
                )
                extras[f"adv::{node.node_id}::y"] = Tensor(
                    np.asarray(node.adversarial.y, dtype=np.float64)
                )
        return extras

    def restore_extras(
        self, extras: Params, nodes: Sequence[EdgeNode]
    ) -> None:
        for node in nodes:
            x_key = f"adv::{node.node_id}::x"
            y_key = f"adv::{node.node_id}::y"
            if x_key in extras and y_key in extras:
                # Labels round-trip through the float64 wire format; they
                # are small integers, so the cast back is exact.
                node.adversarial = Dataset(
                    x=extras[x_key].data.copy(),
                    y=extras[y_key].data.astype(np.int64),
                )

    def checkpoint_state(self, nodes: Sequence[EdgeNode]) -> Dict[str, Any]:
        return {
            "generation_rounds": {
                str(node_id): int(count)
                for node_id, count in self._generation_rounds.items()
            }
        }

    def restore_state(
        self, state: Dict[str, Any], nodes: Sequence[EdgeNode]
    ) -> None:
        recorded = state.get("generation_rounds", {})
        self._generation_rounds = {
            node.node_id: int(recorded.get(str(node.node_id), 0))
            for node in nodes
        }

    def _adversarial_count(self, nodes: Sequence[EdgeNode]) -> float:
        return float(
            sum(
                0 if n.adversarial is None else len(n.adversarial)
                for n in nodes
            )
        )

    def evaluate(
        self, params: Params, nodes: Sequence[EdgeNode]
    ) -> Dict[str, float]:
        return {
            "global_meta_loss": self.global_meta_loss(params, nodes),
            "adversarial_samples": self._adversarial_count(nodes),
        }
