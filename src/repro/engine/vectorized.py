"""The vectorized executor: one stacked tape per block instead of N tapes.

Between aggregations nodes are independent, so a block of T0 local steps
over N nodes is N disjoint computations on identically-shaped buffers.
:class:`VectorizedExecutor` exploits that by handing whole *groups* of
nodes to the strategy's ``local_block_vectorized`` — which stacks their
parameter trees and minibatches into ``(N, ...)`` arrays and runs one
batched ``local_step`` using the node-axis autodiff ops — rather than
scheduling per-node work like the serial and parallel executors.

Capability and fallback
-----------------------
A strategy opts in with the ``supports_vectorized`` class flag and a
``vectorized_signature(node)`` grouping key.  Nodes whose signature is
``None`` (ragged data, unsupported model/loss) — or every node, when the
strategy never opted in — run through an internal
:class:`~repro.engine.executors.SerialExecutor` *inside the same block*,
so mixed fleets work and no strategy ever breaks by omission.

Determinism contract
--------------------
Per-node generators follow the same ``[base_seed, block_index, node_id]``
discipline as the other executors (built through ``instrument_node_rng``
so the RNG ledger sees identical streams).  Stacked fp math may reorder
accumulations relative to the serial tapes, so serial-vs-vectorized
equality is *tolerance*-gated; vectorized-vs-vectorized double runs are
bit-identical (asserted by ``repro check-determinism --compare
vectorized`` and the engine bench).  Serial/parallel golden traces are
untouched by construction — this executor never runs unless selected.

Observability: per-group ``local_train_vectorized`` spans, per-node
``node_result`` events (with params fingerprints when enabled), one
``vectorized_block`` event and ``fl_vectorized_nodes_total`` /
``fl_vectorized_fallback_total`` counters per block, plus the standard
per-block ``cache_hit`` fast-path summary.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff import fastpath
from ..federated.node import EdgeNode
from ..obs.telemetry import Telemetry, resolve
from ..utils.rng import instrument_node_rng
from ..utils.serialization import params_fingerprint
from .executors import (
    ExecutorError,
    SerialExecutor,
    _emit_cache_event,
    _node_seed,
)

__all__ = ["VectorizedExecutor"]


class VectorizedExecutor:
    """Runs each block as stacked group tapes, serial fallback for the rest."""

    def __init__(self) -> None:
        self._serial = SerialExecutor()

    @staticmethod
    def _partition(
        strategy: Any, nodes: Sequence[EdgeNode]
    ) -> Tuple[Dict[Tuple, List[EdgeNode]], List[EdgeNode]]:
        """Split nodes into signature groups and the serial-fallback rest.

        Group order is first-appearance order over ``nodes``, so the
        schedule is deterministic for a fixed node sequence.
        """
        groups: Dict[Tuple, List[EdgeNode]] = {}
        fallback: List[EdgeNode] = []
        if not getattr(strategy, "supports_vectorized", False):
            return groups, list(nodes)
        for node in nodes:
            signature = strategy.vectorized_signature(node)
            if signature is None:
                fallback.append(node)
            else:
                groups.setdefault(signature, []).append(node)
        return groups, fallback

    @staticmethod
    def _group_rngs(
        group: Sequence[EdgeNode], block_index: int, base_seed: int
    ) -> List[np.random.Generator]:
        return [
            instrument_node_rng(
                np.random.default_rng(
                    _node_seed(base_seed, block_index, node.node_id)
                ),
                block_index,
                node.node_id,
            )
            for node in group
        ]

    def run_block(
        self,
        strategy: Any,
        nodes: Sequence[EdgeNode],
        steps: int,
        *,
        block_index: int,
        base_seed: int,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        tel = resolve(telemetry)
        groups, fallback = self._partition(strategy, nodes)

        if not tel.enabled:
            for group in groups.values():
                rngs = self._group_rngs(group, block_index, base_seed)
                try:
                    strategy.local_block_vectorized(group, steps, rngs)
                except Exception as exc:
                    raise ExecutorError(
                        group[0].node_id, block_index, exc,
                        worker_traceback=traceback.format_exc(),
                    ) from exc
            if fallback:
                self._serial.run_block(
                    strategy, fallback, steps,
                    block_index=block_index, base_seed=base_seed,
                    telemetry=telemetry,
                )
            return

        events = tel.events
        fastpath_base = fastpath.stats().as_dict()
        vectorized_count = sum(len(g) for g in groups.values())
        for group in groups.values():
            rngs = self._group_rngs(group, block_index, base_seed)
            start = time.perf_counter()
            span = tel.span(
                "local_train_vectorized", block=block_index,
                nodes=len(group), steps=steps,
            )
            try:
                strategy.local_block_vectorized(group, steps, rngs)
            except Exception as exc:
                worker_tb = traceback.format_exc()
                span.set(error=repr(exc))
                span.end()
                events.emit(
                    "node_error", node=group[0].node_id, block=block_index,
                    error=repr(exc), traceback=worker_tb,
                )
                raise ExecutorError(
                    group[0].node_id, block_index, exc,
                    worker_traceback=worker_tb,
                ) from exc
            span.end()
            duration = time.perf_counter() - start
            for node in group:
                result_fields: Dict[str, Any] = {}
                if tel.node_fingerprints:
                    result_fields["params_fp"] = params_fingerprint(
                        node.params
                    )
                events.emit(
                    "node_result", node=node.node_id, block=block_index,
                    steps=steps, duration_s=duration / len(group),
                    vectorized=True, **result_fields,
                )
        arena = fastpath.arena_stats()
        events.emit(
            "vectorized_block", block=block_index,
            vectorized_nodes=vectorized_count, fallback_nodes=len(fallback),
            groups=len(groups),
            arena_slots=arena["slots"], arena_bytes=arena["bytes"],
        )
        tel.counter("fl_vectorized_nodes_total").inc(vectorized_count)
        tel.counter("fl_vectorized_fallback_total").inc(len(fallback))
        # Emit the stacked tapes' fast-path summary before the fallback
        # runs (the serial executor emits its own for the rest).
        _emit_cache_event(
            tel, block_index, fastpath.stats().delta_since(fastpath_base)
        )
        if fallback:
            self._serial.run_block(
                strategy, fallback, steps,
                block_index=block_index, base_seed=base_seed,
                telemetry=telemetry,
            )

    def close(self) -> None:
        """Nothing to release."""
        self._serial.close()
