"""Unified federated round engine.

One driver (:class:`RoundEngine`), pluggable per-algorithm local behaviour
(:class:`LocalStrategy` and friends), and swappable block schedulers
(:class:`SerialExecutor` / :class:`ParallelExecutor`).  The algorithm
classes in :mod:`repro.core` are thin facades over this package; see
``docs/ENGINE.md`` for the layer diagram and extension guide.
"""

from .evaluation import loss_gradient, node_training_data, weighted_node_average
from .executors import Executor, ExecutorError, ParallelExecutor, SerialExecutor
from .round_engine import EngineOptions, EngineResult, RoundEngine
from .vectorized import VectorizedExecutor
from .strategies import (
    AdmlStrategy,
    AdversarialStrategy,
    LocalStrategy,
    MetaSgdStrategy,
    MetaStrategy,
    ProxStrategy,
    ReptileStrategy,
    RunnerStepAdapter,
    SgdStrategy,
    merge_meta_sgd_trees,
    split_meta_sgd_trees,
)

__all__ = [
    "RoundEngine",
    "EngineResult",
    "EngineOptions",
    "Executor",
    "ExecutorError",
    "SerialExecutor",
    "ParallelExecutor",
    "VectorizedExecutor",
    "LocalStrategy",
    "RunnerStepAdapter",
    "SgdStrategy",
    "ProxStrategy",
    "MetaStrategy",
    "MetaSgdStrategy",
    "ReptileStrategy",
    "AdmlStrategy",
    "AdversarialStrategy",
    "merge_meta_sgd_trees",
    "split_meta_sgd_trees",
    "weighted_node_average",
    "loss_gradient",
    "node_training_data",
]
