"""Client executors: how one block of local steps is scheduled.

Between two aggregations, nodes are independent — node ``i``'s T0 local
steps never read node ``j``'s state.  That independence is the whole
parallelism budget of the simulator, and an :class:`Executor` spends it:

``SerialExecutor``
    Runs every node's block in-process, node by node.  The reference
    implementation and the default.

``ParallelExecutor``
    Ships ``(strategy, node)`` to a ``ProcessPoolExecutor`` worker per
    node, runs the block there, and copies the mutated node state back.
    Requires the strategy and node to be picklable (true for every
    built-in strategy; *not* true for :class:`RunnerStepAdapter`, which
    closes over a live runner).

Determinism contract: both executors bind the strategy's per-node
generator to ``default_rng([base_seed, block_index, node_id])`` before the
node's block, so a strategy that draws randomness during ``local_step``
gets an identical stream regardless of executor or worker count.  Since
pickling float64 arrays is lossless, serial and parallel runs are
bit-for-bit identical (asserted in ``tests/engine/test_executors.py``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..federated.node import EdgeNode
from ..nn.parameters import Params

__all__ = ["Executor", "ExecutorError", "SerialExecutor", "ParallelExecutor"]


class ExecutorError(RuntimeError):
    """A node's block failed; carries which node, which block, and why.

    Both executors translate any exception escaping ``local_step`` into
    this, so the engine's retry logic (and a human reading a traceback)
    knows *where* the failure happened without parsing worker stack traces.
    The original exception rides along as ``__cause__``.
    """

    def __init__(self, node_id: int, block_index: int, cause: BaseException):
        self.node_id = node_id
        self.block_index = block_index
        super().__init__(
            f"node {node_id} failed in block {block_index}: {cause!r}"
        )


class Executor(Protocol):
    """Schedules one block (``steps`` local iterations) for every node."""

    def run_block(
        self,
        strategy: Any,
        nodes: Sequence[EdgeNode],
        steps: int,
        *,
        block_index: int,
        base_seed: int,
    ) -> None: ...

    def close(self) -> None: ...


def _node_seed(base_seed: int, block_index: int, node_id: int) -> List[int]:
    return [base_seed, block_index, node_id]


class SerialExecutor:
    """In-process, node-by-node execution (the reference schedule)."""

    def run_block(
        self,
        strategy: Any,
        nodes: Sequence[EdgeNode],
        steps: int,
        *,
        block_index: int,
        base_seed: int,
    ) -> None:
        for node in nodes:
            strategy.bind_node_rng(
                np.random.default_rng(
                    _node_seed(base_seed, block_index, node.node_id)
                )
            )
            try:
                for _ in range(steps):
                    strategy.local_step(node)
            except Exception as exc:
                raise ExecutorError(node.node_id, block_index, exc) from exc

    def close(self) -> None:
        """Nothing to release."""


def _run_node_block(
    strategy: Any, node: EdgeNode, steps: int, seed: List[int]
) -> Tuple[Optional[Params], int, int]:
    """Worker entry point: one node's block, run in a forked process.

    Returns the node state that ``local_step`` is allowed to mutate; the
    parent copies it back onto its own ``EdgeNode``.  Strategy-side
    mutations in the worker are discarded — per-fit strategy state must
    only change in the engine's hooks (``on_aggregate``/``on_block_end``),
    which always run in the parent.
    """
    strategy.bind_node_rng(np.random.default_rng(seed))
    for _ in range(steps):
        strategy.local_step(node)
    return node.params, node.local_steps, node.gradient_evaluations


class ParallelExecutor:
    """One worker process per node block, results applied in node order.

    The pool is created lazily on first use and should be released with
    :meth:`close` (the engine does this via context management; the class
    also works as a context manager directly).
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def run_block(
        self,
        strategy: Any,
        nodes: Sequence[EdgeNode],
        steps: int,
        *,
        block_index: int,
        base_seed: int,
    ) -> None:
        pool = self._ensure_pool()
        futures = [
            pool.submit(
                _run_node_block,
                strategy,
                node,
                steps,
                _node_seed(base_seed, block_index, node.node_id),
            )
            for node in nodes
        ]
        first_error: Optional[ExecutorError] = None
        for node, future in zip(nodes, futures):
            try:
                params, local_steps, gradient_evaluations = future.result()
            except Exception as exc:
                # Keep draining: every future must settle or the pool's
                # worker slots stay occupied by doomed tasks.  The first
                # failure in node order is the one reported (deterministic
                # regardless of which worker raced ahead).
                if first_error is None:
                    first_error = ExecutorError(
                        node.node_id, block_index, exc
                    )
                    first_error.__cause__ = exc
                continue
            if first_error is None:
                node.params = params
                node.local_steps = local_steps
                node.gradient_evaluations = gradient_evaluations
        if first_error is not None:
            raise first_error

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
