"""Client executors: how one block of local steps is scheduled.

Between two aggregations, nodes are independent — node ``i``'s T0 local
steps never read node ``j``'s state.  That independence is the whole
parallelism budget of the simulator, and an :class:`Executor` spends it:

``SerialExecutor``
    Runs every node's block in-process, node by node.  The reference
    implementation and the default.

``ParallelExecutor``
    Ships ``(strategy, node)`` to a ``ProcessPoolExecutor`` worker per
    node, runs the block there, and copies the mutated node state back.
    Requires the strategy and node to be picklable (true for every
    built-in strategy; *not* true for :class:`RunnerStepAdapter`, which
    closes over a live runner).

Determinism contract: both executors bind the strategy's per-node
generator to ``default_rng([base_seed, block_index, node_id])`` before the
node's block, so a strategy that draws randomness during ``local_step``
gets an identical stream regardless of executor or worker count.  Since
pickling float64 arrays is lossless, serial and parallel runs are
bit-for-bit identical (asserted in ``tests/engine/test_executors.py``).

Observability: ``run_block`` accepts the run's telemetry.  With telemetry
enabled, each node's block is timed as a ``local_train`` span — emitted
directly in serial mode, and in parallel mode collected by a worker-side
child tracer (seeded from the parent's :class:`~repro.obs.TraceContext`),
shipped home inside a :class:`~repro.obs.WorkerTrace` and re-parented into
the parent's ring buffer and sink, together with the worker's fast-path
counter and tape-profiler deltas.  Per-node ``node_result``/``node_error``
events and a per-block ``cache_hit`` event land on the unified event log.
None of this touches node state or RNG streams: traced runs stay
bit-identical to untraced ones.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..autodiff import fastpath
from ..autodiff import ops as _ops
from ..autodiff.profile import TapeProfiler, worker_profile
from ..federated.node import EdgeNode
from ..nn.parameters import Params
from ..obs.telemetry import Telemetry, resolve
from ..obs.tracing import TraceContext, Tracer, WorkerTrace, reparent
from ..utils.rng import instrument_node_rng
from ..utils.serialization import params_fingerprint

__all__ = ["Executor", "ExecutorError", "SerialExecutor", "ParallelExecutor"]

#: fast-path counter keys surfaced on the per-block ``cache_hit`` event
_CACHE_EVENT_KEYS = ("backwards", "plan_hits", "plan_misses", "raw_vjp_calls")


class ExecutorError(RuntimeError):
    """A node's block failed; carries which node, which block, and why.

    Both executors translate any exception escaping ``local_step`` into
    this, so the engine's retry logic (and a human reading a traceback)
    knows *where* the failure happened without parsing worker stack traces.
    The original exception rides along as ``__cause__``; the formatted
    traceback from the *failing process* — which pickling would otherwise
    discard for pool workers — is preserved as :attr:`worker_traceback`.
    """

    def __init__(
        self,
        node_id: int,
        block_index: int,
        cause: BaseException,
        worker_traceback: Optional[str] = None,
    ):
        self.node_id = node_id
        self.block_index = block_index
        self.worker_traceback = worker_traceback
        super().__init__(
            f"node {node_id} failed in block {block_index}: {cause!r}"
        )


class Executor(Protocol):
    """Schedules one block (``steps`` local iterations) for every node."""

    def run_block(
        self,
        strategy: Any,
        nodes: Sequence[EdgeNode],
        steps: int,
        *,
        block_index: int,
        base_seed: int,
        telemetry: Optional[Telemetry] = None,
    ) -> None: ...

    def close(self) -> None: ...


def _node_seed(base_seed: int, block_index: int, node_id: int) -> List[int]:
    return [base_seed, block_index, node_id]


def _active_profiler() -> Optional[TapeProfiler]:
    """The parent's live tape profiler, when ``profile_ops`` is active."""
    hook = _ops._PROFILE_HOOK
    profiler = getattr(hook, "__self__", None)
    return profiler if isinstance(profiler, TapeProfiler) else None


def _emit_cache_event(tel: Any, block_index: int, delta: Dict[str, int]) -> None:
    """One ``cache_hit`` event per block summarising fast-path activity."""
    if delta.get("backwards", 0):
        tel.events.emit(
            "cache_hit",
            block=block_index,
            **{k: delta.get(k, 0) for k in _CACHE_EVENT_KEYS},
        )


class SerialExecutor:
    """In-process, node-by-node execution (the reference schedule)."""

    def run_block(
        self,
        strategy: Any,
        nodes: Sequence[EdgeNode],
        steps: int,
        *,
        block_index: int,
        base_seed: int,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        tel = resolve(telemetry)
        if not tel.enabled:
            # Disabled path: exactly the pre-observability loop, no clock
            # reads, no per-node bookkeeping.
            for node in nodes:
                strategy.bind_node_rng(
                    instrument_node_rng(
                        np.random.default_rng(
                            _node_seed(base_seed, block_index, node.node_id)
                        ),
                        block_index,
                        node.node_id,
                    )
                )
                try:
                    for _ in range(steps):
                        strategy.local_step(node)
                except Exception as exc:
                    raise ExecutorError(
                        node.node_id, block_index, exc,
                        worker_traceback=traceback.format_exc(),
                    ) from exc
            return

        events = tel.events
        fastpath_base = fastpath.stats().as_dict()
        for node in nodes:
            strategy.bind_node_rng(
                instrument_node_rng(
                    np.random.default_rng(
                        _node_seed(base_seed, block_index, node.node_id)
                    ),
                    block_index,
                    node.node_id,
                )
            )
            start = time.perf_counter()
            span = tel.span(
                "local_train", node=node.node_id, block=block_index,
                steps=steps,
            )
            try:
                for _ in range(steps):
                    strategy.local_step(node)
            except Exception as exc:
                worker_tb = traceback.format_exc()
                span.set(error=repr(exc))
                span.end()
                events.emit(
                    "node_error", node=node.node_id, block=block_index,
                    error=repr(exc), traceback=worker_tb,
                )
                raise ExecutorError(
                    node.node_id, block_index, exc,
                    worker_traceback=worker_tb,
                ) from exc
            span.end()
            result_fields: Dict[str, Any] = {}
            if tel.node_fingerprints:
                result_fields["params_fp"] = params_fingerprint(node.params)
            events.emit(
                "node_result", node=node.node_id, block=block_index,
                steps=steps, duration_s=time.perf_counter() - start,
                **result_fields,
            )
        _emit_cache_event(
            tel, block_index, fastpath.stats().delta_since(fastpath_base)
        )

    def close(self) -> None:
        """Nothing to release."""


def _run_node_block(
    strategy: Any,
    node: EdgeNode,
    steps: int,
    seed: List[int],
    trace: Optional[TraceContext] = None,
) -> Tuple[Optional[Params], int, int, Optional[WorkerTrace]]:
    """Worker entry point: one node's block, run in a forked process.

    Returns the node state that ``local_step`` is allowed to mutate; the
    parent copies it back onto its own ``EdgeNode``.  Strategy-side
    mutations in the worker are discarded — per-fit strategy state must
    only change in the engine's hooks (``on_aggregate``/``on_block_end``),
    which always run in the parent.

    With a :class:`TraceContext`, the block is additionally timed by a
    private child tracer whose finished spans (plus the fast-path counter
    delta and, when requested, tape-profiler statistics) return in a
    :class:`WorkerTrace` for the parent to re-parent and merge.  On
    failure the formatted worker traceback is attached to the exception
    (instance attributes survive pickling), so the parent can report *why*
    the worker died, not just that it did.
    """
    strategy.bind_node_rng(
        instrument_node_rng(np.random.default_rng(seed), seed[1], seed[2])
    )
    if trace is None:
        try:
            for _ in range(steps):
                strategy.local_step(node)
        except Exception as exc:
            exc._worker_traceback = traceback.format_exc()  # type: ignore[attr-defined]
            raise
        return node.params, node.local_steps, node.gradient_evaluations, None

    block_index = seed[1]
    collector = Tracer(ring_size=64)
    fastpath_base = fastpath.stats().as_dict()
    worker = WorkerTrace()
    try:
        if trace.profile_tape:
            with worker_profile() as prof:
                with collector.span(
                    "local_train", node=node.node_id, block=block_index,
                    steps=steps, worker=True,
                ):
                    for _ in range(steps):
                        strategy.local_step(node)
            worker.op_stats = prof.as_portable()
            worker.graph_walks = prof.graph_walks
            worker.walked_nodes = prof.walked_nodes
            worker.allocations = prof.allocations
        else:
            with collector.span(
                "local_train", node=node.node_id, block=block_index,
                steps=steps, worker=True,
            ):
                for _ in range(steps):
                    strategy.local_step(node)
    except Exception as exc:
        exc._worker_traceback = traceback.format_exc()  # type: ignore[attr-defined]
        raise
    worker.spans = collector.records()
    worker.fastpath_delta = fastpath.stats().delta_since(fastpath_base)
    return node.params, node.local_steps, node.gradient_evaluations, worker


class ParallelExecutor:
    """One worker process per node block, results applied in node order.

    The pool is created lazily on first use and should be released with
    :meth:`close` (the engine does this via context management; the class
    also works as a context manager directly).

    Lifecycle contract: :meth:`run_block` after :meth:`close` does NOT
    fail — it transparently re-creates the pool (every block entry goes
    through ``_ensure_pool``), so an executor can be reused across
    ``fit()`` calls that each close it.  Pinned by
    ``tests/engine/test_executors.py`` (both at the fit level and with a
    direct ``run_block``-after-``close`` regression test); a fresh pool
    cannot affect results because all state lives in the submitted
    ``(strategy, node, seed)`` payloads, never in the workers.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def run_block(
        self,
        strategy: Any,
        nodes: Sequence[EdgeNode],
        steps: int,
        *,
        block_index: int,
        base_seed: int,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        pool = self._ensure_pool()
        tel = resolve(telemetry)
        trace: Optional[TraceContext] = None
        profiler: Optional[TapeProfiler] = None
        if tel.enabled:
            profiler = _active_profiler()
            trace = tel.trace_context(profile_tape=profiler is not None)
        futures = [
            pool.submit(
                _run_node_block,
                strategy,
                node,
                steps,
                _node_seed(base_seed, block_index, node.node_id),
                trace,
            )
            for node in nodes
        ]
        events = tel.events
        first_error: Optional[ExecutorError] = None
        cache_delta: Dict[str, int] = {}
        for node, future in zip(nodes, futures):
            try:
                params, local_steps, gradient_evaluations, worker = (
                    future.result()
                )
            except Exception as exc:
                # Keep draining: every future must settle or the pool's
                # worker slots stay occupied by doomed tasks.  The first
                # failure in node order is the one reported (deterministic
                # regardless of which worker raced ahead); every failure
                # is logged as a node_error event so retries and drops
                # stay attributable post-hoc.
                worker_tb = getattr(exc, "_worker_traceback", None)
                events.emit(
                    "node_error", node=node.node_id, block=block_index,
                    error=repr(exc), traceback=worker_tb,
                )
                if first_error is None:
                    first_error = ExecutorError(
                        node.node_id, block_index, exc,
                        worker_traceback=worker_tb,
                    )
                    first_error.__cause__ = exc
                continue
            if first_error is None:
                node.params = params
                node.local_steps = local_steps
                node.gradient_evaluations = gradient_evaluations
                if worker is not None and trace is not None:
                    self._merge_worker_trace(
                        tel, trace, worker, node, block_index, steps,
                        profiler, cache_delta,
                    )
        if first_error is not None:
            raise first_error
        _emit_cache_event(tel, block_index, cache_delta)

    @staticmethod
    def _merge_worker_trace(
        tel: Any,
        trace: TraceContext,
        worker: WorkerTrace,
        node: EdgeNode,
        block_index: int,
        steps: int,
        profiler: Optional[TapeProfiler],
        cache_delta: Dict[str, int],
    ) -> None:
        """Fold one worker's trace bundle into the parent collectors."""
        duration = 0.0
        for record in worker.spans:
            if record.name == "local_train" and record.depth == 0:
                duration = record.duration
            tel.ingest_span(reparent(record, trace))
        result_fields: Dict[str, Any] = {}
        if tel.node_fingerprints:
            result_fields["params_fp"] = params_fingerprint(node.params)
        tel.events.emit(
            "node_result", node=node.node_id, block=block_index,
            steps=steps, duration_s=duration, **result_fields,
        )
        fastpath.merge_stats(worker.fastpath_delta)
        for key, value in worker.fastpath_delta.items():
            cache_delta[key] = cache_delta.get(key, 0) + value
        if profiler is not None and (worker.op_stats or worker.graph_walks):
            profiler.merge_portable(
                worker.op_stats,
                worker.graph_walks,
                worker.walked_nodes,
                worker.allocations,
            )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
