"""Hierarchical (edge → gateway → cloud) aggregation.

Edge deployments rarely ship every device's model over the WAN: devices
aggregate at a nearby gateway (cheap LAN hop), and only gateway summaries
cross the expensive backhaul to the platform.  With G gateways over N
devices, the WAN carries G uploads per round instead of N.

The math is unchanged — a weighted mean of weighted means with the correct
weights equals the flat weighted mean — so hierarchical FedML/FedAvg is a
pure systems optimization.  The implementation keeps separate communication
ledgers for the LAN and WAN tiers so benches can price each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn.parameters import Params
from ..utils.serialization import deserialize_params, serialize_params
from .aggregation import weighted_mean
from .network import CommunicationLog, LinkModel
from .node import EdgeNode

__all__ = ["GatewayAssignment", "HierarchicalPlatform"]


@dataclass(frozen=True)
class GatewayAssignment:
    """Maps each node id to a gateway index."""

    node_to_gateway: Dict[int, int]

    @property
    def num_gateways(self) -> int:
        return len(set(self.node_to_gateway.values()))

    @staticmethod
    def round_robin(node_ids: Sequence[int], num_gateways: int) -> "GatewayAssignment":
        if num_gateways < 1:
            raise ValueError("num_gateways must be >= 1")
        mapping = {
            node_id: i % num_gateways
            for i, node_id in enumerate(sorted(node_ids))
        }
        return GatewayAssignment(node_to_gateway=mapping)

    def gateway_members(self, gateway: int) -> List[int]:
        return sorted(
            node_id for node_id, g in self.node_to_gateway.items() if g == gateway
        )


@dataclass
class HierarchicalPlatform:
    """Two-tier aggregation with per-tier communication accounting.

    Drop-in for :class:`~repro.federated.platform.Platform` in the trainers
    (same ``initialize`` / ``aggregate`` / ``global_params`` surface).
    """

    assignment: GatewayAssignment
    lan_link: LinkModel = field(
        default_factory=lambda: LinkModel(
            uplink_bytes_per_s=1.25e7, downlink_bytes_per_s=1.25e7,
            latency_s=0.005,
        )
    )
    wan_link: LinkModel = field(default_factory=LinkModel)
    lan_log: CommunicationLog = field(init=False)
    wan_log: CommunicationLog = field(init=False)
    global_params: Optional[Params] = None
    rounds_completed: int = 0

    def __post_init__(self) -> None:
        self.lan_log = CommunicationLog(link=self.lan_link)
        self.wan_log = CommunicationLog(link=self.wan_link)

    # Compatibility shim: trainers read ``platform.comm_log`` for uplink
    # totals; expose the WAN ledger, which is what the paper's cost concern
    # is about.
    @property
    def comm_log(self) -> CommunicationLog:
        return self.wan_log

    def initialize(self, params: Params, nodes: Sequence[EdgeNode]) -> None:
        self.global_params = params
        blob = serialize_params(params)
        for gateway in range(self.assignment.num_gateways):
            self.wan_log.charge_download(0, gateway, len(blob))
        for node in nodes:
            self.lan_log.charge_download(0, node.node_id, len(blob))
            node.params = deserialize_params(blob)

    def aggregate(self, nodes: Sequence[EdgeNode]) -> Params:
        if not nodes:
            raise ValueError("cannot aggregate with zero participating nodes")
        self.rounds_completed += 1
        round_index = self.rounds_completed

        by_gateway: Dict[int, List[EdgeNode]] = {}
        for node in nodes:
            if node.node_id not in self.assignment.node_to_gateway:
                raise KeyError(f"node {node.node_id} has no gateway assignment")
            gateway = self.assignment.node_to_gateway[node.node_id]
            by_gateway.setdefault(gateway, []).append(node)

        gateway_models: List[Params] = []
        gateway_weights: List[float] = []
        for gateway, members in sorted(by_gateway.items()):
            trees: List[Params] = []
            for node in members:
                if node.params is None:
                    raise RuntimeError(
                        f"node {node.node_id} has no parameters to upload"
                    )
                blob = serialize_params(node.params)
                self.lan_log.charge_upload(round_index, node.node_id, len(blob))
                trees.append(deserialize_params(blob))
            weights = np.array([n.weight for n in members], dtype=np.float64)
            local = weighted_mean(trees, (weights / weights.sum()).tolist())
            blob = serialize_params(local)
            self.wan_log.charge_upload(round_index, gateway, len(blob))
            gateway_models.append(deserialize_params(blob))
            gateway_weights.append(float(weights.sum()))

        total = sum(gateway_weights)
        self.global_params = weighted_mean(
            gateway_models, [w / total for w in gateway_weights]
        )

        blob = serialize_params(self.global_params)
        for gateway in sorted(by_gateway):
            self.wan_log.charge_download(round_index, gateway, len(blob))
        for node in nodes:
            self.lan_log.charge_download(round_index, node.node_id, len(blob))
            node.params = deserialize_params(blob)
        return self.global_params

    def transfer_to_target(self) -> Params:
        if self.global_params is None:
            raise RuntimeError("platform has no trained model to transfer")
        return deserialize_params(serialize_params(self.global_params))
